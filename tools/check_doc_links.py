#!/usr/bin/env python3
"""Check that markdown cross-links in the documentation resolve.

Scans ``docs/*.md`` plus the top-level markdown files for:

* relative links — ``[text](OTHER.md)`` / ``[text](OTHER.md#anchor)``
  must point at an existing file (resolved against the containing
  file's directory), and an ``#anchor`` must match a heading in the
  target file (GitHub slugification: lowercase, spaces to dashes,
  punctuation stripped);
* in-page anchors — ``[text](#anchor)`` must match a heading in the
  same file;
* wiki-style references — ``[[NAME]]`` resolves to ``NAME.md`` next to
  the containing file.

External links (``http(s)://``, ``mailto:``) are ignored; fenced code
blocks and inline code spans are stripped before scanning so examples
can't produce false positives. Exits non-zero listing every broken
link. Run from anywhere: paths resolve relative to the repo root
(this file's grandparent). CI runs this in the fast job;
``tests/test_doc_links.py`` wraps it for the local suite.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: ``[text](target)`` — target captured up to the closing paren.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
#: ``[[NAME]]`` wiki-style reference.
_WIKI = re.compile(r"\[\[([^\]|#]+)(?:#([^\]|]+))?\]\]")
_FENCE = re.compile(r"^(```|~~~)")
_INLINE_CODE = re.compile(r"`[^`]*`")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$")
_EXTERNAL = ("http://", "https://", "mailto:")


def strip_code(text: str) -> str:
    """Drop fenced blocks and inline code spans, preserving line count
    (so reported line numbers match the source file)."""
    out = []
    in_fence = False
    for line in text.splitlines():
        if _FENCE.match(line.strip()):
            in_fence = not in_fence
            out.append("")
        elif in_fence:
            out.append("")
        else:
            out.append(_INLINE_CODE.sub("", line))
    return "\n".join(out)


def slugify(heading: str) -> str:
    """GitHub-style heading anchor: strip markup, lowercase, spaces to
    dashes, drop everything but word chars and dashes."""
    text = _INLINE_CODE.sub(lambda m: m.group(0).strip("`"), heading)
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # unwrap links
    text = text.strip().lower().replace(" ", "-")
    return re.sub(r"[^\w\-]", "", text)


def display(path: Path) -> str:
    try:
        return str(path.relative_to(REPO_ROOT))
    except ValueError:  # outside the repo (tests run on tmp dirs)
        return str(path)


def heading_anchors(path: Path) -> set[str]:
    anchors: set[str] = set()
    for line in strip_code(path.read_text(encoding="utf-8")).splitlines():
        match = _HEADING.match(line)
        if match:
            anchors.add(slugify(match.group(1)))
    return anchors


def check_file(path: Path) -> list[str]:
    errors: list[str] = []
    text = strip_code(path.read_text(encoding="utf-8"))

    def check_target(lineno: int, raw: str, target: str,
                     anchor: str | None) -> None:
        if target:
            dest = (path.parent / target).resolve()
            if not dest.is_file():
                errors.append(
                    f"{display(path)}:{lineno}: broken "
                    f"link {raw!r}: no such file {target!r}")
                return
        else:
            dest = path  # in-page anchor
        if anchor and dest.suffix == ".md":
            if anchor.lower() not in heading_anchors(dest):
                errors.append(
                    f"{display(path)}:{lineno}: broken "
                    f"anchor {raw!r}: no heading #{anchor} in "
                    f"{display(dest)}")

    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in _LINK.finditer(line):
            href = match.group(1)
            if href.startswith(_EXTERNAL):
                continue
            target, _, anchor = href.partition("#")
            check_target(lineno, match.group(0), target, anchor or None)
        for match in _WIKI.finditer(line):
            name, anchor = match.group(1).strip(), match.group(2)
            check_target(lineno, match.group(0), f"{name}.md", anchor)
    return errors


def main() -> int:
    files = sorted((REPO_ROOT / "docs").glob("*.md"))
    files += sorted(p for p in REPO_ROOT.glob("*.md"))
    errors: list[str] = []
    for path in files:
        errors.extend(check_file(path))
    if errors:
        print(f"{len(errors)} broken doc link(s):", file=sys.stderr)
        for error in errors:
            print(f"  {error}", file=sys.stderr)
        return 1
    print(f"doc links ok ({len(files)} files checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
