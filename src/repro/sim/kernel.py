"""Deterministic discrete-event kernel: clock, typed events, event loop.

This is the substrate every workload driver in the repo shares. Four
properties are load-bearing and pinned by ``tests/test_sim_kernel.py``:

* **Stable tie-breaking** — events scheduled for the same simulated
  time dispatch in scheduling (insertion) order, via a monotonic
  sequence counter. No queue-order nondeterminism ever leaks into a
  trace. The only exception is deliberate: *source events* (engine
  step events scheduled by an attached substrate) rank **after**
  external events at the same instant, mirroring the strict
  ``substrate.now < next_event`` comparison of the old polling loop.
* **Determinism** — the kernel holds no RNG and no wall-clock state;
  replaying the same schedule calls produces the same dispatch
  sequence, byte for byte.
* **Cancellation is explicit** — :meth:`EventLoop.cancel` and
  :meth:`EventLoop.reschedule` use lazy deletion: a cancelled event
  never fires, never perturbs the ordering of surviving events, and
  rescheduling re-inserts at a fresh sequence number (so the
  rescheduled event ranks as the *newest* insertion at its new time).
* **Event-driven substrates** — :meth:`EventLoop.attach` registers a
  :class:`Steppable` (e.g. a
  :class:`~repro.serving.engine.ServingEngine` or
  :class:`~repro.serving.cluster.ClusterEngine`) as a *time source*:
  plain :meth:`run` then advances attached sources to each external
  event's timestamp and dispatches the handler at
  ``max(event.time, source.now)`` — the same never-rewind clamping the
  legacy polling mode applies. The stepping itself is carried by
  source events a :class:`~repro.sim.driver.StepDriver` keeps armed
  (wake on admission, sleep when idle), so idle substrates cost zero
  work instead of a ``has_work()`` poll per event.

Pending-set representation
--------------------------

The pending set is a **calendar queue** (bucketed timer wheel) rather
than a single binary heap: events land in fixed-width time buckets
(``dict`` keyed by ``int(time / bucket_width)``), a small heap orders
the active bucket ids, and each bucket is sorted lazily — descending,
so the minimum pops off the tail in O(1) — only when it becomes the
frontier bucket. Events far beyond the frontier (more than
``_FAR_SPAN`` buckets ahead) fall back to a plain heap; every peek/pop
compares the full ``(time, rank, seq)`` key of the near minimum against
the far minimum, so classification never affects dispatch order.
Cancelled events are dropped lazily when they surface, and the whole
structure is compacted (dead entries swept out, surviving order
untouched) once tombstones outnumber live events — so a hedging-heavy
run never drags thousands of dead timers through every comparison.
``tests/test_kernel_queue.py`` pins dispatch-order equivalence against
a reference heapq implementation under random schedule / cancel /
reschedule mixes.

The legacy polling mode — :meth:`EventLoop.run` with an explicit
``substrate=`` argument — is retained for manual drivers and as the
reference semantics the event-driven mode must reproduce byte for byte
(see ``tests/test_cluster_events.py``).
"""

from __future__ import annotations

import heapq
from heapq import heappop as _heappop, heappush as _heappush
import itertools
from typing import Any, Callable, Protocol

__all__ = ["Clock", "Event", "EventLoop", "Steppable"]

EventHandler = Callable[[float, Any], None]

#: Event lifecycle states (kept as plain ints for hot-path compares).
_PENDING = 0
_POPPED = 1
_CANCELLED = 2

#: Buckets further than this beyond the frontier go to the far heap.
_FAR_SPAN = 4096
#: Compaction floor: never compact below this many dead entries.
_COMPACT_MIN_DEAD = 64


class Clock:
    """Monotonic simulated clock (seconds since run start)."""

    __slots__ = ("now",)

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)

    def advance_to(self, t: float) -> None:
        """Move forward to ``t``; moving backwards is a silent no-op."""
        if t > self.now:
            self.now = t

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Clock(now={self.now:.6f})"


class Steppable(Protocol):
    """A co-simulated substrate the event loop can interleave with."""

    now: float

    def has_work(self) -> bool: ...

    def step(self) -> object: ...

    def advance_to(self, t: float) -> None: ...


class Event:
    """One scheduled occurrence.

    ``seq`` is the kernel-assigned insertion index: the pending set
    orders by ``(time, rank, seq)`` where ``rank`` is 0 for external
    events and 1 for source events (``source is not None``), so
    equal-time events pop in scheduling order and substrate steps yield
    to equal-time external events exactly as the legacy polling loop's
    strict ``now < next_event`` comparison did.

    A ``__slots__`` class with ``rank`` precomputed at construction —
    the sort key is never recomputed during queue comparisons — and a
    private lifecycle flag (pending / popped / cancelled) that replaces
    the per-loop pending/tombstone seq sets on the hot path.
    """

    __slots__ = ("time", "seq", "kind", "handler", "payload", "source",
                 "rank", "_status")

    def __init__(self, time: float, seq: int, kind: str,
                 handler: EventHandler, payload: Any = None,
                 source: Any = None) -> None:
        self.time = time
        self.seq = seq
        self.kind = kind
        self.handler = handler
        self.payload = payload
        #: The substrate that scheduled this event (``None`` = external).
        #: Source events skip the attached-source advance/clamp at
        #: dispatch — the source manages its own clocks.
        self.source = source
        self.rank = 0 if source is None else 1
        self._status = _PENDING

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Event(time={self.time}, seq={self.seq}, "
                f"kind={self.kind!r}, payload={self.payload!r})")


class EventLoop:
    """Calendar-queue event loop with stable FIFO tie-breaking.

    The loop can be driven three ways:

    * :meth:`run` — dispatch everything until idle. With substrates
      registered via :meth:`attach` (and their step events kept armed
      by a :class:`~repro.sim.driver.StepDriver`), engine iterations
      are first-class events on this loop.
    * :meth:`run` with ``substrate=`` — the legacy polling mode: step
      the substrate while its clock trails the next event.
    * :meth:`peek_time` / :meth:`pop` / :meth:`dispatch` — manual
      control for callers that own their own outer loop.

    Cancellation (:meth:`cancel` / :meth:`reschedule`) uses lazy
    deletion: tombstoned entries are skipped at ``peek``/``pop`` time
    (and swept wholesale by amortized compaction), so surviving events
    keep their exact ``(time, rank, seq)`` order.

    ``bucket_width`` is the calendar-queue bucket size in simulated
    seconds. It is a pure performance knob: dispatch order is
    independent of it (pinned by ``tests/test_kernel_queue.py``).
    """

    def __init__(self, clock: Clock | None = None,
                 bucket_width: float = 1.0 / 64.0) -> None:
        if bucket_width <= 0:
            raise ValueError(f"bucket_width must be positive, got {bucket_width}")
        self.clock = clock or Clock()
        self._seq = itertools.count()
        #: near-future buckets: bucket id -> [(time, rank, seq, event)]
        self._buckets: dict[int, list[tuple]] = {}
        #: min-heap of active bucket ids (invariant: == set(_buckets))
        self._bucket_ids: list[int] = []
        #: bucket ids appended to since their last sort
        self._dirty: set[int] = set()
        #: heap fallback for events far beyond the frontier
        self._far: list[tuple] = []
        self._inv_width = 1.0 / bucket_width
        #: frontier in bucket coordinates (last pop's ``time/width``)
        self._cursor = 0.0
        self._n_pending = 0
        #: cancelled entries still resident in the structures
        self._n_dead = 0
        self._sources: list[Steppable] = []
        #: per-source fused advance-and-read-clock callables (see attach)
        self._advances: list[Callable[[float], float]] = []
        self.n_scheduled = 0
        self.n_dispatched = 0
        self.n_cancelled = 0
        #: callbacks to run after the in-flight dispatch (see defer)
        self._deferred: list[Callable[[], None]] = []
        self._in_dispatch = False

    # ------------------------------------------------------------------
    def schedule(self, time: float, kind: str, handler: EventHandler,
                 payload: Any = None, source: Any = None) -> Event:
        """Enqueue ``handler(t, payload)`` at simulated ``time``.

        ``time`` may trail the loop clock: a co-simulated substrate's
        observable clock is not monotone (a cluster's frontier is the
        *minimum* over busy replica clocks, which regresses when work
        lands on a lagging replica), so callbacks legitimately schedule
        at timestamps earlier than the last dispatch. Such events keep
        their raw time for queue ordering; at dispatch their handler
        observes ``max(event.time, substrate.now)`` when a substrate is
        attached/interleaved, but the *raw* event time in
        substrate-free mode (only ``clock.now`` itself never rewinds).

        ``source`` marks a substrate-scheduled step event: it ranks
        after equal-time external events and is dispatched without the
        attached-source advance/clamp (see :class:`Event`).
        """
        event = Event(time, next(self._seq), kind, handler, payload, source)
        # _insert, inlined (schedule is a hot call).
        entry = (event.time, event.rank, event.seq, event)
        fb = entry[0] * self._inv_width
        if fb - self._cursor > _FAR_SPAN:
            _heappush(self._far, entry)
        else:
            b = int(fb)
            bucket = self._buckets.get(b)
            if bucket is None:
                self._buckets[b] = [entry]
                _heappush(self._bucket_ids, b)
            else:
                bucket.append(entry)
                self._dirty.add(b)
        self._n_pending += 1
        self.n_scheduled += 1
        return event

    def rearm(self, event: Event, time: float) -> Event:
        """Re-insert a fired event at a new time (driver hot path).

        Equivalent to ``schedule(time, event.kind, event.handler,
        event.payload, event.source)`` — fresh ``seq``, same ordering
        rank — without constructing a new :class:`Event`. Only a
        *fired* (popped, not pending/cancelled) event may be rearmed.
        """
        if event._status != _POPPED:
            raise ValueError("rearm() requires a fired event")
        seq = next(self._seq)
        event.time = time
        event.seq = seq
        event._status = _PENDING
        entry = (time, event.rank, seq, event)
        fb = time * self._inv_width
        if fb - self._cursor > _FAR_SPAN:
            _heappush(self._far, entry)
        else:
            b = int(fb)
            bucket = self._buckets.get(b)
            if bucket is None:
                self._buckets[b] = [entry]
                _heappush(self._bucket_ids, b)
            else:
                bucket.append(entry)
                self._dirty.add(b)
        self._n_pending += 1
        self.n_scheduled += 1
        return event

    def _insert(self, entry: tuple) -> None:
        """Place an entry in its bucket (or the far heap)."""
        fb = entry[0] * self._inv_width
        if fb - self._cursor > _FAR_SPAN:
            _heappush(self._far, entry)
            return
        b = int(fb)
        bucket = self._buckets.get(b)
        if bucket is None:
            self._buckets[b] = [entry]
            _heappush(self._bucket_ids, b)
        else:
            bucket.append(entry)
            self._dirty.add(b)

    def is_pending(self, event: Event) -> bool:
        """Whether ``event`` is scheduled and neither fired nor cancelled.

        Teardown code (hedged-query unwind) uses this to assert that a
        cancelled event really became a tombstone; the drain invariant
        ``n_scheduled == n_dispatched + n_cancelled`` is its aggregate
        counterpart.
        """
        return event._status == _PENDING

    def cancel(self, event: Event) -> bool:
        """Cancel a pending event; it will never fire.

        Returns ``True`` if the event was pending (and is now dead),
        ``False`` if it had already been dispatched or cancelled.
        Cancellation never perturbs the relative order of surviving
        events (lazy deletion — pinned by ``tests/test_sim_kernel.py``);
        once tombstones outnumber live events the structures are
        compacted in one amortized sweep.
        """
        if event._status != _PENDING:
            return False
        event._status = _CANCELLED
        self._n_pending -= 1
        self._n_dead += 1
        self.n_cancelled += 1
        if self._n_dead > _COMPACT_MIN_DEAD and self._n_dead > self._n_pending:
            self._compact()
        return True

    def reschedule(self, event: Event, time: float) -> Event:
        """Move a pending event to a new time.

        Implemented as cancel + fresh schedule, so the moved event
        takes a **new** sequence number: among equal-time events it
        ranks as the newest insertion. Raises ``ValueError`` if the
        event already fired or was cancelled.
        """
        if not self.cancel(event):
            raise ValueError(
                f"cannot reschedule event {event.kind!r} (seq {event.seq}): "
                "already dispatched or cancelled"
            )
        return self.schedule(time, event.kind, event.handler,
                             payload=event.payload, source=event.source)

    def _compact(self) -> None:
        """Sweep dead entries out of every structure in one pass.

        Surviving entries keep their ``(time, rank, seq)`` keys, so the
        dispatch order is untouched (pinned by
        ``tests/test_kernel_queue.py``).
        """
        survivors = [entry
                     for bucket in self._buckets.values()
                     for entry in bucket
                     if entry[3]._status == _PENDING]
        survivors.extend(entry for entry in self._far
                         if entry[3]._status == _PENDING)
        self._buckets.clear()
        self._bucket_ids.clear()
        self._dirty.clear()
        # In-place clear: ``run``'s inlined hot loop holds a local
        # alias to this list, which must survive compaction.
        del self._far[:]
        for entry in survivors:
            self._insert(entry)
        self._n_dead = 0

    # ------------------------------------------------------------------
    def attach(self, source: Steppable) -> None:
        """Register a substrate as a time source for event dispatch.

        Attached sources are advanced to each external event's
        timestamp before its handler runs, and the handler observes
        ``max(event.time, source.now)`` — identical to the legacy
        ``run(substrate=...)`` clamping. Stepping the source is the
        :class:`~repro.sim.driver.StepDriver`'s job (it keeps a step
        event armed while the source has work).
        """
        if source in self._sources:
            raise ValueError(f"source {source!r} is already attached")
        self._sources.append(source)
        # Sources may fuse the advance/clamp pair into one call
        # (``advance_and_observe(t) -> now``) — a cluster otherwise
        # scans its replicas twice per external event.
        adv = getattr(source, "advance_and_observe", None)
        if adv is None:
            def adv(t: float, _s: Steppable = source) -> float:
                _s.advance_to(t)
                return _s.now
        self._advances.append(adv)

    @property
    def sources(self) -> tuple[Steppable, ...]:
        return tuple(self._sources)

    # ------------------------------------------------------------------
    def __bool__(self) -> bool:
        return self._n_pending > 0

    def __len__(self) -> int:
        return self._n_pending

    def queued_entries(self) -> list[tuple]:
        """Every ``(time, rank, seq, event)`` entry still resident in
        the queue structures, live or tombstoned (testing/debugging
        aid — the drain property test asserts residual entries are all
        tombstones)."""
        entries = [entry for bucket in self._buckets.values()
                   for entry in bucket]
        entries.extend(self._far)
        return entries

    def _min_bucket(self) -> list[tuple] | None:
        """The frontier bucket, sorted, dead tail pruned (None = empty)."""
        ids = self._bucket_ids
        buckets = self._buckets
        dirty = self._dirty
        while ids:
            b = ids[0]
            bucket = buckets[b]
            if b in dirty:
                bucket.sort(reverse=True)
                dirty.discard(b)
            while bucket:
                if bucket[-1][3]._status == _PENDING:
                    return bucket
                bucket.pop()
                self._n_dead -= 1
            del buckets[b]
            _heappop(ids)
        return None

    def _min_entry(self) -> tuple[tuple, list[tuple] | None] | None:
        """Locate the next live entry: ``(entry, bucket-or-None)``.

        ``bucket is None`` means the entry is the far-heap top. The
        near minimum and far minimum are compared on their full
        ``(time, rank, seq)`` keys — far classification can never
        reorder a dispatch. Returns ``None`` when no live entry exists.
        """
        near = self._min_bucket()
        far = self._far
        while far and far[0][3]._status != _PENDING:
            _heappop(far)
            self._n_dead -= 1
        if near is None:
            if not far:
                return None
            return far[0], None
        if far and far[0] < near[-1]:
            return far[0], None
        return near[-1], near

    def peek_time(self) -> float:
        """Timestamp of the next live event (``inf`` when empty)."""
        found = self._min_entry()
        return found[0][0] if found is not None else float("inf")

    def pop(self) -> Event:
        """Remove and return the next live event (clock untouched)."""
        found = self._min_entry()
        if found is None:
            raise IndexError("pop() on an empty event loop")
        entry, bucket = found
        if bucket is None:
            _heappop(self._far)
        else:
            bucket.pop()
        event = entry[3]
        event._status = _POPPED
        self._n_pending -= 1
        self._cursor = entry[0] * self._inv_width
        return event

    # ------------------------------------------------------------------
    @property
    def in_dispatch(self) -> bool:
        """Whether a handler is currently running on this loop."""
        return self._in_dispatch

    def defer(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` after the in-flight dispatch completes.

        Outside a dispatch this runs ``fn`` immediately. The
        :class:`~repro.sim.driver.StepDriver` uses this to coalesce
        the wake/re-arm work of N same-instant admissions into one
        post-handler arm (one step event scheduled, not N) — safe
        because the armed event is re-created before the loop selects
        its next event, at the same ``(time, rank)`` it would have had.
        """
        if self._in_dispatch:
            self._deferred.append(fn)
        else:
            fn()

    def dispatch(self, event: Event, at: float | None = None) -> None:
        """Advance the clock and invoke the handler.

        ``at`` overrides the observed time (used when a co-simulated
        substrate overshot the event's timestamp); it must not precede
        the event's own time.
        """
        t = event.time
        if at is not None and at > t:
            t = at
        clock = self.clock
        if t > clock.now:
            clock.now = t
        self.n_dispatched += 1
        if self._in_dispatch:  # nested manual dispatch from a handler
            event.handler(t, event.payload)
            return
        self._in_dispatch = True
        try:
            event.handler(t, event.payload)
        finally:
            self._in_dispatch = False
            if self._deferred:
                self._flush_deferred()

    def _flush_deferred(self) -> None:
        deferred = self._deferred
        while deferred:
            deferred.pop(0)()

    def _dispatch_next(self) -> None:
        """Pop and dispatch one event, honoring attached sources."""
        event = self.pop()
        if event.source is None and self._sources:
            t = event.time
            at = t
            for adv in self._advances:
                now = adv(t)
                if now > at:
                    at = now
            self.dispatch(event, at=at)
        else:
            self.dispatch(event)

    # ------------------------------------------------------------------
    def run(self, substrate: Steppable | None = None,
            max_steps: int = 50_000_000) -> int:
        """Dispatch until the loop (and substrate, if any) is idle.

        Without ``substrate`` this drains the pending set; attached
        sources (see :meth:`attach`) get the advance/clamp treatment
        per external event, and their step events — kept armed by a
        :class:`~repro.sim.driver.StepDriver` — interleave by ordinary
        ``(time, rank, seq)`` order. If a source still has work when
        the queue drains, its wake protocol is broken and a
        ``RuntimeError`` is raised rather than silently stranding work.

        With ``substrate`` the legacy polling contract applies
        (identical to the pre-``repro.sim`` runner loop): while the
        substrate has work and its clock trails the next event, it
        steps; otherwise the next event is popped, the substrate's
        clock is advanced to the event time, and the handler runs at
        ``max(event.time, substrate.now)``.

        Returns the number of dispatches + substrate steps; raises
        ``RuntimeError`` past ``max_steps`` (a diverging simulation).
        """
        steps = 0
        if substrate is None:
            # Substrate-free drain is THE hot loop (every event-driven
            # run lives here), so the pop/advance/dispatch cycle of
            # ``_dispatch_next`` is inlined below — same statements,
            # same order, minus ~7 function calls per event. The
            # structure aliases are safe: ``_insert``/``_compact``
            # mutate these containers in place, never rebind them.
            buckets = self._buckets
            ids = self._bucket_ids
            dirty = self._dirty
            far = self._far
            clock = self.clock
            deferred = self._deferred
            heappop = _heappop
            while self._n_pending:
                # -- locate + remove the min live entry (see pop()) --
                near = None
                while ids:
                    b = ids[0]
                    bucket = buckets[b]
                    if b in dirty:
                        bucket.sort(reverse=True)
                        dirty.discard(b)
                    while bucket:
                        if bucket[-1][3]._status == _PENDING:
                            near = bucket
                            break
                        bucket.pop()
                        self._n_dead -= 1
                    if near is not None:
                        break
                    del buckets[b]
                    heappop(ids)
                while far and far[0][3]._status != _PENDING:
                    heappop(far)
                    self._n_dead -= 1
                if near is None:
                    entry = heappop(far)
                elif far and far[0] < near[-1]:
                    entry = heappop(far)
                else:
                    entry = near.pop()
                event = entry[3]
                event._status = _POPPED
                self._n_pending -= 1
                self._cursor = entry[0] * self._inv_width
                # -- advance sources + dispatch (see _dispatch_next) --
                t = event.time
                if event.source is None and self._sources:
                    for adv in self._advances:
                        now = adv(t)
                        if now > t:
                            t = now
                if t > clock.now:
                    clock.now = t
                self.n_dispatched += 1
                self._in_dispatch = True
                try:
                    event.handler(t, event.payload)
                finally:
                    self._in_dispatch = False
                    if deferred:
                        self._flush_deferred()
                steps += 1
                if steps >= max_steps:
                    raise RuntimeError(
                        f"event loop did not drain within {max_steps} steps"
                    )
            for source in self._sources:
                if source.has_work():
                    raise RuntimeError(
                        f"event loop drained but source {source!r} still "
                        "has work — its wake protocol lost an admission"
                    )
            return steps
        if self._sources:
            raise ValueError(
                "run(substrate=...) cannot be combined with attached "
                "sources; use StepDriver for event-driven stepping"
            )
        while self._n_pending or substrate.has_work():
            next_t = self.peek_time()
            if substrate.has_work() and substrate.now < next_t:
                substrate.step()
                steps = self._bump(steps, max_steps)
                continue
            if self._n_pending:
                event = self.pop()
                substrate.advance_to(event.time)
                self.dispatch(event, at=substrate.now)
                steps = self._bump(steps, max_steps)
                continue
            break  # no events, substrate idle
        return steps

    @staticmethod
    def _bump(steps: int, max_steps: int) -> int:
        steps += 1
        if steps >= max_steps:
            raise RuntimeError(
                f"event loop did not drain within {max_steps} steps"
            )
        return steps
