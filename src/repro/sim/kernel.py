"""Deterministic discrete-event kernel: clock, typed events, event loop.

This is the substrate every workload driver in the repo shares. Four
properties are load-bearing and pinned by ``tests/test_sim_kernel.py``:

* **Stable tie-breaking** — events scheduled for the same simulated
  time dispatch in scheduling (insertion) order, via a monotonic
  sequence counter. No heap-order nondeterminism ever leaks into a
  trace. The only exception is deliberate: *source events* (engine
  step events scheduled by an attached substrate) rank **after**
  external events at the same instant, mirroring the strict
  ``substrate.now < next_event`` comparison of the old polling loop.
* **Determinism** — the kernel holds no RNG and no wall-clock state;
  replaying the same schedule calls produces the same dispatch
  sequence, byte for byte.
* **Cancellation is explicit** — :meth:`EventLoop.cancel` and
  :meth:`EventLoop.reschedule` use lazy heap deletion: a cancelled
  event never fires, never perturbs the ordering of surviving events,
  and rescheduling re-inserts at a fresh sequence number (so the
  rescheduled event ranks as the *newest* insertion at its new time).
* **Event-driven substrates** — :meth:`EventLoop.attach` registers a
  :class:`Steppable` (e.g. a
  :class:`~repro.serving.engine.ServingEngine` or
  :class:`~repro.serving.cluster.ClusterEngine`) as a *time source*:
  plain :meth:`run` then advances attached sources to each external
  event's timestamp and dispatches the handler at
  ``max(event.time, source.now)`` — the same never-rewind clamping the
  legacy polling mode applies. The stepping itself is carried by
  source events a :class:`~repro.sim.driver.StepDriver` keeps armed
  (wake on admission, sleep when idle), so idle substrates cost zero
  work instead of a ``has_work()`` poll per event.

The legacy polling mode — :meth:`EventLoop.run` with an explicit
``substrate=`` argument — is retained for manual drivers and as the
reference semantics the event-driven mode must reproduce byte for byte
(see ``tests/test_cluster_events.py``).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Protocol

__all__ = ["Clock", "Event", "EventLoop", "Steppable"]

EventHandler = Callable[[float, Any], None]


class Clock:
    """Monotonic simulated clock (seconds since run start)."""

    __slots__ = ("now",)

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)

    def advance_to(self, t: float) -> None:
        """Move forward to ``t``; moving backwards is a silent no-op."""
        if t > self.now:
            self.now = t

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Clock(now={self.now:.6f})"


class Steppable(Protocol):
    """A co-simulated substrate the event loop can interleave with."""

    now: float

    def has_work(self) -> bool: ...

    def step(self) -> object: ...

    def advance_to(self, t: float) -> None: ...


@dataclass(frozen=True)
class Event:
    """One scheduled occurrence.

    ``seq`` is the kernel-assigned insertion index: the heap orders by
    ``(time, rank, seq)`` where ``rank`` is 0 for external events and 1
    for source events (``source is not None``), so equal-time events
    pop in scheduling order and substrate steps yield to equal-time
    external events exactly as the legacy polling loop's strict
    ``now < next_event`` comparison did.
    """

    time: float
    seq: int
    kind: str
    handler: EventHandler = field(repr=False)
    payload: Any = None
    #: The substrate that scheduled this event (``None`` = external).
    #: Source events skip the attached-source advance/clamp at dispatch
    #: — the source manages its own clocks.
    source: Any = field(default=None, repr=False)

    @property
    def rank(self) -> int:
        return 0 if self.source is None else 1


class EventLoop:
    """Priority-queue event loop with stable FIFO tie-breaking.

    The loop can be driven three ways:

    * :meth:`run` — dispatch everything until idle. With substrates
      registered via :meth:`attach` (and their step events kept armed
      by a :class:`~repro.sim.driver.StepDriver`), engine iterations
      are first-class events on this loop.
    * :meth:`run` with ``substrate=`` — the legacy polling mode: step
      the substrate while its clock trails the next event.
    * :meth:`peek_time` / :meth:`pop` / :meth:`dispatch` — manual
      control for callers that own their own outer loop.

    Cancellation (:meth:`cancel` / :meth:`reschedule`) uses lazy heap
    deletion: tombstoned entries are skipped at ``peek``/``pop`` time,
    so surviving events keep their exact ``(time, rank, seq)`` order.
    """

    def __init__(self, clock: Clock | None = None) -> None:
        self.clock = clock or Clock()
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = itertools.count()
        #: seqs scheduled but neither dispatched nor cancelled
        self._pending: set[int] = set()
        #: seqs cancelled but not yet pruned from the heap
        self._tombstones: set[int] = set()
        self._sources: list[Steppable] = []
        self.n_scheduled = 0
        self.n_dispatched = 0
        self.n_cancelled = 0

    # ------------------------------------------------------------------
    def schedule(self, time: float, kind: str, handler: EventHandler,
                 payload: Any = None, source: Any = None) -> Event:
        """Enqueue ``handler(t, payload)`` at simulated ``time``.

        ``time`` may trail the loop clock: a co-simulated substrate's
        observable clock is not monotone (a cluster's frontier is the
        *minimum* over busy replica clocks, which regresses when work
        lands on a lagging replica), so callbacks legitimately schedule
        at timestamps earlier than the last dispatch. Such events keep
        their raw time for heap ordering; at dispatch their handler
        observes ``max(event.time, substrate.now)`` when a substrate is
        attached/interleaved, but the *raw* event time in
        substrate-free mode (only ``clock.now`` itself never rewinds).

        ``source`` marks a substrate-scheduled step event: it ranks
        after equal-time external events and is dispatched without the
        attached-source advance/clamp (see :class:`Event`).
        """
        event = Event(time=time, seq=next(self._seq), kind=kind,
                      handler=handler, payload=payload, source=source)
        heapq.heappush(self._heap, (event.time, event.rank, event.seq, event))
        self._pending.add(event.seq)
        self.n_scheduled += 1
        return event

    def is_pending(self, event: Event) -> bool:
        """Whether ``event`` is scheduled and neither fired nor cancelled.

        Teardown code (hedged-query unwind) uses this to assert that a
        cancelled event really became a tombstone; the drain invariant
        ``n_scheduled == n_dispatched + n_cancelled`` is its aggregate
        counterpart.
        """
        return event.seq in self._pending

    def cancel(self, event: Event) -> bool:
        """Cancel a pending event; it will never fire.

        Returns ``True`` if the event was pending (and is now dead),
        ``False`` if it had already been dispatched or cancelled.
        Cancellation never perturbs the relative order of surviving
        events (lazy deletion — pinned by ``tests/test_sim_kernel.py``).
        """
        if event.seq not in self._pending:
            return False
        self._pending.discard(event.seq)
        self._tombstones.add(event.seq)
        self.n_cancelled += 1
        return True

    def reschedule(self, event: Event, time: float) -> Event:
        """Move a pending event to a new time.

        Implemented as cancel + fresh schedule, so the moved event
        takes a **new** sequence number: among equal-time events it
        ranks as the newest insertion. Raises ``ValueError`` if the
        event already fired or was cancelled.
        """
        if not self.cancel(event):
            raise ValueError(
                f"cannot reschedule event {event.kind!r} (seq {event.seq}): "
                "already dispatched or cancelled"
            )
        return self.schedule(time, event.kind, event.handler,
                             payload=event.payload, source=event.source)

    # ------------------------------------------------------------------
    def attach(self, source: Steppable) -> None:
        """Register a substrate as a time source for event dispatch.

        Attached sources are advanced to each external event's
        timestamp before its handler runs, and the handler observes
        ``max(event.time, source.now)`` — identical to the legacy
        ``run(substrate=...)`` clamping. Stepping the source is the
        :class:`~repro.sim.driver.StepDriver`'s job (it keeps a step
        event armed while the source has work).
        """
        if source in self._sources:
            raise ValueError(f"source {source!r} is already attached")
        self._sources.append(source)

    @property
    def sources(self) -> tuple[Steppable, ...]:
        return tuple(self._sources)

    # ------------------------------------------------------------------
    def __bool__(self) -> bool:
        return bool(self._pending)

    def __len__(self) -> int:
        return len(self._pending)

    def _prune(self) -> None:
        """Drop tombstoned entries from the heap top."""
        heap = self._heap
        while heap and heap[0][3].seq in self._tombstones:
            self._tombstones.discard(heapq.heappop(heap)[3].seq)

    def peek_time(self) -> float:
        """Timestamp of the next live event (``inf`` when empty)."""
        self._prune()
        return self._heap[0][0] if self._heap else float("inf")

    def pop(self) -> Event:
        """Remove and return the next live event (clock untouched)."""
        self._prune()
        if not self._heap:
            raise IndexError("pop() on an empty event loop")
        event = heapq.heappop(self._heap)[3]
        self._pending.discard(event.seq)
        return event

    def dispatch(self, event: Event, at: float | None = None) -> None:
        """Advance the clock and invoke the handler.

        ``at`` overrides the observed time (used when a co-simulated
        substrate overshot the event's timestamp); it must not precede
        the event's own time.
        """
        t = event.time if at is None else max(event.time, at)
        self.clock.advance_to(t)
        self.n_dispatched += 1
        event.handler(t, event.payload)

    def _dispatch_next(self) -> None:
        """Pop and dispatch one event, honoring attached sources."""
        event = self.pop()
        if event.source is None and self._sources:
            at = event.time
            for source in self._sources:
                source.advance_to(event.time)
                at = max(at, source.now)
            self.dispatch(event, at=at)
        else:
            self.dispatch(event)

    # ------------------------------------------------------------------
    def run(self, substrate: Steppable | None = None,
            max_steps: int = 50_000_000) -> int:
        """Dispatch until the loop (and substrate, if any) is idle.

        Without ``substrate`` this drains the heap; attached sources
        (see :meth:`attach`) get the advance/clamp treatment per
        external event, and their step events — kept armed by a
        :class:`~repro.sim.driver.StepDriver` — interleave by ordinary
        ``(time, rank, seq)`` order. If a source still has work when
        the heap drains, its wake protocol is broken and a
        ``RuntimeError`` is raised rather than silently stranding work.

        With ``substrate`` the legacy polling contract applies
        (identical to the pre-``repro.sim`` runner loop): while the
        substrate has work and its clock trails the next event, it
        steps; otherwise the next event is popped, the substrate's
        clock is advanced to the event time, and the handler runs at
        ``max(event.time, substrate.now)``.

        Returns the number of dispatches + substrate steps; raises
        ``RuntimeError`` past ``max_steps`` (a diverging simulation).
        """
        steps = 0
        if substrate is None:
            while self._pending:
                self._dispatch_next()
                steps = self._bump(steps, max_steps)
            for source in self._sources:
                if source.has_work():
                    raise RuntimeError(
                        f"event loop drained but source {source!r} still "
                        "has work — its wake protocol lost an admission"
                    )
            return steps
        if self._sources:
            raise ValueError(
                "run(substrate=...) cannot be combined with attached "
                "sources; use StepDriver for event-driven stepping"
            )
        while self._pending or substrate.has_work():
            next_t = self.peek_time()
            if substrate.has_work() and substrate.now < next_t:
                substrate.step()
                steps = self._bump(steps, max_steps)
                continue
            if self._pending:
                event = self.pop()
                substrate.advance_to(event.time)
                self.dispatch(event, at=substrate.now)
                steps = self._bump(steps, max_steps)
                continue
            break  # no events, substrate idle
        return steps

    @staticmethod
    def _bump(steps: int, max_steps: int) -> int:
        steps += 1
        if steps >= max_steps:
            raise RuntimeError(
                f"event loop did not drain within {max_steps} steps"
            )
        return steps
