"""Deterministic discrete-event kernel: clock, typed events, event loop.

This is the substrate every workload driver in the repo shares. Three
properties are load-bearing and pinned by ``tests/test_sim_kernel.py``:

* **Stable tie-breaking** — events scheduled for the same simulated
  time dispatch in scheduling (insertion) order, via a monotonic
  sequence counter. No heap-order nondeterminism ever leaks into a
  trace.
* **Determinism** — the kernel holds no RNG and no wall-clock state;
  replaying the same schedule calls produces the same dispatch
  sequence, byte for byte.
* **Substrate interleaving** — :meth:`EventLoop.run` can co-simulate a
  *steppable substrate* (anything with ``now`` / ``has_work()`` /
  ``step()`` / ``advance_to(t)``, e.g. a
  :class:`~repro.serving.engine.ServingEngine` or
  :class:`~repro.serving.cluster.ClusterEngine`): the substrate steps
  while its clock trails the next event, exactly as a real serving
  stack interleaves GPU iterations with external arrivals. A substrate
  iteration may overshoot an event's timestamp, in which case the
  handler observes the (later) substrate clock — the kernel never
  rewinds time.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Protocol

__all__ = ["Clock", "Event", "EventLoop", "Steppable"]

EventHandler = Callable[[float, Any], None]


class Clock:
    """Monotonic simulated clock (seconds since run start)."""

    __slots__ = ("now",)

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)

    def advance_to(self, t: float) -> None:
        """Move forward to ``t``; moving backwards is a silent no-op."""
        if t > self.now:
            self.now = t

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Clock(now={self.now:.6f})"


class Steppable(Protocol):
    """A co-simulated substrate the event loop can interleave with."""

    now: float

    def has_work(self) -> bool: ...

    def step(self) -> object: ...

    def advance_to(self, t: float) -> None: ...


@dataclass(frozen=True)
class Event:
    """One scheduled occurrence.

    ``seq`` is the kernel-assigned insertion index: the heap orders by
    ``(time, seq)``, so equal-time events pop in scheduling order.
    """

    time: float
    seq: int
    kind: str
    handler: EventHandler = field(repr=False)
    payload: Any = None


class EventLoop:
    """Priority-queue event loop with stable FIFO tie-breaking.

    The loop can be driven two ways:

    * :meth:`run` — dispatch everything (optionally interleaving a
      :class:`Steppable` substrate) until both are idle.
    * :meth:`peek_time` / :meth:`pop` / :meth:`dispatch` — manual
      control for callers that own their own outer loop.

    Handlers may schedule further events; cancellation is intentionally
    absent (traces stay replayable).
    """

    def __init__(self, clock: Clock | None = None) -> None:
        self.clock = clock or Clock()
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self.n_scheduled = 0
        self.n_dispatched = 0

    # ------------------------------------------------------------------
    def schedule(self, time: float, kind: str, handler: EventHandler,
                 payload: Any = None) -> Event:
        """Enqueue ``handler(t, payload)`` at simulated ``time``.

        ``time`` may trail the loop clock: a co-simulated substrate's
        observable clock is not monotone (a cluster's frontier is the
        *minimum* over busy replica clocks, which regresses when work
        lands on a lagging replica), so callbacks legitimately schedule
        at timestamps earlier than the last dispatch. Such events keep
        their raw time for heap ordering; at dispatch their handler
        observes ``max(event.time, substrate.now)`` when a substrate is
        interleaved, but the *raw* event time in substrate-free mode
        (only ``clock.now`` itself never rewinds).
        """
        event = Event(time=time, seq=next(self._seq), kind=kind,
                      handler=handler, payload=payload)
        heapq.heappush(self._heap, (event.time, event.seq, event))
        self.n_scheduled += 1
        return event

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __len__(self) -> int:
        return len(self._heap)

    def peek_time(self) -> float:
        """Timestamp of the next event (``inf`` when empty)."""
        return self._heap[0][0] if self._heap else float("inf")

    def pop(self) -> Event:
        """Remove and return the next event (does not touch the clock)."""
        if not self._heap:
            raise IndexError("pop() on an empty event loop")
        return heapq.heappop(self._heap)[2]

    def dispatch(self, event: Event, at: float | None = None) -> None:
        """Advance the clock and invoke the handler.

        ``at`` overrides the observed time (used when a co-simulated
        substrate overshot the event's timestamp); it must not precede
        the event's own time.
        """
        t = event.time if at is None else max(event.time, at)
        self.clock.advance_to(t)
        self.n_dispatched += 1
        event.handler(t, event.payload)

    # ------------------------------------------------------------------
    def run(self, substrate: Steppable | None = None,
            max_steps: int = 50_000_000) -> int:
        """Dispatch until the loop (and substrate, if any) is idle.

        Interleaving contract (identical to the pre-``repro.sim``
        runner loop): while the substrate has work and its clock trails
        the next event, it steps; otherwise the next event is popped,
        the substrate's clock is advanced to the event time, and the
        handler runs at ``max(event.time, substrate.now)``.

        Returns the number of dispatches + substrate steps; raises
        ``RuntimeError`` past ``max_steps`` (a diverging simulation).
        """
        steps = 0
        if substrate is None:
            while self._heap:
                self.dispatch(self.pop())
                steps = self._bump(steps, max_steps)
            return steps
        while self._heap or substrate.has_work():
            next_t = self.peek_time()
            if substrate.has_work() and substrate.now < next_t:
                substrate.step()
                steps = self._bump(steps, max_steps)
                continue
            if self._heap:
                event = self.pop()
                substrate.advance_to(event.time)
                self.dispatch(event, at=substrate.now)
                steps = self._bump(steps, max_steps)
                continue
            break  # no events, substrate idle
        return steps

    @staticmethod
    def _bump(steps: int, max_steps: int) -> int:
        steps += 1
        if steps >= max_steps:
            raise RuntimeError(
                f"event loop did not drain within {max_steps} steps"
            )
        return steps
