"""Event-driven stepping: run a :class:`~repro.sim.kernel.Steppable`
as first-class events on a shared :class:`~repro.sim.kernel.EventLoop`.

A :class:`StepDriver` replaces the legacy polling interleave
(``EventLoop.run(substrate=...)``) with an *armed step event*: while
the substrate has work, exactly one source event sits on the loop at
the substrate's frontier (``substrate.now``); each firing performs one
:meth:`~repro.sim.kernel.Steppable.step` and re-arms at the new
frontier. When the substrate drains, the driver simply stops
scheduling — an idle substrate costs zero events and zero polling.

Idle-wakeup protocol
--------------------

Admission can change the frontier, so the substrate must tell the
driver about it (engines call :meth:`notify` from their ``submit`` via
the ``wake_hook`` attribute):

* **wake** — the substrate was idle, so no step event existed; the
  driver arms one at the substrate's (just-advanced) clock.
* **frontier regression** — on a cluster, a submission routed to an
  idle *replica* of a busy cluster can pull the frontier (the minimum
  busy-replica clock) backwards. The armed event's timestamp is now
  too late, so the driver moves it to the new frontier via
  :meth:`~repro.sim.kernel.EventLoop.reschedule` — this is the kernel gap (cancel/reschedule)
  that event-driven replicas exposed.
* **no-op** — a submission to an already-busy substrate that leaves
  the frontier unchanged needs nothing; the armed event stands.

Notifications that arrive *during* a step (continuous batching: a
finished request's callback submits the next synthesis stage) are
deferred: the driver re-arms once the step returns, observing the
post-step frontier.

Re-arms are additionally **batched per dispatch**: notifications that
arrive while an event handler is running (a burst handler submitting N
requests, a completion fan-out admitting N same-instant follow-ups) are
coalesced through :meth:`~repro.sim.kernel.EventLoop.defer` into a
single arm/reschedule once the handler returns — one step event
scheduled, not N. The armed event still exists before the loop selects
its next event, at the same ``(time, rank)`` it would have had, so
dispatch order is byte-identical to the eager re-arm (the step event is
the only event its later ``seq`` could tie against).

Lockstep equivalence
--------------------

With homogeneous replicas, the dispatch order produced by this driver
is **byte-identical** to the legacy polling mode: step events rank
after equal-time external events (matching the old strict
``substrate.now < next_event`` comparison), each firing advances the
lagging busy replica (``ClusterEngine.step``'s existing min-clock /
min-index rule), and external events still observe
``max(event.time, substrate.now)`` via ``EventLoop.attach``.
``tests/test_cluster_events.py`` pins this equivalence for bare
engines and multi-replica clusters; ``tests/test_cluster_golden.py``
and the pipeline golden fingerprint continue to pass unmodified.
"""

from __future__ import annotations

from typing import Callable

from repro.sim.kernel import Event, EventLoop, Steppable

__all__ = ["StepDriver"]

#: ``on_step(step_result)`` — observe each substrate iteration.
StepObserver = Callable[[object], None]


class StepDriver:
    """Keeps one step event armed while ``substrate`` has work.

    Construction attaches the substrate to the loop as a time source
    (external events advance/clamp against it) and arms the first step
    event if the substrate already has work. Callers must route
    admission notifications to :meth:`notify` — engines do this
    automatically when wired via ``ServingEngine.attach`` /
    ``ClusterEngine.attach``.
    """

    def __init__(self, loop: EventLoop, substrate: Steppable,
                 kind: str = "engine-step",
                 on_step: StepObserver | None = None) -> None:
        self.loop = loop
        self.substrate = substrate
        self.kind = kind
        self.on_step = on_step
        self._armed: Event | None = None
        self._in_step = False
        self._rearm_deferred = False
        #: idle -> busy transitions (a step event newly armed)
        self.n_wakes = 0
        #: busy -> idle transitions (the driver stopped scheduling)
        self.n_sleeps = 0
        #: steps dispatched through the loop
        self.n_steps = 0
        # Substrates may expose ``frontier()`` — a fused
        # has_work-and-now probe (None when idle) that saves one full
        # replica scan per arm on clusters; fall back to the two-call
        # Steppable protocol otherwise.
        frontier = getattr(substrate, "frontier", None)
        if frontier is None:
            def frontier() -> float | None:
                return substrate.now if substrate.has_work() else None
        self._frontier = frontier
        # Substrates may also expose ``step_and_frontier()`` — one
        # quiet iteration (no Step/ClusterStepInfo built) fused with
        # the post-step frontier probe — which the driver uses
        # whenever no ``on_step`` observer is attached.
        self._step_quiet = getattr(substrate, "step_and_frontier", None)
        loop.attach(substrate)
        self._arm(wake=True)

    # ------------------------------------------------------------------
    @property
    def armed_time(self) -> float:
        """Timestamp of the armed step event (``inf`` when sleeping)."""
        return self._armed.time if self._armed is not None else float("inf")

    def notify(self) -> None:
        """Admission happened: wake or re-arm to the new frontier.

        Safe to call at any time; during a step it defers to the
        post-step re-arm (which observes the final frontier), and
        during any other event handler it coalesces with every other
        notification of that handler into one post-dispatch arm.
        """
        if self._in_step or self._rearm_deferred:
            return
        if self.loop.in_dispatch:
            self._rearm_deferred = True
            self.loop.defer(self._deferred_arm)
        else:
            self._arm(wake=True)

    def _deferred_arm(self) -> None:
        self._rearm_deferred = False
        self._arm(wake=True)

    def _arm(self, wake: bool, frontier: float | None = None) -> None:
        if frontier is None:
            frontier = self._frontier()
            if frontier is None:
                return
        if self._armed is None:
            if wake:
                self.n_wakes += 1
            self._armed = self.loop.schedule(
                frontier, self.kind, self._on_step, source=self.substrate
            )
        elif frontier < self._armed.time:
            # A submission to an idle replica regressed the cluster
            # frontier below the armed event; pull the event back so
            # the lagging replica steps before any external event in
            # between (exactly the legacy polling order).
            self._armed = self.loop.reschedule(self._armed, frontier)

    def _on_step(self, t: float, _payload: object) -> None:
        fired = self._armed
        self._armed = None
        if not self.substrate.has_work():  # pragma: no cover - defensive
            return
        observer = self.on_step
        if observer is None and self._step_quiet is not None:
            self._in_step = True
            try:
                frontier = self._step_quiet()
            finally:
                self._in_step = False
            self.n_steps += 1
        else:
            self._in_step = True
            try:
                result = self.substrate.step()
            finally:
                self._in_step = False
            self.n_steps += 1
            if observer is not None:
                observer(result)
            frontier = self._frontier()
        if frontier is not None:
            # _arm inlined: the event popped above cleared self._armed,
            # and any notify() during the step was a no-op, so this is
            # always the plain (non-wake) schedule branch — which reuses
            # the just-fired event instead of allocating a new one.
            self._armed = self.loop.rearm(fired, frontier)
        else:
            self.n_sleeps += 1
