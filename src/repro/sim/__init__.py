"""``repro.sim``: the deterministic discrete-event simulation kernel.

Extracted from the experiment runner so every workload driver (the
query pipeline, the cluster harness, future async/sharded engines)
shares one clock, one event-ordering rule, and one resource-contention
model. See ``docs/ARCHITECTURE.md``.
"""

from repro.sim.driver import StepDriver
from repro.sim.kernel import Clock, Event, EventLoop, Steppable
from repro.sim.resource import Lease, Resource, ResourceStats

__all__ = [
    "Clock",
    "Event",
    "EventLoop",
    "Lease",
    "Resource",
    "ResourceStats",
    "StepDriver",
    "Steppable",
]
