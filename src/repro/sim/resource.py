"""Finite-concurrency resources with FIFO queueing and stats.

A :class:`Resource` models anything a query must hold for a service
interval before proceeding — a rate-limited profiler API, a vector
store's search executor, a CPU pool. ``concurrency=None`` means
unbounded: every request is granted the instant it arrives and the
completion event lands exactly where an uncontended latency constant
would, which is how the query pipeline keeps pre-refactor golden
traces byte-identical at default settings.

With finite concurrency, excess requests wait in arrival (FIFO) order;
per-request queue delay and per-resource utilization/backlog counters
are accumulated in :class:`ResourceStats` — the observable that makes
profiler overhead (paper Fig 18) load-dependent.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable

from repro.sim.kernel import EventLoop
from repro.util.validation import check_positive

__all__ = ["Resource", "ResourceStats"]

#: ``callback(finish_time, queue_delay_seconds)``
ResourceCallback = Callable[[float, float], None]


@dataclass
class ResourceStats:
    """Cumulative counters for one resource over one run."""

    name: str
    concurrency: float  # math.inf when unbounded
    n_requests: int = 0
    n_queued: int = 0  # requests that could not start immediately
    busy_seconds: float = 0.0  # sum of service (hold) times
    total_queue_delay: float = 0.0
    max_queue_delay: float = 0.0
    peak_in_service: int = 0
    peak_queue_len: int = 0

    @property
    def mean_queue_delay(self) -> float:
        if self.n_requests == 0:
            return 0.0
        return self.total_queue_delay / self.n_requests

    @property
    def queued_fraction(self) -> float:
        if self.n_requests == 0:
            return 0.0
        return self.n_queued / self.n_requests

    def utilization(self, makespan: float) -> float:
        """Mean fraction of capacity busy over ``makespan`` seconds.

        0.0 for unbounded resources (capacity is not a meaningful
        denominator) and for empty runs.
        """
        if makespan <= 0 or self.concurrency == float("inf"):
            return 0.0
        return self.busy_seconds / (self.concurrency * makespan)


class Resource:
    """A pool of ``concurrency`` identical servers with a FIFO queue.

    Usage: ``resource.request(t, hold_seconds, callback)`` — the
    callback fires (via the event loop, so global event ordering stays
    deterministic) at ``grant_time + hold_seconds`` with the delay the
    request spent queued. Grants are strictly FIFO; a freed slot goes
    to the longest-waiting request *before* the finishing request's
    callback runs, like a semaphore released on the way out.
    """

    def __init__(self, name: str, loop: EventLoop,
                 concurrency: int | None = None) -> None:
        if concurrency is not None:
            check_positive("concurrency", concurrency)
        self.name = name
        self.loop = loop
        self.concurrency = float("inf") if concurrency is None else int(concurrency)
        self.stats = ResourceStats(name=name, concurrency=float(self.concurrency))
        self.in_service = 0
        #: queued (request_time, hold_seconds, callback) in arrival order
        self._queue: deque[tuple[float, float, ResourceCallback]] = deque()

    # ------------------------------------------------------------------
    @property
    def queue_len(self) -> int:
        return len(self._queue)

    def request(self, t: float, hold_seconds: float,
                callback: ResourceCallback) -> None:
        """Ask for one slot at time ``t`` for ``hold_seconds``."""
        if hold_seconds < 0:
            raise ValueError(f"negative hold_seconds: {hold_seconds}")
        self.stats.n_requests += 1
        if self.in_service < self.concurrency:
            self._grant(t, t, hold_seconds, callback)
            return
        self.stats.n_queued += 1
        self._queue.append((t, hold_seconds, callback))
        self.stats.peak_queue_len = max(self.stats.peak_queue_len,
                                        len(self._queue))

    # ------------------------------------------------------------------
    def _grant(self, requested_t: float, start_t: float,
               hold_seconds: float, callback: ResourceCallback) -> None:
        self.in_service += 1
        self.stats.peak_in_service = max(self.stats.peak_in_service,
                                         self.in_service)
        self.stats.busy_seconds += hold_seconds
        delay = start_t - requested_t
        self.stats.total_queue_delay += delay
        self.stats.max_queue_delay = max(self.stats.max_queue_delay, delay)
        self.loop.schedule(
            start_t + hold_seconds,
            kind=f"{self.name}:done",
            handler=self._on_done,
            payload=(callback, delay),
        )

    def _on_done(self, t: float, payload: Any) -> None:
        callback, delay = payload
        self.in_service -= 1
        if self._queue and self.in_service < self.concurrency:
            req_t, hold, queued_cb = self._queue.popleft()
            self._grant(req_t, t, hold, queued_cb)
        callback(t, delay)
