"""Finite-concurrency resources with FIFO queueing, stats, and
cancellable leases.

A :class:`Resource` models anything a query must hold for a service
interval before proceeding — a rate-limited profiler API, a vector
store's search executor, a CPU pool. ``concurrency=None`` means
unbounded: every request is granted the instant it arrives and the
completion event lands exactly where an uncontended latency constant
would, which is how the query pipeline keeps pre-refactor golden
traces byte-identical at default settings.

With finite concurrency, excess requests wait in arrival (FIFO) order;
per-request queue delay and per-resource utilization/backlog counters
are accumulated in :class:`ResourceStats` — the observable that makes
profiler overhead (paper Fig 18) load-dependent.

Every :meth:`Resource.request` returns a :class:`Lease` — the handle a
speculative scheduler uses to tear down the losing side of a hedged
query (see :mod:`repro.serving.speculation`). Cancelling a lease that
is still **queued** removes it before it ever starts; cancelling one
that is **held** tombstones its completion event on the kernel
(:meth:`~repro.sim.kernel.EventLoop.cancel`), releases the slot at the
cancellation instant, reclaims the unused tail of its ``busy_seconds``
charge, and hands the freed slot to the longest-waiting queued request
— so a finite pool never strands capacity behind a dead query (pinned
by ``tests/test_speculation_properties.py``).

``coalesce=True`` opt-in (the profiler uses it): whenever a slot
frees with requests waiting, the **entire queue dispatches as one
merged grant** — a single amortized call holding one slot for the
*max* member hold, after which every member's callback fires (FIFO) at
the shared completion. Requests granted immediately on arrival are
untouched, so an uncontended coalescing resource is indistinguishable
from a plain one — default (unbounded) golden schedules hold.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.sim.kernel import EventLoop
from repro.util.validation import check_positive

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Event

__all__ = ["Lease", "Resource", "ResourceStats"]

#: ``callback(finish_time, queue_delay_seconds)``
ResourceCallback = Callable[[float, float], None]


@dataclass
class ResourceStats:
    """Cumulative counters for one resource over one run.

    Snapshot object: the hot path (:meth:`Resource.request` /
    ``_grant`` / ``_on_done``) accumulates raw counters on plain
    ``Resource`` attributes; :attr:`Resource.stats` materializes this
    dataclass on access and the derived figures (mean delay, queued
    fraction, utilization) are computed only at report time."""

    name: str
    concurrency: float  # math.inf when unbounded
    n_requests: int = 0
    n_queued: int = 0  # requests that could not start immediately
    n_cancelled: int = 0  # leases cancelled before completing
    busy_seconds: float = 0.0  # sum of service (hold) times actually used
    total_queue_delay: float = 0.0
    max_queue_delay: float = 0.0
    peak_in_service: int = 0
    peak_queue_len: int = 0

    @property
    def mean_queue_delay(self) -> float:
        if self.n_requests == 0:
            return 0.0
        return self.total_queue_delay / self.n_requests

    @property
    def queued_fraction(self) -> float:
        if self.n_requests == 0:
            return 0.0
        return self.n_queued / self.n_requests

    def utilization(self, makespan: float) -> float:
        """Mean fraction of capacity busy over ``makespan`` seconds.

        0.0 for unbounded resources (capacity is not a meaningful
        denominator) and for empty runs.
        """
        if makespan <= 0 or self.concurrency == float("inf"):
            return 0.0
        return self.busy_seconds / (self.concurrency * makespan)


class Lease:
    """A claim on one resource slot: queued, then held, then released.

    States: ``QUEUED`` (waiting for a slot), ``HELD`` (slot granted,
    completion event scheduled), ``DONE`` (completion fired), and
    ``CANCELLED``. Only ``QUEUED``/``HELD`` leases react to
    :meth:`cancel`; cancelling a finished or already-cancelled lease is
    a ``False``-returning no-op, so teardown code may cancel every
    lease a query ever took without tracking which ones completed.
    """

    QUEUED = "queued"
    HELD = "held"
    DONE = "done"
    CANCELLED = "cancelled"

    __slots__ = ("resource", "state", "request_time", "hold_seconds",
                 "callback", "grant_time", "event", "batched")

    def __init__(self, resource: "Resource", request_time: float,
                 hold_seconds: float, callback: ResourceCallback) -> None:
        self.resource = resource
        self.state = Lease.QUEUED
        self.request_time = request_time
        self.hold_seconds = hold_seconds
        self.callback = callback
        self.grant_time: float | None = None
        #: the scheduled ``<name>:done`` completion event while HELD
        self.event: "Event | None" = None
        #: True while HELD as a member of a coalesced (merged) grant.
        self.batched = False

    @property
    def end_time(self) -> float:
        """Scheduled completion time (``inf`` while still queued)."""
        if self.grant_time is None:
            return float("inf")
        return self.grant_time + self.hold_seconds

    def cancel(self, t: float) -> bool:
        """Abort this lease at simulated time ``t`` (see Resource)."""
        return self.resource.cancel(self, t)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Lease({self.resource.name!r}, {self.state}, "
                f"req_t={self.request_time:.6f})")


class Resource:
    """A pool of ``concurrency`` identical servers with a FIFO queue.

    Usage: ``lease = resource.request(t, hold_seconds, callback)`` —
    the callback fires (via the event loop, so global event ordering
    stays deterministic) at ``grant_time + hold_seconds`` with the
    delay the request spent queued. Grants are strictly FIFO; a freed
    slot goes to the longest-waiting request *before* the finishing
    request's callback runs, like a semaphore released on the way out.
    The returned :class:`Lease` supports cancellation (hedged-query
    teardown); callers that never cancel may ignore it.
    """

    def __init__(self, name: str, loop: EventLoop,
                 concurrency: int | None = None,
                 coalesce: bool = False) -> None:
        if concurrency is not None:
            check_positive("concurrency", concurrency)
        self.name = name
        self.loop = loop
        self.concurrency = float("inf") if concurrency is None else int(concurrency)
        #: Merge the whole wait queue into one amortized grant whenever
        #: a slot frees (see the module docstring). Never engages while
        #: the resource is uncontended.
        self.coalesce = bool(coalesce)
        #: Optional observer for coalescing resources: called with the
        #: member leases of every merged grant at dispatch time — the
        #: pipeline uses it to charge one ledger entry per batched
        #: profiler call instead of one per query.
        self.on_batch: Callable[[list["Lease"]], None] | None = None
        self.in_service = 0
        #: queued leases in arrival order
        self._queue: deque[Lease] = deque()
        # Raw stats counters (see ResourceStats: the dataclass is built
        # lazily by the ``stats`` property at report time).
        self._n_requests = 0
        self._n_queued = 0
        self._n_cancelled = 0
        self._busy_seconds = 0.0
        self._total_queue_delay = 0.0
        self._max_queue_delay = 0.0
        self._peak_in_service = 0
        self._peak_queue_len = 0

    # ------------------------------------------------------------------
    @property
    def stats(self) -> ResourceStats:
        """Cumulative counters as a snapshot (derived stats lazy)."""
        return ResourceStats(
            name=self.name,
            concurrency=float(self.concurrency),
            n_requests=self._n_requests,
            n_queued=self._n_queued,
            n_cancelled=self._n_cancelled,
            busy_seconds=self._busy_seconds,
            total_queue_delay=self._total_queue_delay,
            max_queue_delay=self._max_queue_delay,
            peak_in_service=self._peak_in_service,
            peak_queue_len=self._peak_queue_len,
        )

    @property
    def queue_len(self) -> int:
        return len(self._queue)

    def request(self, t: float, hold_seconds: float,
                callback: ResourceCallback) -> Lease:
        """Ask for one slot at time ``t`` for ``hold_seconds``."""
        if hold_seconds < 0:
            raise ValueError(f"negative hold_seconds: {hold_seconds}")
        self._n_requests += 1
        lease = Lease(self, t, hold_seconds, callback)
        if self.in_service < self.concurrency:
            self._grant(lease, t)
            return lease
        self._n_queued += 1
        self._queue.append(lease)
        if len(self._queue) > self._peak_queue_len:
            self._peak_queue_len = len(self._queue)
        return lease

    def cancel(self, lease: Lease, t: float) -> bool:
        """Abort a lease at simulated time ``t``.

        * ``QUEUED`` — removed from the wait queue; it never starts.
        * ``HELD`` — its completion event is tombstoned on the kernel,
          the unused remainder of its hold (``end_time - t``) is
          reclaimed from ``busy_seconds``, and the freed slot is
          granted to the longest-waiting queued lease at ``t``.
        * ``DONE`` / ``CANCELLED`` — no-op, returns ``False``.

        ``t`` must not precede the lease's grant time (a cancellation
        cannot happen before the work it aborts started).
        """
        if lease.resource is not self:
            raise ValueError(
                f"lease belongs to {lease.resource.name!r}, "
                f"not {self.name!r}"
            )
        if lease.state == Lease.QUEUED:
            self._queue.remove(lease)
            lease.state = Lease.CANCELLED
            self._n_cancelled += 1
            return True
        if lease.state != Lease.HELD:
            return False
        if t < lease.grant_time:
            raise ValueError(
                f"cancel at t={t} precedes lease grant at {lease.grant_time}"
            )
        if lease.batched:
            # A member of an in-flight merged call cannot be unsent:
            # the shared call keeps its slot and its (amortized) cost;
            # only this member's callback is dropped at completion.
            lease.event = None
            lease.state = Lease.CANCELLED
            self._n_cancelled += 1
            return True
        self.loop.cancel(lease.event)
        lease.event = None
        lease.state = Lease.CANCELLED
        self._n_cancelled += 1
        # Reclaim the hold time the cancelled lease never used.
        self._busy_seconds -= max(0.0, lease.end_time - t)
        self.in_service -= 1
        self._drain(t)
        return True

    # ------------------------------------------------------------------
    def _drain(self, t: float) -> None:
        """Hand a freed slot to the queue: the longest-waiting request
        (plain), or the whole queue as one merged grant (coalescing)."""
        if not self._queue or self.in_service >= self.concurrency:
            return
        if self.coalesce:
            self._grant_batch(t)
        else:
            self._grant(self._queue.popleft(), t)

    def _grant(self, lease: Lease, start_t: float) -> None:
        lease.state = Lease.HELD
        lease.grant_time = start_t
        self.in_service += 1
        if self.in_service > self._peak_in_service:
            self._peak_in_service = self.in_service
        self._busy_seconds += lease.hold_seconds
        delay = start_t - lease.request_time
        self._total_queue_delay += delay
        if delay > self._max_queue_delay:
            self._max_queue_delay = delay
        lease.event = self.loop.schedule(
            start_t + lease.hold_seconds,
            kind=f"{self.name}:done",
            handler=self._on_done,
            payload=(lease, delay),
        )

    def _grant_batch(self, start_t: float) -> None:
        """Dispatch the entire wait queue as one amortized call.

        The merged call occupies a single slot for the *max* member
        hold and charges ``busy_seconds`` once — the amortization a
        batched API endpoint provides. Member callbacks all fire at the
        shared completion, in FIFO order, each with its own queue
        delay.
        """
        batch = list(self._queue)
        self._queue.clear()
        hold = 0.0
        for lease in batch:
            lease.state = Lease.HELD
            lease.batched = True
            lease.grant_time = start_t
            delay = start_t - lease.request_time
            self._total_queue_delay += delay
            if delay > self._max_queue_delay:
                self._max_queue_delay = delay
            if lease.hold_seconds > hold:
                hold = lease.hold_seconds
        self.in_service += 1
        if self.in_service > self._peak_in_service:
            self._peak_in_service = self.in_service
        self._busy_seconds += hold
        event = self.loop.schedule(
            start_t + hold,
            kind=f"{self.name}:done",
            handler=self._on_batch_done,
            payload=batch,
        )
        for lease in batch:
            lease.event = event
        if self.on_batch is not None:
            self.on_batch(batch)

    def _on_done(self, t: float, payload) -> None:
        lease, delay = payload
        lease.state = Lease.DONE
        lease.event = None
        self.in_service -= 1
        self._drain(t)
        lease.callback(t, delay)

    def _on_batch_done(self, t: float, batch: list[Lease]) -> None:
        self.in_service -= 1
        self._drain(t)
        for lease in batch:
            if lease.state != Lease.HELD:
                continue  # cancelled member of the merged call
            lease.state = Lease.DONE
            lease.event = None
            lease.callback(t, lease.grant_time - lease.request_time)
