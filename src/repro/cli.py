"""Command-line interface: serve workloads and regenerate experiments.

Usage::

    python -m repro run --dataset finsec --policy metis --rate 1.4
    python -m repro run --dataset qmsum --policy vllm --config stuff/8
    python -m repro run --dataset finsec --policy metis --replicas 4 \\
        --router power-of-two
    python -m repro run --dataset finsec --policy metis --replicas 2 \\
        --replica-speeds 1.0,0.5 --router least-outstanding
    python -m repro run --dataset finsec --policy metis \\
        --workload diurnal --autoscaler forecast --scale-max 3 \\
        --slo-seconds 6
    python -m repro experiment fig10 --fast
    python -m repro datasets

Policies: ``metis``, ``adaptive-rag``, ``median``, ``vllm`` and
``parrot`` (the last two take ``--config method/num_chunks[/ilen]``).
"""

from __future__ import annotations

import argparse
import importlib
import sys

from repro.baselines import FixedConfigPolicy, ParrotPolicy
from repro.caching import EVICTION_NAMES, RESULT_CACHE_MODES
from repro.config.knobs import RAGConfig, SynthesisMethod
from repro.data import DATASET_NAMES, build_dataset
from repro.evaluation.reports import (
    autoscale_rows,
    autoscale_summary,
    cache_rows,
    format_table,
    per_replica_rows,
    quality_rows,
    resource_rows,
    speculation_rows,
)
from repro.retrieval import INDEX_NAMES, RERANKER_NAMES
from repro.serving.cluster import ROUTER_NAMES
from repro.serving.speculation import SPECULATION_NAMES
from repro.workload import AUTOSCALER_NAMES, WORKLOAD_NAMES

__all__ = ["main", "parse_config_label", "parse_replica_speeds",
           "parse_shard_concurrency", "build_policy"]

_EXPERIMENTS = (
    "table1", "fig4_knobs", "fig5_per_query", "fig9_confidence",
    "fig10_delay", "fig11_throughput", "fig11_replicas", "fig11_hetero",
    "fig12_breakdown", "fig13_cost",
    "fig14_feedback", "fig15_larger_llm", "fig16_incremental",
    "fig17_profiler_llm", "fig18_overhead", "fig18_saturation",
    "fig19_lowload", "fig_retrieval_scaling", "fig_speculation",
    "fig_autoscale", "fig_cache", "fig_quality",
)


def parse_replica_speeds(label: str) -> list[float]:
    """Parse ``--replica-speeds`` (comma-separated multipliers).

    >>> parse_replica_speeds("1.0,0.5")
    [1.0, 0.5]
    """
    try:
        return [float(part) for part in label.split(",")]
    except ValueError:
        raise ValueError(
            f"replica-speeds must be comma-separated numbers "
            f"(e.g. 1.0,0.5), got {label!r}"
        ) from None


def parse_shard_concurrency(label: str) -> list[int]:
    """Parse ``--shard-concurrency`` (comma-separated executor counts).

    >>> parse_shard_concurrency("2,2")
    [2, 2]
    >>> parse_shard_concurrency("4")
    [4]
    """
    try:
        return [int(part) for part in label.split(",")]
    except ValueError:
        raise ValueError(
            f"shard-concurrency must be comma-separated integers "
            f"(e.g. 2,2), got {label!r}"
        ) from None


def parse_config_label(label: str) -> RAGConfig:
    """Parse ``method/num_chunks[/ilen]`` into a :class:`RAGConfig`.

    >>> parse_config_label("map_reduce/8/100")
    RAGConfig(map_reduce, chunks=8, ilen=100)
    """
    parts = label.split("/")
    if len(parts) not in (2, 3):
        raise ValueError(
            f"config must be method/num_chunks[/ilen], got {label!r}"
        )
    try:
        method = SynthesisMethod(parts[0])
    except ValueError:
        known = ", ".join(m.value for m in SynthesisMethod)
        raise ValueError(
            f"unknown synthesis method {parts[0]!r}; known: {known}"
        ) from None
    num_chunks = int(parts[1])
    ilen = int(parts[2]) if len(parts) == 3 else 0
    return RAGConfig(method, num_chunks, ilen)


def build_policy(name: str, bundle, config_label: str | None, seed: int,
                 quality_slo: str | None = None):
    """Construct a policy by CLI name.

    ``quality_slo`` only steers ``metis`` (its joint scheduler flips
    to cheapest-in-range selection); fixed-config policies have no
    selection to steer, so it is measurement-only for them.
    """
    from repro.experiments.common import (
        make_adaptive_rag,
        make_median,
        make_metis,
    )

    if name == "metis":
        return make_metis(bundle, seed=seed, quality_slo=quality_slo)
    if name == "adaptive-rag":
        return make_adaptive_rag(bundle, seed=seed)
    if name == "median":
        return make_median(bundle, seed=seed)
    if name in ("vllm", "parrot"):
        if not config_label:
            raise ValueError(f"policy {name!r} requires --config")
        config = parse_config_label(config_label)
        cls = ParrotPolicy if name == "parrot" else FixedConfigPolicy
        return cls(config)
    raise ValueError(f"unknown policy {name!r}")


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments.common import run_policy

    bundle = build_dataset(args.dataset, seed=args.seed,
                           n_queries=args.queries)
    policy = build_policy(args.policy, bundle, args.config, args.seed,
                          quality_slo=args.quality_slo)
    speeds = (parse_replica_speeds(args.replica_speeds)
              if args.replica_speeds else None)
    shard_concurrency = None
    if args.shard_concurrency is not None:
        parsed = parse_shard_concurrency(args.shard_concurrency)
        # A single value broadcasts to every shard; a list must match.
        shard_concurrency = parsed[0] if len(parsed) == 1 else parsed
    result = run_policy(
        bundle, policy,
        rate_qps=args.rate, seed=args.seed,
        sequential=args.sequential,
        n_replicas=args.replicas, router=args.router,
        profiler_concurrency=args.profiler_concurrency,
        retrieval_concurrency=args.retrieval_concurrency,
        closed_loop_clients=args.closed_loop_clients,
        replica_speeds=speeds,
        retrieval_shards=args.retrieval_shards,
        shard_concurrency=shard_concurrency,
        reranker=args.reranker,
        index=args.index,
        slo_seconds=args.slo_seconds,
        speculation=args.speculation,
        hedge_delay=args.hedge_delay,
        workload=args.workload,
        autoscaler=args.autoscaler,
        scale_min=args.scale_min,
        scale_max=args.scale_max,
        autoscale_interval=args.autoscale_interval,
        provision_delay=args.provision_delay,
        result_cache=args.result_cache,
        retrieval_cache=args.retrieval_cache,
        cache_capacity=args.cache_capacity,
        cache_eviction=args.cache_eviction,
        semantic_threshold=args.semantic_threshold,
        cache_ttl=args.cache_ttl,
        quality_metrics=args.quality_metrics,
        quality_slo=args.quality_slo,
    )
    rows = [dict(metric=k, value=v) for k, v in result.summary().items()]
    title = f"{policy.name} on {args.dataset}"
    if args.replicas > 1:
        title += f" ({args.replicas} replicas, {args.router} router)"
    if speeds is not None:
        title += f" [speeds {','.join(f'{s:g}' for s in speeds)}]"
    if args.retrieval_shards > 1:
        title += f" [{args.retrieval_shards}-shard retrieval]"
    if args.reranker is not None:
        title += f" [+{args.reranker} reranker]"
    if args.speculation != "none":
        title += f" [{args.speculation} speculation]"
    if args.workload is not None:
        title += f" [{args.workload} workload]"
    if args.autoscaler != "none":
        title += f" [{args.autoscaler} autoscaler]"
    cache_on = (args.result_cache not in (None, "off")
                or args.retrieval_cache)
    if cache_on:
        tiers = []
        if args.result_cache not in (None, "off"):
            tiers.append(f"{args.result_cache} result")
        if args.retrieval_cache:
            tiers.append("retrieval")
        title += f" [{'+'.join(tiers)} cache]"
    quality_on = args.quality_metrics or args.quality_slo is not None
    if args.quality_slo is not None:
        title += f" [SLO {args.quality_slo}]"
    elif quality_on:
        title += " [quality metrics]"
    print(format_table(rows, title=title))
    if quality_on:
        print()
        print(format_table(quality_rows(result),
                           title="Quality metrics (docs/EVALUATION.md)"))
    if args.quality_slo is not None:
        from repro.evaluation.slo import evaluate_quality_slo

        report = evaluate_quality_slo(result, args.quality_slo)
        print()
        print(format_table([report.as_row()], title="Quality SLO"))
    if cache_on:
        print()
        print(format_table(cache_rows(result), title="Cache tiers"))
    if args.replicas > 1 or args.autoscaler != "none":
        print()
        print(format_table(per_replica_rows(result),
                           title="Per-replica serving stats"))
    if args.autoscaler != "none":
        print()
        print(format_table([autoscale_summary(result)],
                           title="Elastic capacity"))
        if result.scaling_events:
            print()
            print(format_table(autoscale_rows(result),
                               title="Scaling events"))
    if args.speculation != "none" or args.slo_seconds is not None:
        print()
        print(format_table(speculation_rows(result),
                           title="Speculative scheduling"))
    if (args.profiler_concurrency is not None
            or args.retrieval_concurrency is not None
            or args.retrieval_shards > 1
            or shard_concurrency is not None
            or args.reranker is not None):
        print()
        print(format_table(resource_rows(result),
                           title="Pipeline resource contention"))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    module = importlib.import_module(f"repro.experiments.{args.name}")
    report = module.run(fast=args.fast, seed=args.seed)
    print(report.format())
    return 0


def _cmd_datasets(_args: argparse.Namespace) -> int:
    rows = []
    for name in DATASET_NAMES:
        bundle = build_dataset(name, n_queries=20)
        row = bundle.table1_row()
        rows.append(dict(
            dataset=name,
            chunks=len(bundle.store),
            chunk_tokens=bundle.chunk_tokens,
            input_tokens=f"{row['input_p10']:.0f}-{row['input_p90']:.0f}",
            metadata=bundle.metadata[:48] + "...",
        ))
    print(format_table(rows, title="Available datasets"))
    return 0


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="METIS reproduction: serve RAG workloads and "
                    "regenerate the paper's experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="serve one workload with one policy")
    run.add_argument("--dataset", choices=DATASET_NAMES, required=True)
    run.add_argument("--policy", required=True,
                     choices=("metis", "adaptive-rag", "median",
                              "vllm", "parrot"))
    run.add_argument("--config", help="method/num_chunks[/ilen] "
                                      "(for vllm/parrot)")
    run.add_argument("--rate", type=float, default=None,
                     help="Poisson arrival rate in qps "
                          "(default: dataset-calibrated)")
    run.add_argument("--queries", type=int, default=100)
    run.add_argument("--sequential", action="store_true",
                     help="closed-loop workload (Fig 19 mode)")
    run.add_argument("--closed-loop-clients", type=int, default=1,
                     help="outstanding queries in closed-loop mode "
                          "(with --sequential; default 1)")
    run.add_argument("--profiler-concurrency", type=int, default=None,
                     help="max in-flight profiler calls (models API "
                          "rate limits; default unbounded)")
    run.add_argument("--retrieval-concurrency", type=int, default=None,
                     help="max in-flight vector-store searches "
                          "(unsharded store only; default unbounded)")
    run.add_argument("--retrieval-shards", type=int, default=1,
                     help="partition the corpus across K index shards "
                          "with scatter-gather search (default 1)")
    run.add_argument("--shard-concurrency", default=None,
                     help="per-shard search executors: one integer "
                          "(broadcast) or a comma-separated list whose "
                          "length must equal --retrieval-shards "
                          "(default unbounded)")
    run.add_argument("--reranker", choices=RERANKER_NAMES, default=None,
                     help="re-score an over-fetched candidate pool "
                          "before synthesis (default off)")
    run.add_argument("--index", choices=INDEX_NAMES, default="flat",
                     help="per-shard vector index: flat (exact L2) or "
                          "ivf (inverted-file approximation)")
    run.add_argument("--replicas", type=int, default=1,
                     help="number of serving-engine replicas (default 1)")
    run.add_argument("--router", choices=ROUTER_NAMES,
                     default="least-kv-load",
                     help="cluster load-balancing policy "
                          "(with --replicas > 1)")
    run.add_argument("--replica-speeds", default=None,
                     help="comma-separated per-replica speed "
                          "multipliers, e.g. 1.0,0.5 (length must "
                          "equal --replicas; default: homogeneous)")
    run.add_argument("--slo-seconds", type=float, default=None,
                     help="per-query SLO: each query's deadline is "
                          "arrival + SLO (reported as attainment; "
                          "required by deadline-risk speculation)")
    run.add_argument("--speculation", choices=SPECULATION_NAMES,
                     default="none",
                     help="speculative hedging policy: duplicate "
                          "at-risk queries onto a second replica and "
                          "cancel the loser (default none)")
    run.add_argument("--hedge-delay", type=float, default=None,
                     help="hedge-after-delay timer in seconds "
                          "(default: half the SLO when --slo-seconds "
                          "is set)")
    run.add_argument("--workload", default=None,
                     help="trace-driven arrivals: a generator name "
                          f"({', '.join(WORKLOAD_NAMES)}) or a trace "
                          "JSON path; replaces --rate (default off)")
    run.add_argument("--autoscaler", choices=AUTOSCALER_NAMES,
                     default="none",
                     help="elastic capacity policy; 'none' keeps the "
                          "fleet static and the schedule byte-identical")
    run.add_argument("--scale-min", type=int, default=None,
                     help="autoscaler floor on active replicas "
                          "(default 1)")
    run.add_argument("--scale-max", type=int, default=None,
                     help="autoscaler ceiling on provisioned replicas "
                          "(default: max(4, --replicas))")
    run.add_argument("--autoscale-interval", type=float, default=None,
                     help="seconds between autoscaler ticks "
                          "(default 15)")
    run.add_argument("--provision-delay", type=float, default=None,
                     help="seconds a scale-up takes to come online "
                          "(default 30)")
    run.add_argument("--result-cache", choices=RESULT_CACHE_MODES,
                     default=None,
                     help="query-result cache: hits bypass retrieval "
                          "and synthesis entirely (exact keys on "
                          "normalized text + config; semantic adds "
                          "embedding-similarity matches); off/omitted "
                          "is byte-identical to no cache")
    run.add_argument("--retrieval-cache", action="store_true",
                     help="memoize top-k chunk ids per (query, shard "
                          "config): hits skip scatter-gather but still "
                          "synthesize")
    run.add_argument("--cache-capacity", type=int, default=None,
                     help="max entries per cache tier (default 256)")
    run.add_argument("--cache-eviction", choices=EVICTION_NAMES,
                     default=None,
                     help="eviction policy (default lru; gdsf ranks "
                          "entries by measured dollars+seconds saved)")
    run.add_argument("--semantic-threshold", type=float, default=None,
                     help="min cosine similarity for a semantic result "
                          "hit (default 0.9; requires --result-cache "
                          "semantic)")
    run.add_argument("--cache-ttl", type=float, default=None,
                     help="entry time-to-live in seconds (default: "
                          "no expiry)")
    run.add_argument("--quality-metrics", action="store_true",
                     help="score every served answer with the "
                          "multi-metric quality harness (faithfulness, "
                          "answer relevancy, context precision/recall; "
                          "docs/EVALUATION.md). Post-serve scoring: "
                          "the event schedule is untouched")
    run.add_argument("--quality-slo", default=None, metavar="METRIC>=VAL",
                     help="quality SLO spec, e.g. faithfulness>=0.8: "
                          "implies --quality-metrics, reports "
                          "attainment, and (with --policy metis) makes "
                          "the scheduler pick the cheapest in-range "
                          "configuration that fits")
    run.add_argument("--seed", type=int, default=0)
    run.set_defaults(func=_cmd_run)

    exp = sub.add_parser("experiment", help="run one paper experiment")
    exp.add_argument("name", choices=_EXPERIMENTS)
    exp.add_argument("--fast", action="store_true")
    exp.add_argument("--seed", type=int, default=0)
    exp.set_defaults(func=_cmd_experiment)

    ds = sub.add_parser("datasets", help="list the synthetic datasets")
    ds.set_defaults(func=_cmd_datasets)
    return parser


def make_sweep_parser() -> argparse.ArgumentParser:
    """Parser for the ``--sweep`` surface (``repro --sweep ...``).

    Kept separate from the subcommand parser so ``--sweep`` works as a
    top-level flag: ``python -m repro.cli --sweep --seeds 0,1 --jobs 2``.
    """
    parser = argparse.ArgumentParser(
        prog="repro --sweep",
        description="Fan deterministic (seed, config) sweep cells "
                    "across worker processes and merge their results "
                    "as canonical JSON (identical for any --jobs).",
    )
    parser.add_argument("--sweep", action="store_true",
                        help=argparse.SUPPRESS)
    parser.add_argument("--dataset", choices=DATASET_NAMES,
                        default="finsec")
    parser.add_argument("--policy", default="metis",
                        choices=("metis", "adaptive-rag", "median",
                                 "vllm", "parrot"))
    parser.add_argument("--config", default=None,
                        help="method/num_chunks[/ilen] (for vllm/parrot)")
    parser.add_argument("--seeds", default="0",
                        help="comma-separated seed axis (default 0)")
    parser.add_argument("--rates", default=None,
                        help="comma-separated qps axis "
                             "(default: dataset-calibrated)")
    parser.add_argument("--queries", type=int, default=None)
    parser.add_argument("--replicas", type=int, default=1)
    parser.add_argument("--router", choices=ROUTER_NAMES,
                        default="least-kv-load")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (1 = sequential "
                             "in-process; results are identical "
                             "either way)")
    parser.add_argument("--output", default=None,
                        help="write merged JSON here instead of stdout")
    return parser


def _cmd_sweep(argv: list[str]) -> int:
    from repro.sweep import canonical_json, expand_cells, sweep

    args = make_sweep_parser().parse_args(argv)
    try:
        seeds = [int(s) for s in args.seeds.split(",")]
        rates = ([float(r) for r in args.rates.split(",")]
                 if args.rates else None)
    except ValueError:
        print("error: --seeds/--rates must be comma-separated numbers",
              file=sys.stderr)
        return 2
    base = dict(dataset=args.dataset, policy=args.policy,
                config=args.config, queries=args.queries,
                replicas=args.replicas, router=args.router)
    cells = expand_cells(base, seeds=seeds, rates=rates)
    merged = sweep(cells, jobs=args.jobs)
    text = canonical_json(merged)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {len(cells)} cells -> {args.output}",
              file=sys.stderr)
    else:
        print(text)
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if "--sweep" in argv:
        try:
            return _cmd_sweep(argv)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    args = make_parser().parse_args(argv)
    try:
        return args.func(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
