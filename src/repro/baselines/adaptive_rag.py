"""AdaptiveRAG* baseline: quality-maximising per-query adaptation.

AdaptiveRAG (NAACL'24) routes queries by an LLM-estimated complexity,
choosing how much retrieval/reasoning to spend — but, as the paper
notes, it "chooses the configuration which maximises the F1-score,
without considering the system resource cost" and without an interface
for multiple knobs. We implement that faithfully: profile the query,
map it through Algorithm 1's quality rules, and always take the most
expensive (quality-ceiling) configuration, with FCFS serving.
"""

from __future__ import annotations

from repro.config.knobs import RAGConfig, SynthesisMethod
from repro.core.mapping import MAX_NUM_CHUNKS
from repro.core.policy import Decision, PrepResult, RAGPolicy, SchedulingView
from repro.core.profiler import GPT4O_PROFILER, LLMProfiler, ProfilerModelSpec
from repro.data.types import Query

__all__ = ["AdaptiveRAGPolicy"]


class AdaptiveRAGPolicy(RAGPolicy):
    """Per-query quality-maximising configuration, resource-oblivious."""

    engine_policy = "fcfs"

    def __init__(
        self,
        metadata_tokens: int,
        profiler_spec: ProfilerModelSpec = GPT4O_PROFILER,
        seed: int = 0,
        name: str = "adaptive-rag",
    ) -> None:
        self.name = name
        self.profiler = LLMProfiler(profiler_spec, metadata_tokens, seed=seed)

    def prepare(self, query: Query) -> PrepResult:
        result = self.profiler.profile(query)
        return PrepResult(
            profile=result.profile,
            api_seconds=result.api_seconds,
            dollars=result.dollars,
            input_tokens=result.input_tokens,
            output_tokens=result.output_tokens,
        )

    #: Quality-maximising intermediate length (no summary-range knob in
    #: AdaptiveRAG's interface; it uses a generous static value).
    ILEN = 120
    #: Extra retrieval slack beyond METIS' 3×: maximise recall since
    #: resource cost is not considered.
    CHUNK_SLACK = 3.0
    CHUNK_MARGIN = 1

    def choose(self, query: Query, prep: PrepResult,
               view: SchedulingView) -> Decision:
        assert prep.profile is not None
        profile = prep.profile
        k = int(self.CHUNK_SLACK * profile.pieces) + self.CHUNK_MARGIN
        k = max(1, min(MAX_NUM_CHUNKS, k))
        if not profile.joint_reasoning:
            config = RAGConfig(SynthesisMethod.MAP_RERANK, k)
        elif not profile.complexity_high:
            config = RAGConfig(SynthesisMethod.STUFF, k)
        else:
            config = RAGConfig(SynthesisMethod.MAP_REDUCE, k, self.ILEN)
        return Decision(config=config)

    def describe(self) -> str:
        return f"{self.name}: profile → max-quality config, fcfs"
