"""Median-configuration strawman (§4.3, Fig 12 ablation).

Uses METIS' profiler and pruning, but then picks the median value of
each pruned range instead of consulting system resources. With FCFS
serving this is the Fig 12 "profiler + median" bar; with app-aware
serving it is the "median + batching" bar.
"""

from __future__ import annotations

from repro.core.controller import MetisConfig, MetisPolicy
from repro.core.profiler import GPT4O_PROFILER, ProfilerModelSpec

__all__ = ["MedianConfigPolicy"]


class MedianConfigPolicy(MetisPolicy):
    """METIS minus the joint scheduler: median of the pruned space."""

    def __init__(
        self,
        metadata_tokens: int,
        chunk_tokens: int,
        profiler_spec: ProfilerModelSpec = GPT4O_PROFILER,
        app_aware_batching: bool = False,
        seed: int = 0,
        name: str | None = None,
    ) -> None:
        config = MetisConfig(
            profiler_spec=profiler_spec,
            selection_mode="median",
            memory_aware=False,
        )
        if name is None:
            name = "median+batching" if app_aware_batching else "median"
        super().__init__(
            metadata_tokens=metadata_tokens,
            chunk_tokens=chunk_tokens,
            config=config,
            seed=seed,
            name=name,
        )
        self.engine_policy = "app-aware" if app_aware_batching else "fcfs"
