"""Baseline serving systems the paper compares against (§7.1).

* ``vLLM`` — fixed RAG configuration on FCFS continuous batching.
* ``Parrot*`` — fixed configuration, but application-aware scheduling
  (the engine groups/orders a query's LLM calls).
* ``AdaptiveRAG*`` — profiler-driven per-query configuration chosen to
  maximise quality, oblivious to system resources.
* ``median`` — the §4.3 strawman: profiler-driven pruned space, then
  the median configuration (Fig 12 ablation).
"""

from repro.baselines.adaptive_rag import AdaptiveRAGPolicy
from repro.baselines.fixed import FixedConfigPolicy, ParrotPolicy
from repro.baselines.median import MedianConfigPolicy

__all__ = [
    "AdaptiveRAGPolicy",
    "FixedConfigPolicy",
    "MedianConfigPolicy",
    "ParrotPolicy",
]
