"""Fixed-configuration baselines: vLLM and Parrot*.

Both serve every query with the same hand-picked RAG configuration
(the paper's "static configuration chosen offline from a few example
queries"); they differ only in engine scheduling: vLLM runs FCFS
continuous batching, Parrot* adds application-level awareness.
"""

from __future__ import annotations

from repro.config.knobs import RAGConfig
from repro.core.policy import Decision, PrepResult, RAGPolicy, SchedulingView
from repro.data.types import Query

__all__ = ["FixedConfigPolicy", "ParrotPolicy"]


class FixedConfigPolicy(RAGPolicy):
    """vLLM baseline: one static configuration, FCFS scheduling."""

    engine_policy = "fcfs"

    def __init__(self, config: RAGConfig, name: str | None = None) -> None:
        self.config = config
        self.name = name or f"vllm[{config.label()}]"

    def choose(self, query: Query, prep: PrepResult,
               view: SchedulingView) -> Decision:
        return Decision(config=self.config)

    def describe(self) -> str:
        return f"{self.name}: fixed {self.config.label()}, fcfs"


class ParrotPolicy(FixedConfigPolicy):
    """Parrot* baseline: static configuration + app-aware scheduling.

    Parrot (OSDI'24) exposes inter-request structure ("semantic
    variables") to the engine, letting it co-schedule the LLM calls of
    one application. Our engine's ``app-aware`` policy models that:
    calls are grouped per query and queries closest to completion are
    favoured. The RAG configuration itself stays fixed (Parrot does not
    adapt configurations — the paper's point).
    """

    engine_policy = "app-aware"

    def __init__(self, config: RAGConfig, name: str | None = None) -> None:
        super().__init__(config, name or f"parrot[{config.label()}]")

    def describe(self) -> str:
        return f"{self.name}: fixed {self.config.label()}, app-aware"
