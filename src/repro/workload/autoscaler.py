"""Elastic capacity: an autoscaler running as first-class sim events.

The :class:`Autoscaler` watches a
:class:`~repro.serving.cluster.ClusterEngine` from periodic
``autoscale:tick`` events on the shared
:class:`~repro.sim.kernel.EventLoop` and adjusts the fleet:

* **scale up** — schedule an ``autoscale:provision`` event
  ``provision_delay_s`` in the future; the replica joins the fleet
  (clocked at the provision time) only when it fires, modelling
  instance boot + model load. A draining replica is *reactivated*
  first when one exists — undoing an in-progress retirement is free
  and instant.
* **scale down** — ``begin_drain`` the least-loaded active replica:
  it stops receiving new work but finishes (and may still be hedged
  onto by in-flight pins) what it holds; a later tick retires it once
  its last request, KV reservation, and app pin are gone
  (drain-before-retire — capacity is never yanked from under work).

Tick and provision events are scheduled with ``source=self``, so the
kernel dispatches them without advancing the attached engines'
clocks: an autoscaler that never changes the fleet is **observation-
ally neutral** — the serving schedule is byte-identical to a run
without it (pinned by ``tests/test_autoscaler.py``), and
``--autoscaler none`` doesn't even schedule the ticks.

Decisions are delegated to a :class:`ScalingPolicy`, a pure function
of the :class:`ScalingSignals` snapshot:

* :class:`ReactivePolicy` — classic threshold rule on queue depth per
  active replica, guarded by the sliding-window SLO attainment.
* :class:`ForecastPolicy` — a BRAD-style planner: score every
  candidate fleet size in ``[scale_min, scale_max]`` against the
  workload's next-period rate (provisioning lead time included in the
  lookahead) using an M/M/1-flavoured latency penalty, and pick the
  cheapest fleet whose score wins. Requires the run's declared
  :class:`~repro.workload.trace.Workload` (the trace is the forecast).

Everything is deterministic: policies hold no RNG, signals derive from
the engine and the (already-deterministic) record stream, and events
follow the kernel's stable ``(time, rank, seq)`` order.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.util.validation import check_count, check_positive

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serving.cluster import ClusterEngine
    from repro.sim import EventLoop
    from repro.workload.trace import Workload

__all__ = [
    "ScalingSignals",
    "ScalingEvent",
    "ScalingPolicy",
    "ReactivePolicy",
    "ForecastPolicy",
    "EwmaForecastPolicy",
    "Autoscaler",
    "AUTOSCALER_NAMES",
    "make_scaling_policy",
]


@dataclass(frozen=True)
class ScalingSignals:
    """Everything a scaling policy may consult at one tick."""

    time: float
    #: Replicas currently accepting new work.
    n_active: int
    #: Scale-ups requested but not yet provisioned.
    n_provisioning: int
    #: Replicas draining toward retirement.
    n_draining: int
    #: Mean outstanding requests per active replica (queue depth).
    outstanding_per_active: float
    #: SLO attainment over the sliding window (``None``: no completed
    #: queries in the window, or no SLO configured).
    window_slo_attainment: float | None
    #: Workload rate ``interval + provision_delay`` ahead (``None``
    #: when the run has no declared workload trace).
    forecast_rate_qps: float | None
    #: Observed mean GPU-service seconds per completed query at speed
    #: 1.0 (``None`` before the first completion).
    est_service_seconds: float | None
    scale_min: int
    scale_max: int


@dataclass(frozen=True)
class ScalingEvent:
    """One fleet change, for reports and regression pins.

    Actions: ``provision`` (scale-up requested), ``add`` (the replica
    joined after the provisioning delay), ``cancel-provision``,
    ``drain``, ``cancel-drain`` (reactivated), ``retire``.
    """

    time: float
    action: str
    replica: int
    #: Active replicas *after* the change took effect.
    n_active: int


class ScalingPolicy(ABC):
    """Maps a signals snapshot to a desired provisioned-fleet size.

    ``desired_fleet`` returns the target number of *provisioned*
    replicas (active + in-flight provisions); the autoscaler clamps it
    to ``[scale_min, scale_max]`` and mechanises the difference.
    Policies must be pure: no internal state, no RNG.
    """

    name: str = "base"

    @abstractmethod
    def desired_fleet(self, signals: ScalingSignals) -> int:
        """Target provisioned-fleet size for this tick."""


class ReactivePolicy(ScalingPolicy):
    """Threshold rule on queue depth, guarded by window attainment.

    Scale up by one when the mean queue per active replica exceeds
    ``up_threshold`` **or** the sliding-window SLO attainment falls
    below ``slo_floor``; scale down by one when the queue is below
    ``down_threshold`` *and* the window attainment (when observable)
    is healthy. Single-step moves plus the provisioning delay give the
    classic reactive lag the forecast planner exists to beat.
    """

    name = "reactive"

    def __init__(self, up_threshold: float = 4.0,
                 down_threshold: float = 1.0,
                 slo_floor: float = 0.9) -> None:
        check_positive("up_threshold", up_threshold)
        check_positive("down_threshold", down_threshold)
        if down_threshold >= up_threshold:
            raise ValueError(
                f"down_threshold must be < up_threshold, got "
                f"{down_threshold} >= {up_threshold}"
            )
        self.up_threshold = float(up_threshold)
        self.down_threshold = float(down_threshold)
        self.slo_floor = float(slo_floor)

    def desired_fleet(self, signals: ScalingSignals) -> int:
        provisioned = signals.n_active + signals.n_provisioning
        attainment = signals.window_slo_attainment
        slo_unhealthy = attainment is not None and attainment < self.slo_floor
        if signals.outstanding_per_active > self.up_threshold or slo_unhealthy:
            return provisioned + 1
        if (signals.outstanding_per_active < self.down_threshold
                and not slo_unhealthy):
            return provisioned - 1
        return provisioned


class ForecastPolicy(ScalingPolicy):
    """BRAD-style planner: score candidate fleets against the forecast.

    For each candidate size ``n`` in ``[scale_min, scale_max]``::

        util(n)  = forecast_rate * service_seconds / n
        score(n) = n + latency_weight * util / (1 - util)

    — provisioned cost grows linearly in ``n``, expected queueing
    (the M/M/1 factor) explodes as utilization approaches 1, and the
    cheapest fleet whose combined score wins is chosen (ties go to the
    smaller fleet). Infeasible candidates (``util >= 1``) score as the
    backlog they would accumulate over the next period, so when even
    ``scale_max`` is infeasible the largest fleet still wins.

    ``service_seconds`` is the *observed* mean GPU time per completed
    query (``default_service_s`` before the first completion) — the
    planner calibrates its capacity model from the run itself. With no
    workload trace to forecast from, the current fleet is kept.
    """

    name = "forecast"

    def __init__(self, latency_weight: float = 2.0,
                 default_service_s: float = 0.6) -> None:
        check_positive("latency_weight", latency_weight)
        check_positive("default_service_s", default_service_s)
        self.latency_weight = float(latency_weight)
        self.default_service_s = float(default_service_s)

    def desired_fleet(self, signals: ScalingSignals) -> int:
        rate = signals.forecast_rate_qps
        if rate is None:
            return signals.n_active + signals.n_provisioning
        service = signals.est_service_seconds or self.default_service_s
        demand = rate * service  # GPU-seconds per second = fleet-fraction
        best_n, best_score = signals.scale_min, float("inf")
        for n in range(signals.scale_min, signals.scale_max + 1):
            util = demand / n
            if util >= 1.0:
                penalty = 1e6 * util  # backlog grows without bound
            else:
                penalty = util / (1.0 - util)
            score = n + self.latency_weight * penalty
            if score < best_score:
                best_n, best_score = n, score
        return best_n


class EwmaForecastPolicy(ForecastPolicy):
    """The forecast planner fed an EWMA-smoothed rate signal.

    Identical fleet-scoring to :class:`ForecastPolicy`; the difference
    is upstream — the autoscaler recognises ``smoothing_alpha`` and
    fills :attr:`ScalingSignals.forecast_rate_qps` with
    :meth:`Workload.ewma_rate` at the lookahead time instead of the raw
    period rate. On an MMPP-bursty trace the raw next-period rate
    whipsaws between the calm and burst levels, and the planner with it
    (provision, cancel, provision ...); the EWMA remembers recent
    history, so single-period spikes are damped and the fleet makes
    strictly fewer moves (pinned by ``tests/test_autoscaler.py``).
    ``smoothing_alpha=1.0`` degrades to the raw forecast.
    """

    name = "forecast-ewma"

    def __init__(self, smoothing_alpha: float = 0.3,
                 latency_weight: float = 2.0,
                 default_service_s: float = 0.6) -> None:
        super().__init__(latency_weight=latency_weight,
                         default_service_s=default_service_s)
        if not 0.0 < smoothing_alpha <= 1.0:
            raise ValueError(
                f"smoothing_alpha must be in (0, 1], got {smoothing_alpha}"
            )
        self.smoothing_alpha = float(smoothing_alpha)


#: Autoscaler names accepted by :func:`make_scaling_policy` (and
#: ``--autoscaler``).
AUTOSCALER_NAMES: tuple[str, ...] = ("none", "reactive", "forecast",
                                     "forecast-ewma")


def make_scaling_policy(
    name: str | ScalingPolicy | None,
) -> ScalingPolicy | None:
    """Instantiate a scaling policy by CLI name (``None``/"none" off)."""
    if name is None or isinstance(name, ScalingPolicy):
        return name
    if name == "none":
        return None
    if name == "reactive":
        return ReactivePolicy()
    if name == "forecast":
        return ForecastPolicy()
    if name == "forecast-ewma":
        return EwmaForecastPolicy()
    known = ", ".join(AUTOSCALER_NAMES)
    raise ValueError(f"unknown autoscaler {name!r}; known: {known}")


class Autoscaler:
    """Mechanises a :class:`ScalingPolicy` over a cluster on the loop.

    One instance drives one run: :meth:`start` schedules the first
    tick and the autoscaler then re-schedules itself while the trace
    has periods left, the engine has work, provisions are in flight,
    or a replica is still draining — so the loop always drains and the
    last drained replica is always retired.
    """

    def __init__(
        self,
        policy: ScalingPolicy,
        scale_min: int = 1,
        scale_max: int = 4,
        interval_s: float = 15.0,
        provision_delay_s: float = 30.0,
        window_s: float | None = None,
        workload: "Workload | None" = None,
        cooldown_s: float | None = None,
        down_debounce: int = 2,
    ) -> None:
        if policy is None:
            raise ValueError(
                "Autoscaler requires a ScalingPolicy; use autoscaler="
                "'none' (no Autoscaler at all) to disable scaling"
            )
        self.policy = policy
        self.scale_min = check_count("scale_min", scale_min, minimum=1)
        self.scale_max = check_count("scale_max", scale_max, minimum=1)
        if self.scale_max < self.scale_min:
            raise ValueError(
                f"scale_max must be >= scale_min, got scale_max="
                f"{self.scale_max} < scale_min={self.scale_min}"
            )
        check_positive("autoscale_interval", interval_s)
        check_positive("provision_delay", provision_delay_s)
        self.interval_s = float(interval_s)
        self.provision_delay_s = float(provision_delay_s)
        self.window_s = (float(window_s) if window_s is not None
                         else 4.0 * self.interval_s)
        check_positive("window_s", self.window_s)
        # Anti-flapping hysteresis: no new scaling action within
        # ``cooldown_s`` of the previous one (default two ticks), and
        # a scale-down additionally requires ``down_debounce``
        # *consecutive* ticks wanting it — sparse traces whose queue
        # hovers around the thresholds stop oscillating
        # provision/cancel every tick. ``cooldown_s=0.0`` and
        # ``down_debounce=1`` restore the un-damped behavior.
        self.cooldown_s = (float(cooldown_s) if cooldown_s is not None
                           else 2.0 * self.interval_s)
        if self.cooldown_s < 0:
            raise ValueError(
                f"cooldown_s must be >= 0, got {self.cooldown_s}")
        self.down_debounce = check_count("down_debounce", down_debounce,
                                         minimum=1)
        self.workload = workload
        #: Chronological fleet changes (see :class:`ScalingEvent`).
        self.events: list[ScalingEvent] = []
        #: Most replicas simultaneously active at any point in the run.
        self.peak_active = 0
        self._engine: "ClusterEngine | None" = None
        self._loop: "EventLoop | None" = None
        self._records = None
        self._horizon = 0.0
        self._pending_provisions: list = []  # pending provision Events
        self._last_action_time = float("-inf")
        self._down_streak = 0  # consecutive ticks wanting a scale-down

    # ------------------------------------------------------------------
    def start(self, loop: "EventLoop", engine: "ClusterEngine",
              horizon: float, records, slo_seconds=None) -> None:
        """Arm the first tick. ``horizon`` is the last arrival time;
        ``records`` is the pipeline's (live) record list the sliding
        SLO window reads."""
        from repro.serving.cluster import ClusterEngine

        if not isinstance(engine, ClusterEngine):
            raise ValueError(
                "the autoscaler scales ClusterEngine replicas; got "
                f"{type(engine).__name__} — the runner wraps single-"
                "replica fleets in a cluster when autoscaling is on"
            )
        n_active = len(engine.active_replica_ids())
        if not self.scale_min <= n_active <= self.scale_max:
            raise ValueError(
                f"initial fleet of {n_active} replicas is outside "
                f"[scale_min={self.scale_min}, scale_max={self.scale_max}]"
            )
        self._engine = engine
        self._loop = loop
        self._records = records
        self._horizon = float(horizon)
        self.peak_active = n_active
        self._schedule_tick(self.interval_s)

    # ------------------------------------------------------------------
    def _schedule_tick(self, t: float) -> None:
        # source=self: ticks dispatch without advancing the attached
        # engine clocks, keeping the autoscaler observationally
        # neutral when it makes no change (and off the makespan).
        self._loop.schedule(t, "autoscale:tick", self._tick, source=self)

    def _record(self, time: float, action: str, replica: int) -> None:
        n_active = len(self._engine.active_replica_ids())
        self.peak_active = max(self.peak_active, n_active)
        self.events.append(ScalingEvent(
            time=time, action=action, replica=replica, n_active=n_active))

    # ------------------------------------------------------------------
    def signals(self, t: float) -> ScalingSignals:
        engine = self._engine
        active = engine.active_replica_ids()
        outstanding = engine.replica_outstanding()
        per_active = (
            sum(outstanding[i] for i in active) / len(active)
            if active else 0.0
        )
        window = [
            r for r in self._records
            if r.slo_met is not None and r.finish_time > t - self.window_s
        ]
        attainment = (sum(r.slo_met for r in window) / len(window)
                      if window else None)
        completed = len(self._records)
        service = (engine.stats.busy_seconds / completed
                   if completed else None)
        forecast = None
        if self.workload is not None:
            lookahead = self.interval_s + self.provision_delay_s
            alpha = getattr(self.policy, "smoothing_alpha", None)
            if alpha is not None:
                forecast = self.workload.ewma_rate(t + lookahead, alpha)
            else:
                forecast = self.workload.forecast_rate(t, lookahead)
        return ScalingSignals(
            time=t,
            n_active=len(active),
            n_provisioning=len(self._pending_provisions),
            n_draining=len(engine.draining_replica_ids()),
            outstanding_per_active=per_active,
            window_slo_attainment=attainment,
            forecast_rate_qps=forecast,
            est_service_seconds=service,
            scale_min=self.scale_min,
            scale_max=self.scale_max,
        )

    # ------------------------------------------------------------------
    def _tick(self, t: float, _payload) -> None:
        engine = self._engine
        self._retire_drained(t)
        workload_over = t >= self._horizon and not engine.has_work()
        if workload_over:
            # The trace is done and the backlog drained: in-flight
            # provisions would arrive to serve nothing.
            self._cancel_pending_provisions(t)
            self._drain_excess(t, target_active=self.scale_min)
        else:
            signals = self.signals(t)
            desired = min(self.scale_max,
                          max(self.scale_min,
                              self.policy.desired_fleet(signals)))
            provisioned = signals.n_active + signals.n_provisioning
            # Hysteresis: the streak tracks what the policy *wants*
            # (even while the cooldown blocks acting on it), so a
            # sustained lull still winds down after the cooldown.
            in_cooldown = t - self._last_action_time < self.cooldown_s
            if desired > provisioned:
                self._down_streak = 0
                if not in_cooldown:
                    self._scale_up(t, desired - provisioned)
                    self._last_action_time = t
            elif desired < provisioned:
                self._down_streak += 1
                if not in_cooldown and self._down_streak >= self.down_debounce:
                    self._scale_down(t, provisioned - desired)
                    self._last_action_time = t
                    self._down_streak = 0
            else:
                self._down_streak = 0
        self._retire_drained(t)
        # Keep ticking while arrivals can still come (t < horizon), any
        # work or provision is in flight, a drain has not retired yet,
        # or the fleet has not wound down to its floor — the last tick
        # is always the one that leaves n_active == scale_min.
        if (t < self._horizon
                or engine.has_work()
                or self._pending_provisions
                or engine.draining_replica_ids()
                or engine.n_active > self.scale_min):
            self._schedule_tick(t + self.interval_s)

    # ------------------------------------------------------------------
    def _scale_up(self, t: float, deficit: int) -> None:
        engine = self._engine
        # Reactivating a draining replica is free and instant; prefer
        # the most recently drained (highest id) for LIFO symmetry.
        for rid in sorted(engine.draining_replica_ids(), reverse=True):
            if deficit <= 0:
                return
            engine.cancel_drain(rid)
            self._record(t, "cancel-drain", rid)
            deficit -= 1
        for _ in range(deficit):
            event = self._loop.schedule(
                t + self.provision_delay_s, "autoscale:provision",
                self._provisioned, source=self)
            self._pending_provisions.append(event)
            self._record(t, "provision", -1)

    def _provisioned(self, t: float, _payload) -> None:
        # Events cancelled via _cancel_pending_provisions never fire,
        # so every firing corresponds to one pending entry.
        if self._pending_provisions:
            self._pending_provisions.pop(0)
        rid = self._engine.add_replica(at=t)
        self._record(t, "add", rid)

    def _cancel_pending_provisions(self, t: float) -> None:
        for event in self._pending_provisions:
            self._loop.cancel(event)
            self._record(t, "cancel-provision", -1)
        self._pending_provisions.clear()

    def _scale_down(self, t: float, excess: int) -> None:
        # Cancel queued provisions first (cheapest: nothing exists yet).
        while excess > 0 and self._pending_provisions:
            event = self._pending_provisions.pop()
            self._loop.cancel(event)
            self._record(t, "cancel-provision", -1)
            excess -= 1
        engine = self._engine
        outstanding = engine.replica_outstanding()
        while excess > 0:
            active = engine.active_replica_ids()
            if len(active) <= self.scale_min:
                return
            # Least-loaded active replica; ties retire the newest.
            victim = min(active, key=lambda i: (outstanding[i], -i))
            engine.begin_drain(victim)
            self._record(t, "drain", victim)
            excess -= 1

    def _drain_excess(self, t: float, target_active: int) -> None:
        """Post-workload cool-down: drain everything above the floor."""
        engine = self._engine
        active = engine.active_replica_ids()
        excess = len(active) - max(target_active, 1)
        if excess > 0:
            self._scale_down(t, excess)

    def _retire_drained(self, t: float) -> None:
        engine = self._engine
        for rid in engine.draining_replica_ids():
            if engine.can_retire(rid):
                engine.retire(rid, at=t)
                self._record(t, "retire", rid)
