"""Trace-driven workloads and elastic autoscaling.

``repro.workload`` owns everything about *offered load*: the
:class:`Workload` abstraction (per-period arrival counts, replayable
from JSON, deterministic per seed), generators for canonical shapes
(diurnal, bursty, multi-tenant), and the :class:`Autoscaler` that
tracks a workload with an elastic replica fleet on the sim event loop.
See ``docs/WORKLOADS.md``.
"""

from repro.workload.autoscaler import (
    AUTOSCALER_NAMES,
    Autoscaler,
    EwmaForecastPolicy,
    ForecastPolicy,
    ReactivePolicy,
    ScalingEvent,
    ScalingPolicy,
    ScalingSignals,
    make_scaling_policy,
)
from repro.workload.capacity import sustained_rate
from repro.workload.trace import (
    WORKLOAD_NAMES,
    Workload,
    WorkloadPeriod,
    bursty_workload,
    diurnal_workload,
    make_workload,
    multi_tenant_workload,
    zipfian_workload,
)

__all__ = [
    "AUTOSCALER_NAMES",
    "Autoscaler",
    "EwmaForecastPolicy",
    "ForecastPolicy",
    "ReactivePolicy",
    "ScalingEvent",
    "ScalingPolicy",
    "ScalingSignals",
    "WORKLOAD_NAMES",
    "Workload",
    "WorkloadPeriod",
    "bursty_workload",
    "diurnal_workload",
    "make_scaling_policy",
    "make_workload",
    "multi_tenant_workload",
    "sustained_rate",
    "zipfian_workload",
]
