"""Capacity-planning helpers shared by examples and experiments."""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["sustained_rate"]


def sustained_rate(outcomes: Sequence[tuple[float, bool]]) -> float:
    """Highest rate sustained *before the first SLO miss*.

    ``outcomes`` is an ascending sweep of ``(rate_qps, slo_met)``
    pairs. The sustained rate is the last passing rate of the prefix
    that precedes the first miss — a pass at a higher rate after a miss
    does **not** count (queueing systems are not monotone run-to-run at
    finite sample sizes, but a deployer cannot operate above a rate
    that already violated the SLO). Returns 0.0 when the very first
    rate misses.

    The sweep must be strictly increasing in rate; anything else is a
    caller bug that would silently misreport capacity.

    >>> sustained_rate([(0.5, True), (1.0, True), (1.5, False), (3.0, True)])
    1.0
    >>> sustained_rate([(0.5, False), (1.0, True)])
    0.0
    """
    rates = [rate for rate, _ in outcomes]
    if any(b <= a for a, b in zip(rates, rates[1:])):
        raise ValueError(
            f"outcomes must be sorted by strictly increasing rate, got "
            f"rates {rates!r}"
        )
    best = 0.0
    for rate, met in outcomes:
        if not met:
            break
        best = rate
    return best
