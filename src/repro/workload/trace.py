"""Trace-driven workloads: fixed-duration periods of arrival counts.

A :class:`Workload` describes offered load the way a capacity planner
sees it (after BRAD's ``planner/workload``): a sequence of
fixed-duration :class:`WorkloadPeriod`\\ s, each carrying how many
queries arrive in it. The representation is *forecastable* — the
period grid gives every planning policy (see
:mod:`repro.workload.autoscaler`) a common notion of "the next
period's rate" — and *replayable*: :meth:`Workload.to_json` /
:meth:`Workload.from_json` round-trip byte-identically, so a trace
file pins a workload the way golden fingerprints pin a schedule.

Generators produce the canonical shapes elastic serving is evaluated
against:

* :func:`diurnal_workload` — a sinusoidal day (trough at the edges,
  peak mid-trace).
* :func:`bursty_workload` — a two-state Markov-modulated Poisson
  process (calm/burst), the classic MMPP burstiness model.
* :func:`multi_tenant_workload` — phase-shifted per-tenant diurnal
  curves summed into one trace (tenants peak at different times, so
  the aggregate is flatter than any tenant).

Every stochastic draw comes from a named :mod:`repro.util.rng` stream
keyed on the generator name and period index: the same seed yields a
byte-identical trace *and* byte-identical arrival times from
:meth:`Workload.materialize`, independent of any other component's
randomness.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, replace

from repro.data.types import Query
from repro.data.workload import Arrival
from repro.util.rng import stream
from repro.util.validation import (
    check_count,
    check_non_empty,
    check_positive,
)

__all__ = [
    "WorkloadPeriod",
    "Workload",
    "WORKLOAD_NAMES",
    "diurnal_workload",
    "bursty_workload",
    "multi_tenant_workload",
    "zipfian_workload",
    "make_workload",
]


@dataclass(frozen=True)
class WorkloadPeriod:
    """One fixed-duration slice of the trace.

    ``label`` is free-form provenance (tenant name, MMPP state) carried
    through serialization; it never affects arrival times.
    """

    duration_s: float
    n_arrivals: int
    label: str = ""

    def __post_init__(self) -> None:
        check_positive("period.duration_s", self.duration_s)
        check_count("period.n_arrivals", self.n_arrivals)

    @property
    def rate_qps(self) -> float:
        return self.n_arrivals / self.duration_s


@dataclass(frozen=True)
class Workload:
    """A trace: consecutive periods of offered load.

    Construction fails fast on an empty trace (a zero-period workload
    would silently produce an empty run — see
    :func:`repro.util.validation.check_non_empty`).
    """

    periods: tuple[WorkloadPeriod, ...]
    name: str = "trace"
    #: Optional per-arrival indices into the query pool (see
    #: :meth:`materialize`). Empty — the default, and the only shape
    #: older trace files can carry — cycles the pool in order.
    query_mix: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        check_non_empty("workload.periods", self.periods)
        object.__setattr__(self, "periods", tuple(self.periods))
        mix = tuple(int(i) for i in self.query_mix)
        for i in mix:
            if i < 0:
                raise ValueError(
                    f"workload.query_mix indices must be >= 0, got {i}"
                )
        object.__setattr__(self, "query_mix", mix)

    # ------------------------------------------------------------------
    # Forecastable properties
    # ------------------------------------------------------------------
    @property
    def n_periods(self) -> int:
        return len(self.periods)

    @property
    def duration_s(self) -> float:
        return sum(p.duration_s for p in self.periods)

    @property
    def total_arrivals(self) -> int:
        return sum(p.n_arrivals for p in self.periods)

    @property
    def peak_rate_qps(self) -> float:
        return max(p.rate_qps for p in self.periods)

    @property
    def mean_rate_qps(self) -> float:
        return self.total_arrivals / self.duration_s

    def period_start(self, index: int) -> float:
        """Trace time at which period ``index`` begins."""
        return sum(p.duration_s for p in self.periods[:index])

    def period_index_at(self, t: float) -> int:
        """Period containing trace time ``t`` (clamped to the ends)."""
        if t <= 0:
            return 0
        elapsed = 0.0
        for i, period in enumerate(self.periods):
            elapsed += period.duration_s
            if t < elapsed:
                return i
        return len(self.periods) - 1

    def rate_at(self, t: float) -> float:
        """Offered rate (qps) of the period containing ``t``.

        Past the trace end this is the *last* period's rate — the
        forecast a planner sees while the tail of the workload drains.
        """
        return self.periods[self.period_index_at(t)].rate_qps

    def forecast_rate(self, t: float, lookahead_s: float) -> float:
        """Rate ``lookahead_s`` ahead of ``t`` (the planner's oracle).

        The trace *is* the forecast: a declared workload plays the role
        of BRAD's forecasted next-period workload, so planning quality
        degrades only through the period granularity, not through
        forecast error. Trace-file replays of measured workloads keep
        the same interface.
        """
        return self.rate_at(t + lookahead_s)

    def ewma_rate(self, t: float, alpha: float) -> float:
        """Exponentially smoothed offered rate over the periods up to
        ``t`` (inclusive).

        ``alpha`` in (0, 1] weights the newest period: 1.0 degrades to
        :meth:`rate_at`, small values remember the trace's history and
        damp single-period spikes — the smoothing the ``forecast-ewma``
        autoscaler plans against so MMPP noise doesn't whipsaw the
        fleet (see :class:`repro.workload.EwmaForecastPolicy`).
        """
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        idx = self.period_index_at(t)
        ewma = self.periods[0].rate_qps
        for period in self.periods[1:idx + 1]:
            ewma = alpha * period.rate_qps + (1.0 - alpha) * ewma
        return ewma

    def scaled(self, factor: float) -> "Workload":
        """A copy with every period's arrival count scaled by ``factor``
        (rounded; fast-mode shrinking keeps the trace's shape, and any
        ``query_mix`` rides along — materialize indexes it modulo its
        length, so a shrunk trace keeps the same popularity skew)."""
        check_positive("factor", factor)
        return replace(
            self,
            periods=tuple(
                replace(p, n_arrivals=int(round(p.n_arrivals * factor)))
                for p in self.periods
            ),
        )

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------
    def materialize(self, queries: list[Query], seed: int = 0
                    ) -> list[Arrival]:
        """Draw concrete open-loop arrivals for this trace.

        Within each period the ``n_arrivals`` timestamps are i.i.d.
        uniform over the period (the conditional law of a Poisson
        process given its count), drawn from the stream
        ``(seed, "workload", name, period_index)`` — so period ``i``'s
        times never depend on how many arrivals earlier periods had.

        ``queries`` is the pool. With the default empty ``query_mix``
        arrivals cycle through it in order; a non-empty mix maps
        arrival ``i`` to ``queries[query_mix[i % len(mix)] % len(pool)]``
        (the modulo keeps shrunk/scaled traces and small pools valid),
        which is how :func:`zipfian_workload` skews popularity. Either
        way, repeat visits clone the query under a fresh ``query_id``
        (``<id>#r<n>`` for its *n*-th reuse) because app pins and
        record identity key on query-id uniqueness; cache keys fold the
        suffix back off via
        :func:`repro.util.ids.canonical_query_id`.
        """
        check_non_empty("queries", queries)
        times: list[float] = []
        start = 0.0
        for i, period in enumerate(self.periods):
            if period.n_arrivals:
                rng = stream(seed, "workload", self.name, i)
                offsets = sorted(
                    float(u) for u in
                    rng.uniform(0.0, period.duration_s, period.n_arrivals)
                )
                times.extend(start + u for u in offsets)
            start += period.duration_s
        arrivals: list[Arrival] = []
        seen: dict[str, int] = {}
        mix = self.query_mix
        for i, t in enumerate(times):
            if mix:
                query = queries[mix[i % len(mix)] % len(queries)]
            else:
                query = queries[i % len(queries)]
            visit = seen.get(query.query_id, 0)
            seen[query.query_id] = visit + 1
            if visit:
                query = replace(query,
                                query_id=f"{query.query_id}#r{visit}")
            arrivals.append(Arrival(query=query, time=t))
        return arrivals

    # ------------------------------------------------------------------
    # Trace-file replay
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Canonical serialization (sorted keys, fixed layout): the
        same workload always renders to the same bytes. ``query_mix``
        is emitted only when non-empty, so traces that never used it
        serialize byte-identically to before the field existed."""
        payload: dict = {
            "name": self.name,
            "periods": [
                {
                    "duration_s": p.duration_s,
                    "n_arrivals": p.n_arrivals,
                    "label": p.label,
                }
                for p in self.periods
            ],
        }
        if self.query_mix:
            payload["query_mix"] = list(self.query_mix)
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "Workload":
        payload = json.loads(text)
        periods = tuple(
            WorkloadPeriod(
                duration_s=float(p["duration_s"]),
                n_arrivals=int(p["n_arrivals"]),
                label=str(p.get("label", "")),
            )
            for p in payload.get("periods", ())
        )
        return cls(
            periods=periods,
            name=str(payload.get("name", "trace")),
            query_mix=tuple(int(i) for i in payload.get("query_mix", ())),
        )

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())

    @classmethod
    def load(cls, path) -> "Workload":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())


# ----------------------------------------------------------------------
# Generators
# ----------------------------------------------------------------------
def _poisson_count(rate_qps: float, duration_s: float, rng) -> int:
    return int(rng.poisson(rate_qps * duration_s))


def diurnal_workload(
    n_periods: int = 24,
    period_s: float = 60.0,
    base_qps: float = 0.25,
    peak_qps: float = 2.0,
    seed: int = 0,
    name: str = "diurnal",
) -> Workload:
    """A sinusoidal day: trough at the trace edges, peak mid-trace.

    Period ``i``'s mean rate follows ``base + (peak - base) *
    (1 - cos(2*pi*i/n)) / 2``; the realized count is a Poisson draw at
    that mean from the stream ``(seed, "workload", name, "count", i)``.
    """
    check_count("n_periods", n_periods, minimum=1)
    check_positive("period_s", period_s)
    check_positive("base_qps", base_qps)
    check_positive("peak_qps", peak_qps)
    if peak_qps < base_qps:
        raise ValueError(
            f"peak_qps must be >= base_qps, got peak_qps={peak_qps} < "
            f"base_qps={base_qps}"
        )
    periods = []
    for i in range(n_periods):
        shape = (1.0 - math.cos(2.0 * math.pi * i / n_periods)) / 2.0
        rate = base_qps + (peak_qps - base_qps) * shape
        rng = stream(seed, "workload", name, "count", i)
        periods.append(WorkloadPeriod(
            duration_s=float(period_s),
            n_arrivals=_poisson_count(rate, period_s, rng),
            label=f"hour{i}",
        ))
    return Workload(periods=tuple(periods), name=name)


def bursty_workload(
    n_periods: int = 48,
    period_s: float = 30.0,
    base_qps: float = 0.4,
    burst_qps: float = 3.0,
    p_enter_burst: float = 0.15,
    p_exit_burst: float = 0.4,
    seed: int = 0,
    name: str = "bursty",
) -> Workload:
    """MMPP-style burstiness: a two-state (calm/burst) Markov chain
    over periods, Poisson counts at the state's rate."""
    check_count("n_periods", n_periods, minimum=1)
    check_positive("period_s", period_s)
    check_positive("base_qps", base_qps)
    check_positive("burst_qps", burst_qps)
    state_rng = stream(seed, "workload", name, "state")
    burst = False
    periods = []
    for i in range(n_periods):
        flip = float(state_rng.random())
        if burst:
            burst = flip >= p_exit_burst
        else:
            burst = flip < p_enter_burst
        rate = burst_qps if burst else base_qps
        rng = stream(seed, "workload", name, "count", i)
        periods.append(WorkloadPeriod(
            duration_s=float(period_s),
            n_arrivals=_poisson_count(rate, period_s, rng),
            label="burst" if burst else "calm",
        ))
    return Workload(periods=tuple(periods), name=name)


def multi_tenant_workload(
    tenant_qps: dict[str, float] | None = None,
    n_periods: int = 24,
    period_s: float = 60.0,
    seed: int = 0,
    name: str = "multi-tenant",
) -> Workload:
    """Phase-shifted diurnal tenants summed into one trace.

    Each tenant runs its own sinusoid around its mean rate, offset by
    ``tenant_index / n_tenants`` of a cycle — tenants peak at
    different times of day, so the aggregate is flatter than any one
    tenant (the consolidation argument for shared fleets). The period
    label names the tenant contributing the most arrivals.
    """
    if tenant_qps is None:
        tenant_qps = {"tenant-a": 0.8, "tenant-b": 0.5, "tenant-c": 0.3}
    check_non_empty("tenant_qps", tenant_qps)
    check_count("n_periods", n_periods, minimum=1)
    check_positive("period_s", period_s)
    for tenant, qps in tenant_qps.items():
        check_positive(f"tenant_qps[{tenant!r}]", qps)
    tenants = sorted(tenant_qps)
    periods = []
    for i in range(n_periods):
        counts: dict[str, int] = {}
        for j, tenant in enumerate(tenants):
            mean = tenant_qps[tenant]
            phase = 2.0 * math.pi * (i / n_periods + j / len(tenants))
            rate = mean * (1.0 + 0.8 * (1.0 - math.cos(phase)) / 2.0)
            rng = stream(seed, "workload", name, tenant, i)
            counts[tenant] = _poisson_count(rate, period_s, rng)
        top = max(tenants, key=lambda t: (counts[t], t))
        periods.append(WorkloadPeriod(
            duration_s=float(period_s),
            n_arrivals=sum(counts.values()),
            label=top,
        ))
    return Workload(periods=tuple(periods), name=name)


def zipfian_workload(
    n_periods: int = 20,
    period_s: float = 30.0,
    rate_qps: float = 1.5,
    pool_size: int = 30,
    zipf_s: float = 1.1,
    seed: int = 0,
    name: str = "zipf",
) -> Workload:
    """Steady offered load with a Zipf-skewed repeating query mix.

    The cache-friendly trace: period counts are Poisson at a flat
    ``rate_qps``, and every arrival's query is drawn over pool indices
    ``0..pool_size-1`` with weight ``1 / (rank+1)**zipf_s`` — index 0
    is the head of the popularity curve, so a handful of hot queries
    dominate while the tail stays cold, the textbook regime where a
    small result cache earns a large hit rate (``fig_cache``). The
    draw comes from the stream ``(seed, "workload", name, "mix")`` and
    lands in :attr:`Workload.query_mix`, so the skew replays
    byte-identically from a saved trace file.
    """
    check_count("n_periods", n_periods, minimum=1)
    check_positive("period_s", period_s)
    check_positive("rate_qps", rate_qps)
    check_count("pool_size", pool_size, minimum=1)
    check_positive("zipf_s", zipf_s)
    periods = []
    for i in range(n_periods):
        rng = stream(seed, "workload", name, "count", i)
        periods.append(WorkloadPeriod(
            duration_s=float(period_s),
            n_arrivals=_poisson_count(rate_qps, period_s, rng),
            label=f"p{i}",
        ))
    total = sum(p.n_arrivals for p in periods)
    weights = [1.0 / (rank + 1) ** zipf_s for rank in range(pool_size)]
    norm = sum(weights)
    probs = [w / norm for w in weights]
    mix_rng = stream(seed, "workload", name, "mix")
    mix = tuple(
        int(j) for j in mix_rng.choice(pool_size, size=total, p=probs)
    ) if total else ()
    return Workload(periods=tuple(periods), name=name, query_mix=mix)


#: Generator names accepted by :func:`make_workload` (and ``--workload``).
WORKLOAD_NAMES: tuple[str, ...] = ("diurnal", "bursty", "multi-tenant",
                                   "zipf")

_GENERATORS = {
    "diurnal": diurnal_workload,
    "bursty": bursty_workload,
    "multi-tenant": multi_tenant_workload,
    "zipf": zipfian_workload,
}


def make_workload(spec, seed: int = 0, **overrides) -> Workload:
    """Resolve a workload spec: an instance, a generator name, or a
    trace-file path (JSON, see :meth:`Workload.to_json`)."""
    if isinstance(spec, Workload):
        return spec
    if spec in _GENERATORS:
        return _GENERATORS[spec](seed=seed, **overrides)
    if isinstance(spec, (str, os.PathLike)) and (
        os.path.exists(spec) or str(spec).endswith(".json")
    ):
        return Workload.load(spec)
    known = ", ".join(WORKLOAD_NAMES)
    raise ValueError(
        f"unknown workload {spec!r}; known generators: {known} "
        "(or pass a trace-file path ending in .json)"
    )
