"""Corpus and query generation from a :class:`DatasetSpec`.

The generator plants facts at known positions, pads documents with
topic-correlated filler to the target length distribution (Table 1),
indexes the chunks, and then samples queries whose latent truth
(pieces, complexity, joint reasoning, summary needs) is derived from
the planted facts. Distractor similarity comes for free: every document
holds many facts but a query needs only a few, and attribute families
repeat across documents.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.facts import Fact
from repro.data.types import DatasetBundle, Query, QueryTruth
from repro.data.vocab import make_entity_name, make_filler_sentence, make_value_phrase
from repro.llm.quality import QualityParams
from repro.llm.tokenizer import SimTokenizer
from repro.retrieval.chunker import Chunk, split_into_chunks
from repro.retrieval.embedding import HashedEmbedding, IdfWeights
from repro.retrieval.store import VectorStore
from repro.util.rng import RngStreams

__all__ = ["DatasetSpec", "generate_dataset"]


@dataclass(frozen=True)
class DatasetSpec:
    """Everything that defines one synthetic dataset family."""

    name: str
    metadata: str
    style: str                      # fact-sentence surface form
    entity_kind: str
    chunk_tokens: int
    n_docs: int
    doc_token_range: tuple[int, int]
    facts_per_doc: tuple[int, int]
    value_words: tuple[int, int]
    verbosity_range: tuple[int, int]
    attribute_families: tuple[str, ...]
    attribute_qualifiers: tuple[str, ...]
    pieces_probs: tuple[tuple[int, float], ...]
    complexity_high_base: float
    complexity_high_per_piece: float
    joint_prob_single: float
    cross_doc_queries: bool
    n_queries: int
    answer_template: str
    filler_topic_rate: float = 0.18
    quality: QualityParams = field(default_factory=QualityParams)

    def __post_init__(self) -> None:
        if self.n_docs < 4:
            raise ValueError("need at least 4 documents")
        if self.n_queries < 1:
            raise ValueError("need at least 1 query")
        total = sum(p for _, p in self.pieces_probs)
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"pieces_probs must sum to 1, got {total}")


# ----------------------------------------------------------------------
# Corpus construction
# ----------------------------------------------------------------------
def _build_documents(
    spec: DatasetSpec, rngs: RngStreams, tokenizer: SimTokenizer
) -> tuple[dict[str, Fact], dict[str, str], dict[str, int], dict[str, str]]:
    """Returns (facts, doc_texts, doc_tokens, fact_entity_by_doc)."""
    rng = rngs.get("corpus")
    attributes = [
        f"{family} {qualifier}"
        for family in spec.attribute_families
        for qualifier in spec.attribute_qualifiers
    ]
    facts: dict[str, Fact] = {}
    doc_texts: dict[str, str] = {}
    doc_tokens: dict[str, int] = {}
    doc_entities: dict[str, str] = {}

    for d in range(spec.n_docs):
        doc_id = f"{spec.name}-d{d}"
        entity = make_entity_name(rng, spec.entity_kind)
        doc_entities[doc_id] = entity
        lo, hi = spec.facts_per_doc
        n_facts = int(rng.integers(lo, hi + 1))
        n_facts = min(n_facts, len(attributes))
        chosen = rng.choice(len(attributes), size=n_facts, replace=False)

        doc_facts: list[Fact] = []
        for j, attr_idx in enumerate(chosen):
            attribute = attributes[int(attr_idx)]
            v_lo, v_hi = spec.value_words
            value = make_value_phrase(rng, int(rng.integers(v_lo, v_hi + 1)))
            verb_lo, verb_hi = spec.verbosity_range
            fact = Fact(
                fact_id=f"{doc_id}/f{j}",
                doc_id=doc_id,
                entity=entity,
                attribute=attribute,
                value_text=value,
                sentence=Fact.render_sentence(entity, attribute, value,
                                              spec.style),
                verbosity=float(rng.integers(verb_lo, verb_hi + 1)),
            )
            facts[fact.fact_id] = fact
            doc_facts.append(fact)

        # Interleave fact sentences with topic-correlated filler until
        # the target document length is reached.
        target = int(rng.integers(*spec.doc_token_range))
        # Filler mixes in the entity's name and the words of the doc's
        # *own* attributes — realistic on-topic padding that creates
        # within-document distractors without blurring documents into
        # each other.
        topic_words = tuple(tokenizer.tokenize(entity)) + tuple(
            w for fact in doc_facts for w in fact.attribute.split()[:-1]
        )
        sentences: list[str] = [f.sentence for f in doc_facts]
        current = sum(tokenizer.count(s) for s in sentences)
        while current < target:
            filler = make_filler_sentence(
                rng, topic_words, topic_rate=spec.filler_topic_rate
            )
            sentences.append(filler)
            current += tokenizer.count(filler)
        order = rng.permutation(len(sentences))
        text = " ".join(sentences[int(i)] for i in order)
        doc_texts[doc_id] = text
        doc_tokens[doc_id] = tokenizer.count(text)

    return facts, doc_texts, doc_tokens, doc_entities


def _locate_facts(
    facts: dict[str, Fact], chunks: list[Chunk]
) -> dict[str, tuple[str, ...]]:
    """Map chunk_id → fact_ids by (unique) sentence containment."""
    by_doc: dict[str, list[Chunk]] = {}
    for chunk in chunks:
        by_doc.setdefault(chunk.doc_id, []).append(chunk)
    chunk_facts: dict[str, list[str]] = {c.chunk_id: [] for c in chunks}
    for fact in facts.values():
        placed = False
        for chunk in by_doc.get(fact.doc_id, ()):
            if fact.sentence in chunk.text:
                chunk_facts[chunk.chunk_id].append(fact.fact_id)
                placed = True
                break
        if not placed:
            raise RuntimeError(
                f"fact {fact.fact_id} was split across chunks; lower "
                "facts_per_doc or raise chunk_tokens"
            )
    return {cid: tuple(fids) for cid, fids in chunk_facts.items()}


# ----------------------------------------------------------------------
# Query construction
# ----------------------------------------------------------------------
def _sample_pieces(spec: DatasetSpec, rng: np.random.Generator) -> int:
    values = [v for v, _ in spec.pieces_probs]
    probs = [p for _, p in spec.pieces_probs]
    return int(rng.choice(values, p=probs))


def _pick_facts(
    spec: DatasetSpec,
    rng: np.random.Generator,
    pieces: int,
    facts: dict[str, Fact],
    fact_chunk: dict[str, str],
) -> list[Fact]:
    """Pick ``pieces`` required facts under the dataset's placement rule."""
    all_facts = list(facts.values())
    if pieces == 1:
        return [all_facts[int(rng.integers(len(all_facts)))]]

    if spec.cross_doc_queries:
        # Multi-hop: facts from distinct documents, same attribute
        # family where possible (mirrors "are X, Y, Z from the same
        # country?" queries).
        by_family: dict[str, list[Fact]] = {}
        for fact in all_facts:
            family = fact.attribute.rsplit(" ", 1)[0]
            by_family.setdefault(family, []).append(fact)
        families = [f for f, members in by_family.items()
                    if len({m.doc_id for m in members}) >= pieces]
        if families:
            family = families[int(rng.integers(len(families)))]
            pool = by_family[family]
            picked: list[Fact] = []
            seen_docs: set[str] = set()
            for idx in rng.permutation(len(pool)):
                fact = pool[int(idx)]
                if fact.doc_id not in seen_docs:
                    picked.append(fact)
                    seen_docs.add(fact.doc_id)
                if len(picked) == pieces:
                    return picked
        # Fallback: any facts from distinct docs.
        picked, seen_docs = [], set()
        for idx in rng.permutation(len(all_facts)):
            fact = all_facts[int(idx)]
            if fact.doc_id not in seen_docs:
                picked.append(fact)
                seen_docs.add(fact.doc_id)
            if len(picked) == pieces:
                return picked
        return picked  # corpus too small; return what we have

    # Doc-level QA: facts from one document, distinct chunks preferred.
    by_doc: dict[str, list[Fact]] = {}
    for fact in all_facts:
        by_doc.setdefault(fact.doc_id, []).append(fact)
    candidates = [d for d, fs in by_doc.items() if len(fs) >= pieces]
    if not candidates:
        candidates = sorted(by_doc, key=lambda d: -len(by_doc[d]))
    doc_id = candidates[int(rng.integers(len(candidates)))]
    pool = by_doc[doc_id]
    # Prefer facts in distinct chunks so the query genuinely needs
    # multiple retrievals.
    picked, seen_chunks = [], set()
    for idx in rng.permutation(len(pool)):
        fact = pool[int(idx)]
        chunk_id = fact_chunk[fact.fact_id]
        if chunk_id not in seen_chunks:
            picked.append(fact)
            seen_chunks.add(chunk_id)
        if len(picked) == pieces:
            return picked
    for idx in rng.permutation(len(pool)):
        fact = pool[int(idx)]
        if fact not in picked:
            picked.append(fact)
        if len(picked) == pieces:
            break
    return picked


def _query_text(
    spec: DatasetSpec,
    rng: np.random.Generator,
    picked: list[Fact],
    complexity_high: bool,
) -> str:
    """Render query text that shares tokens with every required fact."""
    if len(picked) == 1:
        fact = picked[0]
        if complexity_high:
            return (
                f"Explain why the {fact.attribute} of {fact.entity} "
                "turned out this way and give the value."
            )
        return f"What is the {fact.attribute} of {fact.entity}?"

    entities = {f.entity for f in picked}
    attrs = ", ".join(f.attribute for f in picked)
    if len(entities) == 1:
        entity = picked[0].entity
        if complexity_high:
            return (
                f"Compare the {attrs} of {entity}, explain the reasons "
                "for the differences, and identify the highest one."
            )
        return f"Compare the {attrs} of {entity} and identify the highest one."
    clauses = ", ".join(f"the {f.attribute} of {f.entity}" for f in picked)
    family = picked[0].attribute.rsplit(" ", 1)[0]
    if complexity_high:
        return (
            f"Considering {clauses}, explain how they relate on "
            f"{family} and why."
        )
    return f"Comparing {clauses}, are they the same {family}?"


def _summary_range(
    picked: list[Fact], fact_chunk: dict[str, str]
) -> tuple[int, int]:
    """Usable ``intermediate_length`` range from per-chunk verbosity demand."""
    demand: dict[str, float] = {}
    for fact in picked:
        chunk_id = fact_chunk[fact.fact_id]
        demand[chunk_id] = demand.get(chunk_id, 0.0) + fact.verbosity
    needed = max(demand.values())
    lo = max(20, round(1.2 * needed))
    hi = max(lo + 10, round(2.4 * needed))
    return lo, min(hi, 300)


# ----------------------------------------------------------------------
def generate_dataset(spec: DatasetSpec, seed: int = 0) -> DatasetBundle:
    """Build a full :class:`DatasetBundle` from a spec, reproducibly."""
    rngs = RngStreams(seed).child("dataset", spec.name)
    tokenizer = SimTokenizer()

    facts, doc_texts, doc_tokens, _ = _build_documents(spec, rngs, tokenizer)

    chunks: list[Chunk] = []
    for doc_id, text in doc_texts.items():
        chunks.extend(
            split_into_chunks(doc_id, text, spec.chunk_tokens,
                              tokenizer=tokenizer)
        )
    chunk_facts = _locate_facts(facts, chunks)
    fact_chunk = {
        fid: cid for cid, fids in chunk_facts.items() for fid in fids
    }

    idf = IdfWeights().fit([c.text for c in chunks])
    store = VectorStore(embedding=HashedEmbedding(idf=idf))
    store.add_chunks(chunks)

    rng = rngs.get("queries")
    template_tokens = tuple(tokenizer.tokenize(spec.answer_template))
    queries: list[Query] = []
    for i in range(spec.n_queries):
        pieces = _sample_pieces(spec, rng)
        picked = _pick_facts(spec, rng, pieces, facts, fact_chunk)
        pieces = len(picked)  # corpus may cap the request
        p_high = min(
            0.95,
            spec.complexity_high_base
            + spec.complexity_high_per_piece * (pieces - 1),
        )
        complexity_high = bool(rng.random() < p_high)
        joint = pieces > 1 or bool(rng.random() < spec.joint_prob_single)
        text = _query_text(spec, rng, picked, complexity_high)
        answer_tokens = len(template_tokens) + sum(
            len(f.value_tokens) for f in picked
        )
        truth = QueryTruth(
            complexity_high=complexity_high,
            joint_reasoning=joint,
            required_fact_ids=tuple(f.fact_id for f in picked),
            summary_range=_summary_range(picked, fact_chunk),
            answer_template_tokens=template_tokens,
        )
        queries.append(
            Query(
                query_id=f"{spec.name}-q{i}",
                text=text,
                n_tokens=tokenizer.count(text),
                truth=truth,
                answer_tokens_estimate=max(4, answer_tokens),
            )
        )

    return DatasetBundle(
        name=spec.name,
        metadata=spec.metadata,
        chunk_tokens=spec.chunk_tokens,
        store=store,
        queries=queries,
        facts=facts,
        chunk_facts=chunk_facts,
        doc_tokens=doc_tokens,
        quality_params=spec.quality,
        tokenizer=tokenizer,
    )
