"""Workload generators: how queries arrive at the serving system.

The paper's main experiments send 200 queries per dataset as a Poisson
process at 2 queries/second (§7.1); the low-load experiment (Fig 19)
sends them sequentially — each query only after the previous finished,
which the runner implements as a closed loop.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.types import Query
from repro.util.rng import RngStreams
from repro.util.validation import check_positive

__all__ = ["Arrival", "poisson_arrivals", "uniform_arrivals",
           "sequential_arrivals"]


@dataclass(frozen=True)
class Arrival:
    """One query arrival; ``time`` is None for closed-loop workloads
    (the runner submits it when the previous query completes)."""

    query: Query
    time: float | None


def poisson_arrivals(
    queries: list[Query], rate_qps: float, seed: int = 0
) -> list[Arrival]:
    """Open-loop Poisson arrivals at ``rate_qps`` queries/second."""
    check_positive("rate_qps", rate_qps)
    rng = RngStreams(seed).get("arrivals", "poisson")
    t = 0.0
    arrivals: list[Arrival] = []
    for query in queries:
        t += float(rng.exponential(1.0 / rate_qps))
        arrivals.append(Arrival(query=query, time=t))
    return arrivals


def uniform_arrivals(queries: list[Query], rate_qps: float) -> list[Arrival]:
    """Open-loop deterministic arrivals at a fixed interval."""
    check_positive("rate_qps", rate_qps)
    interval = 1.0 / rate_qps
    return [
        Arrival(query=query, time=(i + 1) * interval)
        for i, query in enumerate(queries)
    ]


def sequential_arrivals(queries: list[Query]) -> list[Arrival]:
    """Closed-loop workload: each query follows the previous completion."""
    return [Arrival(query=query, time=None) for query in queries]
