"""The four evaluation datasets (paper §7.1, Table 1).

Each spec is calibrated so that the generated corpora match the paper's
input/output token distributions and task characters:

=========  ==================  ============  ===========
dataset    task type           input tokens  output tokens
=========  ==================  ============  ===========
squad      single-hop QA       0.4K–2K       5–10
musique    multi-hop QA        1K–5K         5–20
finsec     doc-level QA        4K–10K        20–40
qmsum      summarisation QA    4K–12K        20–60
=========  ==================  ============  ===========
"""

from __future__ import annotations

from repro.data.generator import DatasetSpec, generate_dataset
from repro.data.types import DatasetBundle
from repro.llm.quality import QualityParams

__all__ = ["DATASET_NAMES", "get_spec", "build_dataset"]


_SQUAD = DatasetSpec(
    name="squad",
    metadata=(
        "The dataset consists of short encyclopedia passages about "
        "places, people and organizations; questions ask for a single "
        "stated fact. The chunk size is 256 tokens."
    ),
    style="plain",
    entity_kind="place",
    chunk_tokens=256,
    n_docs=48,
    doc_token_range=(400, 2_000),
    facts_per_doc=(4, 8),
    value_words=(2, 6),
    verbosity_range=(8, 16),
    attribute_families=(
        "birth county", "founding year", "location country", "population size",
        "team name", "award title", "construction date", "namesake origin",
    ),
    attribute_qualifiers=("record", "entry", "listing", "account"),
    pieces_probs=((1, 0.85), (2, 0.15)),
    complexity_high_base=0.08,
    complexity_high_per_piece=0.25,
    joint_prob_single=0.05,
    cross_doc_queries=False,
    n_queries=200,
    filler_topic_rate=0.15,
    answer_template="the answer is",
    quality=QualityParams(token_match_rate=0.78, noise_rate_stuff=0.5),
)

_MUSIQUE = DatasetSpec(
    name="musique",
    metadata=(
        "The dataset consists of multi-hop reasoning questions over "
        "encyclopedia articles; answering requires combining facts "
        "from multiple documents. The chunk size is 384 tokens."
    ),
    style="plain",
    entity_kind="person",
    chunk_tokens=384,
    n_docs=48,
    doc_token_range=(1_000, 5_000),
    facts_per_doc=(5, 9),
    value_words=(2, 6),
    verbosity_range=(12, 22),
    attribute_families=(
        "home country", "spouse name", "director name", "parent company",
        "capital city", "founder name", "language spoken", "birth year",
    ),
    attribute_qualifiers=("record", "profile", "history"),
    pieces_probs=((1, 0.10), (2, 0.35), (3, 0.35), (4, 0.20)),
    complexity_high_base=0.20,
    complexity_high_per_piece=0.20,
    joint_prob_single=0.10,
    cross_doc_queries=True,
    n_queries=200,
    filler_topic_rate=0.05,
    answer_template="the answer is",
    quality=QualityParams(token_match_rate=0.62, noise_rate_stuff=0.6),
)

_FINSEC = DatasetSpec(
    name="finsec",
    metadata=(
        "The dataset consists of multiple chunks of information from "
        "Fortune 500 companies on financial reports from every quarter "
        "of 2023 and 2024, including revenue growth indicators, product "
        "release information and sales. The chunk size is 1024 tokens."
    ),
    style="report",
    entity_kind="corp",
    chunk_tokens=1_024,
    n_docs=36,
    doc_token_range=(4_000, 10_000),
    facts_per_doc=(8, 14),
    value_words=(4, 8),
    verbosity_range=(20, 40),
    attribute_families=(
        "operating cost", "net revenue", "gross margin",
        "capital expenditure", "cash flow", "share buyback",
        "product revenue", "guidance outlook",
    ),
    attribute_qualifiers=(
        "q1 2023", "q2 2023", "q3 2023", "q4 2023",
        "q1 2024", "q2 2024", "q3 2024",
    ),
    pieces_probs=((2, 0.60), (3, 0.30), (4, 0.10)),
    complexity_high_base=0.25,
    complexity_high_per_piece=0.12,
    joint_prob_single=0.10,
    cross_doc_queries=False,
    n_queries=200,
    filler_topic_rate=0.18,
    answer_template="based on the reports",
    quality=QualityParams(token_match_rate=0.70, noise_rate_stuff=0.6),
)

_QMSUM = DatasetSpec(
    name="qmsum",
    metadata=(
        "The dataset consists of long multi-domain meeting transcripts; "
        "queries ask for summaries of decisions, action items and "
        "discussions across meeting spans. The chunk size is 512 tokens."
    ),
    style="meeting",
    entity_kind="team",
    chunk_tokens=448,
    n_docs=32,
    doc_token_range=(4_000, 12_000),
    facts_per_doc=(10, 16),
    value_words=(4, 9),
    verbosity_range=(60, 110),
    attribute_families=(
        "budget planning", "remote hiring", "product roadmap",
        "interface design", "user research", "marketing launch",
        "release schedule", "training data",
    ),
    attribute_qualifiers=(
        "decision", "action items", "discussion", "disagreement", "follow up",
    ),
    pieces_probs=((3, 0.60), (4, 0.25), (5, 0.10), (6, 0.05)),
    complexity_high_base=0.45,
    complexity_high_per_piece=0.08,
    joint_prob_single=0.20,
    cross_doc_queries=False,
    n_queries=200,
    filler_topic_rate=0.08,
    answer_template="in summary the group agreed",
    quality=QualityParams(token_match_rate=0.55, noise_rate_stuff=0.7),
)

_SPECS: dict[str, DatasetSpec] = {
    spec.name: spec for spec in (_SQUAD, _MUSIQUE, _FINSEC, _QMSUM)
}

DATASET_NAMES: tuple[str, ...] = tuple(sorted(_SPECS))

_CACHE: dict[tuple[str, int, int], DatasetBundle] = {}


def get_spec(name: str) -> DatasetSpec:
    """Look up a dataset spec by name."""
    try:
        return _SPECS[name]
    except KeyError:
        known = ", ".join(DATASET_NAMES)
        raise KeyError(f"unknown dataset {name!r}; known: {known}") from None


def build_dataset(
    name: str,
    seed: int = 0,
    n_queries: int | None = None,
    cache: bool = True,
) -> DatasetBundle:
    """Build (or fetch from cache) a dataset by name.

    ``n_queries`` overrides the spec's default query count (handy for
    fast tests); corpora are identical for any ``n_queries``.
    """
    spec = get_spec(name)
    if n_queries is not None:
        from dataclasses import replace

        spec = replace(spec, n_queries=n_queries)
    key = (name, seed, spec.n_queries)
    if cache and key in _CACHE:
        return _CACHE[key]
    bundle = generate_dataset(spec, seed=seed)
    if cache:
        _CACHE[key] = bundle
    return bundle
