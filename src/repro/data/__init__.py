"""Synthetic RAG-QA datasets mirroring the paper's four workloads.

* ``squad``   — single-hop reading comprehension (short passages),
* ``musique`` — multi-hop reasoning QA (facts spread across documents),
* ``finsec``  — document-level financial QA (long quarterly reports),
* ``qmsum``   — query-based meeting summarisation (long transcripts).

Each generator produces a :class:`DatasetBundle`: an indexed corpus with
known fact placement, queries with latent ground-truth profiles, and the
calibrated quality parameters for the behavioural generation model.
"""

from repro.data.datasets import (
    DATASET_NAMES,
    build_dataset,
    get_spec,
)
from repro.data.generator import DatasetSpec, generate_dataset
from repro.data.facts import Fact
from repro.data.types import DatasetBundle, Query, QueryTruth
from repro.data.workload import Arrival, poisson_arrivals, sequential_arrivals

__all__ = [
    "Arrival",
    "DATASET_NAMES",
    "DatasetBundle",
    "DatasetSpec",
    "Fact",
    "Query",
    "QueryTruth",
    "build_dataset",
    "generate_dataset",
    "get_spec",
    "poisson_arrivals",
    "sequential_arrivals",
]
