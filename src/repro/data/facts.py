"""Facts: the atomic pieces of information queries ask about.

A fact is an (entity, attribute, value) triple rendered into a sentence
that is planted in exactly one place in the corpus. Because the
generator knows where every fact lives, retrieval recall and answer
quality can be *measured* rather than assumed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.llm.quality import FactView
from repro.llm.tokenizer import SimTokenizer

__all__ = ["Fact"]

_TOKENIZER = SimTokenizer()


@dataclass(frozen=True)
class Fact:
    """One planted piece of information.

    Attributes:
        fact_id: globally unique id (``doc_id/fN``).
        doc_id: the document the fact's sentence lives in.
        entity / attribute / value_text: the triple.
        sentence: the exact sentence planted in the document (unique in
            the corpus, so chunk membership is recoverable by substring
            search).
        verbosity: summary tokens needed to preserve the fact through a
            mapper (dataset-dependent).
    """

    fact_id: str
    doc_id: str
    entity: str
    attribute: str
    value_text: str
    sentence: str
    verbosity: float

    @property
    def value_tokens(self) -> tuple[str, ...]:
        """Ground-truth answer tokens contributed by this fact."""
        return tuple(_TOKENIZER.tokenize(self.value_text))

    def view(self) -> FactView:
        """Project to the quality model's representation."""
        return FactView(
            fact_id=self.fact_id,
            value_tokens=self.value_tokens,
            verbosity=self.verbosity,
        )

    @staticmethod
    def render_sentence(entity: str, attribute: str, value_text: str,
                        style: str = "plain") -> str:
        """Render the planted sentence for a triple.

        Styles give each dataset a distinct surface form:
        ``plain`` (squad/musique), ``report`` (finsec),
        ``meeting`` (qmsum).
        """
        if style == "report":
            return f"{entity} reported {attribute} of {value_text}."
        if style == "meeting":
            return (
                f"Regarding {attribute}, {entity} concluded {value_text}."
            )
        return f"The {attribute} of {entity} is {value_text}."
