"""Dataset-facing types: queries with latent truth, dataset bundles.

The *latent truth* of a query (its actual complexity, joint-reasoning
need, required facts, and usable summary-length range) is what the
paper's LLM profiler estimates from natural language. The simulator
keeps it explicit so profiler accuracy is a controlled quantity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.facts import Fact
from repro.llm.quality import ChunkView, QualityParams, SynthesisContext
from repro.llm.tokenizer import SimTokenizer
from repro.retrieval.store import VectorStore

__all__ = ["QueryTruth", "Query", "DatasetBundle"]


@dataclass(frozen=True)
class QueryTruth:
    """Latent ground-truth profile of a query (what a perfect profiler
    would output, plus the facts needed for a perfect answer)."""

    complexity_high: bool
    joint_reasoning: bool
    required_fact_ids: tuple[str, ...]
    summary_range: tuple[int, int]
    answer_template_tokens: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.required_fact_ids:
            raise ValueError("a query must require at least one fact")
        lo, hi = self.summary_range
        if not 1 <= lo <= hi:
            raise ValueError(f"invalid summary_range: {self.summary_range}")

    @property
    def pieces_of_information(self) -> int:
        return len(self.required_fact_ids)


@dataclass(frozen=True)
class Query:
    """One RAG query as submitted by a client."""

    query_id: str
    text: str
    n_tokens: int
    truth: QueryTruth
    answer_tokens_estimate: int

    def __post_init__(self) -> None:
        if self.n_tokens <= 0:
            raise ValueError(f"n_tokens must be positive, got {self.n_tokens}")
        if self.answer_tokens_estimate <= 0:
            raise ValueError(
                "answer_tokens_estimate must be positive, "
                f"got {self.answer_tokens_estimate}"
            )


@dataclass
class DatasetBundle:
    """A ready-to-serve dataset: corpus, index, queries, and truth maps.

    Attributes:
        metadata: the single-line database description fed to the
            profiler (paper Appendix A.1).
        chunk_facts: chunk_id → fact_ids planted in that chunk.
        doc_tokens: doc_id → token length (Table 1 statistics).
    """

    name: str
    metadata: str
    chunk_tokens: int
    store: VectorStore
    queries: list[Query]
    facts: dict[str, Fact]
    chunk_facts: dict[str, tuple[str, ...]]
    doc_tokens: dict[str, int]
    quality_params: QualityParams = field(default_factory=QualityParams)
    tokenizer: SimTokenizer = field(default_factory=SimTokenizer)

    def __post_init__(self) -> None:
        if not self.queries:
            raise ValueError("dataset has no queries")
        missing = [
            fid
            for q in self.queries
            for fid in q.truth.required_fact_ids
            if fid not in self.facts
        ]
        if missing:
            raise ValueError(f"queries reference unknown facts: {missing[:5]}")

    # ------------------------------------------------------------------
    def query_by_id(self, query_id: str) -> Query:
        for query in self.queries:
            if query.query_id == query_id:
                return query
        raise KeyError(f"no query {query_id!r} in dataset {self.name!r}")

    def relevant_chunk_ids(self, query: Query) -> set[str]:
        """Chunks containing at least one required fact of ``query``."""
        needed = set(query.truth.required_fact_ids)
        return {
            chunk_id
            for chunk_id, fact_ids in self.chunk_facts.items()
            if needed.intersection(fact_ids)
        }

    def synthesis_context(
        self, query: Query, chunk_ids: list[str]
    ) -> SynthesisContext:
        """Build the quality model's view for retrieved ``chunk_ids``
        (rank order preserved)."""
        required = tuple(
            self.facts[fid].view() for fid in query.truth.required_fact_ids
        )
        views = []
        for chunk_id in chunk_ids:
            chunk = self.store.get(chunk_id)
            fact_views = tuple(
                self.facts[fid].view()
                for fid in self.chunk_facts.get(chunk_id, ())
                if fid in set(query.truth.required_fact_ids)
            )
            views.append(
                ChunkView(
                    chunk_id=chunk_id,
                    n_tokens=chunk.n_tokens,
                    facts=fact_views,
                )
            )
        return SynthesisContext(
            query_id=query.query_id,
            complexity_high=query.truth.complexity_high,
            joint_reasoning=query.truth.joint_reasoning,
            required_facts=required,
            chunks=tuple(views),
            answer_template_tokens=query.truth.answer_template_tokens,
        )

    # ------------------------------------------------------------------
    def table1_row(self) -> dict[str, float]:
        """Input/output token statistics (the paper's Table 1)."""
        doc_lengths = sorted(self.doc_tokens.values())
        answers = sorted(
            len(q.truth.answer_template_tokens)
            + sum(
                len(self.facts[fid].value_tokens)
                for fid in q.truth.required_fact_ids
            )
            for q in self.queries
        )

        def pct(values: list[int], q: float) -> float:
            idx = min(len(values) - 1, int(q * len(values)))
            return float(values[idx])

        return {
            "input_p10": pct(doc_lengths, 0.10),
            "input_p90": pct(doc_lengths, 0.90),
            "output_p10": pct(answers, 0.10),
            "output_p90": pct(answers, 0.90),
        }
