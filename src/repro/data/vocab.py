"""Word pools and deterministic text generators for synthetic corpora.

All generation is driven by an explicit ``numpy`` Generator so corpora
are exactly reproducible from a seed.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "FILLER_WORDS",
    "VALUE_WORDS",
    "make_entity_name",
    "make_value_phrase",
    "make_filler_sentence",
]

#: Common connective words for filler sentences (low information).
FILLER_WORDS: tuple[str, ...] = (
    "the", "of", "and", "in", "to", "with", "for", "over", "under", "during",
    "report", "section", "notes", "context", "general", "overview", "period",
    "update", "status", "various", "related", "additional", "further",
    "standard", "typical", "regular", "ongoing", "recent", "prior", "annual",
    "summary", "detail", "record", "item", "entry", "matter", "topic",
    "discussion", "review", "analysis", "background", "information",
)

#: Content words used to build fact values (distinct from filler so
#: value tokens are informative for retrieval and F1).
VALUE_WORDS: tuple[str, ...] = (
    "crimson", "azure", "amber", "violet", "emerald", "cobalt", "scarlet",
    "ivory", "obsidian", "silver", "golden", "bronze", "copper", "platinum",
    "delta", "sigma", "omega", "alpha", "theta", "lambda", "kappa", "zeta",
    "harbor", "summit", "valley", "ridge", "meadow", "canyon", "plateau",
    "junction", "crossing", "terrace", "orchard", "quarry", "basin", "grove",
    "seven", "twelve", "forty", "ninety", "eleven", "thirty", "sixty",
    "million", "percent", "units", "shares", "points", "degrees", "meters",
)

_SYLLABLES: tuple[str, ...] = (
    "bar", "cor", "dal", "fen", "gar", "hol", "jun", "kel", "lor", "mar",
    "nor", "pel", "quin", "ros", "sal", "tor", "ul", "ver", "wex", "yor",
    "zan", "bel", "cam", "dor", "el", "fal", "gren", "hart", "ister", "jor",
)

_ENTITY_SUFFIXES: tuple[str, ...] = (
    "corp", "group", "labs", "industries", "holdings", "systems", "partners",
    "county", "city", "university", "institute", "committee", "council",
)


def make_entity_name(rng: np.random.Generator, kind: str = "corp") -> str:
    """Generate a pronounceable two-syllable entity name.

    ``kind`` picks the suffix family (``corp`` for companies, ``place``
    for locations, ``person`` for people, ``team`` for groups).

    Name words are clipped to 6 characters so the tokenizer keeps them
    as single whole tokens — longer words would be split into 4-char
    pieces that alias across entities and blur retrieval.
    """
    first = (rng.choice(_SYLLABLES) + rng.choice(_SYLLABLES))[:6]
    if kind == "person":
        second = (rng.choice(_SYLLABLES) + rng.choice(_SYLLABLES))[:6]
        return f"{first.capitalize()} {second.capitalize()}"
    if kind == "place":
        suffix = rng.choice(("county", "city", "valley", "district"))
        return f"{first.capitalize()} {suffix}"
    if kind == "team":
        suffix = rng.choice(("committee", "team", "group", "council"))
        return f"{first.capitalize()} {suffix}"
    suffix = rng.choice(_ENTITY_SUFFIXES[:7])
    return f"{first.capitalize()} {suffix}"


def make_value_phrase(rng: np.random.Generator, n_words: int) -> str:
    """A value phrase of ``n_words`` content words (no repeats)."""
    if n_words <= 0:
        raise ValueError(f"n_words must be positive, got {n_words}")
    n = min(n_words, len(VALUE_WORDS))
    words = rng.choice(len(VALUE_WORDS), size=n, replace=False)
    phrase = [VALUE_WORDS[int(i)] for i in words]
    # Pad with indexed variants when more words than the pool holds.
    for extra in range(n_words - n):
        phrase.append(f"{VALUE_WORDS[extra % len(VALUE_WORDS)]}{extra}")
    return " ".join(phrase)


def make_filler_sentence(
    rng: np.random.Generator,
    topic_words: tuple[str, ...],
    n_words: int = 12,
    topic_rate: float = 0.25,
) -> str:
    """A low-information sentence mixing filler and topic words.

    ``topic_rate`` controls how on-topic the padding is: higher values
    make a document's chunks look more alike (harder retrieval
    discrimination within the document).
    """
    words: list[str] = []
    for _ in range(n_words):
        use_topic = topic_words and rng.random() < topic_rate
        pool = topic_words if use_topic else FILLER_WORDS
        words.append(str(rng.choice(pool)))
    words[0] = words[0].capitalize()
    return " ".join(words) + "."
