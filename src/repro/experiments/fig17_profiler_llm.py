"""Fig 17: an open-source profiler LLM keeps the gains.

Swap GPT-4o for Llama-3.1-70B as the profiler (FinSec and Squad in the
paper). Paper: METIS still 1.4–2.1× faster than AdaptiveRAG* at similar
F1, and 10–14% higher F1 than similar-delay fixed configs.
"""

from __future__ import annotations

from repro.core import MetisConfig
from repro.core.profiler import LLAMA70B_PROFILER
from repro.experiments.common import (
    ExperimentReport,
    load_bundle,
    make_adaptive_rag,
    make_metis,
    run_fixed_grid,
    run_policy,
    select_similar_delay,
)

__all__ = ["run"]

_DATASETS = ("finsec", "squad")


def run(fast: bool = False, seed: int = 0) -> ExperimentReport:
    report = ExperimentReport("Fig 17: Llama-70B as the profiler LLM")
    for dataset in _DATASETS:
        bundle = load_bundle(dataset, fast, seed)
        metis = run_policy(
            bundle,
            make_metis(bundle, MetisConfig(profiler_spec=LLAMA70B_PROFILER),
                       seed=seed, name="metis[llama-profiler]"),
            seed=seed,
        )
        adaptive = run_policy(
            bundle,
            make_adaptive_rag(bundle, profiler_spec=LLAMA70B_PROFILER,
                              seed=seed),
            seed=seed,
        )
        fixed = select_similar_delay(run_fixed_grid(bundle, seed=seed),
                                     metis.mean_delay)
        for system, result in (
            ("METIS (llama profiler)", metis),
            ("AdaptiveRAG* (llama profiler)", adaptive),
            (f"vLLM fixed [{fixed.policy}]", fixed),
        ):
            report.add_row(dataset=dataset, system=system,
                           mean_delay_s=result.mean_delay,
                           mean_f1=result.mean_f1)
        ratio = adaptive.mean_delay / max(metis.mean_delay, 1e-9)
        gap = (metis.mean_f1 - fixed.mean_f1) / max(fixed.mean_f1, 1e-9)
        report.add_note(
            f"{dataset}: METIS {ratio:.2f}x faster than AdaptiveRAG* "
            f"(paper 1.4-2.1x); +{gap:.0%} F1 over similar-delay fixed "
            f"(paper 10-14%)"
        )
    return report
