"""Ablation: METIS' §5 refinements, toggled individually.

DESIGN.md §5 calls out the design choices worth ablating beyond the
paper's own Fig 12/16: the confidence-threshold fallback and the
best-fit-vs-median selection. Each row serves the same workload with
exactly one switch changed from the full system.
"""

from __future__ import annotations

from repro.core import MetisConfig
from repro.experiments.common import (
    ExperimentReport,
    load_bundle,
    make_metis,
    run_policy,
)

__all__ = ["run"]

_DATASET = "finsec"

_VARIANTS: tuple[tuple[str, MetisConfig], ...] = (
    ("METIS (full)", MetisConfig()),
    ("no confidence fallback",
     MetisConfig(enable_confidence_fallback=False)),
    ("median selection", MetisConfig(selection_mode="median",
                                     memory_aware=False)),
    ("max selection (resource-oblivious)",
     MetisConfig(selection_mode="max", memory_aware=False)),
    ("narrow retrieval slack (2x)", MetisConfig(chunk_slack=2.0)),
    ("coarse ilen grid (2 steps)", MetisConfig(ilen_steps=2)),
)


def run(fast: bool = False, seed: int = 0) -> ExperimentReport:
    report = ExperimentReport(
        "Ablation: §5 refinements and scheduler choices (finsec)"
    )
    bundle = load_bundle(_DATASET, fast, seed)
    baseline = None
    for label, config in _VARIANTS:
        policy = make_metis(bundle, config, seed=seed, name=label)
        result = run_policy(bundle, policy, seed=seed)
        fell_back = sum(1 for r in result.records if r.fell_back)
        report.add_row(
            variant=label,
            mean_delay_s=result.mean_delay,
            mean_f1=result.mean_f1,
            fallbacks=fell_back,
        )
        if baseline is None:
            baseline = result
        else:
            report.add_note(
                f"{label}: delay {result.mean_delay / max(baseline.mean_delay, 1e-9):.2f}x, "
                f"F1 {result.mean_f1 - baseline.mean_f1:+.3f} vs full METIS"
            )
    return report
