"""Fig 14: golden-configuration feedback improves the profiler.

Runs METIS with and without the §5 feedback loop on a 350-query
workload (QMSUM and FinSec in the paper) and reports the cumulative F1
trajectory plus the final improvement (paper: +4–6%).
"""

from __future__ import annotations

import numpy as np

from repro.core import MetisConfig
from repro.core.feedback import FeedbackConfig
from repro.data import build_dataset
from repro.experiments.common import (
    DEFAULT_RATES,
    ExperimentReport,
    make_metis,
    run_policy,
)

__all__ = ["run"]

_DATASETS = ("qmsum", "finsec")
_N_QUERIES = 350
_FAST_N = 90
#: Slightly under the standard rate so the long run stays in steady
#: state and quality effects aren't confounded by queueing drift.
_RATE_SCALE = 0.8


def _cumulative_f1(records, window: int = 50) -> list[float]:
    """Trailing-window mean F1 in arrival order."""
    ordered = sorted(records, key=lambda r: r.arrival_time)
    values = [r.f1 for r in ordered]
    out = []
    for i in range(len(values)):
        lo = max(0, i - window + 1)
        out.append(float(np.mean(values[lo : i + 1])))
    return out


def run(fast: bool = False, seed: int = 0) -> ExperimentReport:
    report = ExperimentReport("Fig 14: profiler feedback improvement")
    n = _FAST_N if fast else _N_QUERIES
    for dataset in _DATASETS:
        bundle = build_dataset(dataset, seed=seed, n_queries=n)
        rate = DEFAULT_RATES[dataset] * _RATE_SCALE
        base = run_policy(
            bundle,
            make_metis(bundle, seed=seed, name="metis-no-feedback"),
            rate_qps=rate, seed=seed,
        )
        with_fb = run_policy(
            bundle,
            make_metis(
                bundle,
                MetisConfig(enable_feedback=True, feedback=FeedbackConfig()),
                seed=seed,
                name="metis-feedback",
            ),
            rate_qps=rate, seed=seed,
        )
        base_curve = _cumulative_f1(base.records)
        fb_curve = _cumulative_f1(with_fb.records)
        for idx in range(0, len(base_curve), max(1, len(base_curve) // 8)):
            report.add_row(dataset=dataset, query_index=idx,
                           f1_no_feedback=base_curve[idx],
                           f1_with_feedback=fb_curve[idx])
        # Final-third comparison (feedback needs warm-up).
        tail = len(base_curve) // 3
        base_tail = float(np.mean([r.f1 for r in base.records][-tail:]))
        fb_tail = float(np.mean([r.f1 for r in with_fb.records][-tail:]))
        gain = (fb_tail - base_tail) / max(base_tail, 1e-9)
        report.add_note(
            f"{dataset}: final-third F1 {base_tail:.3f} -> {fb_tail:.3f} "
            f"(+{gain:.1%}; paper: +4-6%) with "
            f"{len(getattr(with_fb, 'records', []))} queries"
        )
    return report
