"""Experiment drivers: one module per paper table/figure.

Each driver exposes ``run(fast: bool = False, seed: int = 0) ->
ExperimentReport``; the ``benchmarks/`` tree wraps these in
pytest-benchmark targets. ``fast=True`` shrinks query counts and sweep
grids for CI-speed smoke runs without changing the experiment's shape.
"""

from repro.experiments.common import (
    DEFAULT_RATES,
    ExperimentReport,
    default_engine_config,
    fixed_config_grid,
    make_adaptive_rag,
    make_metis,
    run_policy,
)

__all__ = [
    "DEFAULT_RATES",
    "ExperimentReport",
    "default_engine_config",
    "fixed_config_grid",
    "make_adaptive_rag",
    "make_metis",
    "run_policy",
]
