"""Table 1: input/output token-length distributions of the datasets."""

from __future__ import annotations

from repro.data import DATASET_NAMES
from repro.experiments.common import ExperimentReport, load_bundle

__all__ = ["run"]

#: The paper's Table 1 (tokens), for side-by-side comparison.
PAPER_TABLE1 = {
    "squad": ("Single hop QA", "0.4K - 2K", "5-10"),
    "musique": ("Multihop QA", "1K - 5K", "5-20"),
    "finsec": ("Doc Level QA", "4K - 10K", "20-40"),
    "qmsum": ("Summarization QA", "4K - 12K", "20-60"),
}


def run(fast: bool = False, seed: int = 0) -> ExperimentReport:
    """Regenerate Table 1 from the synthetic datasets."""
    report = ExperimentReport("Table 1: dataset input/output statistics")
    for name in DATASET_NAMES:
        bundle = load_bundle(name, fast, seed)
        row = bundle.table1_row()
        task, paper_in, paper_out = PAPER_TABLE1[name]
        report.add_row(
            dataset=name,
            task=task,
            input_range=f"{row['input_p10']:.0f} - {row['input_p90']:.0f}",
            paper_input=paper_in,
            output_range=f"{row['output_p10']:.0f} - {row['output_p90']:.0f}",
            paper_output=paper_out,
            n_chunks=len(bundle.store),
            n_queries=len(bundle.queries),
        )
    report.add_note(
        "input = document (context) token length p10-p90; "
        "output = ground-truth answer token length p10-p90"
    )
    return report
