"""Fig 13: dollar cost vs quality as the inference model grows.

METIS (Mistral-7B serving + GPT-4o profiler) against fixed-config
serving on bigger models: Llama-3.1-70B (2× A40, self-hosted) and
GPT-4o (hosted API, priced from the same token counts). Paper: fixed
configs on bigger models cost 2.38–6.8× more and still lose F1.
"""

from __future__ import annotations

from repro.baselines import FixedConfigPolicy
from repro.evaluation.costs import DollarCostModel
from repro.experiments.common import (
    ExperimentReport,
    engine_config_70b,
    load_bundle,
    make_metis,
    quality_with_model_bonus,
    run_fixed_grid,
    run_policy,
    select_best_quality,
)
from repro.llm.model import GPT_4O

__all__ = ["run"]

_DATASETS = ("musique", "qmsum")
#: 70B on 2 GPUs is ~10x slower per token; scale arrivals to keep the
#: comparison in the same operating regime.
_70B_RATE_SCALE = 0.12


def run(fast: bool = False, seed: int = 0) -> ExperimentReport:
    from repro.experiments.common import DEFAULT_RATES

    report = ExperimentReport("Fig 13: cost vs quality across model sizes")
    cost_model = DollarCostModel()
    for dataset in _DATASETS:
        bundle = load_bundle(dataset, fast, seed)
        metis = run_policy(bundle, make_metis(bundle, seed=seed), seed=seed)

        # Best-quality fixed config, served by Llama-70B on 2x A40.
        grid = run_fixed_grid(bundle, seed=seed)
        best_config = select_best_quality(grid).records[0].config
        rate70 = DEFAULT_RATES[dataset] * _70B_RATE_SCALE
        fixed70 = run_policy(
            bundle,
            FixedConfigPolicy(best_config, name=f"llama70b[{best_config.label()}]"),
            rate_qps=rate70,
            seed=seed,
            engine_config=engine_config_70b(),
            quality_params=quality_with_model_bonus(bundle, 0.02),
        )

        # GPT-4o fixed config: price the same token stream at API rates.
        gpt4o_dollars = sum(
            GPT_4O.dollar_cost(r.prefill_tokens, r.output_tokens)
            for r in fixed70.records
        ) / len(fixed70.records)
        gpt4o_f1 = _rescore(bundle, fixed70, bonus=0.04, seed=seed)

        metis_cost = metis.ledger.per_query(len(metis.records))
        fixed70_cost = fixed70.ledger.per_query(len(fixed70.records))
        report.add_row(dataset=dataset, system="METIS (7B + profiler)",
                       dollars_per_query=metis_cost, mean_f1=metis.mean_f1)
        report.add_row(dataset=dataset,
                       system=f"Llama-70B fixed [{best_config.label()}]",
                       dollars_per_query=fixed70_cost,
                       mean_f1=fixed70.mean_f1)
        report.add_row(dataset=dataset,
                       system=f"GPT-4o fixed [{best_config.label()}]",
                       dollars_per_query=gpt4o_dollars, mean_f1=gpt4o_f1)
        report.add_note(
            f"{dataset}: Llama-70B fixed costs "
            f"{fixed70_cost / max(metis_cost, 1e-9):.2f}x METIS "
            f"(paper ~2.38x); GPT-4o fixed costs "
            f"{gpt4o_dollars / max(metis_cost, 1e-9):.2f}x (paper ~6.8x)"
        )
    _ = cost_model  # cost model reserved for future per-GPU price knobs
    return report


def _rescore(bundle, result, bonus: float, seed: int) -> float:
    """Re-score a run's answers under a larger-model quality bonus."""
    from repro.llm.generation import SimulatedGenerator
    from repro.llm.quality import QualityModel

    generator = SimulatedGenerator(
        quality=QualityModel(quality_with_model_bonus(bundle, bonus)),
        root_seed=seed,
    )
    total = 0.0
    for record in result.records:
        query = bundle.query_by_id(record.query_id)
        hits = bundle.store.search(query.text, record.config.num_chunks)
        ctx = bundle.synthesis_context(
            query, [h.chunk.chunk_id for h in hits]
        )
        total += generator.generate(ctx, record.config).f1
    return total / len(result.records)
