"""Fig 10: METIS cuts delay 1.64–2.54× without sacrificing F1.

Per dataset, serve the standard workload with METIS, AdaptiveRAG*, and
the fixed-configuration grid under vLLM (FCFS) and Parrot* (app-aware);
report METIS' delay ratio over AdaptiveRAG* and its F1 gap over the
fixed configuration of most similar delay.
"""

from __future__ import annotations

from repro.data import DATASET_NAMES
from repro.experiments.common import (
    ExperimentReport,
    load_bundle,
    make_adaptive_rag,
    make_metis,
    run_fixed_grid,
    run_policy,
    select_best_quality,
    select_similar_delay,
)

__all__ = ["run", "run_dataset"]


def run_dataset(dataset: str, fast: bool = False, seed: int = 0) -> dict:
    """All Fig 10 measurements for one dataset."""
    bundle = load_bundle(dataset, fast, seed)
    n = None  # full bundle
    metis = run_policy(bundle, make_metis(bundle, seed=seed),
                       n_queries=n, seed=seed)
    adaptive = run_policy(bundle, make_adaptive_rag(bundle, seed=seed),
                          n_queries=n, seed=seed)
    vllm_grid = run_fixed_grid(bundle, parrot=False, n_queries=n, seed=seed)
    parrot_grid = run_fixed_grid(bundle, parrot=True, n_queries=n, seed=seed)
    return {
        "bundle": bundle,
        "metis": metis,
        "adaptive": adaptive,
        "vllm_grid": vllm_grid,
        "parrot_grid": parrot_grid,
    }


def run(fast: bool = False, seed: int = 0) -> ExperimentReport:
    report = ExperimentReport(
        "Fig 10: delay reduction at equal-or-better quality"
    )
    for dataset in DATASET_NAMES:
        data = run_dataset(dataset, fast, seed)
        metis, adaptive = data["metis"], data["adaptive"]
        vllm_best = select_best_quality(data["vllm_grid"])
        vllm_similar = select_similar_delay(data["vllm_grid"],
                                            metis.mean_delay)
        parrot_similar = select_similar_delay(data["parrot_grid"],
                                              metis.mean_delay)
        for result, system in (
            (metis, "METIS"),
            (adaptive, "AdaptiveRAG*"),
            (vllm_best, f"vLLM best-quality ({vllm_best.policy})"),
            (vllm_similar, f"vLLM similar-delay ({vllm_similar.policy})"),
            (parrot_similar, f"Parrot* similar-delay ({parrot_similar.policy})"),
        ):
            report.add_row(
                dataset=dataset,
                system=system,
                mean_delay_s=result.mean_delay,
                p90_delay_s=result.delay_percentile(90),
                mean_f1=result.mean_f1,
            )
        ratio = adaptive.mean_delay / max(metis.mean_delay, 1e-9)
        f1_gap = (metis.mean_f1 - vllm_similar.mean_f1) / max(
            vllm_similar.mean_f1, 1e-9
        )
        report.add_note(
            f"{dataset}: METIS {ratio:.2f}x faster than AdaptiveRAG* "
            f"(paper band 1.64-2.54x) at F1 {metis.mean_f1:.3f} vs "
            f"{adaptive.mean_f1:.3f}; +{f1_gap:.0%} F1 over similar-delay "
            f"fixed config (paper: 12-18%)"
        )
    return report
