"""Multi-tier caching on a Zipf-skewed repeat-heavy trace.

Serves the same zipfian workload — steady offered load whose query
mix follows a Zipf popularity curve, so a handful of hot queries
dominate (the regime production RAG front-ends live in: FAQ-style
repetition) — with the caching subsystem (``repro.caching``,
``docs/CACHING.md``) in different configurations:

* ``no-cache`` — the baseline pipeline; every repeat pays the full
  Retrieve → Synthesize cost.
* ``exact/lru`` / ``exact/lfu`` / ``exact/gdsf`` — the query-result
  cache under each eviction policy at a capacity comfortably above
  the hot set: hits bypass retrieval and synthesis entirely.
* ``exact/small`` — the same cache squeezed to a fraction of the
  pool, where eviction policy actually has to choose (GDSF keeps the
  entries whose measured dollars+seconds benefit is largest).
* ``semantic`` — embedding-similarity matching on top of exact keys:
  near-duplicate queries hit too, trading a small quality delta for
  hit rate.
* ``retrieval-only`` — the top-k memo tier alone: hits skip
  scatter-gather but still synthesize, so the win is smaller but
  quality is untouched.

Reported per arm: hit rate, mean/p99 delay, $/query, mean F1 and its
delta vs the uncached baseline, and the tiers' measured saved
dollars.

Expected (pinned by ``test_experiments_smoke.py``): the exact result
cache achieves a >=30% hit rate and cuts mean delay (and $/query) by
>=25% vs no-cache with zero F1 delta; semantic mode's hit rate is at
least exact's; the disabled arm is byte-identical to the baseline
pipeline (that part is pinned by the golden-fingerprint tests).
"""

from __future__ import annotations

from repro.baselines import FixedConfigPolicy
from repro.config.knobs import RAGConfig, SynthesisMethod
from repro.data import build_dataset
from repro.experiments.common import ExperimentReport, run_policy
from repro.workload import zipfian_workload

__all__ = ["run"]

_DATASET = "finsec"
#: Query pool behind the Zipf mix (arrival count is ~4x this, so the
#: head queries repeat many times).
_POOL = 30
_FAST_POOL = 20
#: Steady trace: popularity skew, not rate shape, is the subject.
_TRACE = dict(n_periods=20, period_s=30.0, rate_qps=1.5, zipf_s=1.1)
_TRACE_FAST = dict(n_periods=8, period_s=30.0, rate_qps=1.5, zipf_s=1.1)
#: Roomy capacity (above the pool) vs a squeezed one (eviction bites).
_CAPACITY = 256
_SMALL_CAPACITY = 8


def _row(report: ExperimentReport, label: str, result,
         baseline) -> None:
    n = len(result.records)
    base_f1 = baseline.mean_f1
    report.add_row(
        dataset=_DATASET,
        cache=label,
        hit_rate=result.cache_hit_rate,
        mean_delay_s=result.mean_delay,
        p99_delay_s=result.delay_percentile(99),
        dollars_per_query=result.ledger.per_query(n),
        mean_f1=result.mean_f1,
        delta_f1=result.mean_f1 - base_f1,
        saved_dollars=result.cache_saved_dollars,
        evictions=sum(s.evictions
                      for s in result.cache_stats.values()),
        queries=n,
    )


def run(fast: bool = False, seed: int = 0) -> ExperimentReport:
    report = ExperimentReport(
        "Caching: hit rate vs latency/$ on a Zipf repeat-heavy trace"
    )
    pool = _FAST_POOL if fast else _POOL
    bundle = build_dataset(_DATASET, seed=seed, n_queries=pool)
    trace = zipfian_workload(
        seed=seed, pool_size=pool, **(_TRACE_FAST if fast else _TRACE))
    config = RAGConfig(SynthesisMethod.STUFF, 8)

    def serve(**cache_kwargs):
        return run_policy(
            bundle, FixedConfigPolicy(config), workload=trace,
            seed=seed, **cache_kwargs)

    baseline = serve()
    _row(report, "no-cache", baseline, baseline)
    arms = {}
    for eviction in ("lru", "lfu", "gdsf"):
        arms[eviction] = serve(result_cache="exact",
                               cache_capacity=_CAPACITY,
                               cache_eviction=eviction)
        _row(report, f"exact/{eviction}", arms[eviction], baseline)
    small = serve(result_cache="exact", cache_capacity=_SMALL_CAPACITY,
                  cache_eviction="gdsf")
    _row(report, f"exact/gdsf cap={_SMALL_CAPACITY}", small, baseline)
    semantic = serve(result_cache="semantic", cache_capacity=_CAPACITY,
                     semantic_threshold=0.9)
    _row(report, "semantic", semantic, baseline)
    retrieval = serve(retrieval_cache=True, cache_capacity=_CAPACITY)
    _row(report, "retrieval-only", retrieval, baseline)

    exact = arms["lru"]
    n_base = len(baseline.records)
    delay_cut = 1.0 - exact.mean_delay / baseline.mean_delay
    dollar_cut = 1.0 - (exact.ledger.per_query(len(exact.records))
                        / baseline.ledger.per_query(n_base))
    report.add_note(
        f"{_DATASET}: the exact result cache hits "
        f"{exact.cache_hit_rate:.0%} of the Zipf trace and cuts mean "
        f"delay {delay_cut:.0%} / $ per query {dollar_cut:.0%} vs "
        f"no-cache, with F1 delta "
        f"{exact.mean_f1 - baseline.mean_f1:+.4f} (exact repeats "
        f"re-score identically)"
    )
    report.add_note(
        f"semantic matching lifts the hit rate to "
        f"{semantic.cache_hit_rate:.0%} (>= exact's "
        f"{exact.cache_hit_rate:.0%}) at F1 delta "
        f"{semantic.mean_f1 - baseline.mean_f1:+.4f} — near-duplicate "
        f"answers are close but not free"
    )
    report.add_note(
        f"the retrieval tier alone hits "
        f"{retrieval.cache_hit_rate:.0%} but only skips "
        f"scatter-gather, so its delay cut "
        f"({1.0 - retrieval.mean_delay / baseline.mean_delay:.0%}) is "
        f"modest and its F1 delta is "
        f"{retrieval.mean_f1 - baseline.mean_f1:+.4f}"
    )
    return report
