"""Isolated (contention-free) execution-time estimates for one plan.

Fig 4 and Fig 5 characterise configurations' *intrinsic* quality-delay
tradeoffs, so they use an uncontended execution model: each stage
prefills at full throughput and decodes its longest call, stages run
back-to-back. The end-to-end experiments (Fig 10+) use the full engine
simulation instead.
"""

from __future__ import annotations

from repro.llm.costs import RooflineCostModel
from repro.synthesis.plans import SynthesisPlan

__all__ = ["isolated_plan_seconds"]


def isolated_plan_seconds(plan: SynthesisPlan, cost: RooflineCostModel) -> float:
    """Wall-clock to run ``plan`` alone on an idle engine."""
    total = 0.0
    for stage in range(plan.n_stages):
        calls = plan.stage_calls(stage)
        prefill_tokens = sum(c.prompt_tokens for c in calls)
        total += cost.prefill_seconds(prefill_tokens)
        # All calls of a stage decode together in one batch; the stage
        # ends when its longest output finishes.
        kv = sum(c.total_tokens for c in calls)
        longest = max(c.output_tokens for c in calls)
        total += longest * cost.decode_step_seconds(kv, len(calls))
    return total
