"""Retrieval scaling: scatter-gather latency vs shard count K.

A RAGGED-style sweep the paper's fixed-constant retrieval model cannot
express: the corpus is partitioned across K index shards (each a
single-executor :class:`~repro.sim.Resource`), and a retrieval-bound
open-loop workload is replayed at each K. Two opposing forces shape
the curve:

* **per-shard search savings** — a shard scans ``1/K`` of the corpus,
  so its executor hold (and therefore its queue under load) shrinks as
  K grows;
* **gather overhead** — every shard answers with its local top-k, so
  the merge handles ``~K·k`` candidates and its per-candidate cost
  grows linearly in K.

The report sweeps K, tracks both components per query (plus per-shard
utilization/queue rows via
:func:`~repro.evaluation.reports.retrieval_shard_rows`), and pins the
turnover: the shard count past which gather overhead exceeds the
remaining scan savings, so the scatter-gather stage gets *slower*. A
final pair of rows compares the best K with and without the exact
reranker (over-fetch + re-score; see :mod:`repro.retrieval.rerank`),
pricing the reranker's latency overhead at the sweep's optimum.

The retrieval constants are scaled up from the serving default (a
0.4 s full-corpus scan standing in for a large corpus / cold cache —
the regime where sharding matters) so the retrieval stage, not the
GPU, is the object of study; the serving side uses a fixed cheap
configuration for constant work per query.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.baselines import FixedConfigPolicy
from repro.config.knobs import RAGConfig, SynthesisMethod
from repro.evaluation.reports import retrieval_shard_rows
from repro.experiments.common import (
    ExperimentReport,
    load_bundle,
    run_policy,
)

__all__ = ["run", "SHARD_SWEEP"]

SHARD_SWEEP = (1, 2, 4, 8)
_DATASET = "squad"
#: Offered load; ~0.88 utilization of the single-shard executor, so
#: K=1 queues heavily and sharding has headroom to recover.
_RATE_QPS = 2.2
#: Full-corpus scan latency (the "large corpus" regime; the serving
#: default of 4 ms models the paper's >100x-faster-than-synthesis box).
_RETRIEVAL_LATENCY_S = 0.4
#: Merge cost per excess candidate — network + deserialize + heap push
#: per shard answer in a real scatter-gather tier.
_GATHER_PER_CANDIDATE_S = 6e-3
_FIXED_CONFIG = RAGConfig(SynthesisMethod.STUFF, 5)


def _run_at(bundle, n_shards: int, seed: int, reranker=None):
    store = bundle.store.reshard(
        n_shards,
        retrieval_latency_s=_RETRIEVAL_LATENCY_S,
        gather_per_candidate_s=_GATHER_PER_CANDIDATE_S,
    )
    return run_policy(
        replace(bundle, store=store),
        FixedConfigPolicy(_FIXED_CONFIG),
        rate_qps=_RATE_QPS,
        seed=seed,
        # Derived from the pre-built store: the runner reuses a bundle
        # store whose shard count matches, so the custom latency
        # constants above survive (a mismatch would silently reshard
        # with serving defaults).
        retrieval_shards=store.n_shards,
        shard_concurrency=1,
        reranker=reranker,
    )


def _add_row(report: ExperimentReport, n_shards: int, result,
             reranker: str) -> None:
    shard_rows = [r for r in retrieval_shard_rows(result)
                  if r["resource"] != "reranker"]
    records = result.records
    report.add_row(
        shards=n_shards,
        reranker=reranker,
        mean_retrieval_s=result.mean_retrieval_seconds,
        p99_retrieval_s=result.retrieval_percentile(99),
        mean_shard_queue_delay_s=float(np.mean(
            [r["mean_queue_delay_s"] for r in shard_rows])),
        shard_utilization=float(np.mean(
            [r["utilization"] for r in shard_rows])),
        mean_gather_s=result.mean_gather_seconds,
        mean_rerank_s=float(np.mean(
            [r.rerank_seconds + r.rerank_queue_delay for r in records])),
        mean_delay_s=result.mean_delay,
        throughput_qps=result.throughput_qps,
        mean_f1=result.mean_f1,
    )


def run(fast: bool = False, seed: int = 0) -> ExperimentReport:
    report = ExperimentReport(
        "Retrieval scaling: scatter-gather over K index shards"
    )
    bundle = load_bundle(_DATASET, fast, seed)
    curve: dict[int, float] = {}
    for n_shards in SHARD_SWEEP:
        result = _run_at(bundle, n_shards, seed)
        _add_row(report, n_shards, result, reranker="off")
        curve[n_shards] = result.mean_retrieval_seconds

    best_k = min(curve, key=curve.get)
    turnover = next(
        (k for prev, k in zip(SHARD_SWEEP, SHARD_SWEEP[1:])
         if curve[k] > curve[prev]),
        None,
    )
    report.add_note(
        f"best shard count K={best_k}: mean scatter-gather "
        f"{curve[best_k] * 1e3:.0f} ms vs {curve[1] * 1e3:.0f} ms "
        f"unsharded ({curve[1] / curve[best_k]:.2f}x faster)"
    )
    if turnover is not None:
        report.add_note(
            f"turnover at K={turnover}: gather overhead "
            f"(~{_GATHER_PER_CANDIDATE_S * 1e3:.0f} ms/candidate) "
            "exceeds the remaining per-shard scan savings, so scaling "
            "past the optimum slows retrieval back down"
        )

    # Price the exact reranker (over-fetch 4x + re-score) at the best K.
    reranked = _run_at(bundle, best_k, seed, reranker="exact")
    _add_row(report, best_k, reranked, reranker="exact")
    base = curve[best_k]
    report.add_note(
        f"exact reranker at K={best_k}: retrieval+rerank "
        f"{(reranked.mean_retrieval_seconds + np.mean([r.rerank_seconds for r in reranked.records])) * 1e3:.0f} ms "
        f"vs {base * 1e3:.0f} ms without (over-fetch widens gather; "
        "recall recovery only matters on approximate indexes)"
    )
    return report
