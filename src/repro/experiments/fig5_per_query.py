"""Fig 5: per-query configuration beats every fixed configuration.

For Musique and QMSUM, compute each query's *best* configuration (the
paper's rule: lowest delay within 2% of the highest achievable quality)
over a broad grid, then compare the per-query operating point with the
Pareto frontier of fixed configurations.
"""

from __future__ import annotations

from repro.config.knobs import RAGConfig, SynthesisMethod
from repro.evaluation.pareto import ParetoPoint, pareto_frontier
from repro.experiments.common import (
    ExperimentReport,
    default_engine_config,
    load_bundle,
)
from repro.experiments.fig4_knobs import evaluate_config
from repro.experiments.service_time import isolated_plan_seconds
from repro.llm.costs import RooflineCostModel
from repro.llm.quality import QualityModel

__all__ = ["run", "oracle_grid"]

_QUALITY_TOLERANCE = 0.02


def oracle_grid() -> list[RAGConfig]:
    """The configuration grid searched per query (coarse but broad)."""
    grid: list[RAGConfig] = []
    for k in (1, 2, 3, 5, 8, 12, 18, 25):
        grid.append(RAGConfig(SynthesisMethod.MAP_RERANK, k))
        grid.append(RAGConfig(SynthesisMethod.STUFF, k))
        for ilen in (50, 100, 150, 200):
            grid.append(RAGConfig(SynthesisMethod.MAP_REDUCE, k, ilen))
    return grid


def run(fast: bool = False, seed: int = 0) -> ExperimentReport:
    report = ExperimentReport("Fig 5: per-query config vs fixed-config Pareto")
    engine_config = default_engine_config()
    cost = RooflineCostModel(engine_config.model, engine_config.cluster)
    grid = oracle_grid()
    if fast:
        grid = grid[::3]

    for dataset in ("musique", "qmsum"):
        bundle = load_bundle(dataset, fast, seed)
        quality = QualityModel(bundle.quality_params)
        queries = bundle.queries[: (20 if fast else 80)]

        per_config: dict[RAGConfig, list[tuple[float, float]]] = {
            c: [] for c in grid
        }
        oracle_points: list[tuple[float, float]] = []
        for query in queries:
            evals = []
            for config in grid:
                delay, f1 = evaluate_config(bundle, query, config,
                                            cost, quality)
                per_config[config].append((delay, f1))
                evals.append((delay, f1, config))
            best_q = max(f1 for _, f1, _ in evals)
            eligible = [e for e in evals
                        if e[1] >= best_q * (1 - _QUALITY_TOLERANCE)]
            oracle_points.append(min(eligible, key=lambda e: e[0])[:2])

        oracle_delay = sum(d for d, _ in oracle_points) / len(oracle_points)
        oracle_f1 = sum(f for _, f in oracle_points) / len(oracle_points)
        fixed_points = [
            ParetoPoint(
                delay=sum(d for d, _ in vals) / len(vals),
                quality=sum(f for _, f in vals) / len(vals),
                label=config.label(),
            )
            for config, vals in per_config.items()
        ]
        frontier = pareto_frontier(fixed_points)
        for point in frontier:
            report.add_row(dataset=dataset, kind="fixed-pareto",
                           config=point.label, delay_s=point.delay,
                           f1=point.quality)
        report.add_row(dataset=dataset, kind="per-query-oracle",
                       config="(adaptive)", delay_s=oracle_delay,
                       f1=oracle_f1)

        # Paper claims: up to 3x delay saving vs closest-quality fixed;
        # every similar-delay fixed loses >= 10% quality.
        at_least_as_good = [p for p in fixed_points
                            if p.quality >= oracle_f1 * 0.98]
        if at_least_as_good:
            closest = min(at_least_as_good, key=lambda p: p.delay)
            report.add_note(
                f"{dataset}: per-query config is "
                f"{closest.delay / max(oracle_delay, 1e-9):.2f}x faster than "
                f"the closest-quality fixed config ({closest.label})"
            )
        faster_fixed = [p for p in fixed_points if p.delay <= oracle_delay]
        if faster_fixed:
            best_fast = max(faster_fixed, key=lambda p: p.quality)
            gap = (oracle_f1 - best_fast.quality) / max(oracle_f1, 1e-9)
            report.add_note(
                f"{dataset}: best fixed config within the oracle's delay "
                f"loses {gap:.0%} quality ({best_fast.label})"
            )
    return report
