"""Fig 18: the profiler is at most 1/10 of end-to-end delay.

Reports the distribution of per-query profiler delay fraction for
METIS runs on every dataset (paper: mean 0.03–0.06, max ≈ 0.1).
"""

from __future__ import annotations

import numpy as np

from repro.data import DATASET_NAMES
from repro.experiments.common import (
    ExperimentReport,
    load_bundle,
    make_metis,
    run_policy,
)

__all__ = ["run"]


def run(fast: bool = False, seed: int = 0) -> ExperimentReport:
    report = ExperimentReport("Fig 18: profiler delay fraction")
    for dataset in DATASET_NAMES:
        bundle = load_bundle(dataset, fast, seed)
        result = run_policy(bundle, make_metis(bundle, seed=seed), seed=seed)
        fractions = np.asarray([r.profiler_fraction for r in result.records])
        report.add_row(
            dataset=dataset,
            mean_fraction=float(fractions.mean()),
            p50_fraction=float(np.percentile(fractions, 50)),
            p90_fraction=float(np.percentile(fractions, 90)),
            max_fraction=float(fractions.max()),
            mean_profiler_s=float(
                np.mean([r.profiler_seconds for r in result.records])
            ),
        )
    report.add_note(
        "paper: average fraction 0.03-0.06, max ~0.1 (squad's short "
        "service times inflate the fraction in the simulator; see "
        "EXPERIMENTS.md)"
    )
    return report
