"""Fig 18: the profiler is at most 1/10 of end-to-end delay.

Reports the distribution of per-query profiler delay fraction for
METIS runs on every dataset (paper: mean 0.03–0.06, max ≈ 0.1).

:func:`run_load_sweep` is the contention variant the paper cannot
show: with the profiler modeled as a finite-concurrency resource (API
rate limit), overhead is *load-dependent* — sweeping the arrival rate
across the profiler's saturation point makes queries queue for a
profiler slot and the overhead fraction climb with utilization.
"""

from __future__ import annotations

import numpy as np

from repro.data import DATASET_NAMES
from repro.evaluation.pipeline import PROFILER_RESOURCE
from repro.experiments.common import (
    ExperimentReport,
    load_bundle,
    make_metis,
    run_policy,
)

__all__ = ["run", "run_load_sweep"]


def run(fast: bool = False, seed: int = 0) -> ExperimentReport:
    report = ExperimentReport("Fig 18: profiler delay fraction")
    for dataset in DATASET_NAMES:
        bundle = load_bundle(dataset, fast, seed)
        result = run_policy(bundle, make_metis(bundle, seed=seed), seed=seed)
        fractions = np.asarray([r.profiler_fraction for r in result.records])
        report.add_row(
            dataset=dataset,
            mean_fraction=float(fractions.mean()),
            p50_fraction=float(np.percentile(fractions, 50)),
            p90_fraction=float(np.percentile(fractions, 90)),
            max_fraction=float(fractions.max()),
            mean_profiler_s=float(
                np.mean([r.profiler_seconds for r in result.records])
            ),
        )
    report.add_note(
        "paper: average fraction 0.03-0.06, max ~0.1 (squad's short "
        "service times inflate the fraction in the simulator; see "
        "EXPERIMENTS.md)"
    )
    return report


def run_load_sweep(fast: bool = False, seed: int = 0,
                   dataset: str = "finsec",
                   profiler_concurrency: int = 1) -> ExperimentReport:
    """Profiler overhead vs offered load under a profiler rate limit.

    One profiler slot serves ~1/0.147s ≈ 6.8 calls/s, so the rate
    sweep crosses its saturation point: below it only Poisson bursts
    queue (small, bounded delays — close to the unbounded default's
    exactly-zero waits); above it the queue grows without bound and
    the overhead fraction climbs with load.
    """
    report = ExperimentReport(
        "Fig 18 (load sweep): profiler queueing under saturation"
    )
    bundle = load_bundle(dataset, fast, seed)
    n = 20 if fast else 60
    for rate in (2.0, 5.0, 8.0, 12.0):
        result = run_policy(
            bundle, make_metis(bundle, seed=seed),
            rate_qps=rate, n_queries=n, seed=seed,
            profiler_concurrency=profiler_concurrency,
        )
        stats = result.resource_stats[PROFILER_RESOURCE]
        waits = np.asarray([r.profiler_queue_delay for r in result.records])
        report.add_row(
            rate_qps=rate,
            profiler_concurrency=profiler_concurrency,
            profiler_utilization=stats.utilization(result.makespan),
            queued_fraction=stats.queued_fraction,
            mean_queue_delay_s=float(waits.mean()),
            p90_queue_delay_s=float(np.percentile(waits, 90)),
            peak_queue_len=stats.peak_queue_len,
            mean_overhead_fraction=result.mean_profiler_fraction,
        )
    report.add_note(
        f"{dataset}: one profiler slot saturates near 6.8 qps — below "
        "that only Poisson bursts queue (small bounded delays); above "
        "it queue delay (and thus the Fig 18 overhead fraction) grows "
        "with offered load. Unbounded concurrency reproduces the "
        "paper's load-independent overhead with exactly zero waits."
    )
    return report
