"""Fig 11 (heterogeneous variant): a mixed-speed fleet under load-aware
routing.

Serves a saturating workload on a two-replica cluster whose replicas
run at 1.0× and 0.5× hardware speed (event-driven stepping lets each
advance at its own rate), comparing a load-blind router (round-robin)
against load-aware ones (least-outstanding, least-kv-load). The
load-aware routers observe the slow replica's longer queue and steer
proportionally more queries to the fast replica; round-robin splits
the workload evenly and lets the slow replica dominate tail delay.

Reported per (system, router): aggregate throughput, mean delay, the
fast replica's share of queries, and per-replica busy-time / wakeup
(idle-event) rows from the event-driven cluster.

Expected (pinned loosely by the experiment smoke test and precisely by
``tests/test_cluster_events.py``): under least-outstanding the fast
replica serves measurably more queries than under round-robin's even
split.
"""

from __future__ import annotations

from repro.baselines import FixedConfigPolicy
from repro.config.knobs import RAGConfig, SynthesisMethod
from repro.data import build_dataset
from repro.evaluation.reports import per_replica_rows
from repro.experiments.common import (
    DEFAULT_RATES,
    ExperimentReport,
    load_bundle,
    make_metis,
    run_policy,
)

__all__ = ["run", "fast_share"]

_DATASET = "finsec"
#: 1.0x and 0.5x replicas: the canonical fast/slow pair.
_SPEEDS = (1.0, 0.5)
_ROUTERS = ("round-robin", "least-outstanding", "least-kv-load")
#: Saturate even the fast replica so routing decisions matter.
_SATURATION_MULTIPLIER = 4.0
_FAST_N_QUERIES = 80


def fast_share(result) -> float:
    """Fraction of queries served by replica 0 (the 1.0x replica)."""
    if not result.records:
        return 0.0
    return sum(1 for r in result.records if r.replica == 0) / len(result.records)


def run(fast: bool = False, seed: int = 0) -> ExperimentReport:
    report = ExperimentReport(
        "Fig 11 (hetero): 1.0x/0.5x fleet, load-aware vs load-blind routing"
    )
    if fast:
        bundle = build_dataset(_DATASET, seed=seed,
                               n_queries=_FAST_N_QUERIES)
    else:
        bundle = load_bundle(_DATASET, fast, seed)
    rate = DEFAULT_RATES[_DATASET] * _SATURATION_MULTIPLIER
    fixed_config = RAGConfig(SynthesisMethod.STUFF, 8)

    shares: dict[tuple[str, str], float] = {}
    for system, make in (
        ("vLLM(fixed)", lambda: FixedConfigPolicy(fixed_config)),
        ("METIS", lambda: make_metis(bundle, seed=seed)),
    ):
        for router in _ROUTERS:
            result = run_policy(
                bundle, make(), rate_qps=rate, seed=seed,
                n_replicas=len(_SPEEDS), router=router,
                replica_speeds=list(_SPEEDS),
            )
            share = fast_share(result)
            shares[(system, router)] = share
            fast_row, slow_row = per_replica_rows(result)
            report.add_row(
                dataset=_DATASET,
                system=system,
                router=router,
                speeds="/".join(f"{s:g}x" for s in _SPEEDS),
                throughput_qps=result.throughput_qps,
                mean_delay_s=result.mean_delay,
                p90_delay_s=result.delay_percentile(90),
                mean_f1=result.mean_f1,
                fast_replica_share=share,
                fast_busy_s=fast_row["busy_seconds"],
                slow_busy_s=slow_row["busy_seconds"],
                fast_wakeups=fast_row["wakeups"],
                slow_wakeups=slow_row["wakeups"],
            )
        rr = shares[(system, "round-robin")]
        lo = shares[(system, "least-outstanding")]
        report.add_note(
            f"{_DATASET}/{system}: fast-replica share "
            f"{lo:.2f} under least-outstanding vs {rr:.2f} under "
            f"round-robin (load-aware routing should exceed the even "
            f"split on a 1.0x/0.5x fleet)"
        )
    return report
