"""Decomposed quality metrics across the quality-affecting subsystems.

Every other experiment scores answers with token F1 alone; this one
turns on the multi-metric harness (``repro.evaluation.metrics``,
``docs/EVALUATION.md``) and sweeps the three subsystems that trade
quality for speed or dollars, so each trade-off lands on the metric
axis that actually moves:

* **retrieval axis** — ``flat`` exact search vs ``ivf`` approximate
  search vs ``ivf+rerank``: ivf's recall loss (or gain — the probe is
  honest either way) shows up as context-recall/faithfulness deltas
  that F1 alone blurs.
* **cache axis** — the Zipf repeat-heavy trace from ``fig_cache``
  served with no cache, the exact result cache, and semantic
  matching: exact hits replay the original answer against the same
  context (context-recall delta exactly zero), while semantic hits
  serve a *neighbour's* answer — a large, honest context-recall drop
  bought for hit rate.
* **quality-SLO axis** — METIS as-is vs METIS targeting
  ``context_recall >= 0.7`` through the scheduler's threshold-gated
  min-cost mode: same attainment bar at measurably lower $/query.

Reported per arm: the four decomposed metrics, F1, $/query, hit rate,
and the faithfulness/context-recall deltas vs the axis baseline.

Expected (pinned by ``test_experiments_smoke.py``): ivf shows nonzero
faithfulness and context-recall deltas vs flat; the exact cache's
context-recall delta is exactly zero while semantic's is large and
negative; the SLO arm's mean context recall clears its threshold
(zero shortfall) at strictly lower $/query than unconstrained METIS.
"""

from __future__ import annotations

from repro.baselines import FixedConfigPolicy
from repro.config.knobs import RAGConfig, SynthesisMethod
from repro.data import build_dataset
from repro.experiments.common import (
    ExperimentReport,
    make_metis,
    run_policy,
)
from repro.workload import zipfian_workload

__all__ = ["run"]

_DATASET = "finsec"
#: One-shot bundle for the retrieval and SLO axes (each query served
#: once); the cache axis reuses fig_cache's Zipf pool/trace shape.
_N_QUERIES = 120
_FAST_N_QUERIES = 40
_POOL = 30
_FAST_POOL = 20
_TRACE = dict(n_periods=20, period_s=30.0, rate_qps=1.5, zipf_s=1.1)
_TRACE_FAST = dict(n_periods=8, period_s=30.0, rate_qps=1.5, zipf_s=1.1)
_CAPACITY = 256
#: The quality SLO the scheduler targets (threshold-gated min cost).
_SLO = "context_recall>=0.7"


def _row(report: ExperimentReport, axis: str, arm: str, result,
         baseline) -> None:
    n = len(result.records)
    report.add_row(
        axis=axis,
        arm=arm,
        queries=n,
        hit_rate=result.cache_hit_rate,
        faithfulness=result.mean_faithfulness,
        relevancy=result.mean_answer_relevancy,
        precision=result.mean_context_precision,
        recall=result.mean_context_recall,
        mean_f1=result.mean_f1,
        dollars_per_query=result.ledger.per_query(n),
        d_faithfulness=(result.mean_faithfulness
                        - baseline.mean_faithfulness),
        d_recall=(result.mean_context_recall
                  - baseline.mean_context_recall),
    )


def run(fast: bool = False, seed: int = 0) -> ExperimentReport:
    report = ExperimentReport(
        "Quality metrics: retrieval / caching / SLO-targeted scheduling"
    )
    config = RAGConfig(SynthesisMethod.STUFF, 8)

    # Retrieval axis: every query once, flat vs approximate search.
    bundle = build_dataset(
        _DATASET, seed=seed,
        n_queries=_FAST_N_QUERIES if fast else _N_QUERIES)

    def serve(**kwargs):
        return run_policy(bundle, FixedConfigPolicy(config), seed=seed,
                          quality_metrics=True, **kwargs)

    flat = serve()
    _row(report, "retrieval", "flat", flat, flat)
    ivf = serve(index="ivf")
    _row(report, "retrieval", "ivf", ivf, flat)
    rerank = serve(index="ivf", reranker="exact")
    _row(report, "retrieval", "ivf+rerank", rerank, flat)

    # Cache axis: Zipf repeat-heavy trace, small hot pool.
    pool = _FAST_POOL if fast else _POOL
    pool_bundle = build_dataset(_DATASET, seed=seed, n_queries=pool)
    trace = zipfian_workload(
        seed=seed, pool_size=pool, **(_TRACE_FAST if fast else _TRACE))

    def serve_trace(**cache_kwargs):
        return run_policy(
            pool_bundle, FixedConfigPolicy(config), workload=trace,
            seed=seed, quality_metrics=True, **cache_kwargs)

    no_cache = serve_trace()
    _row(report, "cache", "no-cache", no_cache, no_cache)
    exact = serve_trace(result_cache="exact", cache_capacity=_CAPACITY)
    _row(report, "cache", "exact", exact, no_cache)
    semantic = serve_trace(result_cache="semantic",
                           cache_capacity=_CAPACITY,
                           semantic_threshold=0.9)
    _row(report, "cache", "semantic", semantic, no_cache)

    # Quality-SLO axis: unconstrained METIS vs threshold-gated min cost.
    metis = run_policy(bundle, make_metis(bundle), seed=seed,
                       quality_metrics=True)
    _row(report, "slo", "metis", metis, metis)
    slo_run = run_policy(bundle, make_metis(bundle, quality_slo=_SLO),
                         seed=seed, quality_slo=_SLO)
    _row(report, "slo", f"metis[{_SLO}]", slo_run, metis)

    from repro.evaluation.slo import evaluate_quality_slo

    slo_report = evaluate_quality_slo(slo_run, _SLO)
    report.add_note(
        f"retrieval: ivf moves faithfulness "
        f"{ivf.mean_faithfulness - flat.mean_faithfulness:+.4f} and "
        f"context recall "
        f"{ivf.mean_context_recall - flat.mean_context_recall:+.4f} vs "
        f"flat — approximate search is visible on the decomposed axes "
        f"even where F1 moves only "
        f"{ivf.mean_f1 - flat.mean_f1:+.4f}"
    )
    report.add_note(
        f"cache: exact hits replay the served context (context-recall "
        f"delta {exact.mean_context_recall - no_cache.mean_context_recall:+.4f}"
        f"), semantic hits serve a neighbour's answer — recall delta "
        f"{semantic.mean_context_recall - no_cache.mean_context_recall:+.4f} "
        f"for a {semantic.cache_hit_rate:.0%} hit rate"
    )
    n_metis = len(metis.records)
    n_slo = len(slo_run.records)
    cost_cut = 1.0 - (slo_run.ledger.per_query(n_slo)
                      / metis.ledger.per_query(n_metis))
    report.add_note(
        f"slo: targeting {_SLO} keeps mean context recall at "
        f"{slo_report.mean_value:.3f} (shortfall "
        f"{slo_report.shortfall:.3f}, attainment "
        f"{slo_report.attainment:.0%}) while cutting $/query "
        f"{cost_cut:.0%} vs unconstrained METIS"
    )
    return report
