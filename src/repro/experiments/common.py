"""Shared experiment infrastructure: calibrated defaults and helpers.

Calibration note (recorded per DESIGN.md §6): the simulator's absolute
serving capacity differs from the paper's physical A40 testbed, so
arrival rates are chosen per dataset to land each system in the same
*operating regime* the paper reports — quality-maximising baselines
near saturation (utilisation ≈ 0.95–1.0), METIS comfortable
(≈ 0.3–0.9). Ratios and crossovers, not absolute seconds, are the
reproduction targets.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.baselines import (
    AdaptiveRAGPolicy,
    FixedConfigPolicy,
    MedianConfigPolicy,
    ParrotPolicy,
)
from repro.config.knobs import RAGConfig, SynthesisMethod
from repro.core import MetisConfig, MetisPolicy
from repro.core.profiler import GPT4O_PROFILER, ProfilerModelSpec
from repro.data import (
    DatasetBundle,
    build_dataset,
    poisson_arrivals,
    sequential_arrivals,
)
from repro.evaluation.reports import format_table
from repro.evaluation.runner import ExperimentRunner, RunResult
from repro.llm import A40, ClusterSpec, LLAMA3_70B_AWQ, MISTRAL_7B_AWQ, ModelSpec
from repro.llm.quality import QualityParams
from repro.llm.tokenizer import SimTokenizer
from repro.serving.engine import EngineConfig
from repro.util.units import GB

__all__ = [
    "DEFAULT_RATES",
    "DEFAULT_N_QUERIES",
    "FAST_N_QUERIES",
    "ExperimentReport",
    "default_engine_config",
    "engine_config_70b",
    "fixed_config_grid",
    "make_adaptive_rag",
    "make_median",
    "make_metis",
    "metadata_tokens",
    "quality_with_model_bonus",
    "run_policy",
    "select_best_quality",
    "select_closest_quality",
]

#: Per-dataset Poisson arrival rates (queries/second); see module note.
DEFAULT_RATES: dict[str, float] = {
    "squad": 2.0,
    "musique": 1.8,
    "finsec": 1.4,
    "qmsum": 1.0,
}

DEFAULT_N_QUERIES = 150
FAST_N_QUERIES = 40

_TOKENIZER = SimTokenizer()


@dataclass
class ExperimentReport:
    """Uniform result object every experiment driver returns."""

    name: str
    rows: list[dict] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, **fields) -> None:
        self.rows.append(fields)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def format(self) -> str:
        parts = [f"===== {self.name} ====="]
        if self.rows:
            parts.append(format_table(self.rows))
        parts.extend(f"note: {n}" for n in self.notes)
        return "\n".join(parts)


# ----------------------------------------------------------------------
# Engine / policy construction
# ----------------------------------------------------------------------
def default_engine_config(model: ModelSpec = MISTRAL_7B_AWQ,
                          n_gpus: int = 1) -> EngineConfig:
    """The experiments' serving deployment: Mistral-7B AWQ on one A40,
    KV pool capped at 8 GiB (multi-tenant headroom; DESIGN.md §6)."""
    return EngineConfig(
        model=model,
        cluster=ClusterSpec(A40, n_gpus=n_gpus),
        kv_pool_cap_bytes=8 * GB,
    )


def engine_config_70b() -> EngineConfig:
    """Llama-3.1-70B AWQ on 2× A40 (paper §7.4); pool scales with HBM."""
    return EngineConfig(
        model=LLAMA3_70B_AWQ,
        cluster=ClusterSpec(A40, n_gpus=2),
        kv_pool_cap_bytes=20 * GB,
    )


def metadata_tokens(bundle: DatasetBundle) -> int:
    return _TOKENIZER.count(bundle.metadata)


def make_metis(bundle: DatasetBundle, config: MetisConfig | None = None,
               seed: int = 0, name: str = "metis",
               quality_slo: str | None = None) -> MetisPolicy:
    """``quality_slo`` ("metric>=value") makes the joint scheduler pick
    the cheapest in-range fitting configuration instead of the richest
    (docs/EVALUATION.md); it composes with an explicit ``config``."""
    if quality_slo is not None:
        config = replace(config or MetisConfig(), quality_slo=quality_slo)
    return MetisPolicy(
        metadata_tokens=metadata_tokens(bundle),
        chunk_tokens=bundle.chunk_tokens,
        config=config,
        seed=seed,
        name=name,
    )


def make_adaptive_rag(bundle: DatasetBundle,
                      profiler_spec: ProfilerModelSpec = GPT4O_PROFILER,
                      seed: int = 0) -> AdaptiveRAGPolicy:
    return AdaptiveRAGPolicy(
        metadata_tokens=metadata_tokens(bundle),
        profiler_spec=profiler_spec,
        seed=seed,
    )


def make_median(bundle: DatasetBundle, app_aware: bool = False,
                seed: int = 0) -> MedianConfigPolicy:
    return MedianConfigPolicy(
        metadata_tokens=metadata_tokens(bundle),
        chunk_tokens=bundle.chunk_tokens,
        app_aware_batching=app_aware,
        seed=seed,
    )


def fixed_config_grid(dataset: str) -> list[RAGConfig]:
    """Representative static-configuration grid a deployer would try.

    Kept intentionally small (the full grid is the point of §3's
    combinatorial-explosion argument); spans cheap→expensive for every
    synthesis method.
    """
    ilens = (75, 150) if dataset in ("finsec", "qmsum") else (50, 100)
    grid: list[RAGConfig] = [
        RAGConfig(SynthesisMethod.MAP_RERANK, 3),
        RAGConfig(SynthesisMethod.MAP_RERANK, 8),
        RAGConfig(SynthesisMethod.STUFF, 5),
        RAGConfig(SynthesisMethod.STUFF, 8),
        RAGConfig(SynthesisMethod.STUFF, 12),
        RAGConfig(SynthesisMethod.STUFF, 20),
        RAGConfig(SynthesisMethod.MAP_REDUCE, 8, ilens[0]),
        RAGConfig(SynthesisMethod.MAP_REDUCE, 8, ilens[1]),
        RAGConfig(SynthesisMethod.MAP_REDUCE, 12, ilens[1]),
        RAGConfig(SynthesisMethod.MAP_REDUCE, 18, ilens[1]),
    ]
    return grid


# ----------------------------------------------------------------------
# Running
# ----------------------------------------------------------------------
def run_policy(
    bundle: DatasetBundle,
    policy,
    rate_qps: float | None = None,
    n_queries: int | None = None,
    seed: int = 0,
    engine_config: EngineConfig | None = None,
    quality_params: QualityParams | None = None,
    sequential: bool = False,
    n_replicas: int = 1,
    router: str = "least-kv-load",
    profiler_concurrency: int | None = None,
    retrieval_concurrency: int | None = None,
    closed_loop_clients: int = 1,
    replica_speeds: list[float] | None = None,
    retrieval_shards: int = 1,
    shard_concurrency=None,
    reranker=None,
    index: str = "flat",
    slo_seconds: float | None = None,
    speculation=None,
    hedge_delay: float | None = None,
    workload=None,
    autoscaler=None,
    scale_min: int | None = None,
    scale_max: int | None = None,
    autoscale_interval: float | None = None,
    provision_delay: float | None = None,
    price_idle_capacity: bool | None = None,
    result_cache: str | None = None,
    retrieval_cache: bool = False,
    cache_capacity: int | None = None,
    cache_eviction: str | None = None,
    semantic_threshold: float | None = None,
    cache_ttl: float | None = None,
    quality_metrics: bool = False,
    quality_slo: str | None = None,
) -> RunResult:
    """Run one policy over the bundle's standard workload.

    ``n_replicas > 1`` serves the workload on a replicated cluster
    behind the named load-aware ``router`` (see
    :mod:`repro.serving.cluster`); ``replica_speeds`` (one multiplier
    per replica) makes the fleet heterogeneous. Finite
    ``profiler_concurrency`` / ``retrieval_concurrency`` make the
    profiler API and the vector store contended FIFO resources (see
    :mod:`repro.sim`); ``closed_loop_clients`` sets how many queries a
    ``sequential`` workload keeps outstanding. ``retrieval_shards`` /
    ``shard_concurrency`` / ``reranker`` / ``index`` configure the
    scatter-gather retrieval subsystem (see
    :mod:`repro.retrieval.sharded` and
    :class:`~repro.evaluation.runner.ExperimentRunner`);
    ``slo_seconds`` / ``speculation`` / ``hedge_delay`` configure
    deadline-aware speculative hedging (see
    :mod:`repro.serving.speculation`).

    ``workload`` replaces the one-shot Poisson arrivals with a
    trace-driven :class:`~repro.workload.Workload` (a generator name,
    a trace-file path, or an instance — see
    :func:`repro.workload.make_workload`); the bundle's queries cycle
    through the trace's arrival slots. ``autoscaler`` /
    ``scale_min`` / ``scale_max`` / ``autoscale_interval`` /
    ``provision_delay`` / ``price_idle_capacity`` configure elastic
    capacity on top (see :mod:`repro.workload.autoscaler`); the
    default (``None`` / ``"none"``) keeps the fleet static and the
    schedule byte-identical.

    ``result_cache`` / ``retrieval_cache`` / ``cache_capacity`` /
    ``cache_eviction`` / ``semantic_threshold`` / ``cache_ttl``
    configure the multi-tier caching subsystem (see
    :mod:`repro.caching` and ``docs/CACHING.md``); the default
    (``None`` / off) constructs no caches and keeps the schedule
    byte-identical.

    ``quality_metrics`` turns on the multi-metric quality harness
    (per-record faithfulness / answer relevancy / context precision /
    context recall — see :mod:`repro.evaluation.metrics` and
    ``docs/EVALUATION.md``); ``quality_slo`` ("metric>=value") implies
    it and stamps the run for
    :func:`~repro.evaluation.slo.evaluate_quality_slo`. Scoring is
    post-serve, so neither perturbs the event schedule; the default
    (off) keeps records field-for-field identical.
    """
    queries = bundle.queries if n_queries is None else bundle.queries[:n_queries]
    wl = None
    if workload is not None:
        if sequential:
            raise ValueError(
                "workload traces are open-loop (timed arrivals); drop "
                "sequential=True (--sequential) or the workload"
            )
        if rate_qps is not None:
            raise ValueError(
                "rate_qps sets the one-shot Poisson rate; a workload "
                "trace carries its own per-period rates — pass one or "
                "the other"
            )
        from repro.workload import make_workload

        wl = make_workload(workload, seed=seed)
        arrivals = wl.materialize(queries, seed=seed)
    elif sequential:
        arrivals = sequential_arrivals(queries)
    else:
        rate = rate_qps if rate_qps is not None else DEFAULT_RATES[bundle.name]
        arrivals = poisson_arrivals(queries, rate, seed=seed)
    runner = ExperimentRunner(
        bundle,
        engine_config or default_engine_config(),
        seed=seed,
        quality_params=quality_params,
        n_replicas=n_replicas,
        router=router,
        profiler_concurrency=profiler_concurrency,
        retrieval_concurrency=retrieval_concurrency,
        replica_speeds=replica_speeds,
        retrieval_shards=retrieval_shards,
        shard_concurrency=shard_concurrency,
        reranker=reranker,
        index=index,
        slo_seconds=slo_seconds,
        speculation=speculation,
        hedge_delay=hedge_delay,
        workload=wl,
        autoscaler=autoscaler,
        scale_min=scale_min,
        scale_max=scale_max,
        autoscale_interval=autoscale_interval,
        provision_delay=provision_delay,
        price_idle_capacity=price_idle_capacity,
        result_cache=result_cache,
        retrieval_cache=retrieval_cache,
        cache_capacity=cache_capacity,
        cache_eviction=cache_eviction,
        semantic_threshold=semantic_threshold,
        cache_ttl=cache_ttl,
        quality_metrics=quality_metrics,
        quality_slo=quality_slo,
    )
    return runner.run(policy, arrivals, closed_loop_clients=closed_loop_clients)


def run_fixed_grid(
    bundle: DatasetBundle,
    parrot: bool = False,
    rate_qps: float | None = None,
    n_queries: int | None = None,
    seed: int = 0,
    engine_config: EngineConfig | None = None,
) -> list[RunResult]:
    """Run every grid config as a fixed-configuration baseline."""
    results = []
    for config in fixed_config_grid(bundle.name):
        policy = (ParrotPolicy if parrot else FixedConfigPolicy)(config)
        results.append(
            run_policy(bundle, policy, rate_qps=rate_qps,
                       n_queries=n_queries, seed=seed,
                       engine_config=engine_config)
        )
    return results


# ----------------------------------------------------------------------
# Baseline selection rules (paper §7.1)
# ----------------------------------------------------------------------
def is_diverging(result: RunResult) -> bool:
    """Heuristic: the offered load exceeded capacity for this run.

    Two signatures, either of which flags divergence:

    * the drain time dwarfs the arrival window (the engine needed far
      longer than the workload's duration to clear the backlog), or
    * per-query delay grew 2×+ from the first to the second half of
      arrivals (queue still building when the run ended).

    A deployer would not operate a fixed configuration in this regime,
    so baseline-selection rules skip such runs when a stable
    alternative exists.
    """
    ordered = sorted(result.records, key=lambda r: r.arrival_time)
    if len(ordered) < 8:
        return False
    last_arrival = ordered[-1].arrival_time
    if result.makespan > 1.5 * last_arrival + 10.0:
        return True
    half = len(ordered) // 2
    first = sum(r.e2e_delay for r in ordered[:half]) / half
    second = sum(r.e2e_delay for r in ordered[half:]) / (len(ordered) - half)
    return second > 2.0 * first + 1.0


def select_best_quality(results: list[RunResult]) -> RunResult:
    """The fixed config with the highest mean F1 (Fig 12's blue bar),
    preferring configurations the deployer could actually operate
    (non-diverging)."""
    stable = [r for r in results if not is_diverging(r)]
    pool = stable or results
    return max(pool, key=lambda r: r.mean_f1)


def select_closest_quality(results: list[RunResult],
                           target_f1: float) -> RunResult:
    """The fixed config of quality closest to (but not above) the
    target, as the paper selects for throughput comparisons; falls back
    to absolute-closest when all exceed the target."""
    below = [r for r in results if r.mean_f1 <= target_f1]
    pool = below or results
    return min(pool, key=lambda r: abs(r.mean_f1 - target_f1))


def select_similar_delay(results: list[RunResult],
                         target_delay: float) -> RunResult:
    """The fixed config whose mean delay is closest to the target
    (for the paper's "12–18% higher F1 at similar delay" claim)."""
    return min(results, key=lambda r: abs(r.mean_delay - target_delay))


# ----------------------------------------------------------------------
def quality_with_model_bonus(bundle: DatasetBundle,
                             bonus: float) -> QualityParams:
    """Quality parameters for a larger serving model.

    The paper observes only ~2% F1 improvement from a 10× larger
    model (§7.4) — in RAG the knowledge comes from context, not
    weights — so the bonus nudges ``token_match_rate`` only.
    """
    params = bundle.quality_params
    return replace(
        params,
        token_match_rate=min(0.98, params.token_match_rate + bonus),
    )


def load_bundle(dataset: str, fast: bool, seed: int = 0) -> DatasetBundle:
    """Dataset with the standard (or fast) query count."""
    n = FAST_N_QUERIES if fast else DEFAULT_N_QUERIES
    return build_dataset(dataset, seed=seed, n_queries=n)
