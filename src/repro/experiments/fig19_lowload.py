"""Fig 19: METIS wins even at low load (sequential queries).

Closed-loop workload: each query is sent only after the previous one
completes, so there is no queueing contention; METIS' best-fit picks
the most expensive pruned configuration. Paper: still 1.48–1.56× faster
than the best-quality fixed configuration (QMSUM and Musique shown).
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentReport,
    load_bundle,
    make_metis,
    run_fixed_grid,
    run_policy,
    select_best_quality,
)

__all__ = ["run"]

_DATASETS = ("qmsum", "musique")


def run(fast: bool = False, seed: int = 0) -> ExperimentReport:
    report = ExperimentReport("Fig 19: low-load (sequential) serving")
    for dataset in _DATASETS:
        bundle = load_bundle(dataset, fast, seed)
        n = 30 if fast else 80
        metis = run_policy(bundle, make_metis(bundle, seed=seed),
                           n_queries=n, seed=seed, sequential=True)
        # Best-quality fixed config, also served sequentially.
        grid = run_fixed_grid(bundle, n_queries=n, seed=seed)
        best_config = select_best_quality(grid).records[0].config
        from repro.baselines import FixedConfigPolicy

        fixed = run_policy(bundle, FixedConfigPolicy(best_config),
                           n_queries=n, seed=seed, sequential=True)
        report.add_row(dataset=dataset, system="METIS",
                       mean_delay_s=metis.mean_delay, mean_f1=metis.mean_f1)
        report.add_row(dataset=dataset,
                       system=f"vLLM best-quality [{best_config.label()}]",
                       mean_delay_s=fixed.mean_delay, mean_f1=fixed.mean_f1)
        report.add_note(
            f"{dataset}: METIS "
            f"{fixed.mean_delay / max(metis.mean_delay, 1e-9):.2f}x faster "
            f"under sequential load (paper 1.48-1.56x)"
        )
    return report
