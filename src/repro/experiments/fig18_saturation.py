"""Fig 18 (contention variant): profiler overhead vs offered load.

Thin CLI-facing alias so ``python -m repro experiment fig18_saturation``
runs the load sweep defined next to the original Fig 18 driver.
"""

from __future__ import annotations

from repro.experiments.fig18_overhead import run_load_sweep as run

__all__ = ["run"]
