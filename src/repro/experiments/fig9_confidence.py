"""Fig 9: profiler confidence separates good from bad profiles.

Profiles every query of every dataset and reports, against the 90%
confidence threshold: the fraction of profiles above threshold, the
good-rate above threshold, and the bad-rate below threshold.

Paper numbers: >93% of profiles above threshold; 96–98% of those are
good; 85–90% of the below-threshold ones are bad.
"""

from __future__ import annotations

from repro.core.profiler import GPT4O_PROFILER, LLMProfiler
from repro.core.profiles import profile_is_good
from repro.data import DATASET_NAMES
from repro.experiments.common import (
    ExperimentReport,
    load_bundle,
    metadata_tokens,
)

__all__ = ["run", "confidence_stats"]

THRESHOLD = 0.90


def confidence_stats(bundle, spec=GPT4O_PROFILER, seed: int = 0,
                     threshold: float = THRESHOLD) -> dict[str, float]:
    """Profile all queries; return the Fig 9 fractions."""
    profiler = LLMProfiler(spec, metadata_tokens(bundle), seed=seed)
    above_good = above_bad = below_good = below_bad = 0
    for query in bundle.queries:
        result = profiler.profile(query)
        good = profile_is_good(result.profile, query.truth)
        high = result.profile.confidence >= threshold
        if high and good:
            above_good += 1
        elif high:
            above_bad += 1
        elif good:
            below_good += 1
        else:
            below_bad += 1
    n = len(bundle.queries)
    above = above_good + above_bad
    below = below_good + below_bad
    return {
        "n": n,
        "frac_above": above / n,
        "good_given_above": above_good / above if above else 0.0,
        "bad_given_below": below_bad / below if below else 0.0,
    }


def run(fast: bool = False, seed: int = 0) -> ExperimentReport:
    report = ExperimentReport("Fig 9: profiler confidence thresholding")
    for name in DATASET_NAMES:
        bundle = load_bundle(name, fast, seed)
        stats = confidence_stats(bundle, seed=seed)
        report.add_row(
            dataset=name,
            frac_above_threshold=stats["frac_above"],
            good_given_above=stats["good_given_above"],
            bad_given_below=stats["bad_given_below"],
        )
    report.add_note(
        "paper: >=93% above threshold, >=96% of those good, "
        "85-90% of below-threshold bad"
    )
    return report
