"""Fig 11: delay-vs-load curves; METIS sustains 1.8–4.5× higher
throughput than fixed-configuration serving at matched delay.

Sweeps the arrival rate per dataset for METIS, vLLM (fixed config of
closest quality), and Parrot* (same config, app-aware scheduling), then
reports the maximum rate each system sustains under a delay ceiling.

The *replica sweep* variant (:func:`run_replica_sweep`) scales the
serving cluster instead of the arrival rate: a saturating workload is
served by 1, 2, and 4 engine replicas behind a load-aware router, and
the report tracks aggregate throughput scaling plus per-replica load
figures (expected: ≈2× aggregate throughput from 1 → 2 replicas for
fixed-work systems; METIS additionally converts the extra memory into
richer configurations).
"""

from __future__ import annotations

import numpy as np

from repro.baselines import FixedConfigPolicy, ParrotPolicy
from repro.config.knobs import RAGConfig, SynthesisMethod
from repro.data import DATASET_NAMES
from repro.evaluation.reports import cluster_summary
from repro.experiments.common import (
    DEFAULT_RATES,
    ExperimentReport,
    load_bundle,
    make_metis,
    run_fixed_grid,
    run_policy,
    select_closest_quality,
)

__all__ = ["run", "run_replica_sweep", "sustained_throughput"]

_RATE_MULTIPLIERS = (0.25, 0.5, 1.0, 1.5, 2.0, 3.0)
_DELAY_CEILING_S = 8.0

_REPLICA_SWEEP = (1, 2, 4)
#: Multiple of the dataset's calibrated rate that saturates even the
#: largest swept cluster, so makespan measures serving capacity.
_SATURATION_MULTIPLIER = 6.0
_SWEEP_DATASET = "finsec"
#: The sweep's fast mode keeps more queries than other experiments: the
#: scaling ratio is makespan-based, and a short workload's drain tail
#: understates it (40 queries read ~1.78x where the steady state is ~2x).
_SWEEP_FAST_N_QUERIES = 100


def sustained_throughput(points: list[tuple[float, float]],
                         ceiling: float) -> float:
    """Highest swept rate whose mean delay stays under the ceiling."""
    ok = [rate for rate, delay in points if delay <= ceiling]
    return max(ok) if ok else 0.0


def run(fast: bool = False, seed: int = 0) -> ExperimentReport:
    report = ExperimentReport("Fig 11: throughput at matched delay")
    multipliers = _RATE_MULTIPLIERS[1:5] if fast else _RATE_MULTIPLIERS
    for dataset in DATASET_NAMES:
        bundle = load_bundle(dataset, fast, seed)
        base_rate = DEFAULT_RATES[dataset]

        # Pick the fixed config of closest quality at the base rate.
        metis_base = run_policy(bundle, make_metis(bundle, seed=seed),
                                seed=seed)
        grid = run_fixed_grid(bundle, seed=seed)
        fixed = select_closest_quality(grid, metis_base.mean_f1)
        fixed_config = fixed.records[0].config

        curves: dict[str, list[tuple[float, float]]] = {
            "METIS": [], "vLLM(fixed)": [], "Parrot*(fixed)": []
        }
        for mult in multipliers:
            rate = base_rate * mult
            for system, policy in (
                ("METIS", make_metis(bundle, seed=seed)),
                ("vLLM(fixed)", FixedConfigPolicy(fixed_config)),
                ("Parrot*(fixed)", ParrotPolicy(fixed_config)),
            ):
                result = run_policy(bundle, policy, rate_qps=rate, seed=seed)
                curves[system].append((rate, result.mean_delay))
                report.add_row(
                    dataset=dataset, system=system, rate_qps=rate,
                    mean_delay_s=result.mean_delay, mean_f1=result.mean_f1,
                )
        metis_tp = sustained_throughput(curves["METIS"], _DELAY_CEILING_S)
        vllm_tp = sustained_throughput(curves["vLLM(fixed)"], _DELAY_CEILING_S)
        parrot_tp = sustained_throughput(curves["Parrot*(fixed)"],
                                         _DELAY_CEILING_S)
        baseline_tp = max(vllm_tp, parrot_tp)
        if baseline_tp > 0:
            report.add_note(
                f"{dataset}: sustained throughput under "
                f"{_DELAY_CEILING_S:.0f}s delay — METIS {metis_tp:.2f} qps "
                f"vs best fixed {baseline_tp:.2f} qps "
                f"({metis_tp / baseline_tp:.2f}x; paper band 1.8-4.5x, "
                f"fixed config {fixed_config.label()})"
            )
        else:
            report.add_note(
                f"{dataset}: fixed config {fixed_config.label()} never met "
                f"the {_DELAY_CEILING_S:.0f}s ceiling; METIS sustains "
                f"{metis_tp:.2f} qps"
            )
    return report


def run_replica_sweep(
    fast: bool = False,
    seed: int = 0,
    replicas: tuple[int, ...] = _REPLICA_SWEEP,
    router: str = "least-kv-load",
) -> ExperimentReport:
    """Cluster variant of Fig 11: throughput vs replica count.

    Serves a saturating open-loop workload on 1/2/4-replica clusters
    for a fixed-configuration system (constant work per query — the
    clean scaling measurement) and METIS (whose memory-aware selection
    spends the extra per-replica headroom on richer configurations).
    """
    report = ExperimentReport("Fig 11 (cluster): replica sweep under "
                              "saturating load")
    dataset = _SWEEP_DATASET
    if fast:
        from repro.data import build_dataset

        bundle = build_dataset(dataset, seed=seed,
                               n_queries=_SWEEP_FAST_N_QUERIES)
    else:
        bundle = load_bundle(dataset, fast, seed)
    rate = DEFAULT_RATES[dataset] * _SATURATION_MULTIPLIER
    fixed_config = RAGConfig(SynthesisMethod.STUFF, 8)

    throughput: dict[str, dict[int, float]] = {}
    for system, make in (
        ("vLLM(fixed)", lambda: FixedConfigPolicy(fixed_config)),
        ("METIS", lambda: make_metis(bundle, seed=seed)),
    ):
        curve: dict[int, float] = {}
        for n in replicas:
            result = run_policy(
                bundle, make(), rate_qps=rate, seed=seed,
                n_replicas=n, router=router,
            )
            summary = cluster_summary(result)
            delays = [r.queueing_delay for r in result.records]
            curve[n] = result.throughput_qps
            report.add_row(
                dataset=dataset,
                system=system,
                replicas=n,
                router=router,
                throughput_qps=result.throughput_qps,
                mean_delay_s=result.mean_delay,
                p50_queue_delay_s=float(np.median(delays)) if delays else 0.0,
                mean_f1=result.mean_f1,
                fallback_rate=summary["fallback_rate"],
                peak_kv_utilization=summary["peak_kv_utilization"],
                load_imbalance=summary["load_imbalance"],
            )
        throughput[system] = curve
        if 1 in curve and 2 in curve and curve[1] > 0:
            report.add_note(
                f"{dataset}/{system}: 1→2 replicas scales aggregate "
                f"throughput {curve[2] / curve[1]:.2f}x "
                f"(router {router}; ideal 2.00x, target >= 1.8x)"
            )
        top = max(replicas)
        if 1 in curve and top in curve and curve[1] > 0 and top > 1:
            report.add_note(
                f"{dataset}/{system}: 1→{top} replicas scales "
                f"{curve[top] / curve[1]:.2f}x (ideal {float(top):.2f}x)"
            )
    return report
