"""Fig 11: delay-vs-load curves; METIS sustains 1.8–4.5× higher
throughput than fixed-configuration serving at matched delay.

Sweeps the arrival rate per dataset for METIS, vLLM (fixed config of
closest quality), and Parrot* (same config, app-aware scheduling), then
reports the maximum rate each system sustains under a delay ceiling.
"""

from __future__ import annotations

from repro.baselines import FixedConfigPolicy, ParrotPolicy
from repro.data import DATASET_NAMES
from repro.experiments.common import (
    DEFAULT_RATES,
    ExperimentReport,
    load_bundle,
    make_metis,
    run_fixed_grid,
    run_policy,
    select_closest_quality,
)

__all__ = ["run", "sustained_throughput"]

_RATE_MULTIPLIERS = (0.25, 0.5, 1.0, 1.5, 2.0, 3.0)
_DELAY_CEILING_S = 8.0


def sustained_throughput(points: list[tuple[float, float]],
                         ceiling: float) -> float:
    """Highest swept rate whose mean delay stays under the ceiling."""
    ok = [rate for rate, delay in points if delay <= ceiling]
    return max(ok) if ok else 0.0


def run(fast: bool = False, seed: int = 0) -> ExperimentReport:
    report = ExperimentReport("Fig 11: throughput at matched delay")
    multipliers = _RATE_MULTIPLIERS[1:5] if fast else _RATE_MULTIPLIERS
    for dataset in DATASET_NAMES:
        bundle = load_bundle(dataset, fast, seed)
        base_rate = DEFAULT_RATES[dataset]

        # Pick the fixed config of closest quality at the base rate.
        metis_base = run_policy(bundle, make_metis(bundle, seed=seed),
                                seed=seed)
        grid = run_fixed_grid(bundle, seed=seed)
        fixed = select_closest_quality(grid, metis_base.mean_f1)
        fixed_config = fixed.records[0].config

        curves: dict[str, list[tuple[float, float]]] = {
            "METIS": [], "vLLM(fixed)": [], "Parrot*(fixed)": []
        }
        for mult in multipliers:
            rate = base_rate * mult
            for system, policy in (
                ("METIS", make_metis(bundle, seed=seed)),
                ("vLLM(fixed)", FixedConfigPolicy(fixed_config)),
                ("Parrot*(fixed)", ParrotPolicy(fixed_config)),
            ):
                result = run_policy(bundle, policy, rate_qps=rate, seed=seed)
                curves[system].append((rate, result.mean_delay))
                report.add_row(
                    dataset=dataset, system=system, rate_qps=rate,
                    mean_delay_s=result.mean_delay, mean_f1=result.mean_f1,
                )
        metis_tp = sustained_throughput(curves["METIS"], _DELAY_CEILING_S)
        vllm_tp = sustained_throughput(curves["vLLM(fixed)"], _DELAY_CEILING_S)
        parrot_tp = sustained_throughput(curves["Parrot*(fixed)"],
                                         _DELAY_CEILING_S)
        baseline_tp = max(vllm_tp, parrot_tp)
        if baseline_tp > 0:
            report.add_note(
                f"{dataset}: sustained throughput under "
                f"{_DELAY_CEILING_S:.0f}s delay — METIS {metis_tp:.2f} qps "
                f"vs best fixed {baseline_tp:.2f} qps "
                f"({metis_tp / baseline_tp:.2f}x; paper band 1.8-4.5x, "
                f"fixed config {fixed_config.label()})"
            )
        else:
            report.add_note(
                f"{dataset}: fixed config {fixed_config.label()} never met "
                f"the {_DELAY_CEILING_S:.0f}s ceiling; METIS sustains "
                f"{metis_tp:.2f} qps"
            )
    return report
