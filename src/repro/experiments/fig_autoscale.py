"""Elastic autoscaling vs static fleets on a day-long diurnal trace.

Serves the same diurnal workload — 24 sinusoidal periods from a
night-time trough to a midday peak, Poisson arrivals within each
period — four ways, all with provisioned-but-idle capacity priced
into the ledger (a rented GPU bills whether or not it is busy):

* ``static-1`` — one replica forever: cheapest, but the peak hours
  overwhelm it and SLO attainment collapses.
* ``static-peak`` — a fleet sized for the peak: best attainment, but
  the trough hours pay for idle GPUs.
* ``reactive`` — threshold autoscaling between 1 and the peak size:
  scales on observed queue depth / SLO pain, paying the provisioning
  delay on every ramp.
* ``forecast`` — the BRAD-style planner: scores candidate fleet
  sizes against the trace's next-period rate (lookahead covers the
  provisioning delay), so capacity is already online when the ramp
  arrives.

Reported per arm: SLO attainment, p50/p99 delay, $/query (idle
included), idle dollars and idle fraction, and scaling-event counts.

Expected (pinned by ``test_experiments_smoke.py``): the forecast
fleet matches static-peak's SLO attainment within 2 points at
measurably lower $/query; static-1 is cheapest but misses its SLO
badly at the peak; the elastic arms actually scale (both add and
retire replicas) while the static arms never do.
"""

from __future__ import annotations

from repro.baselines import FixedConfigPolicy
from repro.config.knobs import RAGConfig, SynthesisMethod
from repro.data import build_dataset
from repro.evaluation.reports import autoscale_summary
from repro.experiments.common import ExperimentReport, run_policy
from repro.workload import diurnal_workload

__all__ = ["run"]

_DATASET = "finsec"
_SLO_SECONDS = 6.0
#: Peak-sized static fleet / autoscaler ceiling.
_PEAK_REPLICAS = 3
#: Query pool cycled through the trace's arrival slots.
_N_QUERIES = 120
_FAST_N_QUERIES = 60

#: The "day": 24 hour-periods compressed to one sim-minute each; the
#: trough idles at 0.25 qps, the midday peak exceeds one replica's
#: capacity (~1.4 qps for this config) so a static-1 fleet drowns.
_TRACE = dict(n_periods=24, period_s=60.0, base_qps=0.25, peak_qps=2.2)
_CONTROL = dict(autoscale_interval=15.0, provision_delay=30.0)
#: Fast mode compresses each "hour" to 15 s (same shape, ~1/4 the
#: arrivals) and tightens the control loop to match.
_TRACE_FAST = dict(n_periods=24, period_s=15.0, base_qps=0.25, peak_qps=2.2)
_CONTROL_FAST = dict(autoscale_interval=4.0, provision_delay=8.0)


def _row(report: ExperimentReport, label: str, result) -> None:
    scaling = autoscale_summary(result)
    report.add_row(
        dataset=_DATASET,
        fleet=label,
        n_replicas_peak=scaling["n_replicas_peak"],
        slo_attainment=result.slo_attainment,
        p50_delay_s=result.delay_percentile(50),
        p99_delay_s=result.delay_percentile(99),
        dollars_per_query=result.ledger.per_query(len(result.records)),
        idle_dollars=result.ledger.idle_dollars,
        idle_fraction=scaling["idle_fraction"],
        scale_ups=scaling["scale_ups"],
        retires=scaling["retires"],
        queries=len(result.records),
    )


def run(fast: bool = False, seed: int = 0) -> ExperimentReport:
    report = ExperimentReport(
        "Autoscaling: SLO attainment vs $/query across a diurnal day"
    )
    n_queries = _FAST_N_QUERIES if fast else _N_QUERIES
    bundle = build_dataset(_DATASET, seed=seed, n_queries=n_queries)
    trace = diurnal_workload(seed=seed, **(_TRACE_FAST if fast else _TRACE))
    control = _CONTROL_FAST if fast else _CONTROL
    config = RAGConfig(SynthesisMethod.STUFF, 8)

    def serve(n_replicas: int, autoscaler: str | None = None):
        kwargs = dict(control) if autoscaler else {}
        if autoscaler:
            kwargs.update(scale_min=1, scale_max=_PEAK_REPLICAS)
        return run_policy(
            bundle, FixedConfigPolicy(config), workload=trace,
            seed=seed, n_replicas=n_replicas,
            slo_seconds=_SLO_SECONDS, autoscaler=autoscaler,
            # Static fleets pay for their idle GPUs too — that is the
            # comparison this figure exists to make.
            price_idle_capacity=True,
            **kwargs,
        )

    static_1 = serve(1)
    _row(report, "static-1", static_1)
    static_peak = serve(_PEAK_REPLICAS)
    _row(report, f"static-{_PEAK_REPLICAS}", static_peak)
    reactive = serve(1, "reactive")
    _row(report, "reactive", reactive)
    forecast = serve(1, "forecast")
    _row(report, "forecast", forecast)

    n = len(static_peak.records)
    report.add_note(
        f"{_DATASET}: forecast autoscaling attains "
        f"{forecast.slo_attainment:.3f} vs static-{_PEAK_REPLICAS}'s "
        f"{static_peak.slo_attainment:.3f} at "
        f"${forecast.ledger.per_query(len(forecast.records)):.5f}/query "
        f"vs ${static_peak.ledger.per_query(n):.5f} — tracking the "
        f"diurnal shape instead of paying for the peak all day"
    )
    report.add_note(
        f"static-1 is cheapest "
        f"(${static_1.ledger.per_query(len(static_1.records)):.5f}/query) "
        f"but attains only {static_1.slo_attainment:.3f}: the midday "
        f"peak exceeds one replica's capacity"
    )
    report.add_note(
        f"reactive scales {autoscale_summary(reactive)['scale_ups']} "
        f"up / {autoscale_summary(reactive)['retires']} down for "
        f"attainment {reactive.slo_attainment:.3f}; the forecast "
        f"planner pre-provisions ahead of the ramp "
        f"({autoscale_summary(forecast)['scale_ups']} up / "
        f"{autoscale_summary(forecast)['retires']} down)"
    )
    return report
