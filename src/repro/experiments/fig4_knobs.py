"""Fig 4: per-knob quality-delay tradeoffs on three query classes.

Reproduces the paper's Q1/Q2/Q3 study on Musique-style queries:

* (a) synthesis method sweep — the best method differs per query,
* (b) ``num_chunks`` sweep under ``stuff`` — quality peaks then drops,
* (c) ``intermediate_length`` sweep under ``map_reduce`` — short
  summaries starve complex queries.

Quality is the analytic expected F1 (smooth); delay is the isolated
service time of the plan on an idle engine.
"""

from __future__ import annotations

from repro.config.knobs import RAGConfig, SynthesisMethod
from repro.data.types import DatasetBundle, Query
from repro.experiments.common import (
    ExperimentReport,
    default_engine_config,
    load_bundle,
)
from repro.experiments.service_time import isolated_plan_seconds
from repro.llm.costs import RooflineCostModel
from repro.llm.quality import QualityModel
from repro.synthesis import make_synthesizer

__all__ = ["run", "pick_representative_queries", "evaluate_config"]

_CHUNK_SWEEP = (1, 2, 3, 5, 8, 12, 18, 25, 35)
_ILEN_SWEEP = (10, 25, 50, 75, 100, 150, 200)


def pick_representative_queries(bundle: DatasetBundle) -> dict[str, Query]:
    """Q1 simple/single-piece, Q2 joint/low-complexity, Q3 joint/complex.

    Queries must also show *typical* retrieval behaviour (all relevant
    chunks found within 3× pieces), so the knob sweeps reflect the knob
    rather than one query's retrieval outliers.
    """

    def typical_retrieval(query: Query) -> bool:
        relevant = bundle.relevant_chunk_ids(query)
        k = 3 * query.truth.pieces_of_information
        hits = bundle.store.search(query.text, k)
        found = {h.chunk.chunk_id for h in hits}
        return relevant.issubset(found)

    q1 = q2 = q3 = None
    for query in bundle.queries:
        t = query.truth
        if not typical_retrieval(query):
            continue
        if q1 is None and t.pieces_of_information == 1 and not t.complexity_high:
            q1 = query
        elif (q2 is None and t.joint_reasoning and not t.complexity_high
              and t.pieces_of_information >= 3):
            q2 = query
        elif (q3 is None and t.joint_reasoning and t.complexity_high
              and t.pieces_of_information >= 3):
            q3 = query
    picked = {"Q1": q1, "Q2": q2, "Q3": q3}
    missing = [k for k, v in picked.items() if v is None]
    if missing:
        raise RuntimeError(f"dataset lacks representative queries: {missing}")
    return picked


def evaluate_config(
    bundle: DatasetBundle,
    query: Query,
    config: RAGConfig,
    cost: RooflineCostModel,
    quality: QualityModel,
) -> tuple[float, float]:
    """(delay_seconds, expected_f1) for one (query, config) point."""
    hits = bundle.store.search(query.text, config.num_chunks)
    chunk_ids = [h.chunk.chunk_id for h in hits]
    ctx = bundle.synthesis_context(query, chunk_ids)
    f1 = quality.expected_f1(ctx, config.synthesis_method,
                             config.intermediate_length)
    plan = make_synthesizer(config.synthesis_method).build_plan(
        query_id=query.query_id,
        query_tokens=query.n_tokens,
        chunk_tokens=[h.chunk.n_tokens for h in hits],
        answer_tokens=query.answer_tokens_estimate,
        config=config,
    )
    return isolated_plan_seconds(plan, cost), f1


def run(fast: bool = False, seed: int = 0) -> ExperimentReport:
    bundle = load_bundle("musique", fast, seed)
    engine_config = default_engine_config()
    cost = RooflineCostModel(engine_config.model, engine_config.cluster)
    quality = QualityModel(bundle.quality_params)
    queries = pick_representative_queries(bundle)
    report = ExperimentReport("Fig 4: per-knob quality-delay tradeoffs")

    chunk_sweep = _CHUNK_SWEEP[::2] if fast else _CHUNK_SWEEP
    ilen_sweep = _ILEN_SWEEP[::2] if fast else _ILEN_SWEEP

    for label, query in queries.items():
        pieces = query.truth.pieces_of_information
        k = max(2, 2 * pieces)
        # (a) synthesis-method sweep.
        for method in SynthesisMethod:
            ilen = 100 if method.uses_intermediate_length else 0
            delay, f1 = evaluate_config(
                bundle, query, RAGConfig(method, k, ilen), cost, quality
            )
            report.add_row(panel="a:method", query=label,
                           knob=str(method), delay_s=delay, f1=f1)
        # (b) num_chunks sweep with stuff.
        for kk in chunk_sweep:
            delay, f1 = evaluate_config(
                bundle, query, RAGConfig(SynthesisMethod.STUFF, kk),
                cost, quality,
            )
            report.add_row(panel="b:num_chunks", query=label,
                           knob=kk, delay_s=delay, f1=f1)
        # (c) intermediate_length sweep with map_reduce.
        for ilen in ilen_sweep:
            delay, f1 = evaluate_config(
                bundle, query,
                RAGConfig(SynthesisMethod.MAP_REDUCE, k, ilen),
                cost, quality,
            )
            report.add_row(panel="c:ilen", query=label,
                           knob=ilen, delay_s=delay, f1=f1)

    _add_shape_notes(report, queries)
    return report


def _add_shape_notes(report: ExperimentReport, queries) -> None:
    """Summarise the paper's three qualitative claims from the rows."""
    rows = report.rows

    def best(panel: str, label: str, key):
        pts = [r for r in rows if r["panel"] == panel and r["query"] == label]
        return max(pts, key=key)

    q1_best = best("a:method", "Q1", lambda r: r["f1"] - 0.02 * r["delay_s"])
    q3_best = best("a:method", "Q3", lambda r: r["f1"])
    report.add_note(
        f"Q1 best method (quality-delay): {q1_best['knob']}; "
        f"Q3 best-quality method: {q3_best['knob']}"
    )
    for label in queries:
        pts = [r for r in rows
               if r["panel"] == "b:num_chunks" and r["query"] == label]
        peak = max(pts, key=lambda r: r["f1"])
        tail = pts[-1]
        drop = (peak["f1"] - tail["f1"]) / max(peak["f1"], 1e-9)
        report.add_note(
            f"{label}: stuff quality peaks at k={peak['knob']} "
            f"then drops {drop:.0%} by k={tail['knob']}"
        )
