"""Fig 16: each added knob improves the quality-delay tradeoff (QMSUM).

Starting from vLLM with a fixed configuration and incrementally
enabling: ``num_chunks`` adaptation → ``synthesis_method`` →
``intermediate_length`` → joint memory-aware scheduling (full METIS).
"""

from __future__ import annotations

from repro.config.knobs import RAGConfig, SynthesisMethod
from repro.baselines import FixedConfigPolicy
from repro.core import MetisConfig
from repro.experiments.common import (
    ExperimentReport,
    load_bundle,
    make_metis,
    run_policy,
)

__all__ = ["run"]

_DATASET = "qmsum"
_FIXED = RAGConfig(SynthesisMethod.STUFF, 20)


def _metis_step(adapt_chunks: bool, adapt_synthesis: bool,
                adapt_ilen: bool, memory_aware: bool) -> MetisConfig:
    return MetisConfig(
        adapt_num_chunks=adapt_chunks,
        adapt_synthesis=adapt_synthesis,
        adapt_intermediate_length=adapt_ilen,
        memory_aware=memory_aware,
        selection_mode="best_fit" if memory_aware else "median",
    )


def run(fast: bool = False, seed: int = 0) -> ExperimentReport:
    report = ExperimentReport("Fig 16: incremental knob adaptation (qmsum)")
    bundle = load_bundle(_DATASET, fast, seed)
    steps = [
        ("vLLM fixed (stuff, k=20)", None),
        ("+ num_chunks", _metis_step(True, False, False, False)),
        ("+ synthesis_method", _metis_step(True, True, False, False)),
        ("+ intermediate_length", _metis_step(True, True, True, False)),
        ("+ scheduling (METIS)", _metis_step(True, True, True, True)),
    ]
    baseline_delay = baseline_f1 = None
    for label, config in steps:
        if config is None:
            policy = FixedConfigPolicy(_FIXED)
        else:
            policy = make_metis(bundle, config, seed=seed, name=label)
        result = run_policy(bundle, policy, seed=seed)
        report.add_row(system=label, mean_delay_s=result.mean_delay,
                       mean_f1=result.mean_f1)
        if baseline_delay is None:
            baseline_delay, baseline_f1 = result.mean_delay, result.mean_f1
        else:
            report.add_note(
                f"{label}: delay {baseline_delay / max(result.mean_delay, 1e-9):.2f}x "
                f"vs fixed, F1 {result.mean_f1 - baseline_f1:+.3f}"
            )
    return report
