"""Fig 11 (cluster variant): aggregate throughput vs replica count.

Thin CLI-facing alias so ``python -m repro experiment fig11_replicas``
runs the replica sweep defined next to the original Fig 11 driver.
"""

from __future__ import annotations

from repro.experiments.fig11_throughput import run_replica_sweep as run

__all__ = ["run"]
