"""Fig 15: gains persist with a larger inference LLM (Llama-3.1-70B).

Musique and QMSUM served by Llama-70B on 2× A40. Paper: METIS is
2.1–2.4× faster than AdaptiveRAG* at similar F1; fixed-config baselines
lose 7–10% F1; the bigger model itself only adds ~2% F1.
"""

from __future__ import annotations

from repro.experiments.common import (
    DEFAULT_RATES,
    ExperimentReport,
    engine_config_70b,
    load_bundle,
    make_adaptive_rag,
    make_metis,
    quality_with_model_bonus,
    run_fixed_grid,
    run_policy,
    select_similar_delay,
)

__all__ = ["run"]

_DATASETS = ("musique", "qmsum")
_70B_RATE_SCALE = 0.12


def run(fast: bool = False, seed: int = 0) -> ExperimentReport:
    report = ExperimentReport("Fig 15: larger inference LLM (Llama-70B)")
    for dataset in _DATASETS:
        bundle = load_bundle(dataset, fast, seed)
        rate = DEFAULT_RATES[dataset] * _70B_RATE_SCALE
        engine = engine_config_70b()
        quality = quality_with_model_bonus(bundle, 0.02)

        metis = run_policy(bundle, make_metis(bundle, seed=seed),
                           rate_qps=rate, seed=seed, engine_config=engine,
                           quality_params=quality)
        adaptive = run_policy(bundle, make_adaptive_rag(bundle, seed=seed),
                              rate_qps=rate, seed=seed, engine_config=engine,
                              quality_params=quality)
        grid = run_fixed_grid(bundle, rate_qps=rate, seed=seed,
                              engine_config=engine)
        fixed = select_similar_delay(grid, metis.mean_delay)

        for system, result in (
            ("METIS", metis),
            ("AdaptiveRAG*", adaptive),
            (f"vLLM fixed [{fixed.policy}]", fixed),
        ):
            report.add_row(dataset=dataset, system=system,
                           mean_delay_s=result.mean_delay,
                           mean_f1=result.mean_f1)
        ratio = adaptive.mean_delay / max(metis.mean_delay, 1e-9)
        gap = (metis.mean_f1 - fixed.mean_f1) / max(fixed.mean_f1, 1e-9)
        report.add_note(
            f"{dataset}: METIS {ratio:.2f}x faster than AdaptiveRAG* "
            f"(paper 2.1-2.4x); similar-delay fixed config loses "
            f"{gap:.0%} F1 (paper 7-10%)"
        )
    return report
