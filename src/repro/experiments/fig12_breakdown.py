"""Fig 12: where METIS' delay savings come from.

Four bars per dataset (paper uses FinSec and Musique):

1. vLLM with the best-quality fixed configuration,
2. + profiler with median-of-pruned-space configs (no batching),
3. + Parrot-style app-aware batching,
4. full METIS (joint memory-aware configuration + scheduling).

Paper: step 2 gives 1.4–1.68×, step 3 another 1.1–1.2×, step 4 another
1.45–1.75×.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentReport,
    load_bundle,
    make_median,
    make_metis,
    run_fixed_grid,
    run_policy,
    select_best_quality,
)

__all__ = ["run", "run_dataset"]

_DATASETS = ("finsec", "musique")


def run_dataset(dataset: str, fast: bool = False, seed: int = 0) -> list[dict]:
    bundle = load_bundle(dataset, fast, seed)
    vllm_best = select_best_quality(run_fixed_grid(bundle, seed=seed))
    median = run_policy(bundle, make_median(bundle, seed=seed), seed=seed)
    median_batched = run_policy(
        bundle, make_median(bundle, app_aware=True, seed=seed), seed=seed
    )
    metis = run_policy(bundle, make_metis(bundle, seed=seed), seed=seed)
    rows = []
    for system, result in (
        ("vllm best-quality fixed", vllm_best),
        ("+ profiler (median config)", median),
        ("+ batching", median_batched),
        ("METIS (joint, memory-aware)", metis),
    ):
        rows.append({
            "dataset": dataset,
            "system": system,
            "mean_delay_s": result.mean_delay,
            "mean_f1": result.mean_f1,
        })
    return rows


def run(fast: bool = False, seed: int = 0) -> ExperimentReport:
    report = ExperimentReport("Fig 12: delay-saving breakdown")
    for dataset in _DATASETS:
        rows = run_dataset(dataset, fast, seed)
        report.rows.extend(rows)
        d = [r["mean_delay_s"] for r in rows]
        report.add_note(
            f"{dataset}: profiler+median {d[0] / max(d[1], 1e-9):.2f}x "
            f"(paper 1.4-1.68x); +batching {d[1] / max(d[2], 1e-9):.2f}x "
            f"(paper 1.1-1.2x); +joint scheduling "
            f"{d[2] / max(d[3], 1e-9):.2f}x (paper 1.45-1.75x)"
        )
    return report
