"""Speculative tail-latency-vs-cost curve on a heterogeneous fleet.

Serves a fixed-config workload on a two-replica 1.0x/0.5x cluster
behind a load-blind round-robin router — the regime where the slow
replica dominates the tail (fig11_hetero) — and sweeps speculative
hedging against it:

* ``none`` — the baseline tail.
* ``hedge-after-delay`` at several timers: earlier hedges duplicate
  more queries (higher wasted-work fraction, more speculation cost)
  and cut the tail deeper — tracing the tail-latency-vs-cost curve.
* ``deadline-risk`` — the model-based policy: it estimates each
  query's completion from the plan and the routed replica's queue
  depth/speed, hedging only queries whose SLO looks unreachable.
  Near-identical tail relief at a fraction of the hedge volume.

Reported per row: p50/p99 delay, SLO attainment, hedge rate, hedge
win rate, wasted-work fraction (loser-lane tokens / all processed
tokens), and the ledger's ``speculation`` dollar attribution.

Expected (pinned by ``test_experiments_smoke.py``): every hedging row
beats the baseline p99 on this fleet; wasted work stays bounded
(< 35% of processed tokens); earlier timers hedge more than later
ones; deadline-risk hedges far fewer queries than the aggressive
timer while still cutting the tail and improving SLO attainment.
"""

from __future__ import annotations

from repro.baselines import FixedConfigPolicy
from repro.config.knobs import RAGConfig, SynthesisMethod
from repro.data import build_dataset
from repro.experiments.common import ExperimentReport, load_bundle, run_policy

__all__ = ["run"]

_DATASET = "finsec"
#: 1.0x and 0.5x replicas: the canonical fast/slow pair.
_SPEEDS = (1.0, 0.5)
_ROUTER = "round-robin"  # load-blind: the slow replica owns the tail
_RATE_QPS = 2.0
_SLO_SECONDS = 6.0
#: hedge-after-delay timers, aggressive -> conservative.
_HEDGE_DELAYS = (2.0, 3.0, 5.0)
_FAST_N_QUERIES = 80


def _row(report: ExperimentReport, label: str, result) -> None:
    report.add_row(
        dataset=_DATASET,
        speculation=label,
        p50_delay_s=result.delay_percentile(50),
        p99_delay_s=result.delay_percentile(99),
        mean_delay_s=result.mean_delay,
        slo_attainment=result.slo_attainment,
        hedge_rate=result.hedge_rate,
        hedge_win_rate=result.hedge_win_rate,
        wasted_work_fraction=result.wasted_work_fraction,
        requests_cancelled=result.engine_stats.requests_cancelled,
        speculation_dollars=result.ledger.speculation_dollars,
        total_dollars=result.total_dollars,
    )


def run(fast: bool = False, seed: int = 0) -> ExperimentReport:
    report = ExperimentReport(
        "Speculation: tail latency vs duplicate cost on a 1.0x/0.5x fleet"
    )
    if fast:
        bundle = build_dataset(_DATASET, seed=seed,
                               n_queries=_FAST_N_QUERIES)
    else:
        bundle = load_bundle(_DATASET, fast, seed)
    config = RAGConfig(SynthesisMethod.STUFF, 8)

    def serve(speculation: str | None = None, **kwargs):
        return run_policy(
            bundle, FixedConfigPolicy(config), rate_qps=_RATE_QPS,
            seed=seed, n_replicas=len(_SPEEDS), router=_ROUTER,
            replica_speeds=list(_SPEEDS), slo_seconds=_SLO_SECONDS,
            speculation=speculation, **kwargs,
        )

    baseline = serve()
    _row(report, "none", baseline)

    by_delay = {}
    for delay in _HEDGE_DELAYS:
        result = serve("hedge-after-delay", hedge_delay=delay)
        by_delay[delay] = result
        _row(report, f"hedge@{delay:g}s", result)

    risk = serve("deadline-risk")
    _row(report, "deadline-risk", risk)

    p99_0 = baseline.delay_percentile(99)
    best = min(by_delay.values(), key=lambda r: r.delay_percentile(99))
    report.add_note(
        f"{_DATASET}: hedge-after-delay cuts p99 from {p99_0:.2f}s to "
        f"{best.delay_percentile(99):.2f}s at a wasted-work fraction of "
        f"{best.wasted_work_fraction:.2f} (speculation "
        f"${best.ledger.speculation_dollars:.4f} of "
        f"${best.total_dollars:.4f} total)"
    )
    report.add_note(
        f"deadline-risk hedges {risk.hedge_rate:.2f} of queries (vs "
        f"{by_delay[min(_HEDGE_DELAYS)].hedge_rate:.2f} for the "
        f"earliest timer) for p99 {risk.delay_percentile(99):.2f}s and "
        f"SLO attainment {risk.slo_attainment:.2f} vs the baseline's "
        f"{baseline.slo_attainment:.2f} — risk-gating keeps safe "
        f"queries free"
    )
    return report
