"""``map_reduce`` synthesis: summarise each chunk, then answer from the
summaries (Fig 3c).

Stage 0: N mapper calls, each compressing one chunk to
``intermediate_length`` tokens (query-focused summarisation).
Stage 1: one reduce call over the N summaries.

Most compute of the three methods, but every individual call is small —
the property the joint scheduler exploits when GPU memory is scarce
(paper Fig 8b).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.config.knobs import RAGConfig, SynthesisMethod
from repro.synthesis.base import Synthesizer
from repro.synthesis.footprint import PlanFootprint
from repro.synthesis.plans import LLMCall, SynthesisPlan

__all__ = ["MapReduceSynthesizer"]


class MapReduceSynthesizer(Synthesizer):
    """N mappers (stage 0) feeding one reduce (stage 1)."""

    method = SynthesisMethod.MAP_REDUCE

    def build_plan(
        self,
        query_id: str,
        query_tokens: int,
        chunk_tokens: Sequence[int],
        answer_tokens: int,
        config: RAGConfig,
    ) -> SynthesisPlan:
        self._validate(query_tokens, chunk_tokens, answer_tokens, config)
        ilen = config.intermediate_length
        mappers = [
            LLMCall(
                call_id=f"{query_id}/map{i}",
                prompt_tokens=(
                    query_tokens + n + self.overheads.wrapper_tokens(1)
                ),
                output_tokens=ilen,
                stage=0,
            )
            for i, n in enumerate(chunk_tokens)
        ]
        reduce_prompt = (
            query_tokens
            + len(chunk_tokens) * ilen
            + self.overheads.wrapper_tokens(len(chunk_tokens))
        )
        reduce_call = LLMCall(
            call_id=f"{query_id}/reduce",
            prompt_tokens=reduce_prompt,
            output_tokens=answer_tokens,
            stage=1,
        )
        return SynthesisPlan(query_id=query_id, calls=(*mappers, reduce_call))

    def estimate_footprint(
        self,
        query_tokens: int,
        chunk_tokens: int,
        answer_tokens: int,
        config: RAGConfig,
    ) -> PlanFootprint:
        self._validate_estimate(query_tokens, chunk_tokens, answer_tokens,
                                config)
        k = config.num_chunks
        ilen = config.intermediate_length
        map_prompt = (
            query_tokens + chunk_tokens + self.overheads.wrapper_tokens(1)
        )
        reduce_prompt = (
            query_tokens + k * ilen + self.overheads.wrapper_tokens(k)
        )
        return PlanFootprint.from_stages((
            ((map_prompt, ilen, k),),
            ((reduce_prompt, answer_tokens, 1),),
        ))
