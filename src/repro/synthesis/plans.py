"""Synthesis plans: DAGs of LLM calls with memory/compute footprints.

A :class:`SynthesisPlan` is what the joint scheduler sizes (paper §4.3)
and what the runner executes against the engine. Two footprints matter:

* ``fit_tokens`` — the largest *single* call's KV footprint: the
  minimum memory that must be free for the plan to start making
  progress. This is why ``map_reduce`` can start when ``stuff`` cannot
  (Fig 8): its mappers are individually small.
* ``cost_tokens`` — the total KV-token footprint across all calls: the
  "expensiveness" used for the best-fit ranking (higher ⇒ richer
  configuration ⇒ slightly higher quality within the pruned space).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_non_negative, check_positive

__all__ = ["LLMCall", "SynthesisPlan"]


@dataclass(frozen=True)
class LLMCall:
    """One LLM invocation within a synthesis plan.

    ``stage`` orders execution: all calls of stage *s* must finish
    before any call of stage *s+1* starts (mappers → reduce).
    """

    call_id: str
    prompt_tokens: int
    output_tokens: int
    stage: int = 0

    def __post_init__(self) -> None:
        check_positive("prompt_tokens", self.prompt_tokens)
        check_positive("output_tokens", self.output_tokens)
        check_non_negative("stage", self.stage)

    @property
    def total_tokens(self) -> int:
        """KV footprint of this call (prompt + generated)."""
        return self.prompt_tokens + self.output_tokens


@dataclass(frozen=True)
class SynthesisPlan:
    """An executable DAG of LLM calls for one (query, config) pair."""

    query_id: str
    calls: tuple[LLMCall, ...]

    def __post_init__(self) -> None:
        if not self.calls:
            raise ValueError("SynthesisPlan must contain at least one call")
        ids = [c.call_id for c in self.calls]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate call_ids in plan: {ids}")
        stages = sorted({c.stage for c in self.calls})
        if stages != list(range(len(stages))):
            raise ValueError(f"stages must be contiguous from 0, got {stages}")

    # ------------------------------------------------------------------
    @property
    def n_stages(self) -> int:
        return 1 + max(c.stage for c in self.calls)

    def stage_calls(self, stage: int) -> tuple[LLMCall, ...]:
        """Calls belonging to one stage."""
        return tuple(c for c in self.calls if c.stage == stage)

    # ------------------------------------------------------------------
    # Footprints for the joint scheduler
    # ------------------------------------------------------------------
    @property
    def fit_tokens(self) -> int:
        """Minimum KV tokens that must be free to make progress."""
        return max(c.total_tokens for c in self.calls)

    @property
    def cost_tokens(self) -> int:
        """Total KV tokens across all calls (expensiveness metric)."""
        return sum(c.total_tokens for c in self.calls)

    @property
    def stage_peak_tokens(self) -> int:
        """KV tokens if a whole stage runs concurrently (batch headroom)."""
        return max(
            sum(c.total_tokens for c in self.stage_calls(s))
            for s in range(self.n_stages)
        )

    @property
    def total_prefill_tokens(self) -> int:
        return sum(c.prompt_tokens for c in self.calls)

    @property
    def total_output_tokens(self) -> int:
        return sum(c.output_tokens for c in self.calls)
