"""``map_rerank`` synthesis: answer per chunk, keep the most confident
(Fig 3b).

N independent single-chunk calls; the re-rank itself is a cheap host-side
argmax over the returned confidences (no extra LLM call). Lowest compute
of the three methods, but cannot reason across chunks.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.config.knobs import RAGConfig, SynthesisMethod
from repro.synthesis.base import Synthesizer
from repro.synthesis.footprint import PlanFootprint
from repro.synthesis.plans import LLMCall, SynthesisPlan

__all__ = ["MapRerankSynthesizer"]


class MapRerankSynthesizer(Synthesizer):
    """One call per chunk, all in a single parallel stage."""

    method = SynthesisMethod.MAP_RERANK

    def build_plan(
        self,
        query_id: str,
        query_tokens: int,
        chunk_tokens: Sequence[int],
        answer_tokens: int,
        config: RAGConfig,
    ) -> SynthesisPlan:
        self._validate(query_tokens, chunk_tokens, answer_tokens, config)
        calls = tuple(
            LLMCall(
                call_id=f"{query_id}/rerank{i}",
                prompt_tokens=(
                    query_tokens + n + self.overheads.wrapper_tokens(1)
                ),
                # Each candidate emits an answer plus a short confidence
                # tail the reranker reads.
                output_tokens=answer_tokens + 4,
                stage=0,
            )
            for i, n in enumerate(chunk_tokens)
        )
        return SynthesisPlan(query_id=query_id, calls=calls)

    def estimate_footprint(
        self,
        query_tokens: int,
        chunk_tokens: int,
        answer_tokens: int,
        config: RAGConfig,
    ) -> PlanFootprint:
        self._validate_estimate(query_tokens, chunk_tokens, answer_tokens,
                                config)
        prompt = (
            query_tokens + chunk_tokens + self.overheads.wrapper_tokens(1)
        )
        # answer + the short confidence tail, as in build_plan.
        return PlanFootprint.from_stages(
            (((prompt, answer_tokens + 4, config.num_chunks),),)
        )
