"""Analytic plan footprints: the scheduler's view of a plan, without
the plan.

The joint scheduler (§4.3) sizes ~28 candidate configurations per
query but only ever reads aggregate token counts — it never needs the
per-call DAG that :meth:`~repro.synthesis.base.Synthesizer.build_plan`
materialises (validated :class:`~repro.synthesis.plans.LLMCall`
dataclasses, string call ids). A :class:`PlanFootprint` carries exactly
those aggregates, computed in closed form from the query shape.

The representation is a *compressed call multiset*: per stage, a tuple
of ``(prompt_tokens, output_tokens, n_calls)`` groups in first-build
order. Scheduler estimates use a uniform chunk size, so every stage
compresses to a single group and the closed forms are **exact** — for
any plan built from uniform chunks,
``PlanFootprint.from_plan(build_plan(...)) == estimate_footprint(...)``
integer for integer (pinned by ``tests/test_footprint.py``). The
service-time estimate (stage time = slowest call, stages sequential)
is likewise bit-identical to
:func:`~repro.serving.speculation.estimate_plan_seconds` on the
materialised plan.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PlanFootprint"]

#: One group of identical calls inside a stage:
#: ``(prompt_tokens, output_tokens, n_calls)``.
CallGroup = tuple[int, int, int]


@dataclass(frozen=True)
class PlanFootprint:
    """Aggregate token footprints of a synthesis plan.

    The scalar fields mirror the :class:`~repro.synthesis.plans
    .SynthesisPlan` properties of the same names; ``stages`` keeps
    enough structure to price service time per stage.
    """

    n_calls: int
    #: Largest single call (prompt + output) — minimum KV tokens that
    #: must be free for the plan to make progress (Fig 8 unit fit).
    fit_tokens: int
    #: Total KV tokens across all calls — the best-fit ranking metric.
    cost_tokens: int
    #: KV tokens if a whole stage runs concurrently.
    stage_peak_tokens: int
    total_prefill_tokens: int
    total_output_tokens: int
    #: Per stage, ``(prompt_tokens, output_tokens, n_calls)`` groups.
    stages: tuple[tuple[CallGroup, ...], ...]

    @property
    def n_stages(self) -> int:
        return len(self.stages)

    # ------------------------------------------------------------------
    @classmethod
    def from_stages(
        cls, stages: tuple[tuple[CallGroup, ...], ...]
    ) -> "PlanFootprint":
        """Derive the scalar footprints from grouped stages."""
        n_calls = 0
        fit = 0
        cost = 0
        stage_peak = 0
        prefill = 0
        output = 0
        for groups in stages:
            stage_total = 0
            for prompt, out, n in groups:
                total = prompt + out
                n_calls += n
                fit = max(fit, total)
                stage_total += n * total
                prefill += n * prompt
                output += n * out
            cost += stage_total
            stage_peak = max(stage_peak, stage_total)
        return cls(
            n_calls=n_calls,
            fit_tokens=fit,
            cost_tokens=cost,
            stage_peak_tokens=stage_peak,
            total_prefill_tokens=prefill,
            total_output_tokens=output,
            stages=stages,
        )

    @classmethod
    def from_plan(cls, plan) -> "PlanFootprint":
        """Footprint of a materialised :class:`SynthesisPlan`.

        Identical calls within a stage are grouped (first-occurrence
        order), so a plan built from uniform chunks collapses to one
        group per stage — the same shape the closed-form estimators
        produce.
        """
        stages: list[tuple[CallGroup, ...]] = []
        for s in range(plan.n_stages):
            groups: dict[tuple[int, int], int] = {}
            for call in plan.stage_calls(s):
                key = (call.prompt_tokens, call.output_tokens)
                groups[key] = groups.get(key, 0) + 1
            stages.append(
                tuple((p, o, n) for (p, o), n in groups.items())
            )
        return cls.from_stages(tuple(stages))

    # ------------------------------------------------------------------
    def service_seconds(self, cost) -> float:
        """Uncontended service-time estimate under a roofline cost model.

        Same accumulation as :func:`~repro.serving.speculation
        .estimate_plan_seconds` on the materialised plan (calls within
        a stage run concurrently; stages are sequential), priced once
        per group instead of once per call.
        """
        total = 0.0
        for groups in self.stages:
            stage_seconds = 0.0
            for prompt, out, _n in groups:
                seconds = cost.request_seconds(prompt, out)
                stage_seconds = max(stage_seconds, seconds)
            total += stage_seconds
        return total
