"""Synthesis methods: compile a RAG config into a DAG of LLM calls.

Implements the paper's three synthesis methods (Fig 3) as planners that
turn (query, retrieved chunks, config) into a :class:`SynthesisPlan` —
the unit the serving engine executes and the joint scheduler sizes.
"""

from functools import lru_cache

from repro.synthesis.base import PromptOverheads, Synthesizer
from repro.synthesis.footprint import PlanFootprint
from repro.synthesis.map_reduce import MapReduceSynthesizer
from repro.synthesis.map_rerank import MapRerankSynthesizer
from repro.synthesis.plans import LLMCall, SynthesisPlan
from repro.synthesis.stuff import StuffSynthesizer

from repro.config.knobs import RAGConfig, SynthesisMethod

__all__ = [
    "LLMCall",
    "MapReduceSynthesizer",
    "MapRerankSynthesizer",
    "PlanFootprint",
    "PromptOverheads",
    "StuffSynthesizer",
    "Synthesizer",
    "SynthesisPlan",
    "estimate_footprint",
    "make_synthesizer",
]

_SYNTHESIZERS = {
    SynthesisMethod.STUFF: StuffSynthesizer,
    SynthesisMethod.MAP_RERANK: MapRerankSynthesizer,
    SynthesisMethod.MAP_REDUCE: MapReduceSynthesizer,
}


def make_synthesizer(method: SynthesisMethod,
                     overheads: PromptOverheads | None = None) -> Synthesizer:
    """Instantiate the planner for a synthesis method."""
    cls = _SYNTHESIZERS[method]
    if overheads is None:
        return cls()
    return cls(overheads=overheads)


@lru_cache(maxsize=None)
def _default_synthesizer(method: SynthesisMethod) -> Synthesizer:
    """Default-overhead planner singletons for the memoized estimator."""
    return _SYNTHESIZERS[method]()


@lru_cache(maxsize=65536)
def estimate_footprint(config: RAGConfig, query_tokens: int,
                       chunk_tokens: int,
                       answer_tokens: int) -> PlanFootprint:
    """Memoized closed-form footprint at default prompt overheads.

    The decision plane's workhorse: query shapes cluster heavily across
    a trace, so the same ``(config, query_tokens, chunk_tokens,
    answer_tokens)`` key recurs and the footprint is computed once per
    distinct shape. Pure function of its arguments — memoization cannot
    change any decision.
    """
    synthesizer = _default_synthesizer(config.synthesis_method)
    return synthesizer.estimate_footprint(
        query_tokens, chunk_tokens, answer_tokens, config)
