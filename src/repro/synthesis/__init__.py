"""Synthesis methods: compile a RAG config into a DAG of LLM calls.

Implements the paper's three synthesis methods (Fig 3) as planners that
turn (query, retrieved chunks, config) into a :class:`SynthesisPlan` —
the unit the serving engine executes and the joint scheduler sizes.
"""

from repro.synthesis.base import PromptOverheads, Synthesizer
from repro.synthesis.map_reduce import MapReduceSynthesizer
from repro.synthesis.map_rerank import MapRerankSynthesizer
from repro.synthesis.plans import LLMCall, SynthesisPlan
from repro.synthesis.stuff import StuffSynthesizer

from repro.config.knobs import SynthesisMethod

__all__ = [
    "LLMCall",
    "MapReduceSynthesizer",
    "MapRerankSynthesizer",
    "PromptOverheads",
    "StuffSynthesizer",
    "Synthesizer",
    "SynthesisPlan",
    "make_synthesizer",
]

_SYNTHESIZERS = {
    SynthesisMethod.STUFF: StuffSynthesizer,
    SynthesisMethod.MAP_RERANK: MapRerankSynthesizer,
    SynthesisMethod.MAP_REDUCE: MapReduceSynthesizer,
}


def make_synthesizer(method: SynthesisMethod,
                     overheads: PromptOverheads | None = None) -> Synthesizer:
    """Instantiate the planner for a synthesis method."""
    cls = _SYNTHESIZERS[method]
    if overheads is None:
        return cls()
    return cls(overheads=overheads)
