"""Synthesizer interface and shared prompt-overhead accounting.

Each synthesizer compiles ``(query, chunk token counts, config)`` into a
:class:`~repro.synthesis.plans.SynthesisPlan`. Prompt overheads model
the instruction templates Langchain-style chains wrap around the chunks
(system prompt, per-chunk separators, answer-format instructions).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence
from dataclasses import dataclass

from repro.config.knobs import RAGConfig, SynthesisMethod
from repro.synthesis.footprint import PlanFootprint
from repro.synthesis.plans import SynthesisPlan
from repro.util.validation import check_non_negative

__all__ = ["PromptOverheads", "Synthesizer"]


@dataclass(frozen=True)
class PromptOverheads:
    """Fixed token overheads of the prompt templates.

    Attributes:
        instruction_tokens: system + task instruction prologue.
        per_chunk_tokens: separator/header tokens around each chunk.
        answer_format_tokens: output-format epilogue ("Answer:", JSON
            schema for map_rerank confidence, ...).
    """

    instruction_tokens: int = 32
    per_chunk_tokens: int = 6
    answer_format_tokens: int = 10

    def __post_init__(self) -> None:
        check_non_negative("instruction_tokens", self.instruction_tokens)
        check_non_negative("per_chunk_tokens", self.per_chunk_tokens)
        check_non_negative("answer_format_tokens", self.answer_format_tokens)

    def wrapper_tokens(self, n_chunks: int) -> int:
        """Template tokens around ``n_chunks`` chunks in one prompt."""
        return (
            self.instruction_tokens
            + n_chunks * self.per_chunk_tokens
            + self.answer_format_tokens
        )


class Synthesizer(ABC):
    """Compiles a RAG configuration into an executable plan."""

    method: SynthesisMethod

    def __init__(self, overheads: PromptOverheads | None = None) -> None:
        self.overheads = overheads or PromptOverheads()

    @abstractmethod
    def build_plan(
        self,
        query_id: str,
        query_tokens: int,
        chunk_tokens: Sequence[int],
        answer_tokens: int,
        config: RAGConfig,
    ) -> SynthesisPlan:
        """Build the call DAG for this method.

        Args:
            query_tokens: token length of the query text.
            chunk_tokens: token length of each retrieved chunk, in rank
                order (must match ``config.num_chunks`` unless the store
                ran short).
            answer_tokens: expected final-answer length (dataset-typical;
                the engine decodes exactly this many tokens).
        """

    @abstractmethod
    def estimate_footprint(
        self,
        query_tokens: int,
        chunk_tokens: int,
        answer_tokens: int,
        config: RAGConfig,
    ) -> PlanFootprint:
        """Closed-form footprint of the plan :meth:`build_plan` would
        produce for ``config.num_chunks`` chunks of uniform length
        ``chunk_tokens`` — O(1), no :class:`LLMCall` objects.

        Exactness contract: for any ``(query_tokens, chunk_tokens,
        answer_tokens, config)``, this equals ``PlanFootprint.from_plan``
        of the materialised plan over ``[chunk_tokens] * num_chunks``,
        integer for integer. The joint scheduler scores candidate grids
        against these instead of building plans.
        """

    def _validate_estimate(self, query_tokens: int, chunk_tokens: int,
                           answer_tokens: int, config: RAGConfig) -> None:
        if config.synthesis_method is not self.method:
            raise ValueError(
                f"{type(self).__name__} cannot plan for "
                f"{config.synthesis_method}"
            )
        if chunk_tokens <= 0:
            raise ValueError(f"chunk_tokens must be positive, got {chunk_tokens}")
        if query_tokens <= 0:
            raise ValueError(f"query_tokens must be positive, got {query_tokens}")
        if answer_tokens <= 0:
            raise ValueError(f"answer_tokens must be positive, got {answer_tokens}")

    def _validate(self, query_tokens: int, chunk_tokens: Sequence[int],
                  answer_tokens: int, config: RAGConfig) -> None:
        if config.synthesis_method is not self.method:
            raise ValueError(
                f"{type(self).__name__} cannot plan for "
                f"{config.synthesis_method}"
            )
        if not chunk_tokens:
            raise ValueError("need at least one retrieved chunk")
        if len(chunk_tokens) > config.num_chunks:
            raise ValueError(
                f"got {len(chunk_tokens)} chunks for num_chunks="
                f"{config.num_chunks}"
            )
        if query_tokens <= 0:
            raise ValueError(f"query_tokens must be positive, got {query_tokens}")
        if answer_tokens <= 0:
            raise ValueError(f"answer_tokens must be positive, got {answer_tokens}")
