"""``stuff`` synthesis: concatenate all chunks into one prompt (Fig 3a).

One LLM call; cheapest joint-reasoning method in compute, but its
prompt (and KV footprint) grows linearly with ``num_chunks`` — the
memory-intensive case of the paper's Fig 8.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.config.knobs import RAGConfig, SynthesisMethod
from repro.synthesis.base import Synthesizer
from repro.synthesis.footprint import PlanFootprint
from repro.synthesis.plans import LLMCall, SynthesisPlan

__all__ = ["StuffSynthesizer"]


class StuffSynthesizer(Synthesizer):
    """Single call over the concatenated chunks."""

    method = SynthesisMethod.STUFF

    def build_plan(
        self,
        query_id: str,
        query_tokens: int,
        chunk_tokens: Sequence[int],
        answer_tokens: int,
        config: RAGConfig,
    ) -> SynthesisPlan:
        self._validate(query_tokens, chunk_tokens, answer_tokens, config)
        prompt = (
            query_tokens
            + sum(chunk_tokens)
            + self.overheads.wrapper_tokens(len(chunk_tokens))
        )
        call = LLMCall(
            call_id=f"{query_id}/stuff",
            prompt_tokens=prompt,
            output_tokens=answer_tokens,
            stage=0,
        )
        return SynthesisPlan(query_id=query_id, calls=(call,))

    def estimate_footprint(
        self,
        query_tokens: int,
        chunk_tokens: int,
        answer_tokens: int,
        config: RAGConfig,
    ) -> PlanFootprint:
        self._validate_estimate(query_tokens, chunk_tokens, answer_tokens,
                                config)
        k = config.num_chunks
        prompt = (
            query_tokens
            + k * chunk_tokens
            + self.overheads.wrapper_tokens(k)
        )
        return PlanFootprint.from_stages(
            (((prompt, answer_tokens, 1),),)
        )
