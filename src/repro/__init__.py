"""repro — reproduction of METIS: Fast Quality-Aware RAG Systems with
Configuration Adaptation (SOSP 2025).

Quickstart::

    from repro import (
        build_dataset, poisson_arrivals, default_engine_config,
        ExperimentRunner, MetisPolicy,
    )
    from repro.experiments.common import make_metis

    bundle = build_dataset("finsec", n_queries=50)
    runner = ExperimentRunner(bundle, default_engine_config())
    result = runner.run(make_metis(bundle),
                        poisson_arrivals(bundle.queries, rate_qps=1.4))
    print(result.summary())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.baselines import (
    AdaptiveRAGPolicy,
    FixedConfigPolicy,
    MedianConfigPolicy,
    ParrotPolicy,
)
from repro.config import (
    ConfigurationSpace,
    PrunedSpace,
    RAGConfig,
    SynthesisMethod,
    full_grid,
)
from repro.core import (
    JointScheduler,
    LLMProfiler,
    MetisConfig,
    MetisPolicy,
    QueryProfile,
    map_profile_to_space,
)
from repro.data import (
    DATASET_NAMES,
    DatasetBundle,
    Query,
    build_dataset,
    poisson_arrivals,
    sequential_arrivals,
)
from repro.evaluation.runner import ExperimentRunner, QueryRecord, RunResult
from repro.experiments.common import (
    DEFAULT_RATES,
    default_engine_config,
    make_adaptive_rag,
    make_metis,
)
from repro.llm import (
    A40,
    ClusterSpec,
    GPUSpec,
    LLAMA3_70B_AWQ,
    MISTRAL_7B_AWQ,
    ModelSpec,
    RooflineCostModel,
    SimTokenizer,
)
from repro.retrieval import FlatL2Index, HashedEmbedding, VectorStore
from repro.serving import EngineConfig, ServingEngine
from repro.workload import (
    Autoscaler,
    Workload,
    diurnal_workload,
    make_workload,
)

__version__ = "1.0.0"

__all__ = [
    "A40",
    "AdaptiveRAGPolicy",
    "Autoscaler",
    "ClusterSpec",
    "ConfigurationSpace",
    "DATASET_NAMES",
    "DEFAULT_RATES",
    "DatasetBundle",
    "EngineConfig",
    "ExperimentRunner",
    "FixedConfigPolicy",
    "FlatL2Index",
    "GPUSpec",
    "HashedEmbedding",
    "JointScheduler",
    "LLAMA3_70B_AWQ",
    "LLMProfiler",
    "MISTRAL_7B_AWQ",
    "MedianConfigPolicy",
    "MetisConfig",
    "MetisPolicy",
    "ModelSpec",
    "ParrotPolicy",
    "PrunedSpace",
    "Query",
    "QueryProfile",
    "QueryRecord",
    "RAGConfig",
    "RooflineCostModel",
    "RunResult",
    "ServingEngine",
    "SimTokenizer",
    "SynthesisMethod",
    "VectorStore",
    "Workload",
    "build_dataset",
    "default_engine_config",
    "diurnal_workload",
    "full_grid",
    "make_adaptive_rag",
    "make_metis",
    "make_workload",
    "map_profile_to_space",
    "poisson_arrivals",
    "sequential_arrivals",
    "__version__",
]
