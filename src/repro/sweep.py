"""Parallel sweep runner: fan deterministic (seed, config) cells
across worker processes.

Every simulation in this repo is a pure function of its parameters —
all randomness flows from named :mod:`repro.util.rng` streams, and the
kernel dispatches events in a deterministic ``(time, rank, seq)``
order — so a sweep over seeds/rates/configs is embarrassingly
parallel: each *cell* (one ``run_policy`` invocation) can run in its
own process and produce byte-identical results to a sequential run.

Three pieces:

* :func:`run_cell` — execute one cell (a plain parameter dict, fully
  picklable) and return its scalar summary. Cells sharing a
  ``(dataset, seed, queries)`` key reuse one per-process
  :class:`DatasetBundle` instead of rebuilding it (~1.6s) every cell.
* :func:`sweep` — run many cells, either in-process (``jobs <= 1``)
  or on a :class:`~concurrent.futures.ProcessPoolExecutor`. The
  merged payload contains **only** cell parameters and results (no
  timing, no worker metadata), so sequential and parallel sweeps of
  the same cells are canonical-JSON **equal** — pinned by
  ``tests/test_sweep.py``.
* :func:`canonical_json` — the stable serialization used for that
  equality (sorted keys, no whitespace, default float ``repr``).

Expected scaling: cells are independent full simulations, so wall
clock improves roughly linearly with ``jobs`` up to the physical core
count (a 4-cell sweep at ``--jobs 4`` finishes > 2× faster than
sequential on a 4-core machine). On a single-core host the executor
still works — processes just time-slice — which is why the test suite
pins *result equality*, not speedup.

CLI::

    python -m repro.cli --sweep --dataset finsec --policy metis \\
        --seeds 0,1,2,3 --rates 1.4 --jobs 4
"""

from __future__ import annotations

import json
from concurrent.futures import ProcessPoolExecutor
from typing import Any

__all__ = ["CELL_DEFAULTS", "expand_cells", "run_cell", "sweep",
           "canonical_json"]

#: Per-process DatasetBundle cache, keyed ``(dataset, seed, queries)``.
#: Building a bundle (corpus synthesis + index build) dominates small
#: cells (~1.6s), and ``build_dataset`` is a pure function of the key,
#: so workers build each distinct bundle once and reuse it across
#: cells. Reuse is safe: the experiment runner never mutates a bundle
#: (resharding returns a *new* store) and builds a fresh engine and
#: pipeline per run, so cached-bundle results are byte-identical to a
#: rebuild — the ``test_sweep.py`` canonical-JSON equality still pins
#: sequential == parallel.
_BUNDLE_CACHE: dict[tuple[str, int, int | None], Any] = {}


def _get_bundle(dataset: str, seed: int, queries: int | None):
    key = (dataset, seed, queries)
    bundle = _BUNDLE_CACHE.get(key)
    if bundle is None:
        from repro.data import build_dataset

        bundle = build_dataset(dataset, seed=seed, n_queries=queries)
        _BUNDLE_CACHE[key] = bundle
    return bundle


def _warm_worker(keys: tuple[tuple[str, int, int | None], ...]) -> None:
    """Executor initializer: pre-build shared bundles once per worker.

    Only invoked with the sweep's bundle keys when every cell shares
    them (the common fixed-dataset rate/config sweep); heterogeneous
    sweeps (e.g. over seeds) let each worker populate its cache lazily
    from the cells it actually receives.
    """
    for dataset, seed, queries in keys:
        _get_bundle(dataset, seed, queries)


#: Recognized cell parameters and their defaults (mirrors the ``run``
#: CLI surface). A cell dict may set any subset; unknown keys are an
#: error so typos fail fast instead of silently sweeping nothing.
CELL_DEFAULTS: dict[str, Any] = {
    "dataset": "finsec",
    "policy": "metis",
    "config": None,          # fixed-config label for vllm/parrot
    "seed": 0,
    "rate": None,            # open-loop arrival rate (qps)
    "queries": None,         # dataset size cap (None = bundle default)
    "sequential": False,
    "replicas": 1,
    "router": "least-kv-load",
    "retrieval_shards": 1,
    "index": "flat",
    "reranker": None,
    "slo_seconds": None,
    "speculation": None,
    "hedge_delay": None,
    "workload": None,
    "autoscaler": None,
    "scale_min": None,
    "scale_max": None,
}


def expand_cells(base: dict[str, Any] | None = None,
                 seeds: list[int] | None = None,
                 rates: list[float] | None = None) -> list[dict[str, Any]]:
    """Cross ``base`` with seed × rate axes into a cell list.

    ``seeds``/``rates`` of ``None`` (or empty) keep the base value for
    that axis. Cell order is the deterministic grid order (seeds outer,
    rates inner) — the merge preserves it, so two sweeps over the same
    grid are comparable element-wise.
    """
    base = dict(base or {})
    cells: list[dict[str, Any]] = []
    for seed in (seeds if seeds else [base.get("seed", 0)]):
        for rate in (rates if rates else [base.get("rate")]):
            cell = dict(base)
            cell["seed"] = seed
            cell["rate"] = rate
            cells.append(cell)
    return cells


def _validated(cell: dict[str, Any]) -> dict[str, Any]:
    unknown = sorted(set(cell) - set(CELL_DEFAULTS))
    if unknown:
        known = ", ".join(sorted(CELL_DEFAULTS))
        raise ValueError(
            f"unknown sweep cell parameter(s) {unknown}; known: {known}"
        )
    return {**CELL_DEFAULTS, **cell}


def run_cell(cell: dict[str, Any]) -> dict[str, Any]:
    """Execute one sweep cell; returns ``{"params", "summary"}``.

    Top-level (picklable) so :class:`ProcessPoolExecutor` can ship it
    to workers. Imports are local: workers pay them once, and the
    module stays importable without pulling the full pipeline.
    """
    from repro.cli import build_policy
    from repro.experiments.common import run_policy

    p = _validated(cell)
    bundle = _get_bundle(p["dataset"], p["seed"], p["queries"])
    policy = build_policy(p["policy"], bundle, p["config"], p["seed"])
    result = run_policy(
        bundle, policy,
        rate_qps=p["rate"], seed=p["seed"],
        sequential=p["sequential"],
        n_replicas=p["replicas"], router=p["router"],
        retrieval_shards=p["retrieval_shards"],
        index=p["index"], reranker=p["reranker"],
        slo_seconds=p["slo_seconds"],
        speculation=p["speculation"], hedge_delay=p["hedge_delay"],
        workload=p["workload"], autoscaler=p["autoscaler"],
        scale_min=p["scale_min"], scale_max=p["scale_max"],
    )
    return {"params": p, "summary": dict(result.summary())}


def sweep(cells: list[dict[str, Any]], jobs: int = 1) -> dict[str, Any]:
    """Run every cell and merge results in input order.

    ``jobs <= 1`` runs sequentially in-process; otherwise cells fan
    out over a :class:`ProcessPoolExecutor` with ``min(jobs,
    len(cells))`` workers. ``executor.map`` preserves input order, and
    the payload carries no timing or worker information, so the merged
    result is identical for any ``jobs`` — compare with
    :func:`canonical_json`.
    """
    validated = [_validated(c) for c in cells]
    if jobs <= 1 or len(validated) <= 1:
        results = [run_cell(c) for c in validated]
    else:
        keys = tuple(dict.fromkeys(
            (c["dataset"], c["seed"], c["queries"]) for c in validated
        ))
        # Pre-build the bundle in each worker only when the whole sweep
        # shares one; otherwise workers fill their caches lazily.
        warm = keys if len(keys) == 1 else ()
        with ProcessPoolExecutor(max_workers=min(jobs, len(validated)),
                                 initializer=_warm_worker,
                                 initargs=(warm,)) as ex:
            results = list(ex.map(run_cell, validated))
    return {"n_cells": len(results), "cells": results}


def canonical_json(payload: Any) -> str:
    """Stable JSON: sorted keys, compact separators, default floats.

    Two payloads built from bit-identical values serialize to the same
    bytes regardless of dict insertion order or which process produced
    them (``repr`` of a double is deterministic in CPython).
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))
