"""GPU hardware specifications and multi-GPU cluster composition.

The paper's testbed is an NVIDIA A40 server (48 GB/GPU); Mistral-7B is
served on one GPU and Llama-3.1-70B on two (tensor-parallel). The specs
here feed the roofline cost model and the GPU memory model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.units import GB
from repro.util.validation import check_in_range, check_positive

__all__ = ["GPUSpec", "ClusterSpec", "A40", "A100_80G"]


@dataclass(frozen=True)
class GPUSpec:
    """Static description of one GPU.

    Attributes:
        name: marketing name, e.g. ``"A40"``.
        memory_bytes: total HBM capacity.
        peak_flops: peak dense fp16 tensor throughput (FLOP/s).
        mem_bandwidth: HBM bandwidth (bytes/s).
        mfu: model FLOPs utilisation actually achieved by the serving
            engine (fraction of peak sustained during prefill).
    """

    name: str
    memory_bytes: float
    peak_flops: float
    mem_bandwidth: float
    mfu: float = 0.5

    def __post_init__(self) -> None:
        check_positive("memory_bytes", self.memory_bytes)
        check_positive("peak_flops", self.peak_flops)
        check_positive("mem_bandwidth", self.mem_bandwidth)
        check_in_range("mfu", self.mfu, 0.01, 1.0)

    @property
    def effective_flops(self) -> float:
        """Sustained FLOP/s the engine extracts during prefill."""
        return self.peak_flops * self.mfu


A40 = GPUSpec(
    name="A40",
    memory_bytes=48 * GB,
    peak_flops=149.7e12,
    mem_bandwidth=696e9,
    mfu=0.72,
)

A100_80G = GPUSpec(
    name="A100-80G",
    memory_bytes=80 * GB,
    peak_flops=312e12,
    mem_bandwidth=2_039e9,
    mfu=0.5,
)


@dataclass(frozen=True)
class ClusterSpec:
    """A tensor-parallel group of identical GPUs serving one model.

    ``tp_efficiency`` discounts compute/bandwidth scaling for the
    all-reduce overhead of tensor parallelism (1 GPU == 1.0).
    """

    gpu: GPUSpec
    n_gpus: int = 1
    tp_efficiency: float = 0.88

    def __post_init__(self) -> None:
        check_positive("n_gpus", self.n_gpus)
        check_in_range("tp_efficiency", self.tp_efficiency, 0.1, 1.0)

    @property
    def _scale(self) -> float:
        if self.n_gpus == 1:
            return 1.0
        return self.n_gpus * self.tp_efficiency

    @property
    def memory_bytes(self) -> float:
        """Pooled HBM across the tensor-parallel group."""
        return self.gpu.memory_bytes * self.n_gpus

    @property
    def effective_flops(self) -> float:
        """Sustained FLOP/s across the group, net of TP overhead."""
        return self.gpu.effective_flops * self._scale

    @property
    def mem_bandwidth(self) -> float:
        """Aggregate HBM bandwidth across the group, net of TP overhead."""
        return self.gpu.mem_bandwidth * self._scale

    def dollar_per_second(self, dollar_per_gpu_hour: float = 0.79) -> float:
        """Amortised rental price of the group (default: A40 on-demand)."""
        return self.n_gpus * dollar_per_gpu_hour / 3600.0
