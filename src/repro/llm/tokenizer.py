"""A deterministic, dependency-free tokenizer.

Real RAG stacks meter everything in tokens: chunk sizes, KV-cache
footprints, prefill latency, API dollar cost. We use a simple
word-piece-ish scheme — split on whitespace and punctuation, then break
long alphanumeric runs into 4-character pieces — which lands close to
the ~0.75 words/token ratio of BPE tokenizers while being exactly
reproducible and fast.
"""

from __future__ import annotations

import re
from functools import lru_cache

__all__ = ["SimTokenizer"]

_SPLIT_RE = re.compile(r"[A-Za-z0-9']+|[^A-Za-z0-9'\s]")
_PIECE_LEN = 4
_MAX_WHOLE_WORD = 6


class SimTokenizer:
    """Deterministic tokenizer used by every component of the simulator.

    The class is stateless; all methods are safe to share across
    threads.  ``count()`` is cached because the simulator counts the
    same chunk texts many times (memory estimation, prefill sizing,
    cost accounting).
    """

    def tokenize(self, text: str) -> list[str]:
        """Split ``text`` into a list of token strings.

        Words of up to 6 characters are single tokens; longer words are
        split into 4-character pieces, mimicking sub-word tokenizers.

        >>> SimTokenizer().tokenize("Kimbrough Arena, 2024")
        ['kimb', 'roug', 'h', 'arena', ',', '2024']
        """
        tokens: list[str] = []
        for word in _SPLIT_RE.findall(text.lower()):
            if len(word) <= _MAX_WHOLE_WORD:
                tokens.append(word)
            else:
                tokens.extend(
                    word[i : i + _PIECE_LEN]
                    for i in range(0, len(word), _PIECE_LEN)
                )
        return tokens

    def count(self, text: str) -> int:
        """Number of tokens in ``text`` (cached)."""
        return _cached_count(text)

    def truncate(self, text: str, max_tokens: int) -> str:
        """Return a prefix of ``text`` containing at most ``max_tokens``.

        Used by the synthesis planners to clip over-long chunk text to a
        model's context window.
        """
        if max_tokens <= 0:
            return ""
        if self.count(text) <= max_tokens:
            return text
        words = text.split()
        # Binary search the longest word-prefix within budget.
        lo, hi = 0, len(words)
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self.count(" ".join(words[:mid])) <= max_tokens:
                lo = mid
            else:
                hi = mid - 1
        return " ".join(words[:lo])


@lru_cache(maxsize=65536)
def _cached_count(text: str) -> int:
    count = 0
    for word in _SPLIT_RE.findall(text.lower()):
        if len(word) <= _MAX_WHOLE_WORD:
            count += 1
        else:
            count += -(-len(word) // _PIECE_LEN)
    return count
