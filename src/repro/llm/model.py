"""Model specifications for the serving and profiler LLMs.

A :class:`ModelSpec` captures everything the simulator needs to price a
model: parameter count and transformer geometry (for FLOPs and KV-cache
bytes), quantization (weight bytes and a compute speedup), context
limit, and API dollar rates for hosted models.

The built-in specs mirror the models the paper evaluates:

* ``MISTRAL_7B_AWQ`` — the default serving model (1× A40),
* ``LLAMA3_70B_AWQ`` — the larger serving model (2× A40, §7.4),
* ``GPT_4O`` — the hosted profiler / expensive-inference comparator.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.util.validation import check_positive

__all__ = [
    "Quantization",
    "ModelSpec",
    "MISTRAL_7B_AWQ",
    "LLAMA3_70B_AWQ",
    "MISTRAL_7B_FP16",
    "GPT_4O",
    "get_model",
    "register_model",
]


class Quantization(enum.Enum):
    """Weight quantization scheme.

    ``bytes_per_param`` covers weight storage; ``compute_speedup`` is the
    effective prefill/decode FLOP advantage of low-bit kernels (AWQ int4
    kernels run meaningfully faster than fp16 GEMMs at small batch).
    """

    FP16 = ("fp16", 2.0, 1.0)
    AWQ_INT4 = ("awq-int4", 0.55, 2.5)  # 0.05 overhead for scales/zeros

    def __init__(self, label: str, bytes_per_param: float, compute_speedup: float):
        self.label = label
        self.bytes_per_param = bytes_per_param
        self.compute_speedup = compute_speedup


@dataclass(frozen=True)
class ModelSpec:
    """Static description of an LLM for the cost and memory models.

    Attributes:
        name: registry key, e.g. ``"mistral-7b-awq"``.
        n_params: total parameter count.
        n_layers / n_kv_heads / head_dim: transformer geometry used for
            the KV-cache-per-token computation (GQA aware).
        max_context: maximum supported context length in tokens.
        quantization: weight quantization scheme.
        hosted: True for API-only models (no local GPU memory modelling).
        dollar_per_1m_input / dollar_per_1m_output: API prices; for
            self-hosted models these are the amortised GPU-time prices
            used by the Fig 13 cost analysis.
    """

    name: str
    n_params: float
    n_layers: int
    n_kv_heads: int
    head_dim: int
    max_context: int
    quantization: Quantization = Quantization.FP16
    hosted: bool = False
    dollar_per_1m_input: float = 0.0
    dollar_per_1m_output: float = 0.0

    def __post_init__(self) -> None:
        check_positive("n_params", self.n_params)
        check_positive("n_layers", self.n_layers)
        check_positive("n_kv_heads", self.n_kv_heads)
        check_positive("head_dim", self.head_dim)
        check_positive("max_context", self.max_context)

    @property
    def weight_bytes(self) -> float:
        """Bytes of GPU memory holding the (quantized) weights."""
        return self.n_params * self.quantization.bytes_per_param

    @property
    def kv_bytes_per_token(self) -> float:
        """KV-cache bytes stored per context token (KV kept in fp16)."""
        return 2.0 * self.n_layers * self.n_kv_heads * self.head_dim * 2.0

    @property
    def flops_per_token(self) -> float:
        """Approximate forward-pass FLOPs per token (2 * params)."""
        return 2.0 * self.n_params

    def dollar_cost(self, input_tokens: float, output_tokens: float) -> float:
        """Dollar cost of one call at this model's token rates."""
        return (
            input_tokens * self.dollar_per_1m_input
            + output_tokens * self.dollar_per_1m_output
        ) / 1e6


MISTRAL_7B_AWQ = ModelSpec(
    name="mistral-7b-awq",
    n_params=7.2e9,
    n_layers=32,
    n_kv_heads=8,
    head_dim=128,
    max_context=32_768,
    quantization=Quantization.AWQ_INT4,
    dollar_per_1m_input=0.15,
    dollar_per_1m_output=0.45,
)

MISTRAL_7B_FP16 = ModelSpec(
    name="mistral-7b-fp16",
    n_params=7.2e9,
    n_layers=32,
    n_kv_heads=8,
    head_dim=128,
    max_context=32_768,
    quantization=Quantization.FP16,
    dollar_per_1m_input=0.18,
    dollar_per_1m_output=0.55,
)

LLAMA3_70B_AWQ = ModelSpec(
    name="llama3-70b-awq",
    n_params=70.6e9,
    n_layers=80,
    n_kv_heads=8,
    head_dim=128,
    max_context=131_072,
    quantization=Quantization.AWQ_INT4,
    dollar_per_1m_input=0.90,
    dollar_per_1m_output=2.70,
)

GPT_4O = ModelSpec(
    name="gpt-4o",
    n_params=200e9,  # undisclosed; only used for relative API pricing
    n_layers=96,
    n_kv_heads=8,
    head_dim=128,
    max_context=128_000,
    hosted=True,
    dollar_per_1m_input=2.50,
    dollar_per_1m_output=10.00,
)

_REGISTRY: dict[str, ModelSpec] = {}


def register_model(spec: ModelSpec) -> ModelSpec:
    """Add ``spec`` to the global model registry (idempotent by name)."""
    _REGISTRY[spec.name] = spec
    return spec


def get_model(name: str) -> ModelSpec:
    """Look up a registered model spec by name.

    Raises ``KeyError`` with the known names when missing, because a
    typo'd model name in an experiment config should fail loudly.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown model {name!r}; known models: {known}") from None


for _spec in (MISTRAL_7B_AWQ, MISTRAL_7B_FP16, LLAMA3_70B_AWQ, GPT_4O):
    register_model(_spec)
