"""Behavioural model of RAG answer quality.

This module encodes, as an explicit probabilistic model, the four
quality mechanisms the paper measures (§3, Fig 4):

1. **Coverage** — an answer can only contain facts whose chunks were
   retrieved and survived synthesis.
2. **Lost-in-the-middle** — in a long ``stuff`` prompt, facts buried in
   the middle of the context are recovered with lower probability; the
   penalty grows with total context length [Liu et al., 2024].
3. **Summarisation loss** — ``map_reduce`` mappers compress each chunk
   to ``intermediate_length`` tokens; a fact survives compression with
   a probability that rises with the summary budget relative to the
   fact's verbosity.
4. **Isolation loss** — ``map_rerank`` answers from the single best
   chunk, so queries needing joint reasoning across chunks lose every
   fact outside that chunk.

On top of recall, *precision* degrades with the fraction of irrelevant
context (over-retrieval dilutes the prompt and the model emits noise),
which produces the paper's observed quality *drop* beyond the optimal
``num_chunks``.

The model exposes both an analytic expectation (smooth, used for
per-query oracle sweeps like Fig 4/5) and per-fact probabilities used by
:mod:`repro.llm.generation` to sample a concrete answer token sequence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.config.knobs import SynthesisMethod
from repro.util.validation import check_in_range, check_positive, check_probability

__all__ = ["FactView", "ChunkView", "SynthesisContext", "QualityParams", "QualityModel"]


@dataclass(frozen=True)
class FactView:
    """A required piece of information, as seen by the quality model.

    Attributes:
        fact_id: stable identifier.
        value_tokens: ground-truth answer tokens this fact contributes.
        verbosity: how many summary tokens are needed to preserve the
            fact through a mapper (dataset-dependent: Squad facts are
            terse, QMSUM spans are verbose).
    """

    fact_id: str
    value_tokens: tuple[str, ...]
    verbosity: float = 12.0


@dataclass(frozen=True)
class ChunkView:
    """A retrieved chunk: its length and the required facts it holds."""

    chunk_id: str
    n_tokens: int
    facts: tuple[FactView, ...] = ()


@dataclass(frozen=True)
class SynthesisContext:
    """Everything quality depends on for one (query, retrieval) pair.

    ``chunks`` are in retrieval-rank order, which is also prompt order
    for ``stuff`` synthesis.
    """

    query_id: str
    complexity_high: bool
    joint_reasoning: bool
    required_facts: tuple[FactView, ...]
    chunks: tuple[ChunkView, ...]
    answer_template_tokens: tuple[str, ...] = ()

    @property
    def total_context_tokens(self) -> int:
        return sum(c.n_tokens for c in self.chunks)

    @property
    def irrelevant_fraction(self) -> float:
        """Fraction of context tokens in chunks holding no required fact."""
        total = self.total_context_tokens
        if total == 0:
            return 0.0
        required_ids = {f.fact_id for f in self.required_facts}
        irrelevant = sum(
            c.n_tokens
            for c in self.chunks
            if not any(f.fact_id in required_ids for f in c.facts)
        )
        return irrelevant / total

    def ground_truth_tokens(self) -> tuple[str, ...]:
        """The reference answer token sequence for F1 scoring."""
        tokens = list(self.answer_template_tokens)
        for fact in self.required_facts:
            tokens.extend(fact.value_tokens)
        return tuple(tokens)


@dataclass(frozen=True)
class QualityParams:
    """Tunable constants of the quality model (dataset-overridable).

    The defaults are calibrated so that the knob→quality response
    surfaces match the paper's Fig 4 in shape; per-dataset overrides
    (e.g. ``token_match_rate``) set the absolute F1 operating point.
    """

    base_recover: float = 0.96
    # Lost-in-the-middle: penalty depth ramps up with context length
    # past ``lim_onset_tokens`` and saturates at ``lim_max_depth``;
    # the dip is a Gaussian centred mid-context with ``lim_width``.
    lim_onset_tokens: float = 2_048.0
    lim_scale_tokens: float = 20_000.0
    lim_max_depth: float = 0.5
    lim_width: float = 0.20
    # Complexity interaction: high-complexity queries lose quality
    # unless synthesis denoises first (map_reduce).
    rerank_high_complexity_factor: float = 0.70
    stuff_high_complexity_factor: float = 0.86
    reduce_high_complexity_factor: float = 1.00
    # Summarisation survival curve sharpness (see _summary_survival).
    summary_slack_frac: float = 0.20
    summary_slack_tokens: float = 2.0
    # Two-step information loss: even with an ample summary budget, a
    # mapper summarising one chunk in isolation can drop details the
    # reduce step would have needed (it lacks cross-chunk context).
    reduce_recover_factor: float = 0.93
    # Precision-side noise. Dilution is convex in the irrelevant
    # fraction (exponent > 1): a prompt that is mostly relevant barely
    # distracts the model, while an overwhelmingly irrelevant one
    # drags it off-answer — which is what produces the paper's
    # "quality drops beyond the optimal num_chunks" cliff (Fig 4b)
    # while keeping quality nearly flat inside the pruned range.
    noise_rate_stuff: float = 0.55
    noise_rate_reduce: float = 0.35
    noise_rate_rerank: float = 0.15
    noise_dilution_exponent: float = 2.0
    hallucination_prob: float = 0.5
    # Intrinsic task hardness: probability a recovered fact token
    # matches the reference wording (paraphrase penalty).
    token_match_rate: float = 0.80
    template_match_rate: float = 0.90

    def __post_init__(self) -> None:
        check_probability("base_recover", self.base_recover)
        check_probability("lim_max_depth", self.lim_max_depth)
        check_positive("lim_width", self.lim_width)
        check_probability("token_match_rate", self.token_match_rate)
        check_probability("template_match_rate", self.template_match_rate)
        check_probability("hallucination_prob", self.hallucination_prob)
        check_in_range("rerank_high_complexity_factor",
                       self.rerank_high_complexity_factor, 0.0, 1.0)
        check_in_range("stuff_high_complexity_factor",
                       self.stuff_high_complexity_factor, 0.0, 1.0)
        check_in_range("reduce_high_complexity_factor",
                       self.reduce_high_complexity_factor, 0.0, 1.0)


def _sigmoid(x: float) -> float:
    if x >= 0:
        z = math.exp(-x)
        return 1.0 / (1.0 + z)
    z = math.exp(x)
    return z / (1.0 + z)


@dataclass
class QualityModel:
    """Computes per-fact recovery probabilities and expected F1."""

    params: QualityParams = field(default_factory=QualityParams)

    # ------------------------------------------------------------------
    # Mechanism primitives
    # ------------------------------------------------------------------
    def lim_factor(self, total_tokens: int, position_fraction: float) -> float:
        """Lost-in-the-middle attenuation for a fact at a prompt position.

        ``position_fraction`` is the fact's token-midpoint position in
        [0, 1]; the penalty is a Gaussian dip centred at 0.5 whose depth
        grows with ``total_tokens``.
        """
        p = self.params
        check_probability("position_fraction", position_fraction)
        if total_tokens <= p.lim_onset_tokens:
            return 1.0
        depth = min(
            p.lim_max_depth,
            (total_tokens - p.lim_onset_tokens) / p.lim_scale_tokens * p.lim_max_depth,
        )
        dip = math.exp(-((position_fraction - 0.5) ** 2) / (2.0 * p.lim_width**2))
        return 1.0 - depth * dip

    def _summary_survival(self, capacity_tokens: float, demand_tokens: float) -> float:
        """Probability a fact survives a mapper summary.

        ``capacity_tokens`` is the summary budget (``intermediate_length``);
        ``demand_tokens`` is the total verbosity of required facts
        competing for that budget in the same chunk.
        """
        p = self.params
        slack = p.summary_slack_frac * demand_tokens + p.summary_slack_tokens
        return _sigmoid((capacity_tokens - demand_tokens) / slack)

    def _complexity_factor(self, method: SynthesisMethod, high: bool) -> float:
        if not high:
            return 1.0
        p = self.params
        if method is SynthesisMethod.MAP_RERANK:
            return p.rerank_high_complexity_factor
        if method is SynthesisMethod.STUFF:
            return p.stuff_high_complexity_factor
        return p.reduce_high_complexity_factor

    # ------------------------------------------------------------------
    # Per-fact recovery probabilities
    # ------------------------------------------------------------------
    def fact_recovery_probs(
        self,
        ctx: SynthesisContext,
        method: SynthesisMethod,
        intermediate_length: int = 0,
    ) -> dict[str, float]:
        """P(fact appears in the final answer) for every required fact.

        Facts absent from every retrieved chunk get probability 0.
        """
        if method is SynthesisMethod.MAP_RERANK:
            return self._probs_map_rerank(ctx)
        if method is SynthesisMethod.STUFF:
            return self._probs_stuff(ctx)
        if method is SynthesisMethod.MAP_REDUCE:
            return self._probs_map_reduce(ctx, intermediate_length)
        raise ValueError(f"unknown synthesis method: {method!r}")

    def _required_ids(self, ctx: SynthesisContext) -> set[str]:
        return {f.fact_id for f in ctx.required_facts}

    def _probs_map_rerank(self, ctx: SynthesisContext) -> dict[str, float]:
        """Answer from the single best chunk (most required facts)."""
        required = self._required_ids(ctx)
        probs = {fid: 0.0 for fid in required}
        best: ChunkView | None = None
        best_count = 0
        for chunk in ctx.chunks:
            count = sum(1 for f in chunk.facts if f.fact_id in required)
            if count > best_count:
                best, best_count = chunk, count
        if best is None:
            return probs
        factor = self._complexity_factor(SynthesisMethod.MAP_RERANK,
                                         ctx.complexity_high)
        for fact in best.facts:
            if fact.fact_id in required:
                probs[fact.fact_id] = self.params.base_recover * factor
        return probs

    def _probs_stuff(self, ctx: SynthesisContext) -> dict[str, float]:
        """One joint prompt: lost-in-the-middle over the whole context."""
        required = self._required_ids(ctx)
        probs = {fid: 0.0 for fid in required}
        total = ctx.total_context_tokens
        if total == 0:
            return probs
        factor = self._complexity_factor(SynthesisMethod.STUFF, ctx.complexity_high)
        offset = 0
        for chunk in ctx.chunks:
            midpoint = (offset + chunk.n_tokens / 2.0) / total
            offset += chunk.n_tokens
            lim = self.lim_factor(total, midpoint)
            for fact in chunk.facts:
                if fact.fact_id not in required:
                    continue
                p = self.params.base_recover * lim * factor
                probs[fact.fact_id] = max(probs[fact.fact_id], p)
        return probs

    def _probs_map_reduce(
        self, ctx: SynthesisContext, intermediate_length: int
    ) -> dict[str, float]:
        """Mapper compression per chunk, then a short joint reduce."""
        check_positive("intermediate_length", intermediate_length)
        required = self._required_ids(ctx)
        probs = {fid: 0.0 for fid in required}
        reduce_tokens = len(ctx.chunks) * intermediate_length
        factor = self._complexity_factor(SynthesisMethod.MAP_REDUCE,
                                         ctx.complexity_high)
        for rank, chunk in enumerate(ctx.chunks):
            chunk_required = [f for f in chunk.facts if f.fact_id in required]
            if not chunk_required:
                continue
            demand = sum(f.verbosity for f in chunk_required)
            survival = self._summary_survival(float(intermediate_length), demand)
            # Position of this chunk's summary within the reduce prompt.
            midpoint = (rank + 0.5) / len(ctx.chunks)
            lim = self.lim_factor(reduce_tokens, midpoint)
            for fact in chunk_required:
                p = (
                    self.params.base_recover
                    * survival
                    * lim
                    * factor
                    * self.params.reduce_recover_factor
                )
                probs[fact.fact_id] = max(probs[fact.fact_id], p)
        return probs

    # ------------------------------------------------------------------
    # Precision-side noise
    # ------------------------------------------------------------------
    def expected_noise_tokens(
        self, ctx: SynthesisContext, method: SynthesisMethod
    ) -> float:
        """Expected count of spurious answer tokens from context dilution."""
        gt_len = max(1, len(ctx.ground_truth_tokens()))
        rate = {
            SynthesisMethod.STUFF: self.params.noise_rate_stuff,
            SynthesisMethod.MAP_REDUCE: self.params.noise_rate_reduce,
            SynthesisMethod.MAP_RERANK: self.params.noise_rate_rerank,
        }[method]
        dilution = ctx.irrelevant_fraction ** self.params.noise_dilution_exponent
        return gt_len * rate * dilution

    # ------------------------------------------------------------------
    # Analytic expectation (smooth; for oracle sweeps)
    # ------------------------------------------------------------------
    def expected_f1(
        self,
        ctx: SynthesisContext,
        method: SynthesisMethod,
        intermediate_length: int = 0,
    ) -> float:
        """Expected token-F1 of the generated answer.

        Uses E[precision] and E[recall] (a first-order approximation of
        E[F1], adequate because experiments average hundreds of
        queries; per-query sampled F1 comes from
        :class:`repro.llm.generation.SimulatedGenerator`).
        """
        p = self.params
        probs = self.fact_recovery_probs(ctx, method, intermediate_length)
        gt = ctx.ground_truth_tokens()
        if not gt:
            return 0.0
        template_len = len(ctx.answer_template_tokens)
        expected_correct = template_len * p.template_match_rate
        expected_emitted = float(template_len)
        for fact in ctx.required_facts:
            recover = probs.get(fact.fact_id, 0.0)
            n_val = len(fact.value_tokens)
            expected_correct += recover * n_val * p.token_match_rate
            # Emitted tokens: recovered facts emit their value; missed
            # facts hallucinate a wrong value with some probability.
            expected_emitted += recover * n_val
            expected_emitted += (1.0 - recover) * p.hallucination_prob * n_val
        expected_emitted += self.expected_noise_tokens(ctx, method)
        if expected_emitted <= 0 or expected_correct <= 0:
            return 0.0
        precision = expected_correct / expected_emitted
        recall = expected_correct / len(gt)
        return 2.0 * precision * recall / (precision + recall)
