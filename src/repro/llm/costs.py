"""Roofline latency model and remote-API latency model.

The serving engine charges time per *iteration* (one continuous-batching
step) from two regimes:

* **Prefill is compute-bound**: processing ``t`` prompt tokens costs
  ``t * flops_per_token / effective_flops`` seconds (AWQ kernels get a
  speedup factor).
* **Decode is bandwidth-bound**: one decode step must stream the full
  weights once plus the KV cache of every running sequence, so it costs
  ``(weight_bytes + sum(kv_bytes)) / mem_bandwidth`` plus a small
  per-sequence kernel-launch overhead.

These two regimes are exactly what makes the paper's tradeoffs real:
``stuff`` with many chunks pays a long compute-bound prefill, while
``map_reduce`` pays several shorter prefills plus an extra decode phase.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.llm.gpu import ClusterSpec
from repro.llm.model import ModelSpec
from repro.util.validation import check_non_negative

__all__ = ["RooflineCostModel", "ApiLatencyModel"]


@dataclass(frozen=True)
class RooflineCostModel:
    """Analytic per-iteration latency for a model on a GPU cluster.

    Attributes:
        model: the serving model spec.
        cluster: the tensor-parallel GPU group.
        step_overhead_s: fixed per-iteration scheduler/kernel overhead.
        per_seq_overhead_s: per-running-sequence overhead per decode step
            (attention kernel launches, sampler).
    """

    model: ModelSpec
    cluster: ClusterSpec
    step_overhead_s: float = 0.002
    per_seq_overhead_s: float = 0.0002

    def prefill_seconds(self, n_tokens: int) -> float:
        """Time to prefill ``n_tokens`` prompt tokens (compute-bound)."""
        check_non_negative("n_tokens", n_tokens)
        if n_tokens == 0:
            return 0.0
        flops = n_tokens * self.model.flops_per_token
        flops /= self.model.quantization.compute_speedup
        return flops / self.cluster.effective_flops

    def decode_step_seconds(self, kv_tokens_in_batch: int, n_seqs: int) -> float:
        """Time for one decode iteration over ``n_seqs`` running sequences.

        ``kv_tokens_in_batch`` is the total number of cached context
        tokens attended to across all running sequences.
        """
        check_non_negative("kv_tokens_in_batch", kv_tokens_in_batch)
        check_non_negative("n_seqs", n_seqs)
        if n_seqs == 0:
            return 0.0
        bytes_read = (
            self.model.weight_bytes
            + kv_tokens_in_batch * self.model.kv_bytes_per_token
        )
        return bytes_read / self.cluster.mem_bandwidth + n_seqs * self.per_seq_overhead_s

    def iteration_seconds(
        self, prefill_tokens: int, kv_tokens_in_batch: int, n_decode_seqs: int
    ) -> float:
        """Time for one mixed (chunked-prefill) iteration.

        vLLM's chunked prefill fuses the prefill chunk and the decode
        batch into one model forward; we charge the sum of both regimes
        plus the fixed step overhead.
        """
        busy = self.prefill_seconds(prefill_tokens) + self.decode_step_seconds(
            kv_tokens_in_batch, n_decode_seqs
        )
        if busy == 0.0:
            return 0.0
        return busy + self.step_overhead_s

    def request_seconds(self, prompt_tokens: int,
                        output_tokens: int) -> float:
        """Uncontended service time of one whole request: prefill the
        prompt, then one solo decode step per output token.

        The single pricing rule for work charged outside a live batch —
        golden-configuration feedback runs and speculation wasted-work
        attribution both use it, and the deadline-risk policy's plan
        estimates must agree with what losers are later billed.
        """
        seconds = self.prefill_seconds(prompt_tokens)
        seconds += output_tokens * self.decode_step_seconds(prompt_tokens, 1)
        return seconds

    def prefill_throughput_tokens_per_s(self) -> float:
        """Peak prompt-processing throughput (capacity-planning aid)."""
        return 1.0 / self.prefill_seconds(1)


@dataclass(frozen=True)
class ApiLatencyModel:
    """Latency of a hosted-API call (used for the LLM query profiler).

    Modeled as network round-trip + input ingestion at a high prompt
    rate + output generation at a per-token decode rate.  Defaults are
    tuned to a GPT-4o-class endpoint emitting short structured outputs,
    which keeps the profiler at ~0.1–0.3 s per query: the paper reports
    the profiler adds at most 1/10 of end-to-end delay (Fig 18).
    """

    base_latency_s: float = 0.05
    input_tokens_per_s: float = 9_000.0
    output_tokens_per_s: float = 160.0

    def call_seconds(self, input_tokens: int, output_tokens: int) -> float:
        """Latency of one API call."""
        check_non_negative("input_tokens", input_tokens)
        check_non_negative("output_tokens", output_tokens)
        return (
            self.base_latency_s
            + input_tokens / self.input_tokens_per_s
            + output_tokens / self.output_tokens_per_s
        )
