"""Sampled answer generation on top of the quality model.

:class:`SimulatedGenerator` turns the per-fact recovery probabilities of
:class:`~repro.llm.quality.QualityModel` into a concrete answer token
sequence — recovered facts contribute (possibly paraphrased) value
tokens, missed facts may hallucinate, and context dilution injects noise
tokens — and scores it with real token-F1 against the ground truth.

Determinism: the sampling seed is derived from ``(root_seed, query_id,
config)``, so re-running any experiment reproduces identical answers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config.knobs import RAGConfig
from repro.evaluation.f1 import token_f1
from repro.llm.quality import QualityModel, SynthesisContext
from repro.util.rng import derive_seed

__all__ = ["GeneratedAnswer", "SimulatedGenerator"]


@dataclass(frozen=True)
class GeneratedAnswer:
    """The outcome of one simulated generation.

    Attributes:
        tokens: the emitted answer token sequence.
        f1: token-F1 against the query's ground truth.
        coverage: fraction of required facts recovered.
        n_recovered / n_required: fact bookkeeping for diagnostics.
        expected_f1: the analytic expectation for the same
            (context, config) pair, useful for variance analysis.
    """

    query_id: str
    config: RAGConfig
    tokens: tuple[str, ...]
    f1: float
    coverage: float
    n_recovered: int
    n_required: int
    expected_f1: float


@dataclass
class SimulatedGenerator:
    """Samples answers for (context, config) pairs, deterministically."""

    quality: QualityModel = field(default_factory=QualityModel)
    root_seed: int = 0

    def _rng(self, ctx: SynthesisContext, config: RAGConfig) -> np.random.Generator:
        seed = derive_seed(self.root_seed, "generation", ctx.query_id, config.label())
        return np.random.default_rng(seed)

    def generate(self, ctx: SynthesisContext, config: RAGConfig) -> GeneratedAnswer:
        """Sample one answer and score it.

        The emitted sequence is built from four parts:

        * template tokens (each paraphrased with small probability),
        * value tokens of recovered facts (paraphrased per
          ``token_match_rate``),
        * hallucinated values for some missed facts,
        * Poisson-distributed noise tokens from context dilution.
        """
        params = self.quality.params
        rng = self._rng(ctx, config)
        probs = self.quality.fact_recovery_probs(
            ctx, config.synthesis_method, config.intermediate_length
        )
        wrong = _WrongTokens()
        tokens: list[str] = []
        for tok in ctx.answer_template_tokens:
            if rng.random() < params.template_match_rate:
                tokens.append(tok)
            else:
                tokens.append(wrong.next())
        n_recovered = 0
        for fact in ctx.required_facts:
            if rng.random() < probs.get(fact.fact_id, 0.0):
                n_recovered += 1
                for tok in fact.value_tokens:
                    if rng.random() < params.token_match_rate:
                        tokens.append(tok)
                    else:
                        tokens.append(wrong.next())
            elif rng.random() < params.hallucination_prob:
                tokens.extend(wrong.next() for _ in fact.value_tokens)
        n_noise = int(rng.poisson(
            self.quality.expected_noise_tokens(ctx, config.synthesis_method)
        ))
        tokens.extend(wrong.next() for _ in range(n_noise))

        ground_truth = ctx.ground_truth_tokens()
        n_required = len(ctx.required_facts)
        return GeneratedAnswer(
            query_id=ctx.query_id,
            config=config,
            tokens=tuple(tokens),
            f1=token_f1(tokens, ground_truth),
            coverage=n_recovered / n_required if n_required else 0.0,
            n_recovered=n_recovered,
            n_required=n_required,
            expected_f1=self.quality.expected_f1(
                ctx, config.synthesis_method, config.intermediate_length
            ),
        )


class _WrongTokens:
    """Emits tokens guaranteed never to match any reference token."""

    def __init__(self) -> None:
        self._n = 0

    def next(self) -> str:
        self._n += 1
        return f"≠wrong{self._n}"
