"""Simulated LLM substrate.

This package provides everything the rest of the system needs from an
LLM without running one: a deterministic tokenizer, model and GPU
hardware specifications, a roofline latency/cost model, a behavioural
generation-quality model (how answer quality responds to context
composition and synthesis method), and a remote-API model for
profiler-style calls.
"""

from repro.llm.costs import ApiLatencyModel, RooflineCostModel
from repro.llm.generation import GeneratedAnswer, SimulatedGenerator
from repro.llm.gpu import A40, ClusterSpec, GPUSpec
from repro.llm.model import (
    GPT_4O,
    LLAMA3_70B_AWQ,
    MISTRAL_7B_AWQ,
    ModelSpec,
    Quantization,
    get_model,
    register_model,
)
from repro.llm.quality import QualityModel, QualityParams, SynthesisContext
from repro.llm.tokenizer import SimTokenizer

__all__ = [
    "A40",
    "ApiLatencyModel",
    "ClusterSpec",
    "GPT_4O",
    "GPUSpec",
    "GeneratedAnswer",
    "LLAMA3_70B_AWQ",
    "MISTRAL_7B_AWQ",
    "ModelSpec",
    "QualityModel",
    "QualityParams",
    "Quantization",
    "RooflineCostModel",
    "SimTokenizer",
    "SimulatedGenerator",
    "SynthesisContext",
    "get_model",
    "register_model",
]
