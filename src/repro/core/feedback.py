"""Golden-configuration feedback for the profiler (§5).

Every ``every``-th query, METIS runs the most resource-demanding
configuration (``map_reduce`` with 30 chunks and 300-token summaries)
to obtain the most accurate achievable answer, then shows the profiler
LLM the query together with that golden answer as a feedback prompt.
Only the last ``keep`` feedback prompts are retained (prompt budget).

The simulator models the *effect* of the retained prompts as an
accuracy bonus on the profiler, and accounts the golden run's token
cost so the cost analysis (Fig 13/14) stays honest. The golden run is
executed off the serving path (batch lane), a simplification recorded
in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config.knobs import RAGConfig, SynthesisMethod
from repro.core.profiler import LLMProfiler
from repro.data.types import Query

__all__ = ["FeedbackConfig", "FeedbackEvent", "FeedbackLoop", "GOLDEN_CONFIG"]

#: The paper's golden configuration: map_reduce, 30 chunks, 300-token
#: intermediate summaries.
GOLDEN_CONFIG = RAGConfig(SynthesisMethod.MAP_REDUCE, 30, 300)


@dataclass(frozen=True)
class FeedbackConfig:
    """Feedback cadence and strength."""

    every: int = 30
    keep: int = 4
    accuracy_boost_per_prompt: float = 0.018

    def __post_init__(self) -> None:
        if self.every < 1:
            raise ValueError(f"every must be >= 1, got {self.every}")
        if self.keep < 1:
            raise ValueError(f"keep must be >= 1, got {self.keep}")
        if not 0.0 <= self.accuracy_boost_per_prompt <= 0.1:
            raise ValueError(
                "accuracy_boost_per_prompt must be in [0, 0.1], "
                f"got {self.accuracy_boost_per_prompt}"
            )


@dataclass(frozen=True)
class FeedbackEvent:
    """One golden-configuration run (for cost accounting)."""

    query_id: str
    golden_prefill_tokens: int
    golden_output_tokens: int
    n_active_prompts: int


@dataclass
class FeedbackLoop:
    """Counts queries, fires golden runs, boosts the profiler."""

    profiler: LLMProfiler
    config: FeedbackConfig = field(default_factory=FeedbackConfig)
    chunk_tokens: int = 512
    _count: int = 0
    _prompts: list[str] = field(default_factory=list)
    events: list[FeedbackEvent] = field(default_factory=list)

    def on_query_complete(self, query: Query) -> FeedbackEvent | None:
        """Register a completion; maybe fire a feedback event."""
        self._count += 1
        if self._count % self.config.every != 0:
            return None
        self._prompts.append(query.query_id)
        if len(self._prompts) > self.config.keep:
            self._prompts.pop(0)
        self.profiler.set_accuracy_boost(
            len(self._prompts) * self.config.accuracy_boost_per_prompt
        )
        golden = GOLDEN_CONFIG
        prefill = golden.num_chunks * (
            self.chunk_tokens + query.n_tokens + 40
        ) + golden.num_chunks * golden.intermediate_length + query.n_tokens
        output = (
            golden.num_chunks * golden.intermediate_length
            + query.answer_tokens_estimate
        )
        event = FeedbackEvent(
            query_id=query.query_id,
            golden_prefill_tokens=prefill,
            golden_output_tokens=output,
            n_active_prompts=len(self._prompts),
        )
        self.events.append(event)
        return event

    @property
    def n_active_prompts(self) -> int:
        return len(self._prompts)
