"""Joint configuration/scheduling decision (§4.3).

Within the pruned space the quality is uniformly high, so the scheduler
optimises purely for the resource fit:

* enumerate the pruned configurations and size their synthesis plans;
* keep those whose minimum resident footprint (largest single LLM call,
  +2% buffer) fits in currently available KV memory;
* pick the *most expensive* fitting configuration (highest total KV
  footprint) — richer configurations sit at the quality ceiling of the
  pruned space;
* if nothing fits, fall back to a cheap configuration just outside the
  range: ``map_rerank`` (no joint reasoning needed) or ``stuff`` (joint
  needed) with as many chunks as fit.

**Fast path.** Sizing a candidate only ever reads aggregate token
counts, so :meth:`JointScheduler.choose` scores the pruned grid against
closed-form :class:`~repro.synthesis.footprint.PlanFootprint`\\ s —
vectorized over the candidate axis with numpy — instead of
materialising a :class:`~repro.synthesis.plans.SynthesisPlan` per
candidate. Grids are memoized per ``(pruned space, query shape)``;
query shapes cluster heavily across a trace, so most decisions reduce
to two array comparisons and an argmax. Decisions are byte-identical to
the plan-materialising reference (:meth:`JointScheduler
.choose_reference`, kept for the equivalence suite and
``benchmarks/bench_decide_micro.py``): the float expressions keep the
exact same association order, token counts convert to float64 exactly
(far below 2^53), and ``argmax``/``argmin`` return the *first* extremum
just as the reference loops keep the earliest strict winner.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.config.knobs import RAGConfig, SynthesisMethod
from repro.config.space import PrunedSpace
from repro.core.policy import SchedulingView
from repro.synthesis import estimate_footprint, make_synthesizer
from repro.synthesis.footprint import PlanFootprint
from repro.synthesis.plans import SynthesisPlan
from repro.util.validation import check_in_range

__all__ = ["JointDecision", "JointScheduler"]


@dataclass(frozen=True)
class JointDecision:
    """The scheduler's pick plus search diagnostics."""

    config: RAGConfig
    footprint: PlanFootprint
    fell_back: bool
    n_candidates: int
    n_fitting: int


@lru_cache(maxsize=4096)
def _scored_grid(
    pruned: PrunedSpace, query_tokens: int, chunk_tokens: int,
    answer_tokens: int,
) -> tuple[tuple[RAGConfig, ...], tuple[PlanFootprint, ...],
           np.ndarray, np.ndarray, np.ndarray]:
    """Candidate configs, footprints and score arrays for one shape.

    The arrays hold ``cost_tokens`` / ``fit_tokens`` / ``num_chunks``
    per candidate in enumeration order (float64 is exact for any
    realistic token count). Hashable key: PrunedSpace is a frozen
    dataclass of ints and method tuples.
    """
    configs = tuple(pruned.enumerate())
    footprints = tuple(
        estimate_footprint(config, query_tokens, chunk_tokens,
                           answer_tokens)
        for config in configs
    )
    cost = np.array([f.cost_tokens for f in footprints], dtype=np.float64)
    fit = np.array([f.fit_tokens for f in footprints], dtype=np.float64)
    chunks = np.array([c.num_chunks for c in configs], dtype=np.int64)
    return configs, footprints, cost, fit, chunks


class JointScheduler:
    """Best-fit configuration selection against live GPU memory.

    ``quality_slo`` (a :class:`~repro.evaluation.metrics.QualitySLO`,
    a ``metric>=value`` spec string, or ``None``) switches the
    whole-fit pick from the quality-ceiling argmax to *threshold-gated
    min cost* ("faithfulness >= 0.8 at min cost",
    ``docs/EVALUATION.md``): quality above the threshold earns
    nothing, so the scheduler should spend the minimum that still
    clears the bar. The scheduler has no per-query quality predictor,
    so the gate maps the SLO threshold linearly onto the pruned
    ``num_chunks`` range — the quality-bearing knob of the space — as
    a floor (threshold 0 → cheapest candidate, threshold 1 → the full
    range, i.e. the historical pick), then takes the cheapest fitting
    candidate at or above the floor. If memory pressure empties the
    gated set, any fitting candidate beats queueing and the pick
    degrades to plain min cost. Actual attainment is measured post
    hoc by :func:`repro.evaluation.slo.evaluate_quality_slo`. The
    default (``None``) keeps the historical quality-ceiling pick and
    the byte-identical schedule.
    """

    def __init__(self, memory_buffer_frac: float = 0.02,
                 quality_slo=None) -> None:
        check_in_range("memory_buffer_frac", memory_buffer_frac, 0.0, 0.5)
        self.memory_buffer_frac = memory_buffer_frac
        if isinstance(quality_slo, str):
            from repro.evaluation.metrics import QualitySLO

            quality_slo = QualitySLO.parse(quality_slo)
        self.quality_slo = quality_slo

    # ------------------------------------------------------------------
    def choose(self, pruned: PrunedSpace, view: SchedulingView) -> JointDecision:
        """Pick the most expensive configuration that fits right now.

        Two fit granularities, tried in order:

        1. **Whole-plan fit** — the config's total KV footprint fits in
           available memory. This is the normal path; under load it
           naturally throttles ``num_chunks`` to what the GPU can
           absorb without queueing.
        2. **Unit fit** — only the largest single call needs to fit.
           This is the paper's Fig 8 situation: a ``stuff`` prompt is
           too big, but ``map_reduce`` mappers are individually small
           and can stream through the batch one after another.
        """
        configs, footprints, cost, fit, chunks = _scored_grid(
            pruned, view.query_tokens, view.chunk_tokens,
            view.answer_tokens,
        )
        n_candidates = len(configs)
        kv = view.kv_bytes_per_token
        buffered = 1.0 + self.memory_buffer_frac
        available = view.available_kv_bytes

        # Same association order as the scalar expression
        # ``cost_tokens * kv_bytes_per_token * (1.0 + buffer_frac)``.
        whole = (cost * kv) * buffered <= available
        n_fitting = int(np.count_nonzero(whole))
        if n_fitting:
            if self.quality_slo is not None:
                # Quality-SLO mode: cheapest fitting candidate at or
                # above the gated num_chunks floor; plain min cost if
                # memory pressure emptied the gate (docs/EVALUATION.md).
                gated = whole & (chunks >= self._chunk_floor(pruned))
                eligible = gated if gated.any() else whole
                best = int(np.argmin(np.where(eligible, cost, np.inf)))
            else:
                # First index of the max cost among fitting candidates
                # — identical to keeping the earliest strict ``>``
                # winner.
                best = int(np.argmax(np.where(whole, cost, -1.0)))
            return JointDecision(
                config=configs[best],
                footprint=footprints[best],
                fell_back=False,
                n_candidates=n_candidates,
                n_fitting=n_fitting,
            )

        # Fig 8 pass: accept plans whose schedulable unit fits. Prefer
        # the *smallest* unit-fit plan: memory is scarce, so commit to
        # the least total work among the configurations that can still
        # make progress.
        unit = (fit * kv) * buffered <= available
        n_fitting = int(np.count_nonzero(unit))
        if n_fitting:
            best = int(np.argmin(np.where(unit, cost, np.inf)))
            return JointDecision(
                config=configs[best],
                footprint=footprints[best],
                fell_back=False,
                n_candidates=n_candidates,
                n_fitting=n_fitting,
            )

        config = self._fallback_config(pruned, view)
        return JointDecision(
            config=config,
            footprint=view.footprint(config),
            fell_back=True,
            n_candidates=n_candidates,
            n_fitting=0,
        )

    # ------------------------------------------------------------------
    def _chunk_floor(self, pruned: PrunedSpace) -> int:
        """Gated ``num_chunks`` floor for the active quality SLO.

        ``lo + ceil(threshold * (hi - lo))`` over the pruned range —
        the linear threshold→knob mapping described in the class
        docstring. ``ceil`` keeps the gate conservative: any fractional
        requirement rounds toward more context, never less.
        """
        lo, hi = pruned.num_chunks_range
        span = max(0, hi - lo)
        return lo + int(np.ceil(self.quality_slo.threshold * span))

    # ------------------------------------------------------------------
    def choose_reference(self, pruned: PrunedSpace,
                         view: SchedulingView) -> JointDecision:
        """Plan-materialising reference chooser (the pre-fast-path
        implementation, kept verbatim).

        Builds a full :class:`SynthesisPlan` for every candidate and
        must agree with :meth:`choose` decision-for-decision — pinned
        by ``tests/test_decide_fastpath.py`` and raced against the fast
        path by ``benchmarks/bench_decide_micro.py``.
        """
        estimate = view.estimate_plan
        if estimate is None:
            def estimate(config: RAGConfig) -> SynthesisPlan:
                return _build_estimate_plan(config, view)
        candidates = [
            (config, estimate(config))
            for config in pruned.enumerate()
        ]
        n_candidates = len(candidates)

        best: tuple[int, RAGConfig, SynthesisPlan] | None = None
        n_fitting = 0
        if self.quality_slo is not None:
            # Quality-SLO mode, mirroring ``choose``: min cost among
            # whole-fit candidates at/above the gated num_chunks floor,
            # degrading to plain min cost when the gate is empty. Keep
            # the earliest strict winner, like argmin.
            floor = self._chunk_floor(pruned)
            gated_best: tuple[int, RAGConfig, SynthesisPlan] | None = None
            for config, plan in candidates:
                if not self._whole_plan_fits(plan, view):
                    continue
                n_fitting += 1
                if best is None or plan.cost_tokens < best[0]:
                    best = (plan.cost_tokens, config, plan)
                if config.num_chunks >= floor and (
                        gated_best is None
                        or plan.cost_tokens < gated_best[0]):
                    gated_best = (plan.cost_tokens, config, plan)
            if gated_best is not None:
                best = gated_best
        else:
            for config, plan in candidates:
                if not self._whole_plan_fits(plan, view):
                    continue
                n_fitting += 1
                if best is None or plan.cost_tokens > best[0]:
                    best = (plan.cost_tokens, config, plan)

        if best is None:
            for config, plan in candidates:
                if not view.plan_fits(plan, self.memory_buffer_frac):
                    continue
                n_fitting += 1
                if best is None or plan.cost_tokens < best[0]:
                    best = (plan.cost_tokens, config, plan)

        if best is not None:
            _, config, plan = best
            return JointDecision(
                config=config,
                footprint=PlanFootprint.from_plan(plan),
                fell_back=False,
                n_candidates=n_candidates,
                n_fitting=n_fitting,
            )
        config = self._fallback_config(pruned, view)
        return JointDecision(
            config=config,
            footprint=PlanFootprint.from_plan(estimate(config)),
            fell_back=True,
            n_candidates=n_candidates,
            n_fitting=0,
        )

    def _whole_plan_fits(self, plan: SynthesisPlan,
                         view: SchedulingView) -> bool:
        need = (
            plan.cost_tokens
            * view.kv_bytes_per_token
            * (1.0 + self.memory_buffer_frac)
        )
        return need <= view.available_kv_bytes

    # ------------------------------------------------------------------
    def _fallback_config(self, pruned: PrunedSpace,
                         view: SchedulingView) -> RAGConfig:
        """Cheap fitting configuration outside the pruned range (§4.3).

        ``map_rerank`` when the profile says no joint reasoning is
        needed, else ``stuff``; in both cases with as many chunks as
        fit into available memory (at least one — a single-chunk
        request may still have to queue briefly, which is the best any
        system can do).
        """
        joint = SynthesisMethod.MAP_RERANK not in pruned.methods
        lo, hi = pruned.num_chunks_range
        budget_tokens = view.available_kv_bytes / (
            view.kv_bytes_per_token * (1.0 + self.memory_buffer_frac)
        )
        per_chunk = view.chunk_tokens
        fixed = view.query_tokens + view.answer_tokens + 48  # template slack
        if joint:
            # One stuff call: fixed + k * chunk must fit.
            k = int((budget_tokens - fixed) // per_chunk)
            method = SynthesisMethod.STUFF
        else:
            # k map_rerank calls, each fixed + chunk tokens.
            per_call = fixed + per_chunk
            k = int(budget_tokens // per_call)
            method = SynthesisMethod.MAP_RERANK
        # The fallback must still "meet the requirement for the current
        # query" (§4.3): never drop below the profile's pieces estimate
        # (the pruned range's lower bound), even if that means brief
        # queueing under a memory burst.
        k = max(min(lo, hi), min(k, hi))
        return RAGConfig(method, k)


def _build_estimate_plan(config: RAGConfig,
                         view: SchedulingView) -> SynthesisPlan:
    """Default estimate-plan builder for views without a closure: the
    same uniform-chunk construction the pipeline's ``make_view`` uses.
    """
    synthesizer = make_synthesizer(config.synthesis_method)
    return synthesizer.build_plan(
        query_id="est",
        query_tokens=view.query_tokens,
        chunk_tokens=[view.chunk_tokens] * config.num_chunks,
        answer_tokens=view.answer_tokens,
        config=config,
    )
