"""Joint configuration/scheduling decision (§4.3).

Within the pruned space the quality is uniformly high, so the scheduler
optimises purely for the resource fit:

* enumerate the pruned configurations and size their synthesis plans;
* keep those whose minimum resident footprint (largest single LLM call,
  +2% buffer) fits in currently available KV memory;
* pick the *most expensive* fitting configuration (highest total KV
  footprint) — richer configurations sit at the quality ceiling of the
  pruned space;
* if nothing fits, fall back to a cheap configuration just outside the
  range: ``map_rerank`` (no joint reasoning needed) or ``stuff`` (joint
  needed) with as many chunks as fit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.knobs import RAGConfig, SynthesisMethod
from repro.config.space import PrunedSpace
from repro.core.policy import SchedulingView
from repro.synthesis.plans import SynthesisPlan
from repro.util.validation import check_in_range

__all__ = ["JointDecision", "JointScheduler"]


@dataclass(frozen=True)
class JointDecision:
    """The scheduler's pick plus search diagnostics."""

    config: RAGConfig
    plan: SynthesisPlan
    fell_back: bool
    n_candidates: int
    n_fitting: int


class JointScheduler:
    """Best-fit configuration selection against live GPU memory."""

    def __init__(self, memory_buffer_frac: float = 0.02) -> None:
        check_in_range("memory_buffer_frac", memory_buffer_frac, 0.0, 0.5)
        self.memory_buffer_frac = memory_buffer_frac

    # ------------------------------------------------------------------
    def choose(self, pruned: PrunedSpace, view: SchedulingView) -> JointDecision:
        """Pick the most expensive configuration that fits right now.

        Two fit granularities, tried in order:

        1. **Whole-plan fit** — the config's total KV footprint fits in
           available memory. This is the normal path; under load it
           naturally throttles ``num_chunks`` to what the GPU can
           absorb without queueing.
        2. **Unit fit** — only the largest single call needs to fit.
           This is the paper's Fig 8 situation: a ``stuff`` prompt is
           too big, but ``map_reduce`` mappers are individually small
           and can stream through the batch one after another.
        """
        candidates = [
            (config, view.estimate_plan(config))
            for config in pruned.enumerate()
        ]
        n_candidates = len(candidates)

        best: tuple[int, RAGConfig, SynthesisPlan] | None = None
        n_fitting = 0
        for config, plan in candidates:
            if not self._whole_plan_fits(plan, view):
                continue
            n_fitting += 1
            if best is None or plan.cost_tokens > best[0]:
                best = (plan.cost_tokens, config, plan)

        if best is None:
            # Fig 8 pass: accept plans whose schedulable unit fits.
            for config, plan in candidates:
                if not view.plan_fits(plan, self.memory_buffer_frac):
                    continue
                n_fitting += 1
                # Prefer the *smallest* unit-fit plan here: memory is
                # scarce, so commit to the least total work among the
                # configurations that can still make progress.
                if best is None or plan.cost_tokens < best[0]:
                    best = (plan.cost_tokens, config, plan)

        if best is not None:
            _, config, plan = best
            return JointDecision(
                config=config,
                plan=plan,
                fell_back=False,
                n_candidates=n_candidates,
                n_fitting=n_fitting,
            )
        config = self._fallback_config(pruned, view)
        return JointDecision(
            config=config,
            plan=view.estimate_plan(config),
            fell_back=True,
            n_candidates=n_candidates,
            n_fitting=0,
        )

    def _whole_plan_fits(self, plan: SynthesisPlan,
                         view: SchedulingView) -> bool:
        need = (
            plan.cost_tokens
            * view.kv_bytes_per_token
            * (1.0 + self.memory_buffer_frac)
        )
        return need <= view.available_kv_bytes

    # ------------------------------------------------------------------
    def _fallback_config(self, pruned: PrunedSpace,
                         view: SchedulingView) -> RAGConfig:
        """Cheap fitting configuration outside the pruned range (§4.3).

        ``map_rerank`` when the profile says no joint reasoning is
        needed, else ``stuff``; in both cases with as many chunks as
        fit into available memory (at least one — a single-chunk
        request may still have to queue briefly, which is the best any
        system can do).
        """
        joint = SynthesisMethod.MAP_RERANK not in pruned.methods
        lo, hi = pruned.num_chunks_range
        budget_tokens = view.available_kv_bytes / (
            view.kv_bytes_per_token * (1.0 + self.memory_buffer_frac)
        )
        per_chunk = view.chunk_tokens
        fixed = view.query_tokens + view.answer_tokens + 48  # template slack
        if joint:
            # One stuff call: fixed + k * chunk must fit.
            k = int((budget_tokens - fixed) // per_chunk)
            method = SynthesisMethod.STUFF
        else:
            # k map_rerank calls, each fixed + chunk tokens.
            per_call = fixed + per_chunk
            k = int(budget_tokens // per_call)
            method = SynthesisMethod.MAP_RERANK
        # The fallback must still "meet the requirement for the current
        # query" (§4.3): never drop below the profile's pieces estimate
        # (the pruned range's lower bound), even if that means brief
        # queueing under a memory burst.
        k = max(min(lo, hi), min(k, hi))
        return RAGConfig(method, k)
