"""The METIS controller: profiler → Algorithm 1 → joint scheduler.

:class:`MetisPolicy` wires the paper's pipeline (Fig 7) behind the
generic :class:`~repro.core.policy.RAGPolicy` interface. Knob-level
switches (``adapt_*``), the selection mode, and memory awareness exist
so that the paper's ablations (Fig 12, Fig 16) are configurations of
the same controller rather than separate code paths.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, replace

from repro.config.knobs import RAGConfig, SynthesisMethod
from repro.config.space import PrunedSpace
from repro.core.feedback import FeedbackConfig, FeedbackLoop
from repro.core.mapping import map_profile_to_space
from repro.core.policy import (
    ClusterSchedulingView,
    Decision,
    PrepResult,
    RAGPolicy,
    SchedulingView,
)
from repro.core.profiler import GPT4O_PROFILER, LLMProfiler, ProfilerModelSpec
from repro.data.types import Query
from repro.util.validation import check_probability

__all__ = ["MetisConfig", "MetisPolicy"]


@dataclass(frozen=True)
class MetisConfig:
    """Controller configuration (defaults = the full METIS system)."""

    profiler_spec: ProfilerModelSpec = GPT4O_PROFILER
    confidence_threshold: float = 0.90
    recent_spaces: int = 10
    memory_buffer_frac: float = 0.02
    chunk_slack: float = 3.0
    ilen_steps: int = 4
    # Refinements (§5).
    enable_confidence_fallback: bool = True
    enable_feedback: bool = False
    feedback: FeedbackConfig = field(default_factory=FeedbackConfig)
    # Ablation switches (Fig 12 / Fig 16).
    adapt_num_chunks: bool = True
    adapt_synthesis: bool = True
    adapt_intermediate_length: bool = True
    memory_aware: bool = True
    #: Cluster mode: when serving behind a multi-replica cluster and the
    #: routed replica cannot fit any pruned configuration, re-place the
    #: query on the replica with the most claimable KV memory instead of
    #: falling back to a degraded configuration. No-op on single-replica
    #: views.
    cluster_aware: bool = True
    #: "best_fit" (METIS), "median" (strawman of §4.3) or "max"
    #: (quality-maximising, what AdaptiveRAG*-style tuners do).
    selection_mode: str = "best_fit"
    #: Values used when a knob's adaptation is disabled.
    fixed_num_chunks: int = 20
    fixed_intermediate_length: int = 100
    #: Quality SLO to target ("metric>=value" or a parsed
    #: :class:`~repro.evaluation.metrics.QualitySLO`): the joint
    #: scheduler then picks the *cheapest* in-range fitting
    #: configuration instead of the richest (docs/EVALUATION.md).
    #: ``None`` (default) keeps selection byte-identical.
    quality_slo: object = None

    def __post_init__(self) -> None:
        check_probability("confidence_threshold", self.confidence_threshold)
        if isinstance(self.quality_slo, str):
            from repro.evaluation.metrics import QualitySLO

            # Fail fast on a malformed spec; keep the parsed (frozen,
            # hashable) form so configs stay comparable.
            object.__setattr__(self, "quality_slo",
                               QualitySLO.parse(self.quality_slo))
        if self.selection_mode not in ("best_fit", "median", "max"):
            raise ValueError(
                f"unknown selection_mode: {self.selection_mode!r}"
            )
        if self.recent_spaces < 1:
            raise ValueError(f"recent_spaces must be >= 1, got {self.recent_spaces}")


class MetisPolicy(RAGPolicy):
    """The full METIS system (and, via flags, its ablations)."""

    engine_policy = "app-aware"

    def __init__(
        self,
        metadata_tokens: int,
        chunk_tokens: int,
        config: MetisConfig | None = None,
        seed: int = 0,
        name: str = "metis",
    ) -> None:
        from repro.core.scheduler import JointScheduler

        self.config = config or MetisConfig()
        self.name = name
        self.profiler = LLMProfiler(
            self.config.profiler_spec, metadata_tokens, seed=seed
        )
        self.scheduler = JointScheduler(self.config.memory_buffer_frac,
                                        quality_slo=self.config.quality_slo)
        self.feedback: FeedbackLoop | None = None
        if self.config.enable_feedback:
            self.feedback = FeedbackLoop(
                profiler=self.profiler,
                config=self.config.feedback,
                chunk_tokens=chunk_tokens,
            )
        self._recent_spaces: deque[PrunedSpace] = deque(
            maxlen=self.config.recent_spaces
        )
        self._queries_by_id: dict[str, Query] = {}

    # ------------------------------------------------------------------
    def prepare(self, query: Query) -> PrepResult:
        """Run the profiler call (latency + dollars charged upstream)."""
        result = self.profiler.profile(query)
        return PrepResult(
            profile=result.profile,
            api_seconds=result.api_seconds,
            dollars=result.dollars,
            input_tokens=result.input_tokens,
            output_tokens=result.output_tokens,
        )

    # ------------------------------------------------------------------
    def choose(self, query: Query, prep: PrepResult,
               view: SchedulingView) -> Decision:
        assert prep.profile is not None, "MetisPolicy requires a profile"
        profile = prep.profile

        used_recent = False
        if (
            self.config.enable_confidence_fallback
            and profile.confidence < self.config.confidence_threshold
            and self._recent_spaces
        ):
            # Low-confidence profile: reuse the pruned spaces of the
            # most recent confident queries (§5).
            pruned = self._merge_recent()
            used_recent = True
        else:
            pruned = map_profile_to_space(
                profile,
                chunk_slack=self.config.chunk_slack,
                ilen_steps=self.config.ilen_steps,
            )
            if profile.confidence >= self.config.confidence_threshold:
                self._recent_spaces.append(pruned)

        pruned = self._apply_knob_switches(pruned)
        decision = self._select(pruned, view)
        self._queries_by_id[query.query_id] = query
        return replace(decision, used_recent_spaces=used_recent)

    # ------------------------------------------------------------------
    def on_complete(self, query: Query, f1: float, delay: float) -> None:
        if self.feedback is not None:
            self.feedback.on_query_complete(query)

    # ------------------------------------------------------------------
    def _merge_recent(self) -> PrunedSpace:
        spaces = list(self._recent_spaces)
        merged = spaces[0]
        for space in spaces[1:]:
            merged = merged.merge(space)
        return merged

    def _apply_knob_switches(self, pruned: PrunedSpace) -> PrunedSpace:
        """Clamp un-adapted knobs to their fixed values (Fig 16)."""
        cfg = self.config
        methods = pruned.methods
        chunks = pruned.num_chunks_range
        ilen = pruned.intermediate_length_range
        if not cfg.adapt_synthesis:
            methods = (SynthesisMethod.STUFF,)
        if not cfg.adapt_num_chunks:
            chunks = (cfg.fixed_num_chunks, cfg.fixed_num_chunks)
        if not cfg.adapt_intermediate_length:
            ilen = (cfg.fixed_intermediate_length, cfg.fixed_intermediate_length)
        return PrunedSpace(
            methods=methods,
            num_chunks_range=chunks,
            intermediate_length_range=ilen,
            ilen_steps=pruned.ilen_steps,
        )

    def _select(self, pruned: PrunedSpace, view: SchedulingView) -> Decision:
        if self.config.selection_mode == "median":
            return Decision(config=pruned.median_config(), pruned_space=pruned)
        if self.config.selection_mode == "max" or not self.config.memory_aware:
            # Quality-maximising pick; best_fit without memory awareness
            # degenerates to the same thing.
            return Decision(
                config=pruned.most_expensive_config(), pruned_space=pruned
            )
        decision = self.scheduler.choose(pruned, view)
        notes = {
            "n_candidates": decision.n_candidates,
            "n_fitting": decision.n_fitting,
        }
        if decision.fell_back:
            rescued, replica = self._cluster_rescue(pruned, view)
            if rescued is not None:
                decision = rescued
                notes["n_fitting"] = rescued.n_fitting
                notes["preferred_replica"] = replica
        return Decision(
            config=decision.config,
            pruned_space=pruned,
            fell_back=decision.fell_back,
            notes=notes,
        )

    def _cluster_rescue(self, pruned: PrunedSpace, view: SchedulingView):
        """Cluster mode: retry a falling-back pick on the freest replica.

        Joint configuration *and placement* scheduling: the per-replica
        prune already happened against the routed replica's memory; if
        even the fallback path triggered there, a sibling replica with
        more claimable KV can often serve an in-range configuration.
        Returns ``(decision, replica_id)`` or ``(None, None)``.
        """
        if not self.config.cluster_aware:
            return None, None
        if not isinstance(view, ClusterSchedulingView) or view.n_replicas < 2:
            return None, None
        best = view.best_replica()
        if best == view.replica_id:
            return None, None
        if (view.replica_available_kv_bytes[best]
                <= view.available_kv_bytes):
            return None, None
        alternative = self.scheduler.choose(pruned, view.for_replica(best))
        if alternative.fell_back:
            return None, None
        return alternative, best

    def describe(self) -> str:
        mode = self.config.selection_mode
        mem = "mem-aware" if self.config.memory_aware else "mem-oblivious"
        return f"{self.name} ({self.config.profiler_spec.name}, {mode}, {mem})"
