"""The serving-policy interface every system implements.

A policy is consulted twice per query by the experiment runner:

1. :meth:`RAGPolicy.prepare` at arrival — runs the (optional) profiler
   call and returns its latency/cost; the runner simulates that latency
   before proceeding.
2. :meth:`RAGPolicy.choose` when the profiler returns — sees a
   :class:`SchedulingView` of the engine at *that* moment (free KV
   memory, plan estimator) and commits to a :class:`RAGConfig`.

METIS, the fixed-config baselines, Parrot*, and AdaptiveRAG* are all
implementations of this interface; they differ only in what they do in
these two hooks and in which engine scheduling policy they request.
"""

from __future__ import annotations

import dataclasses
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable

from repro.config.knobs import RAGConfig
from repro.config.space import PrunedSpace
from repro.core.profiles import QueryProfile
from repro.data.types import Query
from repro.synthesis import estimate_footprint
from repro.synthesis.footprint import PlanFootprint
from repro.synthesis.plans import SynthesisPlan

__all__ = ["PrepResult", "SchedulingView", "ClusterSchedulingView",
           "Decision", "RAGPolicy"]


@dataclass(frozen=True)
class PrepResult:
    """Outcome of the arrival-time phase (profiler call, if any)."""

    profile: QueryProfile | None = None
    api_seconds: float = 0.0
    dollars: float = 0.0
    input_tokens: int = 0
    output_tokens: int = 0


@dataclass(frozen=True)
class SchedulingView:
    """A policy's window onto the system at decision time.

    Attributes:
        available_kv_bytes: free KV memory net of queued demand — the
            signal METIS' joint scheduler consumes.
        estimate_plan: builds the full synthesis plan a config would
            produce (using the dataset's nominal chunk size). Kept for
            call-level consumers and the reference decision path; the
            hot path sizes configs with :meth:`footprint` instead.
    """

    now: float
    free_kv_bytes: float
    available_kv_bytes: float
    kv_bytes_per_token: float
    chunk_tokens: int
    query_tokens: int
    answer_tokens: int
    estimate_plan: Callable[[RAGConfig], SynthesisPlan] | None = None

    def footprint(self, config: RAGConfig) -> PlanFootprint:
        """Closed-form footprint of the plan ``config`` would produce
        for this query shape (memoized; no plan object is built)."""
        return estimate_footprint(config, self.query_tokens,
                                  self.chunk_tokens, self.answer_tokens)

    def plan_fits(self, plan, buffer_frac: float = 0.02) -> bool:
        """Whether a plan's (or footprint's) minimum resident footprint
        fits right now."""
        need = plan.fit_tokens * self.kv_bytes_per_token * (1.0 + buffer_frac)
        return need <= self.available_kv_bytes


@dataclass(frozen=True)
class ClusterSchedulingView(SchedulingView):
    """A :class:`SchedulingView` onto one replica of a serving cluster.

    The scalar ``free_kv_bytes`` / ``available_kv_bytes`` fields are
    the *routed* replica's figures, so a memory-aware scheduler prunes
    per-replica by construction. The per-replica tuples expose the
    whole cluster for placement decisions (e.g. METIS' fallback rescue:
    when nothing fits on the routed replica, re-place the query where
    memory is plentiful instead of degrading its configuration).
    """

    replica_id: int = 0
    replica_free_kv_bytes: tuple[float, ...] = ()
    replica_available_kv_bytes: tuple[float, ...] = ()
    #: Event-time replica clocks at the decision instant. Replicas
    #: advance independently on the shared event loop, so these are
    #: *not* equal: busy replicas sit at (or ahead of) the frontier,
    #: idle ones lag at their last admission. Placement heuristics can
    #: read them alongside the memory tuples.
    replica_now: tuple[float, ...] = ()
    #: Per-replica hardware-throughput multipliers (heterogeneous
    #: fleets); empty or all-1.0 for homogeneous clusters.
    replica_speeds: tuple[float, ...] = ()
    #: Per-replica outstanding-request counts (waiting + running) at
    #: the decision instant — the queue-depth signal the deadline-risk
    #: speculation policy sizes its completion estimates with (sourced
    #: from :meth:`~repro.serving.cluster.ClusterEngine.replica_outstanding`
    #: rather than recomputed ad hoc).
    replica_outstanding: tuple[int, ...] = ()

    @property
    def n_replicas(self) -> int:
        return max(1, len(self.replica_available_kv_bytes))

    def for_replica(self, replica_id: int) -> "ClusterSchedulingView":
        """The same moment in time, viewed from another replica."""
        if not 0 <= replica_id < len(self.replica_available_kv_bytes):
            raise ValueError(
                f"replica_id {replica_id} out of range "
                f"[0, {len(self.replica_available_kv_bytes)})"
            )
        return dataclasses.replace(
            self,
            replica_id=replica_id,
            free_kv_bytes=self.replica_free_kv_bytes[replica_id],
            available_kv_bytes=self.replica_available_kv_bytes[replica_id],
        )

    def best_replica(self) -> int:
        """Replica with the most claimable KV memory (ties: lowest id)."""
        avail = self.replica_available_kv_bytes
        if not avail:
            return self.replica_id
        return max(range(len(avail)), key=lambda i: (avail[i], -i))


@dataclass(frozen=True)
class Decision:
    """A policy's committed configuration for one query."""

    config: RAGConfig
    pruned_space: PrunedSpace | None = None
    fell_back: bool = False
    used_recent_spaces: bool = False
    notes: dict = field(default_factory=dict)


class RAGPolicy(ABC):
    """Base class for all serving systems under evaluation."""

    #: Display name used in reports.
    name: str = "base"
    #: Engine scheduling policy this system runs with
    #: ("fcfs" = vLLM-style, "app-aware" = Parrot-style).
    engine_policy: str = "fcfs"

    def prepare(self, query: Query) -> PrepResult:
        """Arrival-time phase; default: no profiler, zero latency."""
        return PrepResult()

    @abstractmethod
    def choose(self, query: Query, prep: PrepResult,
               view: SchedulingView) -> Decision:
        """Commit to a configuration given the current system state."""

    def on_complete(self, query: Query, f1: float, delay: float) -> None:
        """Completion hook (feedback loops); default: no-op."""

    def describe(self) -> str:
        """One-line description for reports."""
        return self.name
