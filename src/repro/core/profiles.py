"""Query profiles: the four dimensions the LLM profiler estimates (§4.1).

* query complexity (binary high/low),
* joint reasoning requirement (binary yes/no),
* pieces of information required (1–10),
* summary length range (30–200 words).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.types import QueryTruth
from repro.util.validation import check_probability

__all__ = ["QueryProfile", "profile_is_good", "MAX_PIECES"]

MAX_PIECES = 10


@dataclass(frozen=True)
class QueryProfile:
    """One profiler output, with its confidence score.

    ``confidence`` is derived from the profiler LLM's output log-probs
    (§5); METIS thresholds it at 0.9 to decide whether to trust the
    profile.
    """

    complexity_high: bool
    joint_reasoning: bool
    pieces: int
    summary_range: tuple[int, int]
    confidence: float
    source: str = "oracle"

    def __post_init__(self) -> None:
        if not 1 <= self.pieces <= MAX_PIECES:
            raise ValueError(
                f"pieces must be in [1, {MAX_PIECES}], got {self.pieces}"
            )
        lo, hi = self.summary_range
        if not 1 <= lo <= hi:
            raise ValueError(f"invalid summary_range: {self.summary_range}")
        check_probability("confidence", self.confidence)

    @classmethod
    def from_truth(cls, truth: QueryTruth, source: str = "oracle",
                   confidence: float = 1.0) -> "QueryProfile":
        """The profile a perfect profiler would emit."""
        return cls(
            complexity_high=truth.complexity_high,
            joint_reasoning=truth.joint_reasoning,
            pieces=min(MAX_PIECES, truth.pieces_of_information),
            summary_range=truth.summary_range,
            confidence=confidence,
            source=source,
        )


def profile_is_good(profile: QueryProfile, truth: QueryTruth,
                    pieces_tolerance: int = 1) -> bool:
    """Whether a profile is *good* in the paper's sense (§5): it leads
    to configurations that preserve quality / reduce delay.

    Operationalised as: binary dimensions correct, pieces within
    ``pieces_tolerance``, and the summary ranges overlapping (so the
    mapped ``intermediate_length`` range contains workable values).
    """
    if profile.complexity_high != truth.complexity_high:
        return False
    if profile.joint_reasoning != truth.joint_reasoning:
        return False
    if abs(profile.pieces - min(MAX_PIECES, truth.pieces_of_information)) \
            > pieces_tolerance:
        return False
    lo, hi = profile.summary_range
    t_lo, t_hi = truth.summary_range
    return lo <= t_hi and t_lo <= hi
