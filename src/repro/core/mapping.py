"""Rule-based mapping from query profile to pruned config space.

This is the paper's Algorithm 1, verbatim:

| profile                         | synthesis methods        |
|---------------------------------|--------------------------|
| joint reasoning = no            | ``map_rerank``           |
| joint = yes, complexity = low   | ``stuff``                |
| joint = yes, complexity = high  | ``stuff``, ``map_reduce``|

``num_chunks`` range is ``[pieces, 3 * pieces]`` (retrieval slack +
scheduler room, §4.2), and the ``intermediate_length`` range is the
profiler's summary-length estimate.
"""

from __future__ import annotations

from repro.config.knobs import SynthesisMethod
from repro.config.space import PrunedSpace
from repro.core.profiles import QueryProfile

__all__ = ["map_profile_to_space", "MAX_NUM_CHUNKS"]

#: Retrieving beyond this never helps (paper sweeps up to 35 chunks).
MAX_NUM_CHUNKS = 35

_MIN_ILEN, _MAX_ILEN = 20, 200


def map_profile_to_space(
    profile: QueryProfile,
    chunk_slack: float = 3.0,
    ilen_steps: int = 4,
) -> PrunedSpace:
    """Apply Algorithm 1 to one profile.

    Args:
        chunk_slack: upper multiplier on pieces for the ``num_chunks``
            range (the paper's 3×, made explicit for ablation).
        ilen_steps: materialisation granularity of the
            ``intermediate_length`` range for the joint scheduler.
    """
    if chunk_slack < 1.0:
        raise ValueError(f"chunk_slack must be >= 1, got {chunk_slack}")

    if not profile.joint_reasoning:
        methods: tuple[SynthesisMethod, ...] = (SynthesisMethod.MAP_RERANK,)
    elif not profile.complexity_high:
        methods = (SynthesisMethod.STUFF,)
    else:
        methods = (SynthesisMethod.STUFF, SynthesisMethod.MAP_REDUCE)

    lo = max(1, min(profile.pieces, MAX_NUM_CHUNKS))
    hi = max(lo, min(int(round(chunk_slack * profile.pieces)), MAX_NUM_CHUNKS))

    ilen_lo, ilen_hi = profile.summary_range
    ilen_lo = max(_MIN_ILEN, min(ilen_lo, _MAX_ILEN))
    ilen_hi = max(ilen_lo, min(ilen_hi, _MAX_ILEN))

    return PrunedSpace(
        methods=methods,
        num_chunks_range=(lo, hi),
        intermediate_length_range=(ilen_lo, ilen_hi),
        ilen_steps=ilen_steps,
    )
