"""METIS core: the paper's contribution.

Per-query configuration adaptation for RAG: an LLM query profiler
(§4.1), rule-based mapping from profiles to pruned configuration spaces
(§4.2, Algorithm 1), a joint configuration/scheduling best-fit decision
against live GPU memory (§4.3), and the refinements of §5 (confidence
thresholding, golden-configuration feedback).
"""

from repro.core.controller import MetisConfig, MetisPolicy
from repro.core.feedback import FeedbackLoop
from repro.core.mapping import map_profile_to_space
from repro.core.policy import Decision, PrepResult, RAGPolicy, SchedulingView
from repro.core.profiler import (
    GPT4O_PROFILER,
    LLAMA70B_PROFILER,
    LLMProfiler,
    ProfilerModelSpec,
)
from repro.core.profiles import QueryProfile, profile_is_good
from repro.core.scheduler import JointDecision, JointScheduler

__all__ = [
    "Decision",
    "FeedbackLoop",
    "GPT4O_PROFILER",
    "JointDecision",
    "JointScheduler",
    "LLAMA70B_PROFILER",
    "LLMProfiler",
    "MetisConfig",
    "MetisPolicy",
    "PrepResult",
    "ProfilerModelSpec",
    "QueryProfile",
    "RAGPolicy",
    "SchedulingView",
    "map_profile_to_space",
    "profile_is_good",
]
