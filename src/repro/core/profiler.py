"""The LLM query profiler (§4.1, §5) as a calibrated noise model.

A real profiler prompts GPT-4o / Llama-3.1-70B with the query plus the
database metadata and parses four structured outputs. What the rest of
METIS consumes is (a) the joint distribution of profile accuracy and
confidence, (b) the call's latency, and (c) its dollar cost — so that
is exactly what this module models, calibrated to the paper's Fig 9:
>93% of profiles come back above the 0.9 confidence threshold, ≥96% of
those are good, and 85–90% of the below-threshold ones are bad.

Feedback prompts (§5) raise the effective accuracy: every 30th query
METIS generates a golden answer with the most expensive configuration
and shows it to the profiler; the last four such prompts are kept.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.profiles import MAX_PIECES, QueryProfile
from repro.data.types import Query
from repro.llm.costs import ApiLatencyModel
from repro.llm.model import GPT_4O, LLAMA3_70B_AWQ, ModelSpec
from repro.util.rng import RngStreams
from repro.util.validation import check_probability

__all__ = [
    "ProfilerModelSpec",
    "GPT4O_PROFILER",
    "LLAMA70B_PROFILER",
    "ProfilerResult",
    "LLMProfiler",
]

#: Token overhead of the profiler prompt template (Appendix A.1) on top
#: of the query text and database metadata.
_PROMPT_TEMPLATE_TOKENS = 96
#: Structured profiler output: four short fields.
_OUTPUT_TOKENS = 12


@dataclass(frozen=True)
class ProfilerModelSpec:
    """Accuracy/confidence/latency character of one profiler LLM.

    Attributes:
        base_accuracy: probability the profile comes out *good* (all
            four dimensions usable; see ``profile_is_good``).
        pieces_sigma: std-dev of the pieces estimate when the profile
            is bad.
        conf_high_given_good / conf_high_given_bad: probability the
            confidence lands above the 0.9 threshold for good/bad
            profiles (the discriminativeness of log-prob confidence).
    """

    name: str
    model: ModelSpec
    base_accuracy: float
    pieces_sigma: float
    conf_high_given_good: float
    conf_high_given_bad: float
    latency: ApiLatencyModel = ApiLatencyModel()

    def __post_init__(self) -> None:
        check_probability("base_accuracy", self.base_accuracy)
        check_probability("conf_high_given_good", self.conf_high_given_good)
        check_probability("conf_high_given_bad", self.conf_high_given_bad)


GPT4O_PROFILER = ProfilerModelSpec(
    name="gpt-4o-profiler",
    model=GPT_4O,
    base_accuracy=0.91,
    pieces_sigma=2.0,
    conf_high_given_good=0.985,
    conf_high_given_bad=0.30,
)

LLAMA70B_PROFILER = ProfilerModelSpec(
    name="llama70b-profiler",
    model=LLAMA3_70B_AWQ,
    base_accuracy=0.86,
    pieces_sigma=2.4,
    conf_high_given_good=0.95,
    conf_high_given_bad=0.42,
    # Self-hosted endpoint: slightly slower time-to-first-token.
    latency=ApiLatencyModel(base_latency_s=0.08, output_tokens_per_s=120.0),
)


@dataclass(frozen=True)
class ProfilerResult:
    """Profile plus the call's resource usage."""

    profile: QueryProfile
    api_seconds: float
    dollars: float
    input_tokens: int
    output_tokens: int


class LLMProfiler:
    """Simulates profiling calls for a dataset's queries.

    Args:
        spec: which profiler LLM to emulate.
        metadata_tokens: token length of the database metadata line the
            prompt includes (per dataset).
        seed: RNG root; profiles are deterministic per query id.
    """

    def __init__(self, spec: ProfilerModelSpec, metadata_tokens: int,
                 seed: int = 0) -> None:
        if metadata_tokens < 0:
            raise ValueError(f"metadata_tokens must be >= 0, got {metadata_tokens}")
        self.spec = spec
        self.metadata_tokens = metadata_tokens
        self._rngs = RngStreams(seed).child("profiler", spec.name)
        self._accuracy_boost = 0.0

    # ------------------------------------------------------------------
    @property
    def accuracy(self) -> float:
        """Effective accuracy including feedback boost (capped)."""
        return min(0.985, self.spec.base_accuracy + self._accuracy_boost)

    def set_accuracy_boost(self, boost: float) -> None:
        """Set the feedback-prompt accuracy bonus (see FeedbackLoop)."""
        if boost < 0:
            raise ValueError(f"boost must be >= 0, got {boost}")
        self._accuracy_boost = boost

    # ------------------------------------------------------------------
    def profile(self, query: Query) -> ProfilerResult:
        """Profile one query (deterministic given the seed and query id)."""
        rng = self._rngs.fresh("q", query.query_id, round(self._accuracy_boost, 4))
        truth = query.truth
        good = bool(rng.random() < self.accuracy)
        if good:
            profile_fields = dict(
                complexity_high=truth.complexity_high,
                joint_reasoning=truth.joint_reasoning,
                pieces=min(MAX_PIECES, truth.pieces_of_information),
                summary_range=truth.summary_range,
            )
        else:
            profile_fields = self._corrupt(rng, truth)
        confidence = self._confidence(rng, good)
        profile = QueryProfile(
            confidence=confidence, source=self.spec.name, **profile_fields
        )
        input_tokens = (
            query.n_tokens + self.metadata_tokens + _PROMPT_TEMPLATE_TOKENS
        )
        api_seconds = self.spec.latency.call_seconds(input_tokens, _OUTPUT_TOKENS)
        dollars = self.spec.model.dollar_cost(input_tokens, _OUTPUT_TOKENS)
        return ProfilerResult(
            profile=profile,
            api_seconds=api_seconds,
            dollars=dollars,
            input_tokens=input_tokens,
            output_tokens=_OUTPUT_TOKENS,
        )

    # ------------------------------------------------------------------
    def _corrupt(self, rng: np.random.Generator, truth) -> dict:
        """Produce a *bad* profile: at least one dimension unusable."""
        true_pieces = min(MAX_PIECES, truth.pieces_of_information)
        fields = dict(
            complexity_high=truth.complexity_high,
            joint_reasoning=truth.joint_reasoning,
            pieces=true_pieces,
            summary_range=truth.summary_range,
        )
        # Corrupt dimensions until the profile is materially wrong;
        # weights reflect which estimates LLM profilers actually miss
        # (pieces-of-information being the hardest).
        corrupted = False
        if rng.random() < 0.55:
            delta = int(round(rng.normal(0.0, self.spec.pieces_sigma)))
            if abs(delta) >= 2:
                fields["pieces"] = int(np.clip(true_pieces + delta, 1, MAX_PIECES))
                corrupted = fields["pieces"] != true_pieces
        if rng.random() < 0.35:
            fields["complexity_high"] = not truth.complexity_high
            corrupted = True
        if rng.random() < 0.25:
            fields["joint_reasoning"] = not truth.joint_reasoning
            corrupted = True
        if not corrupted:
            # Guarantee badness via a useless summary range.
            lo, hi = truth.summary_range
            scale = 0.3 if rng.random() < 0.5 else 3.5
            new_lo = max(1, int(lo * scale))
            new_hi = max(new_lo + 5, int(hi * scale))
            fields["summary_range"] = (new_lo, min(new_hi, 600))
            # Shift pieces by ±2 as well so the range misses the truth.
            shift = 2 if true_pieces <= MAX_PIECES - 2 else -2
            fields["pieces"] = int(np.clip(true_pieces + shift, 1, MAX_PIECES))
        return fields

    def _confidence(self, rng: np.random.Generator, good: bool) -> float:
        """Sample a log-prob-style confidence score in [0.5, 1)."""
        p_high = (
            self.spec.conf_high_given_good if good
            else self.spec.conf_high_given_bad
        )
        if rng.random() < p_high:
            # Above threshold: skew towards 1.
            return float(0.90 + 0.099 * rng.beta(2.0, 1.2))
        return float(0.50 + 0.399 * rng.beta(2.0, 2.0))
