"""Pluggable cache-eviction policies: LRU, LFU, and cost-aware GDSF.

A policy never stores entries itself — the cache owns the entry map —
it only maintains per-entry ordering metadata (via the ``on_insert`` /
``on_hit`` hooks) and answers "which entry goes" (``victim_key``).
Everything is deterministic: every comparison ends in the entry's
global insertion sequence number, so two runs of the same workload
evict identically.

GDSF (Greedy-Dual-Size-Frequency, Cherkasova '98) is the cost-aware
policy the issue's tentpole calls for: each entry carries a *benefit*
— the dollars (GPU rental priced from the
:class:`~repro.evaluation.costs.CostLedger`'s model, plus seconds
valued at the same rental rate) a hit on it saves — and its priority
is ``clock + benefit * (hits + 1) / size``. The clock inflates to the
evicted priority on every eviction, so long-resident entries age out
unless hits keep re-inflating them; a high-benefit entry (an
expensive multi-call synthesis) survives low-benefit ones at equal
recency.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.caching.cache import CacheEntry

__all__ = [
    "EvictionPolicy",
    "LRUPolicy",
    "LFUPolicy",
    "GDSFPolicy",
    "EVICTION_NAMES",
    "make_eviction",
]


class EvictionPolicy(ABC):
    """Orders a cache's entries for eviction.

    Policies may hold aggregate state (GDSF's clock) but never RNG;
    ``victim_key`` must be a pure function of the entry metadata the
    hooks maintained, so eviction is deterministic across runs.
    """

    name: str = "base"

    def on_insert(self, entry: "CacheEntry") -> None:
        """A fresh entry joined the cache."""

    def on_hit(self, entry: "CacheEntry") -> None:
        """An entry was served (its ``hits``/recency already bumped)."""

    @abstractmethod
    def victim_key(self, entries: Iterable["CacheEntry"]):
        """Key of the entry to evict (the cache guarantees non-empty)."""


class LRUPolicy(EvictionPolicy):
    """Evict the least recently used entry (stalest access sequence)."""

    name = "lru"

    def victim_key(self, entries: Iterable["CacheEntry"]):
        victim = min(entries, key=lambda e: (e.last_access, e.seq))
        return victim.key


class LFUPolicy(EvictionPolicy):
    """Evict the least frequently used entry; recency breaks ties."""

    name = "lfu"

    def victim_key(self, entries: Iterable["CacheEntry"]):
        victim = min(entries, key=lambda e: (e.hits, e.last_access, e.seq))
        return victim.key


class GDSFPolicy(EvictionPolicy):
    """Greedy-Dual-Size-Frequency with dollar-valued benefit scores.

    ``priority = clock + benefit * (hits + 1) / size``; evict the
    minimum, then inflate the clock to the evicted priority. A benefit
    of 0 (nothing measurably saved) degrades to FIFO among zero-benefit
    entries — the right behavior: there is nothing worth keeping.
    """

    name = "gdsf"

    def __init__(self) -> None:
        self.clock = 0.0

    def _priority(self, entry: "CacheEntry") -> float:
        size = entry.size if entry.size > 0 else 1.0
        return self.clock + entry.benefit * (entry.hits + 1) / size

    def on_insert(self, entry: "CacheEntry") -> None:
        entry.priority = self._priority(entry)

    def on_hit(self, entry: "CacheEntry") -> None:
        entry.priority = self._priority(entry)

    def victim_key(self, entries: Iterable["CacheEntry"]):
        victim = min(entries, key=lambda e: (e.priority, e.seq))
        self.clock = victim.priority
        return victim.key


#: Eviction-policy names accepted by :func:`make_eviction` (and
#: ``--cache-eviction``).
EVICTION_NAMES: tuple[str, ...] = ("lru", "lfu", "gdsf")

_POLICIES = {
    "lru": LRUPolicy,
    "lfu": LFUPolicy,
    "gdsf": GDSFPolicy,
}


def make_eviction(name: str | EvictionPolicy) -> EvictionPolicy:
    """Instantiate an eviction policy by CLI name (fresh per cache:
    GDSF's clock is per-cache state)."""
    if isinstance(name, EvictionPolicy):
        return name
    if name in _POLICIES:
        return _POLICIES[name]()
    known = ", ".join(EVICTION_NAMES)
    raise ValueError(f"unknown cache eviction {name!r}; known: {known}")
