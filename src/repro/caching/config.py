"""Cache configuration: the validated knob bundle the runner threads.

:func:`make_cache_config` is the fail-fast front door used by
:class:`~repro.evaluation.runner.ExperimentRunner` (and therefore
``run_policy`` and the CLI): dependent flags passed without the tier
that gives them meaning raise immediately, naming both the flag and
the enabling flag — mirroring the runner's autoscaler/speculation
validation style — instead of being silently ignored.

``make_cache_config(...) is None`` exactly when every cache is off,
which is the disabled path the byte-identity guarantee rides on: a
``None`` config means the pipeline constructs no cache objects, no
``cache`` resource, and schedules no extra events.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.caching.eviction import EVICTION_NAMES
from repro.util.validation import check_count, check_positive

__all__ = ["CacheConfig", "RESULT_CACHE_MODES", "make_cache_config"]

#: ``--result-cache`` values.
RESULT_CACHE_MODES: tuple[str, ...] = ("off", "exact", "semantic")

_DEFAULT_CAPACITY = 256
_DEFAULT_EVICTION = "lru"
_DEFAULT_SEMANTIC_THRESHOLD = 0.9


@dataclass(frozen=True)
class CacheConfig:
    """Validated cache knobs for one run (both tiers)."""

    result_mode: str = "off"
    retrieval: bool = False
    capacity: int = _DEFAULT_CAPACITY
    eviction: str = _DEFAULT_EVICTION
    semantic_threshold: float = _DEFAULT_SEMANTIC_THRESHOLD
    ttl_s: float | None = None

    def __post_init__(self) -> None:
        if self.result_mode not in RESULT_CACHE_MODES:
            known = ", ".join(RESULT_CACHE_MODES)
            raise ValueError(
                f"unknown result-cache mode {self.result_mode!r}; "
                f"known: {known}"
            )
        if self.eviction not in EVICTION_NAMES:
            known = ", ".join(EVICTION_NAMES)
            raise ValueError(
                f"unknown cache eviction {self.eviction!r}; known: {known}"
            )
        check_count("cache_capacity", self.capacity, minimum=1)
        if not 0.0 < self.semantic_threshold <= 1.0:
            raise ValueError(
                "semantic_threshold must be in (0, 1], got "
                f"{self.semantic_threshold}"
            )
        if self.ttl_s is not None:
            check_positive("cache_ttl", self.ttl_s)

    @property
    def result_enabled(self) -> bool:
        return self.result_mode != "off"

    @property
    def enabled(self) -> bool:
        return self.result_enabled or self.retrieval


def make_cache_config(
    result_cache: str | None = None,
    retrieval_cache: bool = False,
    cache_capacity: int | None = None,
    cache_eviction: str | None = None,
    semantic_threshold: float | None = None,
    cache_ttl: float | None = None,
) -> CacheConfig | None:
    """Build a :class:`CacheConfig` from runner/CLI knobs.

    Returns ``None`` when no cache tier is enabled — after rejecting
    any dependent knob that would otherwise be silently ignored.
    """
    mode = "off" if result_cache is None else str(result_cache)
    if mode not in RESULT_CACHE_MODES:
        known = ", ".join(RESULT_CACHE_MODES)
        raise ValueError(
            f"unknown result-cache mode {mode!r}; known: {known}"
        )
    enabled = mode != "off" or bool(retrieval_cache)
    if not enabled:
        misused = {
            "cache_capacity": cache_capacity,
            "cache_eviction": cache_eviction,
            "semantic_threshold": semantic_threshold,
            "cache_ttl": cache_ttl,
        }
        bad = [k for k, v in misused.items() if v is not None]
        if bad:
            raise ValueError(
                f"{', '.join(bad)} only applies with a cache enabled; "
                "pass --result-cache exact (or semantic) or "
                "--retrieval-cache, or drop the flag"
            )
        return None
    if semantic_threshold is not None and mode != "semantic":
        raise ValueError(
            "semantic_threshold only applies to the semantic result "
            f"cache; got --result-cache {mode} — pass --result-cache "
            "semantic or drop the flag"
        )
    return CacheConfig(
        result_mode=mode,
        retrieval=bool(retrieval_cache),
        capacity=(_DEFAULT_CAPACITY if cache_capacity is None
                  else int(cache_capacity)),
        eviction=(_DEFAULT_EVICTION if cache_eviction is None
                  else str(cache_eviction)),
        semantic_threshold=(_DEFAULT_SEMANTIC_THRESHOLD
                            if semantic_threshold is None
                            else float(semantic_threshold)),
        ttl_s=cache_ttl,
    )
