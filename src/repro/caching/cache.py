"""The two cooperating cache tiers and their shared cost-aware core.

Both tiers run as deterministic contended objects on the sim loop (the
pipeline charges every lookup/insert as a hold on a shared ``cache``
:class:`~repro.sim.resource.Resource`, so hit-path latency is honest):

* :class:`ResultCache` — the query-result tier. Exact key on
  normalized query text + the effective config label; the optional
  *semantic* mode additionally serves near-duplicate queries whose
  embedding cosine-similarity to a cached entry clears
  ``semantic_threshold``. A hit answers the query directly, bypassing
  Retrieve/Rerank/Synthesize entirely. Entries are corpus-version
  tagged: a hit whose entry predates the store's current corpus
  version is still served but marked *stale*, so staleness is a
  measurable quality effect rather than a silent one.
* :class:`RetrievalCache` — memoizes final top-k chunk ids per
  (canonical query id, shard config, fetch-k). A hit skips the
  scatter-gather shard resources (and the reranker) but still
  synthesizes — fresh answers over cached context.

Eviction is pluggable (:mod:`repro.caching.eviction`): LRU, LFU, and
the cost-aware GDSF policy whose benefit score is the actual
dollars+seconds the entry saved, priced from the run's
:class:`~repro.evaluation.costs.CostLedger` model by the pipeline at
insert time.

Determinism: no RNG anywhere; iteration orders are dict insertion
order, every eviction tie-break ends in the global insertion sequence,
and the semantic scan picks the *highest* similarity with earliest-
inserted winning ties.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.caching.eviction import EvictionPolicy, make_eviction
from repro.util.validation import check_count, check_positive

__all__ = [
    "CacheEntry",
    "CacheStats",
    "CachedAnswer",
    "CostAwareCache",
    "ResultCache",
    "RetrievalCache",
    "normalize_query_text",
    "CACHE_LOOKUP_SECONDS",
    "CACHE_INSERT_SECONDS",
    "SEMANTIC_SCAN_SECONDS_PER_ENTRY",
    "TIME_VALUE_DOLLARS_PER_S",
]

#: Deterministic micro-costs charged on the ``cache`` resource: an
#: exact-key probe, one insert, and the per-entry cost of a semantic
#: similarity scan (linear in the resident entry count, as a real
#: ANN-less embedding sweep would be at these capacities).
CACHE_LOOKUP_SECONDS = 2e-4
CACHE_INSERT_SECONDS = 3e-4
SEMANTIC_SCAN_SECONDS_PER_ENTRY = 1e-6

#: Dollar value of one saved wall-clock second when folding seconds
#: into a GDSF benefit score: the A40 on-demand rental rate
#: (``$0.79/hr``) the :class:`~repro.evaluation.costs.DollarCostModel`
#: prices GPU time at — a second saved is a second of fleet not rented.
TIME_VALUE_DOLLARS_PER_S = 0.79 / 3600.0


def normalize_query_text(text: str) -> str:
    """Case-fold and collapse whitespace — the exact-key normalizer.

    >>> normalize_query_text("  What is  the Fee?\\n")
    'what is the fee?'
    """
    return " ".join(text.lower().split())


@dataclass(frozen=True)
class CachedAnswer:
    """The result-tier payload: everything needed to serve a hit.

    ``tokens`` are re-scored against the *current* query's ground
    truth at hit time (identical for exact repeats; a genuine quality
    measurement for semantic near-duplicates), so the payload carries
    the token sequence, not just the original score.
    """

    tokens: tuple[str, ...]
    f1: float
    expected_f1: float
    coverage: float
    chunk_ids: tuple[str, ...]
    chunks_clipped: bool


@dataclass
class CacheEntry:
    """One resident entry plus the metadata eviction policies read."""

    key: object
    value: object
    #: Global insertion sequence — the final tie-break everywhere.
    seq: int
    insert_time: float
    #: Access sequence of the most recent hit (insert counts as 0th).
    last_access: int
    hits: int = 0
    size: float = 1.0
    #: What one hit on this entry saves (measured on the miss path).
    saved_seconds: float = 0.0
    saved_dollars: float = 0.0
    #: GDSF benefit score: ``saved_dollars`` + seconds at rental rate.
    benefit: float = 0.0
    corpus_version: int = 0
    #: Query embedding (result tier, semantic mode only).
    embedding: object = None
    #: Effective-config label the entry was produced under.
    config_label: str | None = None
    #: GDSF priority (maintained by the policy hooks).
    priority: float = 0.0


@dataclass
class CacheStats:
    """Counters one cache tier accumulates over a run."""

    lookups: int = 0
    hits: int = 0
    inserts: int = 0
    evictions: int = 0
    #: TTL expiries observed at lookup time (counted as misses).
    expirations: int = 0
    #: Hits served from an entry tagged with an older corpus version.
    stale_hits: int = 0
    #: Hits served by embedding similarity rather than the exact key.
    semantic_hits: int = 0
    #: What the hits would have cost: wall seconds and dollars the
    #: cached entries' miss paths actually paid, summed per hit.
    saved_seconds: float = 0.0
    saved_dollars: float = 0.0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class CostAwareCache:
    """Capacity-bounded map with pluggable eviction and TTL expiry.

    The shared core of both tiers: subclasses implement the tier's
    lookup semantics on top of :meth:`_find` / :meth:`_hit` /
    :meth:`insert`. ``capacity`` bounds resident entries (enforced
    after every insert — the count can never exceed it); ``ttl_s``
    expires entries lazily at lookup time.
    """

    def __init__(self, capacity: int, eviction: str | EvictionPolicy = "lru",
                 ttl_s: float | None = None) -> None:
        check_count("cache_capacity", capacity, minimum=1)
        if ttl_s is not None:
            check_positive("cache_ttl", ttl_s)
        self.capacity = int(capacity)
        self.ttl_s = float(ttl_s) if ttl_s is not None else None
        self.policy = make_eviction(eviction)
        self.stats = CacheStats()
        self._entries: dict = {}
        self._seq = 0
        self._access = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key) -> bool:
        return key in self._entries

    # ------------------------------------------------------------------
    def _expired(self, entry: CacheEntry, now: float) -> bool:
        return self.ttl_s is not None and now - entry.insert_time > self.ttl_s

    def _find(self, key, now: float) -> CacheEntry | None:
        """Exact probe with lazy TTL expiry; no hit accounting."""
        entry = self._entries.get(key)
        if entry is None:
            return None
        if self._expired(entry, now):
            del self._entries[key]
            self.stats.expirations += 1
            return None
        return entry

    def _hit(self, entry: CacheEntry) -> None:
        """Account one served hit (recency, frequency, savings)."""
        self._access += 1
        entry.hits += 1
        entry.last_access = self._access
        self.policy.on_hit(entry)
        self.stats.hits += 1
        self.stats.saved_seconds += entry.saved_seconds
        self.stats.saved_dollars += entry.saved_dollars

    def insert(
        self,
        key,
        value,
        now: float,
        saved_seconds: float = 0.0,
        saved_dollars: float = 0.0,
        corpus_version: int = 0,
        embedding=None,
        config_label: str | None = None,
    ) -> CacheEntry:
        """Insert (or overwrite) an entry, then evict down to capacity.

        The GDSF benefit is derived here: the entry's measured saved
        dollars plus its saved seconds valued at the GPU rental rate.
        """
        if key in self._entries:
            # Refreshed entry: new payload and savings, fresh recency.
            del self._entries[key]
        self._seq += 1
        self._access += 1
        entry = CacheEntry(
            key=key,
            value=value,
            seq=self._seq,
            insert_time=now,
            last_access=self._access,
            saved_seconds=float(saved_seconds),
            saved_dollars=float(saved_dollars),
            benefit=(float(saved_dollars)
                     + float(saved_seconds) * TIME_VALUE_DOLLARS_PER_S),
            corpus_version=int(corpus_version),
            embedding=embedding,
            config_label=config_label,
        )
        self.policy.on_insert(entry)
        self._entries[key] = entry
        self.stats.inserts += 1
        while len(self._entries) > self.capacity:
            victim = self.policy.victim_key(self._entries.values())
            del self._entries[victim]
            self.stats.evictions += 1
        return entry

    def evict_stale(self, current_version: int) -> int:
        """Drop every entry older than ``current_version`` (explicit
        invalidation after a corpus re-ingest); returns the count."""
        stale = [k for k, e in self._entries.items()
                 if e.corpus_version < current_version]
        for key in stale:
            del self._entries[key]
        self.stats.evictions += len(stale)
        return len(stale)


def _cosine(a, b) -> float:
    denom = float(np.linalg.norm(a)) * float(np.linalg.norm(b))
    if denom <= 0.0:
        return 0.0
    return float(np.dot(a, b)) / denom


class ResultCache(CostAwareCache):
    """Query-result tier: exact (text+config) key, optional semantic
    near-duplicate matching above a cosine-similarity threshold."""

    def __init__(
        self,
        capacity: int,
        eviction: str | EvictionPolicy = "lru",
        ttl_s: float | None = None,
        semantic: bool = False,
        semantic_threshold: float = 0.9,
    ) -> None:
        super().__init__(capacity, eviction=eviction, ttl_s=ttl_s)
        if not 0.0 < semantic_threshold <= 1.0:
            raise ValueError(
                "semantic_threshold must be in (0, 1], got "
                f"{semantic_threshold}"
            )
        self.semantic = bool(semantic)
        self.semantic_threshold = float(semantic_threshold)

    @staticmethod
    def key_for(query_text: str, config_label: str) -> tuple[str, str]:
        return (normalize_query_text(query_text), config_label)

    def lookup_seconds(self) -> float:
        """Deterministic hold for one lookup on the ``cache`` resource
        (the semantic scan is linear in resident entries)."""
        cost = CACHE_LOOKUP_SECONDS
        if self.semantic:
            cost += SEMANTIC_SCAN_SECONDS_PER_ENTRY * len(self._entries)
        return cost

    def lookup(self, key, qvec, now: float,
               corpus_version: int = 0) -> tuple[CacheEntry | None, str | None]:
        """Probe the tier; returns ``(entry, tier_label)``.

        ``tier_label`` is ``"result-exact"`` or ``"result-semantic"``
        (``None`` on miss). Staleness — the entry predating
        ``corpus_version`` — is counted but the hit is still served;
        the caller surfaces it on the record.
        """
        self.stats.lookups += 1
        entry = self._find(key, now)
        tier = "result-exact" if entry is not None else None
        if entry is None and self.semantic and qvec is not None:
            entry = self._semantic_match(key, qvec, now)
            tier = "result-semantic" if entry is not None else None
            if entry is not None:
                self.stats.semantic_hits += 1
        if entry is None:
            return None, None
        self._hit(entry)
        if entry.corpus_version < corpus_version:
            self.stats.stale_hits += 1
        return entry, tier

    def _semantic_match(self, key, qvec, now: float) -> CacheEntry | None:
        """Best embedding match at the same config, above threshold.

        Deterministic: strictly-higher similarity wins, so among ties
        the earliest-scanned (insertion-ordered) entry is kept.
        """
        config_label = key[1]
        best: CacheEntry | None = None
        best_sim = -1.0
        for entry in list(self._entries.values()):
            if entry.embedding is None or entry.config_label != config_label:
                continue
            if self._expired(entry, now):
                continue  # lazy: expiry is charged when probed exactly
            sim = _cosine(qvec, entry.embedding)
            if sim > best_sim:
                best, best_sim = entry, sim
        if best is not None and best_sim >= self.semantic_threshold:
            return best
        return None


class RetrievalCache(CostAwareCache):
    """Retrieval tier: final top-k chunk ids per (canonical query id,
    shard config, fetch-k). Hits skip scatter-gather and rerank but
    the answer is still synthesized fresh."""

    @staticmethod
    def key_for(canonical_id: str, n_shards: int, index_label: str,
                fetch_k: int) -> tuple[str, int, str, int]:
        return (canonical_id, int(n_shards), index_label, int(fetch_k))

    def lookup_seconds(self) -> float:
        return CACHE_LOOKUP_SECONDS

    def lookup(self, key, now: float,
               corpus_version: int = 0) -> CacheEntry | None:
        self.stats.lookups += 1
        entry = self._find(key, now)
        if entry is None:
            return None
        self._hit(entry)
        if entry.corpus_version < corpus_version:
            self.stats.stale_hits += 1
        return entry
