"""Multi-tier query/retrieval caching with cost-aware eviction.

``repro.caching`` owns the semantic hot-path optimization layered in
front of the staged pipeline: a query-**result** cache (exact or
embedding-similarity keys; hits bypass Retrieve/Rerank/Synthesize
entirely) and a **retrieval** cache (memoized top-k chunk ids; hits
skip scatter-gather but still synthesize), both contended on a shared
``cache`` resource so hit-path latency is honest, with pluggable
LRU/LFU/GDSF eviction whose cost-aware benefit scores are priced from
the run's dollar ledger. See ``docs/CACHING.md``.

Disabled (the default) is free: ``make_cache_config`` returns ``None``
and the pipeline's event schedule is byte-identical to a cacheless
build — pinned by the golden-fingerprint tests.
"""

from repro.caching.cache import (
    CACHE_INSERT_SECONDS,
    CACHE_LOOKUP_SECONDS,
    CachedAnswer,
    CacheEntry,
    CacheStats,
    CostAwareCache,
    ResultCache,
    RetrievalCache,
    SEMANTIC_SCAN_SECONDS_PER_ENTRY,
    TIME_VALUE_DOLLARS_PER_S,
    normalize_query_text,
)
from repro.caching.config import (
    CacheConfig,
    RESULT_CACHE_MODES,
    make_cache_config,
)
from repro.caching.eviction import (
    EVICTION_NAMES,
    EvictionPolicy,
    GDSFPolicy,
    LFUPolicy,
    LRUPolicy,
    make_eviction,
)

__all__ = [
    "CACHE_INSERT_SECONDS",
    "CACHE_LOOKUP_SECONDS",
    "CacheConfig",
    "CacheEntry",
    "CacheStats",
    "CachedAnswer",
    "CostAwareCache",
    "EVICTION_NAMES",
    "EvictionPolicy",
    "GDSFPolicy",
    "LFUPolicy",
    "LRUPolicy",
    "RESULT_CACHE_MODES",
    "ResultCache",
    "RetrievalCache",
    "SEMANTIC_SCAN_SECONDS_PER_ENTRY",
    "TIME_VALUE_DOLLARS_PER_S",
    "make_cache_config",
    "make_eviction",
    "normalize_query_text",
]
