"""Retrieval substrate: embeddings, L2 indexes, chunking, vector store.

Stands in for the paper's Cohere-embed-v3 + FAISS ``IndexFlatL2``
pipeline with a deterministic hashed bag-of-tokens embedder and exact
numpy L2 search (plus an IVF variant for larger corpora). The store is
a K-shard scatter-gather subsystem (:class:`ShardedVectorStore`) with
pluggable per-shard indexes (:data:`INDEX_FACTORIES`) and an optional
reranker (:mod:`repro.retrieval.rerank`); :class:`VectorStore` is its
single-shard configuration.
"""

from repro.retrieval.chunker import Chunk, split_into_chunks
from repro.retrieval.embedding import EmbeddingModel, HashedEmbedding
from repro.retrieval.index import (
    INDEX_FACTORIES,
    INDEX_NAMES,
    AutoTrainedIVFIndex,
    FlatL2Index,
    IVFFlatIndex,
)
from repro.retrieval.rerank import (
    RERANKER_NAMES,
    ExactReranker,
    make_reranker,
)
from repro.retrieval.sharded import SearchHit, ShardedVectorStore
from repro.retrieval.store import VectorStore

__all__ = [
    "AutoTrainedIVFIndex",
    "Chunk",
    "EmbeddingModel",
    "ExactReranker",
    "FlatL2Index",
    "HashedEmbedding",
    "INDEX_FACTORIES",
    "INDEX_NAMES",
    "IVFFlatIndex",
    "RERANKER_NAMES",
    "SearchHit",
    "ShardedVectorStore",
    "VectorStore",
    "make_reranker",
    "split_into_chunks",
]
