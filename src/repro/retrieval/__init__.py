"""Retrieval substrate: embeddings, L2 indexes, chunking, vector store.

Stands in for the paper's Cohere-embed-v3 + FAISS ``IndexFlatL2``
pipeline with a deterministic hashed bag-of-tokens embedder and exact
numpy L2 search (plus an IVF variant for larger corpora).
"""

from repro.retrieval.chunker import Chunk, split_into_chunks
from repro.retrieval.embedding import EmbeddingModel, HashedEmbedding
from repro.retrieval.index import FlatL2Index, IVFFlatIndex
from repro.retrieval.store import SearchHit, VectorStore

__all__ = [
    "Chunk",
    "EmbeddingModel",
    "FlatL2Index",
    "HashedEmbedding",
    "IVFFlatIndex",
    "SearchHit",
    "VectorStore",
    "split_into_chunks",
]
