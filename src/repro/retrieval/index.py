"""Exact and inverted-file L2 vector indexes (FAISS-compatible API).

:class:`FlatL2Index` mirrors FAISS ``IndexFlatL2``: ``add(vectors)``
then ``search(queries, k) -> (distances, indices)``, brute-force exact.
:class:`IVFFlatIndex` mirrors ``IndexIVFFlat``: k-means coarse
quantiser, probes the ``nprobe`` nearest cells — approximate but much
faster on large corpora.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "AutoTrainedIVFIndex",
    "FlatL2Index",
    "INDEX_FACTORIES",
    "INDEX_NAMES",
    "IVFFlatIndex",
]


def _as_matrix(vectors: np.ndarray, dim: int, name: str) -> np.ndarray:
    arr = np.asarray(vectors, dtype=np.float32)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2 or arr.shape[1] != dim:
        raise ValueError(f"{name} must have shape (n, {dim}), got {arr.shape}")
    return arr


class FlatL2Index:
    """Brute-force exact L2 index (the paper uses FAISS IndexFlatL2)."""

    def __init__(self, dim: int) -> None:
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        self.dim = dim
        self._vectors = np.zeros((0, dim), dtype=np.float32)

    @property
    def ntotal(self) -> int:
        """Number of indexed vectors (FAISS naming)."""
        return self._vectors.shape[0]

    def add(self, vectors: np.ndarray) -> None:
        """Append vectors to the index."""
        arr = _as_matrix(vectors, self.dim, "vectors")
        self._vectors = np.vstack([self._vectors, arr])

    def reconstruct(self, idx: int) -> np.ndarray:
        """Return the stored vector at position ``idx``."""
        return self._vectors[idx].copy()

    def search(self, queries: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Exact k-nearest-neighbour search by squared L2 distance.

        Returns ``(distances, indices)`` of shape ``(nq, k)``; when the
        index holds fewer than ``k`` vectors, missing slots are padded
        with distance ``inf`` and index ``-1`` (FAISS convention).
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        q = _as_matrix(queries, self.dim, "queries")
        nq = q.shape[0]
        if self.ntotal == 0:
            return (
                np.full((nq, k), np.inf, dtype=np.float32),
                np.full((nq, k), -1, dtype=np.int64),
            )
        # ||q - x||^2 = ||q||^2 - 2 q.x + ||x||^2, computed blockwise.
        x = self._vectors
        sq_x = np.einsum("ij,ij->i", x, x)
        sq_q = np.einsum("ij,ij->i", q, q)
        d2 = sq_q[:, None] - 2.0 * (q @ x.T) + sq_x[None, :]
        np.maximum(d2, 0.0, out=d2)

        k_eff = min(k, self.ntotal)
        part = np.argpartition(d2, k_eff - 1, axis=1)[:, :k_eff]
        rows = np.arange(nq)[:, None]
        order = np.argsort(d2[rows, part], axis=1, kind="stable")
        idx_sorted = part[rows, order]
        dist_sorted = d2[rows, idx_sorted]

        if k_eff < k:
            pad_d = np.full((nq, k - k_eff), np.inf, dtype=np.float32)
            pad_i = np.full((nq, k - k_eff), -1, dtype=np.int64)
            return (
                np.hstack([dist_sorted.astype(np.float32), pad_d]),
                np.hstack([idx_sorted.astype(np.int64), pad_i]),
            )
        return dist_sorted.astype(np.float32), idx_sorted.astype(np.int64)


class IVFFlatIndex:
    """Inverted-file index: k-means cells, probe the nearest ``nprobe``.

    Requires :meth:`train` before :meth:`add` (FAISS semantics).
    """

    def __init__(self, dim: int, nlist: int = 16, nprobe: int = 4,
                 seed: int = 0) -> None:
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        if nlist <= 0:
            raise ValueError(f"nlist must be positive, got {nlist}")
        if not 1 <= nprobe <= nlist:
            raise ValueError(f"nprobe must be in [1, {nlist}], got {nprobe}")
        self.dim = dim
        self.nlist = nlist
        self.nprobe = nprobe
        self._seed = seed
        self._centroids: np.ndarray | None = None
        self._cells: list[list[int]] = []
        self._vectors = np.zeros((0, dim), dtype=np.float32)
        # Search-time caches, rebuilt lazily after add()/train():
        # per-cell candidate index arrays and per-vector ||x||^2.
        self._cell_arrays: list[np.ndarray] | None = None
        self._sq_norms: np.ndarray | None = None

    @property
    def is_trained(self) -> bool:
        return self._centroids is not None

    @property
    def ntotal(self) -> int:
        return self._vectors.shape[0]

    def train(self, vectors: np.ndarray, n_iters: int = 10) -> None:
        """Fit the coarse quantiser with Lloyd's k-means."""
        arr = _as_matrix(vectors, self.dim, "vectors")
        if arr.shape[0] < self.nlist:
            raise ValueError(
                f"need at least nlist={self.nlist} training vectors, "
                f"got {arr.shape[0]}"
            )
        rng = np.random.default_rng(self._seed)
        centroids = arr[rng.choice(arr.shape[0], self.nlist, replace=False)].copy()
        for _ in range(n_iters):
            assign = self._nearest_centroid(arr, centroids)
            for c in range(self.nlist):
                members = arr[assign == c]
                if members.shape[0] > 0:
                    centroids[c] = members.mean(axis=0)
        self._centroids = centroids
        self._cells = [[] for _ in range(self.nlist)]
        self._cell_arrays = None
        self._sq_norms = None

    @staticmethod
    def _centroid_d2(arr: np.ndarray, centroids: np.ndarray) -> np.ndarray:
        """Squared L2 distances to every centroid, blockwise.

        ``||a - c||^2 = ||a||^2 - 2 a.c + ||c||^2`` — two matmuls and a
        broadcast instead of an ``(n, nlist, dim)`` intermediate.
        """
        sq_a = np.einsum("ij,ij->i", arr, arr)
        sq_c = np.einsum("ij,ij->i", centroids, centroids)
        d2 = sq_a[:, None] - 2.0 * (arr @ centroids.T) + sq_c[None, :]
        np.maximum(d2, 0.0, out=d2)
        return d2

    @classmethod
    def _nearest_centroid(cls, arr: np.ndarray,
                          centroids: np.ndarray) -> np.ndarray:
        return cls._centroid_d2(arr, centroids).argmin(axis=1)

    def add(self, vectors: np.ndarray) -> None:
        if not self.is_trained:
            raise RuntimeError("IVFFlatIndex must be trained before add()")
        arr = _as_matrix(vectors, self.dim, "vectors")
        start = self.ntotal
        assign = self._nearest_centroid(arr, self._centroids)
        for offset, cell in enumerate(assign):
            self._cells[int(cell)].append(start + offset)
        self._vectors = np.vstack([self._vectors, arr])
        self._cell_arrays = None
        self._sq_norms = None

    def search(self, queries: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Approximate kNN: exact search within the ``nprobe`` nearest cells."""
        if not self.is_trained:
            raise RuntimeError("IVFFlatIndex must be trained before search()")
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        q = _as_matrix(queries, self.dim, "queries")
        nq = q.shape[0]
        out_d = np.full((nq, k), np.inf, dtype=np.float32)
        out_i = np.full((nq, k), -1, dtype=np.int64)
        if self.ntotal == 0:
            return out_d, out_i
        if self._cell_arrays is None:
            self._cell_arrays = [
                np.asarray(cell, dtype=np.int64) for cell in self._cells
            ]
            x = self._vectors
            self._sq_norms = np.einsum("ij,ij->i", x, x)
        cd2 = self._centroid_d2(q, self._centroids)
        probe_cells = np.argsort(cd2, axis=1)[:, : self.nprobe]
        sq_q = np.einsum("ij,ij->i", q, q)
        for row in range(nq):
            cand = np.concatenate(
                [self._cell_arrays[int(cell)] for cell in probe_cells[row]]
            )
            if cand.size == 0:
                continue
            # Same blockwise identity as FlatL2Index, restricted to the
            # probed cells' candidates.
            d2 = (
                self._sq_norms[cand]
                - 2.0 * (self._vectors[cand] @ q[row])
                + sq_q[row]
            )
            np.maximum(d2, 0.0, out=d2)
            order = np.argsort(d2, kind="stable")[:k]
            n = len(order)
            out_d[row, :n] = d2[order]
            out_i[row, :n] = cand[order]
        return out_d, out_i


class AutoTrainedIVFIndex(IVFFlatIndex):
    """IVF index that trains its coarse quantiser on the first ``add``.

    FAISS requires an explicit ``train`` before ``add``; a store shard
    receives its vectors in whatever batches placement produces, so
    this variant trains itself on the first batch, clamping ``nlist``
    (and ``nprobe``) to the batch size when the shard is small. Later
    batches reuse the fitted quantiser, exactly as in FAISS.
    """

    def add(self, vectors: np.ndarray) -> None:
        if not self.is_trained:
            arr = _as_matrix(vectors, self.dim, "vectors")
            self.nlist = max(1, min(self.nlist, arr.shape[0]))
            self.nprobe = max(1, min(self.nprobe, self.nlist))
            self.train(arr)
            super().add(arr)
            return
        super().add(vectors)


#: Named per-shard index constructors (``dim -> index``) selectable via
#: the CLI ``--index`` flag and ``ShardedVectorStore(index_factory=...)``.
INDEX_FACTORIES = {
    "flat": FlatL2Index,
    "ivf": AutoTrainedIVFIndex,
}
INDEX_NAMES = tuple(sorted(INDEX_FACTORIES))
