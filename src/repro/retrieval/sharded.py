"""Sharded vector store: K index shards behind one scatter-gather API.

Production vector databases partition the corpus across index shards;
a query fans out to every shard (*scatter*), each shard answers its
local top-k, and the results are merged by distance (*gather*). The
RAG-Stack and RAGGED papers both show this retrieval scaling is a
first-order quality/latency knob, which METIS treats as a near-free
constant — :class:`ShardedVectorStore` makes it a modelled subsystem.

Placement is deterministic: a chunk lands on shard
``derive_seed(placement_seed, "shard", chunk_id) % n_shards``
(:mod:`repro.util.rng`), so the same corpus shards identically across
processes and runs. Gather merges shard candidates by
``(distance, global insertion position)`` — a total order, so ties
break stably no matter how the corpus is partitioned.

Timing model (consumed by the query pipeline, not charged here):

* ``shard_hold_seconds(sid)`` — one shard search holds its search
  executor for ``L * (f + (1 - f) * shard_size / corpus_size)`` where
  ``L`` is the full-corpus search latency (``retrieval_latency_s``)
  and ``f`` (``shard_overhead_fraction``) is the per-search fixed
  overhead that does not shrink with shard size. A shard holding the
  whole corpus returns **exactly** ``L`` (guarded, not computed), which
  is the K=1 byte-identity anchor.
* ``gather_seconds(n_candidates, k)`` — merging costs
  ``gather_per_candidate_s`` per *excess* candidate (those fetched
  beyond the final top-k). With one shard there is no excess and the
  cost is exactly 0.0, so K=1 adds no event and no latency.

The K=1 single-shard path is bit-for-bit the old monolithic
:class:`~repro.retrieval.store.VectorStore` behaviour: same embedding
calls, same index search, same result ordering (the shard's native
index order is preserved rather than re-sorted), same latency constant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.retrieval.chunker import Chunk
from repro.retrieval.embedding import EmbeddingModel, HashedEmbedding
from repro.retrieval.index import INDEX_FACTORIES
from repro.util.rng import derive_seed
from repro.util.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_shard_count,
)

__all__ = ["SearchHit", "ShardedVectorStore"]


@dataclass(frozen=True)
class SearchHit:
    """One retrieved chunk with its distance and rank."""

    chunk: Chunk
    distance: float
    rank: int


@dataclass
class _Shard:
    """One index shard: a vector index plus the global positions of the
    chunks it holds (local row ``i`` is corpus chunk ``global_pos[i]``)."""

    index: object
    global_pos: list

    def __len__(self) -> int:
        return len(self.global_pos)


class ShardedVectorStore:
    """K index shards with deterministic placement and scatter-gather.

    Args:
        n_shards: number of index shards (>= 1).
        embedding: pluggable embedder (defaults to the 512-d hashed
            embedder standing in for Cohere-embed-v3).
        retrieval_latency_s: simulated wall-clock cost of one search
            over the *full* corpus; per-shard holds are derived from it
            (see module docstring). Charged by the pipeline, not here.
        index_factory: per-shard index constructor ``dim -> index``, or
            a name from :data:`repro.retrieval.index.INDEX_FACTORIES`
            (``"flat"`` / ``"ivf"``). Defaults to exact ``FlatL2Index``.
        placement_seed: root of the chunk->shard hash.
        shard_overhead_fraction: share of ``retrieval_latency_s`` that
            is fixed per-search overhead (does not shrink with K).
        gather_per_candidate_s: merge cost per excess candidate.
    """

    def __init__(
        self,
        n_shards: int = 1,
        embedding: EmbeddingModel | None = None,
        retrieval_latency_s: float = 0.004,
        index_factory: str | Callable | None = None,
        placement_seed: int = 0,
        shard_overhead_fraction: float = 0.25,
        gather_per_candidate_s: float = 2e-5,
    ) -> None:
        check_shard_count("n_shards", n_shards)
        check_positive("retrieval_latency_s", retrieval_latency_s)
        check_in_range("shard_overhead_fraction", shard_overhead_fraction,
                       0.0, 1.0)
        check_non_negative("gather_per_candidate_s", gather_per_candidate_s)
        self.embedding = embedding or HashedEmbedding()
        self.retrieval_latency_s = retrieval_latency_s
        self.placement_seed = int(placement_seed)
        self.shard_overhead_fraction = float(shard_overhead_fraction)
        self.gather_per_candidate_s = float(gather_per_candidate_s)
        self.index_label, self._index_factory = self._resolve_factory(
            index_factory)
        self._shards = [
            _Shard(index=self._index_factory(self.embedding.dim),
                   global_pos=[])
            for _ in range(int(n_shards))
        ]
        self._chunks: list[Chunk] = []
        self._by_id: dict[str, Chunk] = {}
        self._pos: dict[str, int] = {}
        self._shard_of: dict[str, int] = {}
        self._vectors = np.zeros((0, self.embedding.dim), dtype=np.float32)
        #: Monotonic corpus generation: cache entries are tagged with
        #: the version current at insert, so a later re-ingest makes
        #: hits on older entries *stale* (see ``repro.caching``).
        self.corpus_version = 0

    def bump_corpus_version(self) -> int:
        """Mark a corpus re-ingest; returns the new version."""
        self.corpus_version += 1
        return self.corpus_version

    @staticmethod
    def _resolve_factory(
        index_factory: str | Callable | None,
    ) -> tuple[str, Callable]:
        if index_factory is None:
            return "flat", INDEX_FACTORIES["flat"]
        if isinstance(index_factory, str):
            try:
                return index_factory, INDEX_FACTORIES[index_factory]
            except KeyError:
                known = ", ".join(sorted(INDEX_FACTORIES))
                raise ValueError(
                    f"unknown index factory {index_factory!r}; "
                    f"known: {known}"
                ) from None
        return getattr(index_factory, "__name__", "custom"), index_factory

    # ------------------------------------------------------------------
    # Corpus
    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self._shards)

    @property
    def shard_sizes(self) -> list[int]:
        return [len(shard) for shard in self._shards]

    @property
    def index(self):
        """The sole shard's index (K=1 back-compat accessor)."""
        if self.n_shards != 1:
            raise ValueError(
                f"store has {self.n_shards} shards; there is no single "
                "index — address shards via search_shard/shard_sizes"
            )
        return self._shards[0].index

    def __len__(self) -> int:
        return len(self._chunks)

    def shard_of(self, chunk_id: str) -> int:
        """Shard holding ``chunk_id`` (KeyError when absent)."""
        return self._shard_of[chunk_id]

    def _place(self, chunk_id: str) -> int:
        if self.n_shards == 1:
            return 0
        return derive_seed(self.placement_seed, "shard", chunk_id) \
            % self.n_shards

    def add_chunks(self, chunks: list[Chunk]) -> None:
        """Embed and index a batch of chunks across the shards."""
        if not chunks:
            return
        seen: set[str] = set()
        for chunk in chunks:
            if chunk.chunk_id in self._by_id or chunk.chunk_id in seen:
                raise ValueError(f"duplicate chunk_id: {chunk.chunk_id}")
            seen.add(chunk.chunk_id)
        vectors = self.embedding.embed_batch([c.text for c in chunks])
        self._add_embedded(chunks, vectors)

    def _add_embedded(self, chunks: list[Chunk],
                      vectors: np.ndarray) -> None:
        """Place pre-embedded chunks (the reshard fast path)."""
        start = len(self._chunks)
        assign = [self._place(c.chunk_id) for c in chunks]
        for sid in range(self.n_shards):
            rows = [i for i, s in enumerate(assign) if s == sid]
            if not rows:
                continue
            self._shards[sid].index.add(vectors[rows])
            self._shards[sid].global_pos.extend(start + i for i in rows)
        self._chunks.extend(chunks)
        self._vectors = np.vstack([self._vectors, vectors])
        for i, chunk in enumerate(chunks):
            self._by_id[chunk.chunk_id] = chunk
            self._pos[chunk.chunk_id] = start + i
            self._shard_of[chunk.chunk_id] = assign[i]

    def get(self, chunk_id: str) -> Chunk:
        """Look up a chunk by id (KeyError when absent)."""
        return self._by_id[chunk_id]

    def global_pos(self, chunk_id: str) -> int:
        """Corpus insertion position of ``chunk_id`` (the tie-break)."""
        return self._pos[chunk_id]

    def reshard(
        self,
        n_shards: int,
        index_factory: str | Callable | None = None,
        retrieval_latency_s: float | None = None,
        placement_seed: int | None = None,
        shard_overhead_fraction: float | None = None,
        gather_per_candidate_s: float | None = None,
    ) -> "ShardedVectorStore":
        """A new store over the same corpus with a different partition.

        Embeddings are reused (no re-embedding), so resharding is cheap
        and the shard-local vectors are bit-identical to the source's.
        Unspecified parameters inherit from ``self``.
        """
        clone = ShardedVectorStore(
            n_shards=n_shards,
            embedding=self.embedding,
            retrieval_latency_s=(
                self.retrieval_latency_s if retrieval_latency_s is None
                else retrieval_latency_s),
            index_factory=(
                self._index_factory if index_factory is None
                else index_factory),
            placement_seed=(
                self.placement_seed if placement_seed is None
                else placement_seed),
            shard_overhead_fraction=(
                self.shard_overhead_fraction
                if shard_overhead_fraction is None
                else shard_overhead_fraction),
            gather_per_candidate_s=(
                self.gather_per_candidate_s
                if gather_per_candidate_s is None
                else gather_per_candidate_s),
        )
        if index_factory is None:
            clone.index_label = self.index_label
        clone.corpus_version = self.corpus_version
        if self._chunks:
            clone._add_embedded(list(self._chunks), self._vectors.copy())
        return clone

    # ------------------------------------------------------------------
    # Scatter / gather
    # ------------------------------------------------------------------
    def embed_query(self, query_text: str) -> np.ndarray:
        """Embed a query once; shard searches share the vector."""
        return self.embedding.embed(query_text)

    def search_shard(self, sid: int, query_vec: np.ndarray,
                     k: int) -> list[tuple[float, int]]:
        """One shard's local top-k as ``(distance, global_pos)`` pairs,
        in the shard index's native ranking order."""
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        shard = self._shards[sid]
        if not shard.global_pos:
            return []
        distances, indices = shard.index.search(
            query_vec.reshape(1, -1), min(k, len(shard))
        )
        out: list[tuple[float, int]] = []
        for dist, idx in zip(distances[0], indices[0]):
            if idx < 0 or not np.isfinite(dist):
                break
            out.append((float(dist), shard.global_pos[int(idx)]))
        return out

    def gather(self, per_shard: list[list[tuple[float, int]]],
               k: int) -> list[SearchHit]:
        """Merge shard answers into the global top-k.

        Multi-shard merges order by ``(distance, global_pos)`` — the
        stable tie-break. The single-shard path keeps the shard index's
        native order untouched (bit-for-bit the monolithic store's
        ranking, including how it breaks exact distance ties).
        """
        if self.n_shards == 1:
            ranked = list(per_shard[0])[:k]
        else:
            ranked = sorted(c for hits in per_shard for c in hits)[:k]
        return [
            SearchHit(self._chunks[gpos], dist, rank)
            for rank, (dist, gpos) in enumerate(ranked)
        ]

    def search(self, query_text: str, k: int) -> list[SearchHit]:
        """Return the ``k`` nearest chunks: scatter to every shard,
        gather by distance."""
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if not self._chunks:
            return []
        query_vec = self.embed_query(query_text)
        per_shard = [
            self.search_shard(sid, query_vec, k)
            for sid in range(self.n_shards)
        ]
        return self.gather(per_shard, k)

    def exact_sq_distance(self, query_vec: np.ndarray,
                          chunk_id: str) -> float:
        """Exact squared L2 distance to a stored chunk (reranker hook)."""
        diff = self._vectors[self._pos[chunk_id]] - query_vec
        return float(np.dot(diff, diff))

    # ------------------------------------------------------------------
    # Timing model
    # ------------------------------------------------------------------
    def shard_hold_seconds(self, sid: int) -> float:
        """Executor hold time for one search on shard ``sid``."""
        total = len(self._chunks)
        size = len(self._shards[sid])
        if total == 0 or size == total:
            # The whole-corpus guard: exactly the legacy constant, not
            # a float expression that merely rounds to it (K=1 anchor).
            return self.retrieval_latency_s
        f = self.shard_overhead_fraction
        return self.retrieval_latency_s * (f + (1.0 - f) * (size / total))

    def gather_seconds(self, n_candidates: int, k: int) -> float:
        """Merge cost for ``n_candidates`` fetched toward a top-``k``."""
        if self.n_shards == 1:
            return 0.0
        excess = n_candidates - min(k, len(self._chunks))
        return self.gather_per_candidate_s * max(0, excess)
