"""Deterministic text embeddings.

:class:`HashedEmbedding` is a feature-hashing bag-of-tokens embedder:
each token hashes (stably, via SHA-256) to a signed coordinate in a
``dim``-dimensional space; a text's embedding is the TF-weighted sum of
its token vectors, L2-normalised. Texts sharing entity/attribute tokens
land close together, which is precisely the property RAG retrieval
relies on — and it emerges here from the text itself rather than from
hand-assigned similarities.

The paper (§A.2) observes that swapping embedding models changes F1 by
<1%; we mirror that by making the embedder pluggable behind
:class:`EmbeddingModel` and shipping two hash-seed "families".
"""

from __future__ import annotations

import hashlib
import math
from abc import ABC, abstractmethod
from collections import Counter

import numpy as np

from repro.llm.tokenizer import SimTokenizer

__all__ = ["EmbeddingModel", "HashedEmbedding", "IdfWeights"]


class IdfWeights:
    """Inverse-document-frequency token weighting.

    Fitted over the corpus chunks at indexing time; rare, informative
    tokens (entity names, attribute words, values) then dominate the
    embedding over ubiquitous filler, as they do in trained embedding
    models.
    """

    def __init__(self) -> None:
        self._n_docs = 0
        self._df: Counter[str] = Counter()
        self._tokenizer = SimTokenizer()
        # weight() is called once per token of every embedded text;
        # the weight only changes when fit() recounts, so memoize.
        self._weight_cache: dict[str, float] = {}

    def fit(self, texts: list[str]) -> "IdfWeights":
        """Count document frequencies over ``texts`` (resets state)."""
        self._n_docs = len(texts)
        self._df = Counter()
        self._weight_cache = {}
        for text in texts:
            self._df.update(set(self._tokenizer.tokenize(text)))
        return self

    def weight(self, token: str) -> float:
        """Smoothed IDF weight; unseen tokens get the maximum weight."""
        cached = self._weight_cache.get(token)
        if cached is not None:
            return cached
        df = self._df.get(token, 0)
        weight = math.log((1.0 + self._n_docs) / (1.0 + df)) + 1.0
        self._weight_cache[token] = weight
        return weight


class EmbeddingModel(ABC):
    """Interface every embedder implements."""

    dim: int

    @abstractmethod
    def embed(self, text: str) -> np.ndarray:
        """Embed one text into a unit-norm float32 vector."""

    def embed_batch(self, texts: list[str]) -> np.ndarray:
        """Embed many texts; rows are unit-norm vectors."""
        if not texts:
            return np.zeros((0, self.dim), dtype=np.float32)
        return np.stack([self.embed(t) for t in texts])


class HashedEmbedding(EmbeddingModel):
    """Feature-hashing embedder with stable, seed-parameterised hashing.

    Args:
        dim: embedding dimensionality.
        family: hash-seed family name; two different families behave
            like two different (but similarly capable) embedding models.
        sublinear_tf: dampen repeated tokens with ``1 + log(tf)``.
    """

    def __init__(
        self,
        dim: int = 512,
        family: str = "cohere-embed-v3-sim",
        sublinear_tf: bool = True,
        idf: IdfWeights | None = None,
    ) -> None:
        if dim < 8:
            raise ValueError(f"dim must be >= 8, got {dim}")
        self.dim = dim
        self.family = family
        self.sublinear_tf = sublinear_tf
        self.idf = idf
        self._tokenizer = SimTokenizer()
        self._token_cache: dict[str, tuple[int, float]] = {}

    def _token_coord(self, token: str) -> tuple[int, float]:
        """Map a token to a (coordinate, sign) pair, cached."""
        cached = self._token_cache.get(token)
        if cached is not None:
            return cached
        digest = hashlib.sha256(f"{self.family}\x00{token}".encode()).digest()
        coord = int.from_bytes(digest[:4], "little") % self.dim
        sign = 1.0 if digest[4] % 2 == 0 else -1.0
        result = (coord, sign)
        self._token_cache[token] = result
        return result

    def embed(self, text: str) -> np.ndarray:
        vec = np.zeros(self.dim, dtype=np.float32)
        counts = Counter(self._tokenizer.tokenize(text))
        if not counts:
            return vec
        for token, tf in counts.items():
            weight = 1.0 + np.log(tf) if self.sublinear_tf else float(tf)
            if self.idf is not None:
                weight *= self.idf.weight(token)
            coord, sign = self._token_coord(token)
            vec[coord] += sign * weight
        norm = float(np.linalg.norm(vec))
        if norm > 0:
            vec /= norm
        return vec

    def embed_batch(self, texts: list[str]) -> np.ndarray:
        """Embed many texts into one preallocated ``(n, dim)`` matrix.

        Rows are byte-identical to per-text :meth:`embed` calls; the
        instance's token-coordinate cache (and the IDF weight cache)
        warm on the first texts and serve the rest of the batch, which
        is where bulk chunk indexing spends its time.
        """
        out = np.zeros((len(texts), self.dim), dtype=np.float32)
        for i, text in enumerate(texts):
            out[i] = self.embed(text)
        return out
