"""Document chunking (the paper splits documents into fixed-token chunks).

Mirrors Langchain's fixed-size splitter with optional token overlap:
sentences are packed greedily into chunks of ``chunk_tokens`` tokens;
a sentence longer than the budget is hard-split.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.llm.tokenizer import SimTokenizer

__all__ = ["Chunk", "split_into_chunks"]

_SENTENCE_RE = re.compile(r"[^.!?]+[.!?]?")


@dataclass(frozen=True)
class Chunk:
    """One retrievable unit of a document."""

    chunk_id: str
    doc_id: str
    text: str
    n_tokens: int
    position: int  # index of this chunk within its document


def split_into_chunks(
    doc_id: str,
    text: str,
    chunk_tokens: int,
    overlap_tokens: int = 0,
    tokenizer: SimTokenizer | None = None,
) -> list[Chunk]:
    """Split ``text`` into chunks of at most ``chunk_tokens`` tokens.

    Sentence boundaries are respected where possible; ``overlap_tokens``
    of trailing text are repeated at the start of the next chunk (a
    common RAG practice to avoid cutting facts in half).
    """
    if chunk_tokens <= 0:
        raise ValueError(f"chunk_tokens must be positive, got {chunk_tokens}")
    if not 0 <= overlap_tokens < chunk_tokens:
        raise ValueError(
            f"overlap_tokens must be in [0, chunk_tokens), got {overlap_tokens}"
        )
    tok = tokenizer or SimTokenizer()
    sentences = [s.strip() for s in _SENTENCE_RE.findall(text) if s.strip()]

    pieces: list[tuple[str, int]] = []
    for sentence in sentences:
        n = tok.count(sentence)
        if n <= chunk_tokens:
            pieces.append((sentence, n))
            continue
        # Hard-split an oversized sentence on word boundaries.
        words = sentence.split()
        current: list[str] = []
        for word in words:
            candidate = " ".join(current + [word])
            if current and tok.count(candidate) > chunk_tokens:
                pieces.append((" ".join(current), tok.count(" ".join(current))))
                current = [word]
            else:
                current.append(word)
        if current:
            pieces.append((" ".join(current), tok.count(" ".join(current))))

    chunks: list[Chunk] = []
    buffer: list[str] = []
    buffer_tokens = 0

    def flush() -> None:
        nonlocal buffer, buffer_tokens
        if not buffer:
            return
        chunk_text = " ".join(buffer)
        chunks.append(
            Chunk(
                chunk_id=f"{doc_id}#{len(chunks)}",
                doc_id=doc_id,
                text=chunk_text,
                n_tokens=tok.count(chunk_text),
                position=len(chunks),
            )
        )
        if overlap_tokens > 0:
            tail = tok.truncate(chunk_text[::-1], overlap_tokens)[::-1]
            buffer = [tail] if tail else []
            buffer_tokens = tok.count(tail) if tail else 0
        else:
            buffer = []
            buffer_tokens = 0

    for sentence, n in pieces:
        if buffer and buffer_tokens + n > chunk_tokens:
            flush()
        buffer.append(sentence)
        buffer_tokens += n
    flush()
    return chunks
