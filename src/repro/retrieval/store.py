"""Vector store: chunks + embeddings + index behind one search API.

This is the "vector database" box of the paper's Fig 6. The heavy
lifting now lives in :class:`~repro.retrieval.sharded.ShardedVectorStore`
— a K-shard scatter-gather subsystem with deterministic hash placement
and a per-shard timing model. :class:`VectorStore` is the single-shard
(K=1) configuration of it, kept as the historical construction surface
(datasets build one; callers see the same ``add_chunks`` / ``get`` /
``search`` API and the same ``retrieval_latency_s`` constant as before
the refactor, bit-for-bit — the K=1 path neither re-sorts results nor
recomputes the latency constant).

The index backing each shard is pluggable: pass ``index_factory``
(``"flat"`` exact L2 — the default and the paper's FAISS
``IndexFlatL2`` — or ``"ivf"`` for the inverted-file approximation, or
any ``dim -> index`` callable).
"""

from __future__ import annotations

from typing import Callable

from repro.retrieval.embedding import EmbeddingModel
from repro.retrieval.sharded import SearchHit, ShardedVectorStore

__all__ = ["SearchHit", "VectorStore"]


class VectorStore(ShardedVectorStore):
    """Single-shard vector store (the pre-sharding construction API).

    Args:
        embedding: pluggable embedder (defaults to the 512-d hashed
            embedder standing in for Cohere-embed-v3).
        retrieval_latency_s: simulated wall-clock cost of one search,
            charged by the pipeline (not by this class).
        index_factory: per-shard index constructor or registry name
            (``"flat"`` / ``"ivf"``); defaults to exact ``FlatL2Index``.
    """

    def __init__(
        self,
        embedding: EmbeddingModel | None = None,
        retrieval_latency_s: float = 0.004,
        index_factory: str | Callable | None = None,
    ) -> None:
        super().__init__(
            n_shards=1,
            embedding=embedding,
            retrieval_latency_s=retrieval_latency_s,
            index_factory=index_factory,
        )
