"""Vector store: chunks + embeddings + index behind one search API.

This is the "vector database" box of the paper's Fig 6: it owns the
chunk texts, their embeddings, and a FAISS-style index, and answers
``search(query_text, k)`` with ranked chunks. Retrieval latency is
modelled as a small constant — the paper notes retrieval is >100×
faster than synthesis, so it never dominates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.retrieval.chunker import Chunk
from repro.retrieval.embedding import EmbeddingModel, HashedEmbedding
from repro.retrieval.index import FlatL2Index

__all__ = ["SearchHit", "VectorStore"]


@dataclass(frozen=True)
class SearchHit:
    """One retrieved chunk with its distance and rank."""

    chunk: Chunk
    distance: float
    rank: int


class VectorStore:
    """Embeds and indexes chunks; answers top-k queries.

    Args:
        embedding: pluggable embedder (defaults to the 256-d hashed
            embedder standing in for Cohere-embed-v3).
        retrieval_latency_s: simulated wall-clock cost of one search,
            charged by the runner (not by this class).
    """

    def __init__(
        self,
        embedding: EmbeddingModel | None = None,
        retrieval_latency_s: float = 0.004,
    ) -> None:
        self.embedding = embedding or HashedEmbedding()
        self.retrieval_latency_s = retrieval_latency_s
        self.index = FlatL2Index(self.embedding.dim)
        self._chunks: list[Chunk] = []
        self._by_id: dict[str, Chunk] = {}

    def __len__(self) -> int:
        return len(self._chunks)

    def add_chunks(self, chunks: list[Chunk]) -> None:
        """Embed and index a batch of chunks."""
        if not chunks:
            return
        for chunk in chunks:
            if chunk.chunk_id in self._by_id:
                raise ValueError(f"duplicate chunk_id: {chunk.chunk_id}")
        vectors = self.embedding.embed_batch([c.text for c in chunks])
        self.index.add(vectors)
        self._chunks.extend(chunks)
        for chunk in chunks:
            self._by_id[chunk.chunk_id] = chunk

    def get(self, chunk_id: str) -> Chunk:
        """Look up a chunk by id (KeyError when absent)."""
        return self._by_id[chunk_id]

    def search(self, query_text: str, k: int) -> list[SearchHit]:
        """Return the ``k`` nearest chunks to ``query_text``."""
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if not self._chunks:
            return []
        query_vec = self.embedding.embed(query_text)
        distances, indices = self.index.search(
            query_vec.reshape(1, -1), min(k, len(self._chunks))
        )
        hits: list[SearchHit] = []
        for rank, (dist, idx) in enumerate(zip(distances[0], indices[0])):
            if idx < 0 or not np.isfinite(dist):
                break
            hits.append(SearchHit(self._chunks[int(idx)], float(dist), rank))
        return hits
