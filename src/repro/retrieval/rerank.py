"""Reranking: re-score an over-fetched candidate pool at modelled cost.

A production RAG stack often retrieves ``multiplier * k`` candidates
cheaply (especially from approximate shards) and re-scores them with a
stronger model before keeping the top-k — RAGGED's "informed design"
knob for trading retrieval latency against quality.

:class:`ExactReranker` models the common *exact re-scoring* variant:
candidates are re-ranked by their exact L2 distance to the query
(recomputed from the stored vectors), which is a no-op on an exact
``flat`` index but recovers recall lost to ``ivf`` cell probing. Its
*cost* model is what the pipeline charges: the reranker holds its
:class:`~repro.sim.resource.Resource` for ``per_candidate_seconds``
per candidate scored, so reranking latency scales with the fetch
multiplier — the overhead side of the quality/latency trade.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.retrieval.sharded import SearchHit, ShardedVectorStore
from repro.util.validation import check_non_negative, check_positive

__all__ = ["ExactReranker", "RERANKER_NAMES", "make_reranker"]

#: CLI-selectable reranker names (``--reranker``).
RERANKER_NAMES = ("exact",)


@dataclass(frozen=True)
class ExactReranker:
    """Re-score the merged candidate pool by exact L2 distance.

    Args:
        per_candidate_seconds: modelled scoring cost per candidate
            (the resource hold time is ``per_candidate_seconds * n``).
        fetch_multiplier: shards are asked for ``multiplier * k``
            candidates so the reranker has a pool to recover from.
    """

    per_candidate_seconds: float = 2e-4
    fetch_multiplier: int = 4
    name: str = "exact"

    def __post_init__(self) -> None:
        check_non_negative("per_candidate_seconds",
                           self.per_candidate_seconds)
        check_positive("fetch_multiplier", self.fetch_multiplier)

    def fetch_k(self, k: int) -> int:
        """How many candidates to pull from the shards for a top-``k``."""
        return int(k) * int(self.fetch_multiplier)

    def hold_seconds(self, n_candidates: int) -> float:
        """Resource hold time for scoring ``n_candidates``."""
        return self.per_candidate_seconds * n_candidates

    def rerank(self, store: ShardedVectorStore, query_vec: np.ndarray,
               candidates: list[SearchHit], k: int) -> list[SearchHit]:
        """Top-``k`` of ``candidates`` by exact distance.

        Ties break by corpus insertion position — the same stable total
        order the gather step uses.
        """
        if not candidates:
            return []
        scored = sorted(
            (store.exact_sq_distance(query_vec, hit.chunk.chunk_id),
             store.global_pos(hit.chunk.chunk_id),
             hit.chunk)
            for hit in candidates
        )
        return [
            SearchHit(chunk, dist, rank)
            for rank, (dist, _, chunk) in enumerate(scored[:k])
        ]


def make_reranker(spec) -> ExactReranker | None:
    """Resolve a reranker spec: ``None``, a registry name, or an
    instance (returned as-is)."""
    if spec is None:
        return None
    if isinstance(spec, str):
        if spec == "exact":
            return ExactReranker()
        known = ", ".join(RERANKER_NAMES)
        raise ValueError(f"unknown reranker {spec!r}; known: {known}")
    return spec
