"""Scheduling policies: who gets admitted/prefilled first.

* :class:`FCFSPolicy` — vLLM's default first-come-first-served order.
* :class:`AppAwarePolicy` — Parrot-style application-aware scheduling:
  the engine knows which RAG query (app) each LLM call belongs to, keeps
  a query's calls together (mappers batch with mappers), and favours
  apps with the least remaining work, which cuts average end-to-end
  delay versus interleaving all apps FCFS.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterable
from operator import attrgetter

from repro.serving.request import InferenceRequest

__all__ = ["SchedulingPolicy", "FCFSPolicy", "AppAwarePolicy", "make_policy"]


class SchedulingPolicy(ABC):
    """Orders the waiting queue before each admission/prefill round."""

    name: str = "base"

    #: True when :meth:`order` depends only on the waiting list (the
    #: running set never shifts the order) — lets the engine cache the
    #: ordering across iterations while the waiting queue is unchanged
    #: (a stall-bound engine re-sorts every step otherwise).
    waiting_only: bool = False

    @abstractmethod
    def order(self, waiting: list[InferenceRequest],
              running: list[InferenceRequest]) -> list[InferenceRequest]:
        """Return ``waiting`` in scheduling order (no mutation)."""


class FCFSPolicy(SchedulingPolicy):
    """First come, first served (ties broken by submit order)."""

    name = "fcfs"
    waiting_only = True

    _key = attrgetter("priority", "arrival_time", "request_id")

    def order(self, waiting: list[InferenceRequest],
              running: list[InferenceRequest]) -> list[InferenceRequest]:
        if len(waiting) < 2:
            return list(waiting)
        return sorted(waiting, key=self._key)


class AppAwarePolicy(SchedulingPolicy):
    """Parrot-style app-aware ordering.

    Sort key per request, most significant first:

    1. remaining work of its app (sum over that app's outstanding calls,
       waiting *and* running) — favour apps closest to completion,
    2. app arrival time — keeps one app's calls contiguous,
    3. stage — mappers before their reduce (the reduce is only submitted
       after mappers finish, but late-submitted retries keep order),
    4. request id.
    """

    name = "app-aware"

    @staticmethod
    def _app_stats(
        requests: Iterable[InferenceRequest],
    ) -> tuple[dict[str, int], dict[str, float]]:
        remaining: dict[str, int] = {}
        first_arrival: dict[str, float] = {}
        for req in requests:
            remaining[req.app_id] = (
                remaining.get(req.app_id, 0) + req.remaining_work_tokens
            )
            prev = first_arrival.get(req.app_id)
            if prev is None or req.arrival_time < prev:
                first_arrival[req.app_id] = req.arrival_time
        return remaining, first_arrival

    def order(self, waiting: list[InferenceRequest],
              running: list[InferenceRequest]) -> list[InferenceRequest]:
        remaining, first_arrival = self._app_stats([*waiting, *running])
        return sorted(
            waiting,
            key=lambda r: (
                r.priority,
                remaining[r.app_id],
                first_arrival[r.app_id],
                r.stage,
                r.request_id,
            ),
        )


_POLICIES = {
    FCFSPolicy.name: FCFSPolicy,
    AppAwarePolicy.name: AppAwarePolicy,
}


def make_policy(name: str) -> SchedulingPolicy:
    """Instantiate a policy by name (``"fcfs"`` or ``"app-aware"``)."""
    try:
        return _POLICIES[name]()
    except KeyError:
        known = ", ".join(sorted(_POLICIES))
        raise ValueError(f"unknown policy {name!r}; known: {known}") from None
