"""Deadline-aware speculative scheduling policies for the cluster.

METIS's serving story is meeting per-query SLOs under load; once
replicas became independent event sources with heterogeneous speeds
(PR 3), the classic tail-latency tool becomes expressible: *hedge* an
at-risk query by arming a duplicate on a second replica and letting
the first completion win. This module holds the **policy** side of
that tradeoff — when to arm a hedge and where to place it. The
**mechanism** (duplicate lanes, first-completion-wins, cancellation of
the loser through :meth:`~repro.sim.kernel.EventLoop.cancel`,
:meth:`~repro.sim.resource.Resource.cancel`, and
:meth:`~repro.serving.engine.ServingEngine.cancel`) lives in the query
pipeline (:mod:`repro.evaluation.pipeline`); cost attribution lands in
the ledger's ``speculation`` column
(:class:`~repro.evaluation.costs.CostLedger`). See
``docs/SPECULATION.md``.

Three policies, selected by name (CLI ``--speculation``):

* ``none`` — never hedge. The pipeline takes the exact pre-speculation
  event schedule (byte-identical golden traces).
* ``hedge-after-delay`` — arm a duplicate if the query is still
  running ``hedge_delay`` seconds after arrival (the classic
  tail-at-scale hedge: no model, just a timer).
* ``deadline-risk`` — estimate the primary replica's completion time
  from the profiler-estimated synthesis plan plus the replica's
  current queue depth and speed
  (:attr:`~repro.core.policy.ClusterSchedulingView.replica_outstanding`
  / ``replica_speeds``); if the SLO deadline looks unreachable, arm
  the hedge at the *last* moment the fastest alternative could still
  make the deadline — queries that are safe never pay for a duplicate.

All policies are deterministic pure functions of their context: the
same run replays the same hedges, byte for byte.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

from repro.util.validation import check_positive

__all__ = [
    "HedgeContext",
    "SpeculationPolicy",
    "NoSpeculation",
    "HedgeAfterDelay",
    "DeadlineRisk",
    "SPECULATION_NAMES",
    "estimate_plan_seconds",
    "make_speculation",
]


def estimate_plan_seconds(plan, cost) -> float:
    """Uncontended service-time estimate for a synthesis plan.

    Per call: :meth:`~repro.llm.costs.RooflineCostModel.request_seconds`
    (the same pricing rule feedback runs and wasted speculative work
    are charged at, so arming estimates agree with the bill). Calls
    within a stage run concurrently (stage time = slowest call);
    stages are sequential. A speed-``s`` replica serves it in
    ``estimate / s`` seconds.
    """
    total = 0.0
    for stage in range(plan.n_stages):
        stage_seconds = 0.0
        for call in plan.stage_calls(stage):
            seconds = cost.request_seconds(call.prompt_tokens,
                                           call.output_tokens)
            stage_seconds = max(stage_seconds, seconds)
        total += stage_seconds
    return total


@dataclass(frozen=True)
class HedgeContext:
    """Everything a speculation policy may consult at decision time.

    Built by the pipeline's decide stage, after the configuration is
    committed (so the plan estimate prices the *actual* chosen config)
    and after routing (so ``primary`` is the replica the query's calls
    will land on).
    """

    arrival_time: float
    decision_time: float
    #: ``arrival_time + slo_seconds``; ``None`` when no SLO is set.
    deadline: float | None
    #: Uncontended service seconds of the chosen plan at speed 1.0.
    est_service_seconds: float
    #: Replica the primary lane is pinned to.
    primary: int
    #: Per-replica outstanding-request counts at decision time.
    replica_outstanding: tuple[int, ...]
    #: Per-replica speed multipliers (empty = homogeneous 1.0x).
    replica_speeds: tuple[float, ...]

    def speed(self, replica: int) -> float:
        if replica < len(self.replica_speeds):
            return self.replica_speeds[replica]
        return 1.0

    @property
    def n_replicas(self) -> int:
        return max(len(self.replica_outstanding),
                   len(self.replica_speeds), 1)


class SpeculationPolicy(ABC):
    """Decides *when* a query's duplicate is armed and *where* it goes."""

    name: str = "base"
    #: Whether :meth:`hedge_time` reads ``est_service_seconds`` — the
    #: pipeline skips the per-query plan estimate for policies that
    #: don't (pure timers), so they cost nothing at decide time.
    needs_estimate: bool = True

    @abstractmethod
    def hedge_time(self, ctx: HedgeContext) -> float | None:
        """Absolute simulated time to arm the hedge; ``None`` = never."""

    def choose_replica(self, outstanding: tuple[int, ...],
                       speeds: tuple[float, ...],
                       primary: int,
                       eligible: Sequence[int] | None = None) -> int | None:
        """Place the duplicate on the fastest under-loaded replica.

        Called at *arm* time with fresh cluster state (queue depths
        move between decision and arming). Minimises speed-normalised
        queue depth, preferring raw speed then the lowest index on
        ties; the primary is excluded. ``eligible`` restricts the pool
        (elastic clusters pass their active replicas so a hedge never
        lands on a draining or retired one); ``None`` means every
        replica, which is byte-identical to the pre-elastic behaviour.
        ``None`` is returned when no other replica is eligible (bare
        engine / single-replica cluster / everything else draining) —
        the hedge is skipped, never self-duplicated.
        """
        n = len(outstanding)
        pool = range(n) if eligible is None else eligible
        candidates = [i for i in pool if i != primary]
        if not candidates:
            return None

        def speed(i: int) -> float:
            return speeds[i] if i < len(speeds) else 1.0

        return min(candidates,
                   key=lambda i: (outstanding[i] / speed(i), -speed(i), i))


class NoSpeculation(SpeculationPolicy):
    """Never hedge (the byte-identical default)."""

    name = "none"

    def hedge_time(self, ctx: HedgeContext) -> float | None:
        return None


class HedgeAfterDelay(SpeculationPolicy):
    """Duplicate any query still unfinished ``delay`` seconds after
    arrival (Dean & Barroso's tail-at-scale hedge). Deadline-blind:
    the timer fires whether or not an SLO is configured."""

    name = "hedge-after-delay"
    needs_estimate = False  # a pure timer: no plan estimate consulted

    def __init__(self, delay: float) -> None:
        check_positive("hedge_delay", delay)
        self.delay = float(delay)

    def hedge_time(self, ctx: HedgeContext) -> float | None:
        # Never before the decision: there is no plan to duplicate yet.
        return max(ctx.decision_time, ctx.arrival_time + self.delay)


class DeadlineRisk(SpeculationPolicy):
    """Hedge only queries whose SLO deadline looks unreachable.

    Completion estimate for the primary: each outstanding request
    ahead of the query costs roughly one plan-service-time, so::

        est_finish = decision_time
                   + (1 + outstanding[primary]) * est / speed[primary]

    If ``est_finish + margin`` beats the deadline the query is safe —
    no hedge, no wasted work. Otherwise the hedge is armed at the last
    instant the fastest *other* replica could still serve the plan by
    the deadline (clamped to the decision time when that moment has
    already passed): late arming gives the primary every chance to
    win unaided, bounding duplicate cost.

    ``margin_frac`` scales both the safety margin and the arming
    headroom by the plan's service estimate.
    """

    name = "deadline-risk"

    def __init__(self, margin_frac: float = 0.25) -> None:
        check_positive("margin_frac", margin_frac)
        self.margin_frac = float(margin_frac)

    def hedge_time(self, ctx: HedgeContext) -> float | None:
        if ctx.deadline is None:
            return None
        est = ctx.est_service_seconds
        margin = self.margin_frac * est
        primary_speed = ctx.speed(ctx.primary)
        queued_ahead = 0
        if ctx.primary < len(ctx.replica_outstanding):
            queued_ahead = ctx.replica_outstanding[ctx.primary]
        est_finish = (ctx.decision_time
                      + (1 + queued_ahead) * est / primary_speed)
        if est_finish + margin <= ctx.deadline:
            return None
        best_alt_speed = max(
            (ctx.speed(i) for i in range(ctx.n_replicas)
             if i != ctx.primary),
            default=primary_speed,
        )
        arm_at = ctx.deadline - est / best_alt_speed - margin
        return max(ctx.decision_time, arm_at)


#: Names accepted by :func:`make_speculation` (and ``--speculation``).
SPECULATION_NAMES: tuple[str, ...] = ("none", "hedge-after-delay",
                                      "deadline-risk")

#: Default hedge timer when ``hedge-after-delay`` is selected without
#: an explicit ``--hedge-delay`` and an SLO is configured: hedge when
#: half the SLO budget is gone.
_DEFAULT_DELAY_SLO_FRAC = 0.5


def make_speculation(
    name: str | SpeculationPolicy | None,
    hedge_delay: float | None = None,
    slo_seconds: float | None = None,
) -> SpeculationPolicy | None:
    """Instantiate a speculation policy by CLI name.

    Returns ``None`` for ``"none"``/``None`` (the pipeline then skips
    every speculation code path — the byte-identical default).
    ``hedge-after-delay`` needs ``hedge_delay`` (or an SLO to derive
    one from); ``deadline-risk`` needs ``slo_seconds``. Misuse fails
    fast with the offending combination.
    """
    if hedge_delay is not None and name != "hedge-after-delay":
        # Uniform for strings, None, and policy instances (an instance
        # already carries its own timer): a timer the selected policy
        # would never read is a misconfiguration, not a no-op.
        raise ValueError(
            f"hedge_delay only applies to 'hedge-after-delay'; "
            f"speculation {name!r} would silently ignore "
            f"hedge_delay={hedge_delay}"
        )
    if name is None or isinstance(name, SpeculationPolicy):
        return name if not isinstance(name, NoSpeculation) else None
    if name == "none":
        return None
    if name == "hedge-after-delay":
        if hedge_delay is None:
            if slo_seconds is None:
                raise ValueError(
                    "speculation 'hedge-after-delay' needs --hedge-delay "
                    "(or --slo-seconds to derive the default "
                    f"{_DEFAULT_DELAY_SLO_FRAC:g}*SLO timer from)"
                )
            hedge_delay = _DEFAULT_DELAY_SLO_FRAC * float(slo_seconds)
        return HedgeAfterDelay(hedge_delay)
    if name == "deadline-risk":
        if slo_seconds is None:
            raise ValueError(
                "speculation 'deadline-risk' needs --slo-seconds: its "
                "whole signal is the per-query deadline"
            )
        return DeadlineRisk()
    known = ", ".join(SPECULATION_NAMES)
    raise ValueError(f"unknown speculation policy {name!r}; known: {known}")
