"""The continuous-batching serving engine (vLLM stand-in).

Discrete-event semantics: each :meth:`ServingEngine.step` simulates one
engine iteration — admit waiting requests under KV-memory admission
control, schedule a (possibly chunked) prefill batch plus one decode
token for every running sequence, then advance the clock by the
iteration's duration from the roofline cost model.

Deliberate deviations from vLLM, chosen to keep the simulator honest
but tractable (documented in DESIGN.md):

* A sequence's full KV footprint (prompt + output) is reserved at
  admission, so preemption/swap-out never triggers. Admission is
  therefore slightly conservative, which *under*-states METIS' benefit.
* The final prefill chunk also yields the first output token (as in
  chunked-prefill vLLM).
* Multi-replica serving (``repro.serving.cluster``) advances replicas
  as events on a shared discrete-event loop instead of running
  per-replica threads; replicas never share KV memory or migrate
  sequences, and a request is routed exactly once at submission (no
  work stealing). Real deployments rebalance mid-flight; the
  deterministic event order keeps traces replayable and replica-count
  comparisons exact.
* Cross-replica placement is per *app* (all LLM calls of one RAG query
  stay on one replica), matching the co-location a Parrot-style
  gateway would enforce, rather than per-call scatter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.llm.costs import RooflineCostModel
from repro.llm.gpu import ClusterSpec
from repro.llm.model import ModelSpec
from repro.serving.kv_cache import BlockManager
from repro.serving.memory import GPUMemoryModel
from repro.serving.policies import SchedulingPolicy, make_policy
from repro.serving.request import InferenceRequest, RequestPhase
from repro.util.validation import check_in_range, check_positive

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (sim -> serving)
    from repro.sim import EventLoop, StepDriver

__all__ = ["EngineConfig", "ServingEngine", "StepInfo", "EngineStats"]


@dataclass(frozen=True)
class EngineConfig:
    """Static engine parameters (defaults mirror vLLM's)."""

    model: ModelSpec
    cluster: ClusterSpec
    block_tokens: int = 16
    max_num_seqs: int = 48
    max_batched_prefill_tokens: int = 2_048
    chunked_prefill: bool = True
    gpu_memory_utilization: float = 0.90
    activation_reserve_frac: float = 0.08
    kv_pool_cap_bytes: float | None = None
    watermark_frac: float = 0.01
    policy: str = "fcfs"

    def __post_init__(self) -> None:
        check_positive("block_tokens", self.block_tokens)
        check_positive("max_num_seqs", self.max_num_seqs)
        check_positive("max_batched_prefill_tokens",
                       self.max_batched_prefill_tokens)
        check_in_range("watermark_frac", self.watermark_frac, 0.0, 0.2)


@dataclass
class StepInfo:
    """What one engine iteration did.

    Plain (non-frozen) dataclass: one is built per engine iteration on
    the hot path, and frozen-dataclass ``__init__`` pays an
    ``object.__setattr__`` per field. Treat instances as immutable."""

    start: float
    duration: float
    prefill_tokens: int
    n_prefill_seqs: int
    n_decode_seqs: int
    kv_tokens_in_batch: int
    admitted: tuple[InferenceRequest, ...]
    finished: tuple[InferenceRequest, ...]

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass
class EngineStats:
    """Cumulative engine counters (cost accounting, diagnostics).

    Snapshot object: :attr:`ServingEngine.stats` accumulates raw
    counters on plain attributes during the run (the hot path never
    touches this dataclass) and materializes an ``EngineStats`` on
    access — derived quantities like ``peak_kv_utilization`` are
    computed at report time from the integer block peak."""

    iterations: int = 0
    busy_seconds: float = 0.0
    prefill_tokens: int = 0
    decode_tokens: int = 0
    requests_finished: int = 0
    peak_kv_utilization: float = 0.0
    admission_stalls: int = 0  # iterations where the queue head could not fit
    wakeups: int = 0  # idle -> busy transitions (event-driven wake events)
    requests_cancelled: int = 0  # speculation losers torn down mid-flight
    #: tokens already processed for requests that were then cancelled —
    #: the engine-side measure of speculative (wasted) work
    cancelled_prefill_tokens: int = 0
    cancelled_decode_tokens: int = 0


class ServingEngine:
    """Continuous-batching engine over a simulated GPU cluster.

    ``speed`` is a hardware-throughput multiplier: every iteration's
    roofline duration is divided by it, so ``speed=0.5`` models a
    replica on half-rate hardware (iterations take twice as long).
    The default 1.0 divides by the float literal ``1.0``, which is
    exact in IEEE arithmetic — homogeneous traces are byte-identical
    to the pre-``speed`` engine.
    """

    def __init__(self, config: EngineConfig,
                 policy: SchedulingPolicy | None = None,
                 speed: float = 1.0) -> None:
        check_positive("speed", speed)
        self.config = config
        self.speed = float(speed)
        self.memory = GPUMemoryModel(
            config.model,
            config.cluster,
            gpu_memory_utilization=config.gpu_memory_utilization,
            activation_reserve_frac=config.activation_reserve_frac,
            kv_pool_cap_bytes=config.kv_pool_cap_bytes,
        )
        self.blocks = BlockManager(
            n_blocks=self.memory.n_blocks(config.block_tokens),
            block_tokens=config.block_tokens,
        )
        self.cost = RooflineCostModel(config.model, config.cluster)
        self.policy = policy or make_policy(config.policy)
        self.now = 0.0
        self._waiting: list[InferenceRequest] = []
        self._running: list[InferenceRequest] = []
        self._watermark_blocks = int(self.blocks.n_blocks * config.watermark_frac)
        # Raw stats counters (see EngineStats: the dataclass is built
        # lazily by the ``stats`` property at report time).
        self._iterations = 0
        self._busy_seconds = 0.0
        self._prefill_tokens = 0
        self._decode_tokens = 0
        self._requests_finished = 0
        self._peak_used_blocks = 0
        self._admission_stalls = 0
        self._wakeups = 0
        self._requests_cancelled = 0
        self._cancelled_prefill_tokens = 0
        self._cancelled_decode_tokens = 0
        # Hot-path constants: static per config, cached so submit() and
        # step() never re-derive them through property chains. The
        # roofline terms keep the exact arithmetic op order of
        # RooflineCostModel (bit-identical durations).
        self._max_context = config.model.max_context
        self._kv_pool_tokens = self.memory.kv_pool_tokens
        self._flops_per_token = config.model.flops_per_token
        self._compute_speedup = config.model.quantization.compute_speedup
        self._effective_flops = config.cluster.effective_flops
        self._weight_bytes = config.model.weight_bytes
        self._kv_bytes_per_token = config.model.kv_bytes_per_token
        self._mem_bandwidth = config.cluster.mem_bandwidth
        self._step_overhead_s = self.cost.step_overhead_s
        self._per_seq_overhead_s = self.cost.per_seq_overhead_s
        self._max_num_seqs = config.max_num_seqs
        self._prefill_budget = config.max_batched_prefill_tokens
        self._chunked_prefill = config.chunked_prefill
        # Admission-order cache: a stall-bound engine re-sorts an
        # unchanged waiting queue every iteration otherwise. The version
        # bumps whenever ``_waiting`` mutates (submit / cancel / admit);
        # only ``waiting_only`` policies (FCFS) are cacheable — app-aware
        # order shifts with the running set every step.
        self._waiting_version = 0
        self._ordered_version = -1
        self._ordered_cache: list[InferenceRequest] = []
        # Stall memo: admission's outcome is a pure function of
        # (waiting queue, free blocks, running count) under a
        # waiting_only policy, so a step that stalled head-of-line
        # repeats the identical stall until one of those moves — skip
        # the admission loop (but keep counting the stall).
        self._stall_key: tuple[int, int, int] | None = None
        # Incremental batch-composition counters (ints, so the sums are
        # bit-identical to recomputing them): how many running requests
        # are still prefilling, and the decode-phase KV token total
        # (sum of prefilled + decoded over DECODE-phase requests). They
        # buy _build_iteration a decode-only fast path that skips the
        # per-request phase walk.
        self._n_prefill_phase = 0
        self._decode_kv_tokens = 0
        #: Called after every ``submit`` (admission may need a wake /
        #: frontier re-arm); set by :meth:`attach`.
        self.wake_hook: Callable[[], None] | None = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def stats(self) -> EngineStats:
        """Cumulative counters as a snapshot (derived stats computed here)."""
        return EngineStats(
            iterations=self._iterations,
            busy_seconds=self._busy_seconds,
            prefill_tokens=self._prefill_tokens,
            decode_tokens=self._decode_tokens,
            requests_finished=self._requests_finished,
            peak_kv_utilization=self._peak_used_blocks / self.blocks.n_blocks,
            admission_stalls=self._admission_stalls,
            wakeups=self._wakeups,
            requests_cancelled=self._requests_cancelled,
            cancelled_prefill_tokens=self._cancelled_prefill_tokens,
            cancelled_decode_tokens=self._cancelled_decode_tokens,
        )

    @property
    def model(self) -> ModelSpec:
        return self.config.model

    @property
    def cluster(self) -> ClusterSpec:
        return self.config.cluster

    @property
    def waiting(self) -> tuple[InferenceRequest, ...]:
        return tuple(self._waiting)

    @property
    def running(self) -> tuple[InferenceRequest, ...]:
        return tuple(self._running)

    def has_work(self) -> bool:
        return bool(self._waiting or self._running)

    @property
    def outstanding(self) -> int:
        """Requests on this engine (waiting + running) — the queue-depth
        load proxy routers and deadline-risk speculation consume."""
        return len(self._waiting) + len(self._running)

    def free_kv_bytes(self) -> float:
        """Instantaneous free KV memory (the paper's ``get_free_memory``)."""
        return (
            self.blocks.free_blocks
            * self.blocks.block_tokens
            * self.memory.kv_bytes_per_token
        )

    def waiting_demand_bytes(self) -> float:
        """KV memory already promised to queued-but-unadmitted requests."""
        tokens = sum(r.total_tokens for r in self._waiting)
        return self.memory.tokens_to_bytes(tokens)

    def available_kv_bytes(self) -> float:
        """Free KV memory net of queued demand — what a *new* request can
        claim without displacing anyone (METIS' scheduling signal)."""
        return max(0.0, self.free_kv_bytes() - self.waiting_demand_bytes())

    def kv_bytes_for_tokens(self, n_tokens: int) -> float:
        return self.memory.tokens_to_bytes(n_tokens)

    # ------------------------------------------------------------------
    # Submission / time control
    # ------------------------------------------------------------------
    def submit(self, request: InferenceRequest) -> InferenceRequest:
        """Queue a request; validates it can ever be served."""
        total_tokens = request.prompt_tokens + request.output_tokens
        if total_tokens > self._max_context:
            raise ValueError(
                f"request needs {total_tokens} tokens of context; "
                f"{self.model.name} supports {self.model.max_context}"
            )
        if total_tokens > self._kv_pool_tokens:
            raise ValueError(
                f"request KV footprint ({total_tokens} tokens) exceeds "
                f"the KV pool ({self._kv_pool_tokens} tokens)"
            )
        if request.phase is not RequestPhase.WAITING:
            raise ValueError(f"request already scheduled: {request!r}")
        if not (self._waiting or self._running):
            self._wakeups += 1
        self._waiting.append(request)
        self._waiting_version += 1
        if self.wake_hook is not None:
            self.wake_hook()
        return request

    def advance_to(self, t: float) -> None:
        """Jump the clock forward to ``t`` (idle time between arrivals)."""
        if t > self.now:
            self.now = t

    def advance_and_observe(self, t: float) -> float:
        """:meth:`advance_to` fused with the post-advance clock read."""
        now = self.now
        if t > now:
            self.now = now = t
        return now

    def frontier(self) -> float | None:
        """Fused ``has_work``/``now`` probe for the StepDriver: the
        clock while the engine has work, ``None`` when idle."""
        if self._waiting or self._running:
            return self.now
        return None

    def cancel(self, request: InferenceRequest) -> bool:
        """Tear down an in-flight request (the speculation-loser path).

        A ``WAITING`` request is removed from the queue before it ever
        claims memory; a ``PREFILL``/``DECODE`` request is evicted from
        the running batch and its KV block reservation is freed
        immediately. ``on_finish`` never fires for a cancelled request
        — the caller owns whatever continuation the request carried.
        Returns ``False`` (untouched) for requests that already
        finished, were already cancelled, or were never submitted here.

        Must not be called from within this engine's own :meth:`step`
        (completion callbacks cancel work on *other* replicas; the
        iteration's prefill plan holds direct references that a
        same-replica eviction would corrupt).
        """
        if request.phase is RequestPhase.WAITING:
            try:
                self._waiting.remove(request)
            except ValueError:
                return False
            self._waiting_version += 1
        elif request.phase in (RequestPhase.PREFILL, RequestPhase.DECODE):
            if request not in self._running:
                return False
            self.blocks.free(request.request_id)
            self._running.remove(request)
            if request.phase is RequestPhase.PREFILL:
                self._n_prefill_phase -= 1
            else:
                self._decode_kv_tokens -= (request.prefilled_tokens
                                           + request.decoded_tokens)
        else:
            return False
        request.phase = RequestPhase.CANCELLED
        request.cancel_time = self.now
        self._requests_cancelled += 1
        self._cancelled_prefill_tokens += request.prefilled_tokens
        self._cancelled_decode_tokens += request.decoded_tokens
        return True

    # ------------------------------------------------------------------
    # The iteration
    # ------------------------------------------------------------------
    def step(self, build_info: bool = True) -> StepInfo | list:
        """Run one engine iteration; returns what happened.

        Raises ``RuntimeError`` when there is no work (callers should
        check :meth:`has_work`).

        ``build_info=False`` is the quiet fast path for drivers with no
        step observer: the iteration is identical, but the return value
        is the raw finished-request list instead of a :class:`StepInfo`
        (which would be built only to be discarded).
        """
        if not (self._waiting or self._running):
            raise RuntimeError("step() called on an idle engine")
        if (not build_info and not self._waiting
                and self._n_prefill_phase == 0):
            # Saturated steady state (decode-only batch, empty queue):
            # _admit is an empty-queue no-op and _build_iteration would
            # take its decode fast path, so both calls are skipped and
            # the decode iteration runs inline. Same float op order as
            # the general path below (prefill busy is exactly 0.0, and
            # ``0.0 + x == x``), so durations are bit-identical.
            kv_tokens = self._decode_kv_tokens
            decode_seqs = self._running[:]
            n_decode = len(decode_seqs)
            busy = ((self._weight_bytes
                     + kv_tokens * self._kv_bytes_per_token)
                    / self._mem_bandwidth
                    + n_decode * self._per_seq_overhead_s)
            duration = (0.0 if busy == 0.0
                        else busy + self._step_overhead_s) / self.speed
            self.now += duration
            # _apply_iteration's decode loop, inlined (empty prefill
            # plan). The phase check guards against an on_finish
            # callback cancelling a hedge sibling on this same engine
            # mid-loop — only possible once something has finished, so
            # it is skipped while ``finished`` is empty.
            finished: list[InferenceRequest] = []
            decode_phase = RequestPhase.DECODE
            n_decoded = 0
            finish = self._finish
            for request in decode_seqs:
                if finished and request.phase is not decode_phase:
                    continue
                n_decoded += 1
                tokens = request.decoded_tokens + 1
                request.decoded_tokens = tokens
                if tokens >= request.output_tokens:
                    finish(request, finished)
            self._decode_kv_tokens += n_decoded
            self._iterations += 1
            self._busy_seconds += duration
            self._decode_tokens += n_decode
            self._requests_finished += len(finished)
            # No allocations since the last peak sample (admission is
            # the only place used_blocks grows), so used <= peak holds
            # and the general path's peak update would be a no-op.
            return finished
        admitted = self._admit()
        prefill_plan, decode_seqs, prefill_tokens, kv_tokens = \
            self._build_iteration()
        n_decode = len(decode_seqs)
        # Inlined roofline (same arithmetic op order as
        # RooflineCostModel.iteration_seconds — bit-identical durations).
        if prefill_tokens:
            flops = prefill_tokens * self._flops_per_token
            flops /= self._compute_speedup
            busy = flops / self._effective_flops
        else:
            busy = 0.0
        if n_decode:
            bytes_read = (self._weight_bytes
                          + kv_tokens * self._kv_bytes_per_token)
            busy = busy + (bytes_read / self._mem_bandwidth
                           + n_decode * self._per_seq_overhead_s)
        duration = (0.0 if busy == 0.0
                    else busy + self._step_overhead_s) / self.speed
        start = self.now
        self.now += duration

        finished = self._apply_iteration(prefill_plan, decode_seqs)

        self._iterations += 1
        self._busy_seconds += duration
        self._prefill_tokens += prefill_tokens
        self._decode_tokens += n_decode
        self._requests_finished += len(finished)
        used = self.blocks.used_blocks
        if used > self._peak_used_blocks:
            self._peak_used_blocks = used
        if not build_info:
            return finished
        return StepInfo(
            start=start,
            duration=duration,
            prefill_tokens=prefill_tokens,
            n_prefill_seqs=len(prefill_plan),
            n_decode_seqs=n_decode,
            kv_tokens_in_batch=kv_tokens,
            admitted=tuple(admitted),
            finished=tuple(finished),
        )

    def step_and_frontier(self) -> float | None:
        """Quiet step fused with the post-step frontier probe.

        One call for the StepDriver's no-observer hot path: identical
        iteration to ``step(False)``, returning the post-step frontier
        (``None`` once drained) instead of the discarded result.
        """
        self.step(False)
        return self.now if (self._waiting or self._running) else None

    def _admit(self) -> list[InferenceRequest]:
        """Admit waiting requests in policy order until one doesn't fit.

        Stopping at the first misfit preserves the policy's ordering
        guarantee (no starvation) — and produces the head-of-line
        blocking that METIS' memory-aware configuration selection is
        designed to avoid.
        """
        admitted: list[InferenceRequest] = []
        waiting = self._waiting
        if not waiting:
            return admitted
        running = self._running
        blocks = self.blocks
        max_num_seqs = self._max_num_seqs
        prefill_phase = RequestPhase.PREFILL
        if self.policy.waiting_only:
            key = (self._waiting_version, blocks.free_blocks, len(running))
            if key == self._stall_key:
                self._admission_stalls += 1
                return admitted
            if self._ordered_version != self._waiting_version:
                self._ordered_cache = self.policy.order(waiting, running)
                self._ordered_version = self._waiting_version
            ordered = self._ordered_cache
        else:
            key = None
            ordered = self.policy.order(waiting, running)
        for request in ordered:
            if len(running) >= max_num_seqs:
                break
            # An empty engine always admits its queue head (ignore the
            # watermark) — otherwise a pool-sized request could stall
            # forever against its own reserve.
            watermark = self._watermark_blocks if running else 0
            total_tokens = request.prompt_tokens + request.output_tokens
            if not blocks.can_allocate(total_tokens, watermark):
                self._admission_stalls += 1
                if key is not None and not admitted:
                    self._stall_key = key
                break
            blocks.allocate(request.request_id, total_tokens)
            request.phase = prefill_phase
            request.admitted_time = self.now
            waiting.remove(request)
            running.append(request)
            admitted.append(request)
        if admitted:
            self._waiting_version += 1
            self._n_prefill_phase += len(admitted)
        return admitted

    def _build_iteration(
        self,
    ) -> tuple[list[tuple[InferenceRequest, int]], list[InferenceRequest],
               int, int]:
        """Decide this iteration's prefill chunks and decode set.

        Returns ``(prefill_plan, decode_seqs, prefill_tokens,
        kv_tokens_in_batch)`` — token totals are accumulated in the
        same pass so the step loop never re-walks the batch.
        """
        if self._n_prefill_phase == 0:
            # Decode-only fast path: every running request is in
            # DECODE, and the incremental counters already hold the
            # batch totals — identical to the walk below (int sums).
            return [], self._running[:], 0, self._decode_kv_tokens
        prefilling: list[InferenceRequest] = []
        decoding: list[InferenceRequest] = []
        kv_tokens = 0
        prefill_phase = RequestPhase.PREFILL
        for r in self._running:
            if r.phase is prefill_phase:
                prefilling.append(r)
            else:  # running requests are PREFILL or DECODE only
                decoding.append(r)
                kv_tokens += r.prefilled_tokens + r.decoded_tokens
        budget = self._prefill_budget
        plan: list[tuple[InferenceRequest, int]] = []
        prefill_tokens = 0

        if self._chunked_prefill:
            for request in prefilling:
                if budget <= 0:
                    break
                remaining = request.prompt_tokens - request.prefilled_tokens
                chunk = remaining if remaining < budget else budget
                plan.append((request, chunk))
                budget -= chunk
                prefill_tokens += chunk
            return plan, decoding, prefill_tokens, kv_tokens

        # vLLM-v0 style: prefill-only iterations process whole prompts;
        # decode-only iterations run otherwise.
        if prefilling:
            for request in prefilling:
                chunk = request.prompt_tokens - request.prefilled_tokens
                if plan and chunk > budget:
                    break
                plan.append((request, chunk))
                budget -= chunk
                prefill_tokens += chunk
            return plan, [], prefill_tokens, 0
        return plan, decoding, prefill_tokens, kv_tokens

    def _apply_iteration(
        self,
        prefill_plan: list[tuple[InferenceRequest, int]],
        decode_seqs: list[InferenceRequest],
    ) -> list[InferenceRequest]:
        finished: list[InferenceRequest] = []
        decode_phase = RequestPhase.DECODE
        now = self.now
        for request, chunk in prefill_plan:
            request.prefilled_tokens += chunk
            assert request.prefilled_tokens <= request.prompt_tokens
            if request.prefilled_tokens == request.prompt_tokens:
                request.phase = decode_phase
                request.prefill_done_time = now
                # The last prefill chunk emits the first output token.
                request.decoded_tokens += 1
                self._n_prefill_phase -= 1
                self._decode_kv_tokens += (request.prefilled_tokens
                                           + request.decoded_tokens)
                if request.decoded_tokens >= request.output_tokens:
                    self._finish(request, finished)
        # The per-token KV growth is summed locally and added once —
        # integer addition commutes with _finish/cancel retirements, so
        # the post-iteration total is unchanged.
        n_decoded = 0
        finish = self._finish
        for request in decode_seqs:
            if request.phase is not decode_phase:
                continue  # finished during prefill bookkeeping above
            n_decoded += 1
            tokens = request.decoded_tokens + 1
            request.decoded_tokens = tokens
            if tokens >= request.output_tokens:
                finish(request, finished)
        self._decode_kv_tokens += n_decoded
        return finished

    def _finish(self, request: InferenceRequest,
                finished: list[InferenceRequest]) -> None:
        request.phase = RequestPhase.FINISHED
        request.finish_time = self.now
        # Finishing requests are always DECODE phase (the transition in
        # _apply_iteration runs first) — retire their KV contribution.
        self._decode_kv_tokens -= (request.prefilled_tokens
                                   + request.decoded_tokens)
        self.blocks.free(request.request_id)
        self._running.remove(request)
        finished.append(request)
        if request.on_finish is not None:
            request.on_finish(request, self.now)

    # ------------------------------------------------------------------
    def attach(self, loop: "EventLoop") -> "StepDriver":
        """Run this engine as first-class events on ``loop``.

        Registers the engine as a time source and arms a
        :class:`~repro.sim.driver.StepDriver` whose step events carry
        each iteration; ``submit`` notifies the driver so an idle
        engine wakes at admission time and sleeps when it drains.
        """
        from repro.sim.driver import StepDriver

        driver = StepDriver(loop, self)
        self.wake_hook = driver.notify
        return driver

    def run_until_idle(self, max_iterations: int = 1_000_000) -> int:
        """Step until all submitted work completes; returns iterations."""
        n = 0
        while self.has_work():
            self.step()
            n += 1
            if n >= max_iterations:
                raise RuntimeError(
                    f"engine did not drain within {max_iterations} iterations"
                )
        return n
