"""The continuous-batching serving engine (vLLM stand-in).

Discrete-event semantics: each :meth:`ServingEngine.step` simulates one
engine iteration — admit waiting requests under KV-memory admission
control, schedule a (possibly chunked) prefill batch plus one decode
token for every running sequence, then advance the clock by the
iteration's duration from the roofline cost model.

Deliberate deviations from vLLM, chosen to keep the simulator honest
but tractable (documented in DESIGN.md):

* A sequence's full KV footprint (prompt + output) is reserved at
  admission, so preemption/swap-out never triggers. Admission is
  therefore slightly conservative, which *under*-states METIS' benefit.
* The final prefill chunk also yields the first output token (as in
  chunked-prefill vLLM).
* Multi-replica serving (``repro.serving.cluster``) advances replicas
  as events on a shared discrete-event loop instead of running
  per-replica threads; replicas never share KV memory or migrate
  sequences, and a request is routed exactly once at submission (no
  work stealing). Real deployments rebalance mid-flight; the
  deterministic event order keeps traces replayable and replica-count
  comparisons exact.
* Cross-replica placement is per *app* (all LLM calls of one RAG query
  stay on one replica), matching the co-location a Parrot-style
  gateway would enforce, rather than per-call scatter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.llm.costs import RooflineCostModel
from repro.llm.gpu import ClusterSpec
from repro.llm.model import ModelSpec
from repro.serving.kv_cache import BlockManager
from repro.serving.memory import GPUMemoryModel
from repro.serving.policies import SchedulingPolicy, make_policy
from repro.serving.request import InferenceRequest, RequestPhase
from repro.util.validation import check_in_range, check_positive

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (sim -> serving)
    from repro.sim import EventLoop, StepDriver

__all__ = ["EngineConfig", "ServingEngine", "StepInfo", "EngineStats"]


@dataclass(frozen=True)
class EngineConfig:
    """Static engine parameters (defaults mirror vLLM's)."""

    model: ModelSpec
    cluster: ClusterSpec
    block_tokens: int = 16
    max_num_seqs: int = 48
    max_batched_prefill_tokens: int = 2_048
    chunked_prefill: bool = True
    gpu_memory_utilization: float = 0.90
    activation_reserve_frac: float = 0.08
    kv_pool_cap_bytes: float | None = None
    watermark_frac: float = 0.01
    policy: str = "fcfs"

    def __post_init__(self) -> None:
        check_positive("block_tokens", self.block_tokens)
        check_positive("max_num_seqs", self.max_num_seqs)
        check_positive("max_batched_prefill_tokens",
                       self.max_batched_prefill_tokens)
        check_in_range("watermark_frac", self.watermark_frac, 0.0, 0.2)


@dataclass(frozen=True)
class StepInfo:
    """What one engine iteration did."""

    start: float
    duration: float
    prefill_tokens: int
    n_prefill_seqs: int
    n_decode_seqs: int
    kv_tokens_in_batch: int
    admitted: tuple[InferenceRequest, ...]
    finished: tuple[InferenceRequest, ...]

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass
class EngineStats:
    """Cumulative engine counters (cost accounting, diagnostics)."""

    iterations: int = 0
    busy_seconds: float = 0.0
    prefill_tokens: int = 0
    decode_tokens: int = 0
    requests_finished: int = 0
    peak_kv_utilization: float = 0.0
    admission_stalls: int = 0  # iterations where the queue head could not fit
    wakeups: int = 0  # idle -> busy transitions (event-driven wake events)
    requests_cancelled: int = 0  # speculation losers torn down mid-flight
    #: tokens already processed for requests that were then cancelled —
    #: the engine-side measure of speculative (wasted) work
    cancelled_prefill_tokens: int = 0
    cancelled_decode_tokens: int = 0


class ServingEngine:
    """Continuous-batching engine over a simulated GPU cluster.

    ``speed`` is a hardware-throughput multiplier: every iteration's
    roofline duration is divided by it, so ``speed=0.5`` models a
    replica on half-rate hardware (iterations take twice as long).
    The default 1.0 divides by the float literal ``1.0``, which is
    exact in IEEE arithmetic — homogeneous traces are byte-identical
    to the pre-``speed`` engine.
    """

    def __init__(self, config: EngineConfig,
                 policy: SchedulingPolicy | None = None,
                 speed: float = 1.0) -> None:
        check_positive("speed", speed)
        self.config = config
        self.speed = float(speed)
        self.memory = GPUMemoryModel(
            config.model,
            config.cluster,
            gpu_memory_utilization=config.gpu_memory_utilization,
            activation_reserve_frac=config.activation_reserve_frac,
            kv_pool_cap_bytes=config.kv_pool_cap_bytes,
        )
        self.blocks = BlockManager(
            n_blocks=self.memory.n_blocks(config.block_tokens),
            block_tokens=config.block_tokens,
        )
        self.cost = RooflineCostModel(config.model, config.cluster)
        self.policy = policy or make_policy(config.policy)
        self.stats = EngineStats()
        self.now = 0.0
        self._waiting: list[InferenceRequest] = []
        self._running: list[InferenceRequest] = []
        self._watermark_blocks = int(self.blocks.n_blocks * config.watermark_frac)
        #: Called after every ``submit`` (admission may need a wake /
        #: frontier re-arm); set by :meth:`attach`.
        self.wake_hook: Callable[[], None] | None = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def model(self) -> ModelSpec:
        return self.config.model

    @property
    def cluster(self) -> ClusterSpec:
        return self.config.cluster

    @property
    def waiting(self) -> tuple[InferenceRequest, ...]:
        return tuple(self._waiting)

    @property
    def running(self) -> tuple[InferenceRequest, ...]:
        return tuple(self._running)

    def has_work(self) -> bool:
        return bool(self._waiting or self._running)

    @property
    def outstanding(self) -> int:
        """Requests on this engine (waiting + running) — the queue-depth
        load proxy routers and deadline-risk speculation consume."""
        return len(self._waiting) + len(self._running)

    def free_kv_bytes(self) -> float:
        """Instantaneous free KV memory (the paper's ``get_free_memory``)."""
        return (
            self.blocks.free_blocks
            * self.blocks.block_tokens
            * self.memory.kv_bytes_per_token
        )

    def waiting_demand_bytes(self) -> float:
        """KV memory already promised to queued-but-unadmitted requests."""
        tokens = sum(r.total_tokens for r in self._waiting)
        return self.memory.tokens_to_bytes(tokens)

    def available_kv_bytes(self) -> float:
        """Free KV memory net of queued demand — what a *new* request can
        claim without displacing anyone (METIS' scheduling signal)."""
        return max(0.0, self.free_kv_bytes() - self.waiting_demand_bytes())

    def kv_bytes_for_tokens(self, n_tokens: int) -> float:
        return self.memory.tokens_to_bytes(n_tokens)

    # ------------------------------------------------------------------
    # Submission / time control
    # ------------------------------------------------------------------
    def submit(self, request: InferenceRequest) -> InferenceRequest:
        """Queue a request; validates it can ever be served."""
        if request.total_tokens > self.model.max_context:
            raise ValueError(
                f"request needs {request.total_tokens} tokens of context; "
                f"{self.model.name} supports {self.model.max_context}"
            )
        if request.total_tokens > self.memory.kv_pool_tokens:
            raise ValueError(
                f"request KV footprint ({request.total_tokens} tokens) exceeds "
                f"the KV pool ({self.memory.kv_pool_tokens} tokens)"
            )
        if request.phase is not RequestPhase.WAITING:
            raise ValueError(f"request already scheduled: {request!r}")
        if not self.has_work():
            self.stats.wakeups += 1
        self._waiting.append(request)
        if self.wake_hook is not None:
            self.wake_hook()
        return request

    def advance_to(self, t: float) -> None:
        """Jump the clock forward to ``t`` (idle time between arrivals)."""
        if t > self.now:
            self.now = t

    def cancel(self, request: InferenceRequest) -> bool:
        """Tear down an in-flight request (the speculation-loser path).

        A ``WAITING`` request is removed from the queue before it ever
        claims memory; a ``PREFILL``/``DECODE`` request is evicted from
        the running batch and its KV block reservation is freed
        immediately. ``on_finish`` never fires for a cancelled request
        — the caller owns whatever continuation the request carried.
        Returns ``False`` (untouched) for requests that already
        finished, were already cancelled, or were never submitted here.

        Must not be called from within this engine's own :meth:`step`
        (completion callbacks cancel work on *other* replicas; the
        iteration's prefill plan holds direct references that a
        same-replica eviction would corrupt).
        """
        if request.phase is RequestPhase.WAITING:
            try:
                self._waiting.remove(request)
            except ValueError:
                return False
        elif request.phase in (RequestPhase.PREFILL, RequestPhase.DECODE):
            if request not in self._running:
                return False
            self.blocks.free(request.request_id)
            self._running.remove(request)
        else:
            return False
        request.phase = RequestPhase.CANCELLED
        request.cancel_time = self.now
        self.stats.requests_cancelled += 1
        self.stats.cancelled_prefill_tokens += request.prefilled_tokens
        self.stats.cancelled_decode_tokens += request.decoded_tokens
        return True

    # ------------------------------------------------------------------
    # The iteration
    # ------------------------------------------------------------------
    def step(self) -> StepInfo:
        """Run one engine iteration; returns what happened.

        Raises ``RuntimeError`` when there is no work (callers should
        check :meth:`has_work`).
        """
        if not self.has_work():
            raise RuntimeError("step() called on an idle engine")
        admitted = self._admit()
        prefill_plan, decode_seqs = self._build_iteration()
        prefill_tokens = sum(chunk for _, chunk in prefill_plan)
        kv_tokens = sum(r.kv_tokens_in_use for r in decode_seqs)
        duration = self.cost.iteration_seconds(
            prefill_tokens, kv_tokens, len(decode_seqs)
        ) / self.speed
        start = self.now
        self.now += duration

        finished = self._apply_iteration(prefill_plan, decode_seqs)

        self.stats.iterations += 1
        self.stats.busy_seconds += duration
        self.stats.prefill_tokens += prefill_tokens
        self.stats.decode_tokens += len(decode_seqs)
        self.stats.requests_finished += len(finished)
        self.stats.peak_kv_utilization = max(
            self.stats.peak_kv_utilization, self.blocks.utilization()
        )
        return StepInfo(
            start=start,
            duration=duration,
            prefill_tokens=prefill_tokens,
            n_prefill_seqs=len(prefill_plan),
            n_decode_seqs=len(decode_seqs),
            kv_tokens_in_batch=kv_tokens,
            admitted=tuple(admitted),
            finished=tuple(finished),
        )

    def _admit(self) -> list[InferenceRequest]:
        """Admit waiting requests in policy order until one doesn't fit.

        Stopping at the first misfit preserves the policy's ordering
        guarantee (no starvation) — and produces the head-of-line
        blocking that METIS' memory-aware configuration selection is
        designed to avoid.
        """
        admitted: list[InferenceRequest] = []
        ordered = self.policy.order(self._waiting, self._running)
        for request in ordered:
            if len(self._running) >= self.config.max_num_seqs:
                break
            # An empty engine always admits its queue head (ignore the
            # watermark) — otherwise a pool-sized request could stall
            # forever against its own reserve.
            watermark = self._watermark_blocks if self._running else 0
            if not self.blocks.can_allocate(request.total_tokens, watermark):
                self.stats.admission_stalls += 1
                break
            self.blocks.allocate(request.request_id, request.total_tokens)
            request.phase = RequestPhase.PREFILL
            request.admitted_time = self.now
            self._waiting.remove(request)
            self._running.append(request)
            admitted.append(request)
        return admitted

    def _build_iteration(
        self,
    ) -> tuple[list[tuple[InferenceRequest, int]], list[InferenceRequest]]:
        """Decide this iteration's prefill chunks and decode set."""
        prefilling = [r for r in self._running if r.phase is RequestPhase.PREFILL]
        decoding = [r for r in self._running if r.phase is RequestPhase.DECODE]
        budget = self.config.max_batched_prefill_tokens
        plan: list[tuple[InferenceRequest, int]] = []

        if self.config.chunked_prefill:
            for request in prefilling:
                if budget <= 0:
                    break
                chunk = min(request.remaining_prefill, budget)
                plan.append((request, chunk))
                budget -= chunk
            return plan, decoding

        # vLLM-v0 style: prefill-only iterations process whole prompts;
        # decode-only iterations run otherwise.
        if prefilling:
            for request in prefilling:
                chunk = request.remaining_prefill
                if plan and chunk > budget:
                    break
                plan.append((request, chunk))
                budget -= chunk
            return plan, []
        return plan, decoding

    def _apply_iteration(
        self,
        prefill_plan: list[tuple[InferenceRequest, int]],
        decode_seqs: list[InferenceRequest],
    ) -> list[InferenceRequest]:
        finished: list[InferenceRequest] = []
        for request, chunk in prefill_plan:
            request.prefilled_tokens += chunk
            assert request.prefilled_tokens <= request.prompt_tokens
            if request.prefilled_tokens == request.prompt_tokens:
                request.phase = RequestPhase.DECODE
                request.prefill_done_time = self.now
                # The last prefill chunk emits the first output token.
                request.decoded_tokens += 1
                if request.decoded_tokens >= request.output_tokens:
                    self._finish(request, finished)
        for request in decode_seqs:
            if request.phase is not RequestPhase.DECODE:
                continue  # finished during prefill bookkeeping above
            request.decoded_tokens += 1
            if request.decoded_tokens >= request.output_tokens:
                self._finish(request, finished)
        return finished

    def _finish(self, request: InferenceRequest,
                finished: list[InferenceRequest]) -> None:
        request.phase = RequestPhase.FINISHED
        request.finish_time = self.now
        self.blocks.free(request.request_id)
        self._running.remove(request)
        finished.append(request)
        if request.on_finish is not None:
            request.on_finish(request, self.now)

    # ------------------------------------------------------------------
    def attach(self, loop: "EventLoop") -> "StepDriver":
        """Run this engine as first-class events on ``loop``.

        Registers the engine as a time source and arms a
        :class:`~repro.sim.driver.StepDriver` whose step events carry
        each iteration; ``submit`` notifies the driver so an idle
        engine wakes at admission time and sleeps when it drains.
        """
        from repro.sim.driver import StepDriver

        driver = StepDriver(loop, self)
        self.wake_hook = driver.notify
        return driver

    def run_until_idle(self, max_iterations: int = 1_000_000) -> int:
        """Step until all submitted work completes; returns iterations."""
        n = 0
        while self.has_work():
            self.step()
            n += 1
            if n >= max_iterations:
                raise RuntimeError(
                    f"engine did not drain within {max_iterations} iterations"
                )
        return n
