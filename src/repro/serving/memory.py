"""GPU memory budget for serving: weights + activations + KV cache.

Mirrors vLLM's memory partitioning: a fraction
``gpu_memory_utilization`` of HBM is claimed by the engine; weights and
an activation workspace are carved out first and the remainder becomes
the paged KV-cache pool. This module also implements the paper's
``get_free_memory()`` (§6, via pynvml there): the instantaneous free KV
memory METIS' joint scheduler consults.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.llm.gpu import ClusterSpec
from repro.llm.model import ModelSpec
from repro.util.validation import check_in_range

__all__ = ["GPUMemoryModel"]


@dataclass(frozen=True)
class GPUMemoryModel:
    """Static partition of cluster memory for one served model.

    Attributes:
        gpu_memory_utilization: fraction of total HBM the engine may
            use (vLLM default 0.9).
        activation_reserve_frac: fraction of total HBM reserved for
            activations / CUDA graphs / fragmentation slack.
    """

    model: ModelSpec
    cluster: ClusterSpec
    gpu_memory_utilization: float = 0.90
    activation_reserve_frac: float = 0.08
    #: Optional hard cap on the KV pool. Production deployments often
    #: reserve most of HBM for co-located models, CUDA graphs and burst
    #: headroom; the paper's testbed exhibits routinely-scarce free
    #: memory (its Fig 8 works with single-digit-GB free), which a cap
    #: reproduces.
    kv_pool_cap_bytes: float | None = None

    def __post_init__(self) -> None:
        check_in_range("gpu_memory_utilization",
                       self.gpu_memory_utilization, 0.1, 1.0)
        check_in_range("activation_reserve_frac",
                       self.activation_reserve_frac, 0.0, 0.5)
        if self.kv_pool_cap_bytes is not None and self.kv_pool_cap_bytes <= 0:
            raise ValueError(
                f"kv_pool_cap_bytes must be positive, got {self.kv_pool_cap_bytes}"
            )
        if self.kv_pool_bytes <= 0:
            raise ValueError(
                f"model {self.model.name!r} does not fit on {self.cluster}: "
                "no memory left for KV cache"
            )

    @property
    def usable_bytes(self) -> float:
        return self.cluster.memory_bytes * self.gpu_memory_utilization

    @property
    def activation_bytes(self) -> float:
        return self.cluster.memory_bytes * self.activation_reserve_frac

    @property
    def kv_pool_bytes(self) -> float:
        """Bytes available for the paged KV cache."""
        pool = self.usable_bytes - self.model.weight_bytes - self.activation_bytes
        if self.kv_pool_cap_bytes is not None:
            pool = min(pool, self.kv_pool_cap_bytes)
        return pool

    @property
    def kv_bytes_per_token(self) -> float:
        return self.model.kv_bytes_per_token

    @property
    def kv_pool_tokens(self) -> int:
        """Total KV-cache capacity in tokens."""
        return int(self.kv_pool_bytes // self.kv_bytes_per_token)

    def n_blocks(self, block_tokens: int) -> int:
        """Number of KV blocks the pool holds."""
        if block_tokens <= 0:
            raise ValueError(f"block_tokens must be positive, got {block_tokens}")
        return self.kv_pool_tokens // block_tokens

    def tokens_to_bytes(self, n_tokens: int) -> float:
        """KV bytes consumed by ``n_tokens`` context tokens."""
        return n_tokens * self.kv_bytes_per_token
