"""Discrete-event simulator of a continuous-batching LLM serving engine.

Stands in for vLLM on the paper's A40 testbed: paged KV-cache block
manager, iteration-level (continuous) batching, chunked prefill,
admission control against KV memory, and pluggable scheduling policies
(FCFS like vLLM; app-aware grouping like Parrot). The ``cluster``
module replicates the engine N-fold behind a load-aware router for
multi-instance serving experiments.
"""

from repro.serving.cluster import (
    ClusterEngine,
    ClusterStepInfo,
    LeastKVLoadRouter,
    LeastOutstandingRouter,
    PowerOfTwoRouter,
    ReplicaSnapshot,
    RoundRobinRouter,
    Router,
    ROUTER_NAMES,
    make_router,
)
from repro.serving.engine import EngineConfig, ServingEngine, StepInfo
from repro.serving.kv_cache import BlockManager
from repro.serving.memory import GPUMemoryModel
from repro.serving.policies import (
    AppAwarePolicy,
    FCFSPolicy,
    SchedulingPolicy,
    make_policy,
)
from repro.serving.request import InferenceRequest, RequestPhase

__all__ = [
    "AppAwarePolicy",
    "BlockManager",
    "ClusterEngine",
    "ClusterStepInfo",
    "EngineConfig",
    "FCFSPolicy",
    "GPUMemoryModel",
    "InferenceRequest",
    "LeastKVLoadRouter",
    "LeastOutstandingRouter",
    "PowerOfTwoRouter",
    "ReplicaSnapshot",
    "RequestPhase",
    "RoundRobinRouter",
    "Router",
    "ROUTER_NAMES",
    "SchedulingPolicy",
    "ServingEngine",
    "StepInfo",
    "make_policy",
    "make_router",
]
