"""Discrete-event simulator of a continuous-batching LLM serving engine.

Stands in for vLLM on the paper's A40 testbed: paged KV-cache block
manager, iteration-level (continuous) batching, chunked prefill,
admission control against KV memory, and pluggable scheduling policies
(FCFS like vLLM; app-aware grouping like Parrot). The ``cluster``
module replicates the engine N-fold behind a load-aware router for
multi-instance serving experiments.
"""

from repro.serving.cluster import (
    ClusterEngine,
    ClusterStepInfo,
    LeastKVLoadRouter,
    LeastOutstandingRouter,
    PowerOfTwoRouter,
    ReplicaSnapshot,
    RoundRobinRouter,
    Router,
    ROUTER_NAMES,
    make_router,
)
from repro.serving.engine import EngineConfig, ServingEngine, StepInfo
from repro.serving.kv_cache import BlockManager
from repro.serving.memory import GPUMemoryModel
from repro.serving.policies import (
    AppAwarePolicy,
    FCFSPolicy,
    SchedulingPolicy,
    make_policy,
)
from repro.serving.request import InferenceRequest, RequestPhase
from repro.serving.speculation import (
    DeadlineRisk,
    HedgeAfterDelay,
    HedgeContext,
    NoSpeculation,
    SPECULATION_NAMES,
    SpeculationPolicy,
    make_speculation,
)

__all__ = [
    "AppAwarePolicy",
    "BlockManager",
    "ClusterEngine",
    "ClusterStepInfo",
    "DeadlineRisk",
    "EngineConfig",
    "FCFSPolicy",
    "GPUMemoryModel",
    "HedgeAfterDelay",
    "HedgeContext",
    "InferenceRequest",
    "LeastKVLoadRouter",
    "LeastOutstandingRouter",
    "NoSpeculation",
    "PowerOfTwoRouter",
    "ReplicaSnapshot",
    "RequestPhase",
    "RoundRobinRouter",
    "Router",
    "ROUTER_NAMES",
    "SPECULATION_NAMES",
    "SchedulingPolicy",
    "ServingEngine",
    "SpeculationPolicy",
    "StepInfo",
    "make_policy",
    "make_router",
    "make_speculation",
]
