"""Multi-replica serving cluster: N engines behind a load-aware router.

A :class:`ClusterEngine` owns N independent :class:`ServingEngine`
replicas that advance as *first-class events* on the shared
:class:`~repro.sim.kernel.EventLoop` (via :meth:`ClusterEngine.attach`
and a :class:`~repro.sim.driver.StepDriver`): while any replica has
work, one armed step event sits at the cluster frontier — the minimum
busy-replica clock — and each firing advances the lagging busy replica
(ties broken by replica index). Idle replicas hold no events (they
*sleep*); admission wakes them through the engine's ``wake_hook``, and
a submission routed to an idle replica of a busy cluster *regresses*
the frontier, which the driver tracks by rescheduling the armed event.

:meth:`ClusterEngine.step` exposes the same advance-the-lagging-replica
rule as a manual driving surface, so hand-rolled loops (tests, the
golden-trace pins) and the event-driven path produce byte-identical
traces — with one replica both collapse to a bare engine, which the
golden-trace test pins down.

Replicas may run at heterogeneous speeds (``replica_speeds``: per-
replica hardware-throughput multipliers, e.g. ``(1.0, 0.5)`` for a
fast/slow pair); each replica's iterations simply take
``roofline / speed`` seconds and the event order follows from the
clocks. Homogeneous fleets (the default) are float-exact with the
pre-``speed`` cluster.

Requests are placed by a pluggable :class:`Router`. Routing is sticky
per application (``app_id``): every LLM call of one RAG query lands on
the same replica, which keeps a query's mappers and reducer co-located
(Parrot-style app-aware batching stays meaningful) and lets METIS'
joint scheduler prune configurations against *that* replica's free KV
memory. Requests with an empty ``app_id`` are routed independently.

Router contracts (see docs/CLUSTER.md):

* ``select`` is called once per new app (or per unpinned request) and
  must return a replica index in ``[0, n_replicas)``.
* Routers may inspect replica load (queue depth, KV occupancy) but must
  not mutate replicas.
* All routers are deterministic given their construction arguments;
  :class:`PowerOfTwoRouter` draws from a named ``repro.util.rng``
  stream, so a root seed fixes its choices.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

from repro.serving.engine import EngineConfig, EngineStats, ServingEngine, StepInfo
from repro.serving.request import InferenceRequest
from repro.util.rng import stream
from repro.util.validation import check_positive

_INF = float("inf")

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (sim -> serving)
    from repro.sim import EventLoop, StepDriver

__all__ = [
    "ClusterEngine",
    "ClusterStepInfo",
    "LeastKVLoadRouter",
    "LeastOutstandingRouter",
    "PowerOfTwoRouter",
    "ReplicaSnapshot",
    "RoundRobinRouter",
    "Router",
    "ROUTER_NAMES",
    "make_router",
]


# ----------------------------------------------------------------------
# Routers
# ----------------------------------------------------------------------
class Router(ABC):
    """Picks the replica a new app (or unpinned request) is placed on."""

    name: str = "base"

    @abstractmethod
    def select(self, replicas: Sequence[ServingEngine]) -> int:
        """Return the target replica index in ``[0, len(replicas))``."""

    @staticmethod
    def outstanding(replica: ServingEngine) -> int:
        """Load proxy: requests on the replica (waiting + running)."""
        return replica.outstanding


class RoundRobinRouter(Router):
    """Cycle through replicas regardless of load."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def select(self, replicas: Sequence[ServingEngine]) -> int:
        choice = self._next % len(replicas)
        self._next = (self._next + 1) % len(replicas)
        return choice


class LeastOutstandingRouter(Router):
    """Replica with the fewest outstanding requests (ties: lowest index)."""

    name = "least-outstanding"

    def select(self, replicas: Sequence[ServingEngine]) -> int:
        return min(range(len(replicas)),
                   key=lambda i: (self.outstanding(replicas[i]), i))


class LeastKVLoadRouter(Router):
    """Replica with the most KV memory still claimable by new work
    (free pool net of queued demand — METIS' scheduling signal), ties
    broken by fewest outstanding requests then lowest index."""

    name = "least-kv-load"

    def select(self, replicas: Sequence[ServingEngine]) -> int:
        return min(
            range(len(replicas)),
            key=lambda i: (-replicas[i].available_kv_bytes(),
                           self.outstanding(replicas[i]), i),
        )


class PowerOfTwoRouter(Router):
    """Power-of-two-choices: sample two distinct replicas from a named
    rng stream, place on the less loaded one (classic Mitzenmacher
    load balancing — near-best balance at O(1) probe cost)."""

    name = "power-of-two"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = stream(seed, "cluster", "router", "p2c")

    def select(self, replicas: Sequence[ServingEngine]) -> int:
        n = len(replicas)
        if n == 1:
            return 0
        i, j = sorted(int(x) for x in
                      self._rng.choice(n, size=2, replace=False))
        if self.outstanding(replicas[j]) < self.outstanding(replicas[i]):
            return j
        return i


_ROUTERS = {
    RoundRobinRouter.name: RoundRobinRouter,
    LeastOutstandingRouter.name: LeastOutstandingRouter,
    LeastKVLoadRouter.name: LeastKVLoadRouter,
    PowerOfTwoRouter.name: PowerOfTwoRouter,
}

#: Router names accepted by :func:`make_router` (and the CLI).
ROUTER_NAMES: tuple[str, ...] = tuple(sorted(_ROUTERS))


def make_router(name: str, seed: int = 0) -> Router:
    """Instantiate a router by name (see :data:`ROUTER_NAMES`)."""
    try:
        cls = _ROUTERS[name]
    except KeyError:
        known = ", ".join(ROUTER_NAMES)
        raise ValueError(f"unknown router {name!r}; known: {known}") from None
    if cls is PowerOfTwoRouter:
        return PowerOfTwoRouter(seed=seed)
    return cls()


# ----------------------------------------------------------------------
# Cluster
# ----------------------------------------------------------------------
@dataclass
class ClusterStepInfo:
    """One cluster iteration: which replica stepped and what it did.

    Non-frozen for the same hot-path reason as :class:`StepInfo`;
    treat instances as immutable."""

    replica_id: int
    info: StepInfo

    @property
    def end(self) -> float:
        return self.info.end


@dataclass(frozen=True)
class ReplicaSnapshot:
    """Instantaneous per-replica load figures (for reports/routers)."""

    replica_id: int
    now: float
    queue_depth: int
    running: int
    kv_utilization: float
    free_kv_bytes: float
    available_kv_bytes: float
    stats: EngineStats
    speed: float = 1.0
    #: Lifecycle state: ``active`` / ``draining`` / ``retired``.
    state: str = "active"


class ClusterEngine:
    """N independent serving replicas advanced as events.

    Exposes the same driving surface as :class:`ServingEngine`
    (``now`` / ``has_work`` / ``advance_to`` / ``submit`` / ``step`` /
    ``run_until_idle`` / ``stats`` / ``attach``), so the experiment
    runner's event loop drives either interchangeably.

    ``replica_speeds`` gives each replica a hardware-throughput
    multiplier (see :class:`ServingEngine`); its length must equal
    ``n_replicas`` — a mismatch fails fast with the offending counts.
    """

    def __init__(
        self,
        config: EngineConfig,
        n_replicas: int = 1,
        router: str | Router = "least-kv-load",
        seed: int = 0,
        replica_speeds: Sequence[float] | None = None,
    ) -> None:
        check_positive("n_replicas", n_replicas)
        n_replicas = int(n_replicas)
        if replica_speeds is None:
            speeds = [1.0] * n_replicas
        else:
            speeds = [float(s) for s in replica_speeds]
            if len(speeds) != n_replicas:
                raise ValueError(
                    f"replica_speeds has {len(speeds)} entries but the "
                    f"cluster has {n_replicas} replicas; pass one speed "
                    "per replica"
                )
            for i, s in enumerate(speeds):
                check_positive(f"replica_speeds[{i}]", s)
        self.config = config
        self.replicas = [ServingEngine(config, speed=s) for s in speeds]
        self.replica_speeds: tuple[float, ...] = tuple(speeds)
        # Elastic-fleet lifecycle (driven by repro.workload.Autoscaler).
        # The initial fleet is provisioned at t=0 and active; replicas
        # are never removed from the list — retirement keeps indices
        # (and with them pins, assignments, reports) stable.
        self._state: list[str] = ["active"] * n_replicas
        self.provisioned_at: list[float] = [0.0] * n_replicas
        self.retired_at: list[float | None] = [None] * n_replicas
        self.router = (make_router(router, seed=seed)
                       if isinstance(router, str) else router)
        self._pins: dict[str, int] = {}
        self._assignments: dict[int, int] = {}  # request_id -> replica
        #: Bumped whenever a replica's busy set / clock can change
        #: outside :meth:`step` itself (submit, cancel, add_replica) —
        #: lets ``step_and_frontier`` reuse its pre-step scan when the
        #: stepped replica was provably the only thing that moved.
        self._busy_version = 0
        #: Called after every ``submit`` (admission may need a wake /
        #: frontier re-arm); set by :meth:`attach`.
        self.wake_hook: Callable[[], None] | None = None

    # ------------------------------------------------------------------
    # Introspection (mirrors ServingEngine where meaningful)
    # ------------------------------------------------------------------
    @property
    def n_replicas(self) -> int:
        return len(self.replicas)

    @property
    def model(self):
        return self.replicas[0].model

    @property
    def memory(self):
        return self.replicas[0].memory

    @property
    def cost(self):
        return self.replicas[0].cost

    @property
    def cluster(self):
        """The (per-replica) GPU cluster spec, for cost accounting."""
        return self.replicas[0].cluster

    @property
    def now(self) -> float:
        """The cluster frontier.

        While any replica is busy this is the *earliest* busy replica
        clock (the simulation frontier that must advance next — and
        the timestamp of the armed step event in event-driven mode);
        when the cluster is idle it is the latest time any replica
        reached. Note the frontier is not monotone: admission to an
        idle replica of a busy cluster pulls it backwards.
        """
        busy_min = _INF
        idle_max = float("-inf")
        for r in self.replicas:
            rn = r.now
            if r._waiting or r._running:
                if rn < busy_min:
                    busy_min = rn
            elif rn > idle_max:
                idle_max = rn
        if busy_min != _INF:
            return busy_min
        return idle_max

    @property
    def stats(self) -> EngineStats:
        """Cluster-aggregate counters (peak KV is the max over replicas)."""
        agg = EngineStats()
        for r in self.replicas:
            stats = r.stats
            agg.iterations += stats.iterations
            agg.busy_seconds += stats.busy_seconds
            agg.prefill_tokens += stats.prefill_tokens
            agg.decode_tokens += stats.decode_tokens
            agg.requests_finished += stats.requests_finished
            agg.admission_stalls += stats.admission_stalls
            agg.wakeups += stats.wakeups
            agg.requests_cancelled += stats.requests_cancelled
            agg.cancelled_prefill_tokens += stats.cancelled_prefill_tokens
            agg.cancelled_decode_tokens += stats.cancelled_decode_tokens
            agg.peak_kv_utilization = max(agg.peak_kv_utilization,
                                          stats.peak_kv_utilization)
        return agg

    def has_work(self) -> bool:
        for r in self.replicas:
            if r._waiting or r._running:
                return True
        return False

    def frontier(self) -> float | None:
        """Fused ``has_work``/``now`` probe for the StepDriver.

        One replica scan returning the earliest busy replica clock (==
        :attr:`now` whenever the cluster has work), or ``None`` when
        every replica is idle — halves the per-arm scan cost versus
        calling ``has_work()`` and ``now`` separately.
        """
        best = _INF
        for r in self.replicas:
            if (r._waiting or r._running) and r.now < best:
                best = r.now
        return None if best == _INF else best

    def total_free_kv_bytes(self) -> float:
        return sum(r.free_kv_bytes() for r in self.replicas)

    def replica_outstanding(self) -> tuple[int, ...]:
        """Per-replica outstanding-request counts (waiting + running).

        The single authoritative queue-depth signal under the
        event-driven driver: routers, the scheduling view, and the
        deadline-risk speculation policy all read this instead of
        recomputing it from the replica lists ad hoc.
        """
        return tuple(r.outstanding for r in self.replicas)

    def snapshots(self) -> tuple[ReplicaSnapshot, ...]:
        return tuple(
            ReplicaSnapshot(
                replica_id=i,
                now=r.now,
                queue_depth=len(r.waiting),
                running=len(r.running),
                kv_utilization=r.blocks.utilization(),
                free_kv_bytes=r.free_kv_bytes(),
                available_kv_bytes=r.available_kv_bytes(),
                stats=r.stats,
                speed=r.speed,
                state=self._state[i],
            )
            for i, r in enumerate(self.replicas)
        )

    # ------------------------------------------------------------------
    # Elastic fleet lifecycle (active -> draining -> retired)
    # ------------------------------------------------------------------
    def is_active(self, replica_id: int) -> bool:
        """Whether ``replica_id`` currently accepts new placements."""
        return self._state[replica_id] == "active"

    @property
    def n_active(self) -> int:
        return self._state.count("active")

    def active_replica_ids(self) -> tuple[int, ...]:
        """Replicas eligible for new apps, hedges, and pins."""
        return tuple(i for i, s in enumerate(self._state) if s == "active")

    def draining_replica_ids(self) -> tuple[int, ...]:
        return tuple(i for i, s in enumerate(self._state) if s == "draining")

    def add_replica(self, at: float, speed: float = 1.0) -> int:
        """Provision a fresh replica whose clock starts at ``at``.

        The replica joins active (routable immediately) but idle — it
        holds no events until work is routed to it, so adding capacity
        never perturbs the existing schedule by itself.
        """
        check_positive("speed", speed)
        engine = ServingEngine(self.config, speed=float(speed))
        engine.advance_to(at)
        self.replicas.append(engine)
        self._busy_version += 1
        self.replica_speeds = self.replica_speeds + (float(speed),)
        self._state.append("active")
        self.provisioned_at.append(float(at))
        self.retired_at.append(None)
        return len(self.replicas) - 1

    def begin_drain(self, replica_id: int) -> None:
        """Stop routing new work to a replica; it keeps what it holds.

        Draining is the first half of drain-before-retire: the replica
        finishes its outstanding requests (and keeps serving apps
        pinned to it) but receives nothing new. At least one replica
        must stay active — a fleet with zero routable replicas would
        deadlock admission.
        """
        if self._state[replica_id] != "active":
            raise ValueError(
                f"replica {replica_id} is {self._state[replica_id]}, "
                "not active; only active replicas can begin draining"
            )
        if self.n_active <= 1:
            raise ValueError(
                "cannot drain the last active replica; the cluster "
                "needs at least one routable replica"
            )
        self._state[replica_id] = "draining"

    def cancel_drain(self, replica_id: int) -> None:
        """Reactivate a draining replica (instant, free scale-up)."""
        if self._state[replica_id] != "draining":
            raise ValueError(
                f"replica {replica_id} is {self._state[replica_id]}, "
                "not draining; nothing to cancel"
            )
        self._state[replica_id] = "active"

    def can_retire(self, replica_id: int) -> bool:
        """Whether a draining replica has fully unwound.

        True only when nothing would be stranded: no outstanding
        request (which also covers in-flight hedge lanes and their KV
        reservations) and no app still pinned to the replica.
        """
        if self._state[replica_id] != "draining":
            return False
        if self.replicas[replica_id].outstanding > 0:
            return False
        return replica_id not in self._pins.values()

    def retire(self, replica_id: int, at: float) -> None:
        """Remove a drained replica from the fleet (terminal).

        The replica stays in ``self.replicas`` so indices remain
        stable, but it is unroutable and its provisioned-capacity
        clock stops at ``at`` (see :meth:`provisioned_seconds`).
        """
        if not self.can_retire(replica_id):
            raise ValueError(
                f"replica {replica_id} cannot retire: state="
                f"{self._state[replica_id]!r}, outstanding="
                f"{self.replicas[replica_id].outstanding}, pinned_apps="
                f"{sorted(a for a, r in self._pins.items() if r == replica_id)}"
            )
        self._state[replica_id] = "retired"
        self.retired_at[replica_id] = float(at)

    def provisioned_seconds(self, end: float) -> list[float]:
        """Per-replica seconds of provisioned capacity over ``[0, end]``.

        Each replica is billed from its provisioning time until it
        retired (or until ``end`` while it never did) — the basis for
        idle-capacity pricing in the cost ledger.
        """
        out = []
        for start, stop in zip(self.provisioned_at, self.retired_at):
            effective_stop = min(stop, end) if stop is not None else end
            out.append(max(0.0, effective_stop - start))
        return out

    # ------------------------------------------------------------------
    # Routing / placement
    # ------------------------------------------------------------------
    def assign_app(self, app_id: str) -> int:
        """Route an app to a replica (sticky: later calls reuse the pin)."""
        if not app_id:
            raise ValueError("assign_app requires a non-empty app_id")
        rid = self._pins.get(app_id)
        if rid is None:
            rid = self._checked_select()
            self._pins[app_id] = rid
        return rid

    def pin_app(self, app_id: str, replica_id: int) -> None:
        """Force an app onto a replica (controller re-placement)."""
        if not 0 <= replica_id < self.n_replicas:
            raise ValueError(
                f"replica_id must be in [0, {self.n_replicas}), got {replica_id}"
            )
        if self._state[replica_id] != "active":
            raise ValueError(
                f"cannot pin app {app_id!r} to replica {replica_id}: it is "
                f"{self._state[replica_id]}, not active"
            )
        self._pins[app_id] = replica_id

    def replica_of_app(self, app_id: str) -> int | None:
        return self._pins.get(app_id)

    def release_app(self, app_id: str) -> None:
        """Drop an app's pin once its calls have drained (bounds state)."""
        self._pins.pop(app_id, None)

    def replica_of_request(self, request_id: int) -> int | None:
        """Placement of an in-flight request (None once it finishes —
        completed entries are pruned to bound tracking state)."""
        return self._assignments.get(request_id)

    def _checked_select(self) -> int:
        # Fast path: a fully active fleet routes over ``self.replicas``
        # exactly as before elasticity existed — byte-identical
        # schedules for every run without an autoscaler.
        if self.n_active == self.n_replicas:
            rid = self.router.select(self.replicas)
            if not 0 <= rid < self.n_replicas:
                raise RuntimeError(
                    f"router {self.router.name!r} returned replica {rid}; "
                    f"cluster has {self.n_replicas}"
                )
            return rid
        active = self.active_replica_ids()
        if not active:
            raise RuntimeError(
                "no active replica to route to; the autoscaler must keep "
                "at least one replica active"
            )
        view = [self.replicas[i] for i in active]
        local = self.router.select(view)
        if not 0 <= local < len(view):
            raise RuntimeError(
                f"router {self.router.name!r} returned replica {local}; "
                f"{len(view)} replicas are active"
            )
        return active[local]

    # ------------------------------------------------------------------
    # Driving surface
    # ------------------------------------------------------------------
    def submit(self, request: InferenceRequest) -> InferenceRequest:
        """Route and queue a request (sticky per ``app_id``)."""
        if request.app_id:
            rid = self.assign_app(request.app_id)
        else:
            rid = self._checked_select()
        submitted = self.replicas[rid].submit(request)
        self._assignments[request.request_id] = rid
        self._busy_version += 1
        if self.wake_hook is not None:
            # Admission may wake an idle cluster or regress the
            # frontier (an idle replica's clock trails busy ones);
            # the StepDriver (re-)arms the step event accordingly.
            self.wake_hook()
        return submitted

    def advance_to(self, t: float) -> None:
        """Move every replica's clock forward to ``t`` (never backward)."""
        for r in self.replicas:
            if t > r.now:
                r.now = t

    def advance_and_observe(self, t: float) -> float:
        """:meth:`advance_to` fused with the post-advance :attr:`now`.

        The event loop reads a source's clock right after advancing it
        (the external-event clamp); doing both in one replica scan
        halves the per-arrival scan cost. Equivalent because
        ``min_i max(r_i, t) == max(min_i r_i, t)`` — the busy-minimum
        after the advance is exactly the clamped busy-minimum before.
        """
        busy_min = _INF
        idle_max = float("-inf")
        for r in self.replicas:
            rn = r.now
            if t > rn:
                r.now = rn = t
            if r._waiting or r._running:
                if rn < busy_min:
                    busy_min = rn
            elif rn > idle_max:
                idle_max = rn
        return busy_min if busy_min != _INF else idle_max

    def cancel(self, request: InferenceRequest) -> bool:
        """Tear down an in-flight request on whichever replica holds it.

        Resolves the placement recorded at submission, delegates to
        :meth:`ServingEngine.cancel` (queue removal or KV-releasing
        eviction), and prunes the assignment so tracking state stays
        bounded. ``False`` for unknown/already-finished requests.
        """
        rid = self._assignments.get(request.request_id)
        if rid is None:
            return False
        if not self.replicas[rid].cancel(request):
            return False
        self._assignments.pop(request.request_id, None)
        self._busy_version += 1
        return True

    def step(self, build_info: bool = True) -> ClusterStepInfo | list:
        """Advance the lagging busy replica by one engine iteration.

        This is the single stepping rule for both driving modes: the
        event-driven :class:`~repro.sim.driver.StepDriver` calls it
        once per fired step event, and manual loops call it directly —
        the min-clock / min-index order makes the two byte-identical.

        ``build_info=False`` mirrors :meth:`ServingEngine.step`'s quiet
        fast path (raw finished list instead of a ClusterStepInfo).
        """
        rid = -1
        best = _INF
        for i, r in enumerate(self.replicas):
            if (r._waiting or r._running) and r.now < best:
                best = r.now
                rid = i
        if rid < 0:
            raise RuntimeError("step() called on an idle cluster")
        if not build_info:
            finished = self.replicas[rid].step(False)
            if finished:
                assignments = self._assignments
                for req in finished:
                    assignments.pop(req.request_id, None)
            return finished
        info = self.replicas[rid].step()
        if info.finished:
            assignments = self._assignments
            for finished in info.finished:
                assignments.pop(finished.request_id, None)
        return ClusterStepInfo(rid, info)

    def step_and_frontier(self) -> float | None:
        """Quiet step fused with the post-step frontier probe.

        One call for the StepDriver's no-observer hot path: advances
        the lagging busy replica exactly like ``step(False)``, then
        returns :meth:`frontier` — saving a second full replica scan
        and two method dispatches per step event. Same min-clock /
        min-index rule, so dispatch order is byte-identical.
        """
        replicas = self.replicas
        rid = -1
        best = _INF
        second = _INF
        for i, r in enumerate(replicas):
            if r._waiting or r._running:
                rn = r.now
                if rn < best:
                    second = best
                    best = rn
                    rid = i
                elif rn < second:
                    second = rn
        if rid < 0:
            raise RuntimeError("step() called on an idle cluster")
        version = self._busy_version
        stepped = replicas[rid]
        finished = stepped.step(False)
        if finished:
            assignments = self._assignments
            for req in finished:
                assignments.pop(req.request_id, None)
        if self._busy_version == version:
            # Nothing submitted/cancelled during the step: only the
            # stepped replica moved, so the new frontier is the pre-step
            # runner-up vs. its own advanced clock.
            if stepped._waiting or stepped._running:
                rn = stepped.now
                if rn < second:
                    second = rn
            return None if second == _INF else second
        best = _INF
        for r in replicas:
            if (r._waiting or r._running) and r.now < best:
                best = r.now
        return None if best == _INF else best

    def attach(self, loop: "EventLoop") -> "StepDriver":
        """Run this cluster's replicas as first-class events on ``loop``.

        Registers the cluster as a time source and arms a
        :class:`~repro.sim.driver.StepDriver`; ``submit`` notifies the
        driver so idle replicas wake at admission time, busy ones keep
        exactly one step event armed at the frontier, and a drained
        cluster holds no events at all.
        """
        from repro.sim.driver import StepDriver

        driver = StepDriver(loop, self, kind="cluster-step")
        self.wake_hook = driver.notify
        return driver

    def run_until_idle(self, max_iterations: int = 1_000_000) -> int:
        """Step until every replica drains; returns total iterations."""
        n = 0
        while self.has_work():
            self.step()
            n += 1
            if n >= max_iterations:
                raise RuntimeError(
                    f"cluster did not drain within {max_iterations} iterations"
                )
        return n
