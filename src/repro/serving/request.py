"""Inference requests and their lifecycle inside the engine.

A request moves through ``WAITING → PREFILL → DECODE → FINISHED``.
Timestamps for each transition are recorded so the evaluation layer can
decompose end-to-end delay into queueing / prefill / decode parts.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.util.validation import check_non_negative, check_positive

__all__ = ["RequestPhase", "InferenceRequest"]

_request_counter = itertools.count()


class RequestPhase(enum.Enum):
    WAITING = "waiting"
    PREFILL = "prefill"
    DECODE = "decode"
    FINISHED = "finished"
    #: torn down by :meth:`ServingEngine.cancel` (speculation loser);
    #: terminal like FINISHED, but ``on_finish`` never fires.
    CANCELLED = "cancelled"


@dataclass(eq=False, slots=True)
class InferenceRequest:
    """One LLM call scheduled on the engine.

    Identity semantics (``eq=False``): two requests are never "equal by
    value" — ``request_id`` is unique per instance — so comparisons fall
    back to ``is``, which keeps the engine's queue ``list.remove`` calls
    O(n) pointer compares instead of field-by-field dataclass equality.
    ``slots=True`` because the engine's per-iteration loops touch every
    running request's counters — slot access skips the instance dict.

    Attributes:
        prompt_tokens: prompt length to prefill.
        output_tokens: exact number of tokens to decode (the synthesis
            planner decides answer lengths, so generation length is
            known, unlike a real engine's stop-token uncertainty).
        app_id: the RAG query this call belongs to (Parrot-style
            app-aware policies group by this).
        stage: position in the app's call DAG (0 = mappers, 1 = reduce),
            used by app-aware scheduling.
        on_finish: callback fired with (request, now) at completion.
    """

    prompt_tokens: int
    output_tokens: int
    arrival_time: float
    app_id: str = ""
    stage: int = 0
    priority: int = 0
    on_finish: Optional[Callable[["InferenceRequest", float], None]] = None
    request_id: int = field(default_factory=lambda: next(_request_counter))

    # Lifecycle state (engine-managed).
    phase: RequestPhase = RequestPhase.WAITING
    prefilled_tokens: int = 0
    decoded_tokens: int = 0
    admitted_time: float | None = None
    prefill_done_time: float | None = None
    finish_time: float | None = None
    cancel_time: float | None = None

    def __post_init__(self) -> None:
        check_positive("prompt_tokens", self.prompt_tokens)
        check_positive("output_tokens", self.output_tokens)
        check_non_negative("arrival_time", self.arrival_time)

    # ------------------------------------------------------------------
    @property
    def total_tokens(self) -> int:
        """KV footprint at completion: prompt + generated tokens."""
        return self.prompt_tokens + self.output_tokens

    @property
    def remaining_prefill(self) -> int:
        return self.prompt_tokens - self.prefilled_tokens

    @property
    def remaining_decode(self) -> int:
        return self.output_tokens - self.decoded_tokens

    @property
    def remaining_work_tokens(self) -> int:
        """Prefill + decode tokens still to process (for SRPT-style policies)."""
        return self.remaining_prefill + self.remaining_decode

    @property
    def kv_tokens_in_use(self) -> int:
        """Context tokens currently resident in KV cache."""
        return self.prefilled_tokens + self.decoded_tokens

    # ------------------------------------------------------------------
    @property
    def queueing_delay(self) -> float:
        """Time spent waiting before first being scheduled."""
        if self.admitted_time is None:
            return 0.0
        return self.admitted_time - self.arrival_time

    @property
    def e2e_delay(self) -> float:
        """Submission-to-completion latency (None-safe: 0 if unfinished)."""
        if self.finish_time is None:
            return 0.0
        return self.finish_time - self.arrival_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"InferenceRequest(id={self.request_id}, app={self.app_id!r}, "
            f"phase={self.phase.value}, prompt={self.prompt_tokens}, "
            f"out={self.output_tokens})"
        )
