"""Paged KV-cache block manager (PagedAttention-style).

GPU KV memory is carved into fixed-size blocks of ``block_tokens``
tokens. Sequences are allocated whole blocks; internal fragmentation is
bounded by one block per sequence, exactly as in vLLM. The engine
allocates a sequence's full footprint (prompt + output) at admission,
which makes admission conservative and removes the need to model
preemption/swapping (documented deviation from vLLM, which can preempt
on OOM).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_positive

__all__ = ["BlockManager", "Allocation"]


@dataclass(frozen=True)
class Allocation:
    """A sequence's block reservation."""

    seq_id: int
    n_blocks: int
    n_tokens: int


class BlockManager:
    """Tracks free/used KV blocks and per-sequence allocations."""

    def __init__(self, n_blocks: int, block_tokens: int) -> None:
        check_positive("n_blocks", n_blocks)
        check_positive("block_tokens", block_tokens)
        self.n_blocks = int(n_blocks)
        self.block_tokens = int(block_tokens)
        self._free_blocks = int(n_blocks)
        self._allocations: dict[int, Allocation] = {}

    # ------------------------------------------------------------------
    @property
    def free_blocks(self) -> int:
        return self._free_blocks

    @property
    def used_blocks(self) -> int:
        return self.n_blocks - self._free_blocks

    @property
    def n_sequences(self) -> int:
        return len(self._allocations)

    def blocks_needed(self, n_tokens: int) -> int:
        """Blocks required to hold ``n_tokens`` tokens (ceiling)."""
        if n_tokens <= 0:
            return 0
        return -(-n_tokens // self.block_tokens)

    def can_allocate(self, n_tokens: int, watermark_blocks: int = 0) -> bool:
        """True when ``n_tokens`` fit while keeping ``watermark_blocks`` free.

        The watermark mirrors vLLM's guard against admitting a request
        that would immediately starve running sequences.
        """
        return self.blocks_needed(n_tokens) <= self._free_blocks - watermark_blocks

    # ------------------------------------------------------------------
    def allocate(self, seq_id: int, n_tokens: int) -> Allocation:
        """Reserve blocks for a sequence; raises on double-alloc or OOM."""
        if seq_id in self._allocations:
            raise ValueError(f"sequence {seq_id} already has an allocation")
        needed = self.blocks_needed(n_tokens)
        if needed > self._free_blocks:
            raise MemoryError(
                f"KV OOM: need {needed} blocks for seq {seq_id}, "
                f"only {self._free_blocks} free"
            )
        self._free_blocks -= needed
        alloc = Allocation(seq_id=seq_id, n_blocks=needed, n_tokens=n_tokens)
        self._allocations[seq_id] = alloc
        return alloc

    def free(self, seq_id: int) -> None:
        """Release a sequence's blocks; raises if unknown."""
        alloc = self._allocations.pop(seq_id, None)
        if alloc is None:
            raise KeyError(f"no allocation for sequence {seq_id}")
        self._free_blocks += alloc.n_blocks
        assert self._free_blocks <= self.n_blocks, "block accounting corrupted"

    def allocation_of(self, seq_id: int) -> Allocation | None:
        return self._allocations.get(seq_id)

    @property
    def seq_ids(self) -> frozenset[int]:
        """Sequence ids currently holding an allocation."""
        return frozenset(self._allocations)

    @property
    def allocated_blocks(self) -> int:
        """Blocks accounted to live allocations (invariant: == used)."""
        return sum(a.n_blocks for a in self._allocations.values())

    # ------------------------------------------------------------------
    def utilization(self) -> float:
        """Fraction of blocks in use."""
        return self.used_blocks / self.n_blocks
