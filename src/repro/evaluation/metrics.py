"""Multi-metric RAG quality harness (``docs/EVALUATION.md``).

The rest of the evaluation stack scores answers with a single token-F1
number, which collapses every quality effect — reranker gains, ivf
recall loss, semantic-cache drift, staleness — onto one axis. This
module decomposes quality RAGAS-style into four deterministic metrics:

* **faithfulness** — fraction of the answer's *claim* tokens (answer
  tokens outside the query's answer template) that are grounded in the
  text of the retrieved chunks. Hallucinated and noise tokens are
  never grounded, so generation drift is directly visible.
* **answer relevancy** — cosine similarity between the
  :class:`~repro.retrieval.embedding.HashedEmbedding` vectors of the
  answer text and the query's *information need* (query text plus its
  reference answer tokens), clamped to ``[0, 1]``. The reference
  anchor is the deterministic stand-in for RAGAS's LLM-reconstructed
  implied question: the synthetic corpus's queries and answers share
  almost no surface vocabulary, so raw answer↔question cosine carries
  no signal, while the information-need anchor separates on-topic
  answers (~0.2–0.45 measured) from off-topic ones (~0.03).
* **context precision** — rank-weighted precision of the retrieved
  chunk list against the chunks that actually contain required facts
  (the RAGAS mean-precision@k formulation).
* **context recall** — fraction of the query's required facts present
  in at least one retrieved chunk.

Every metric is a pure function of ``(query, answer tokens, retrieved
chunk ids)`` over the synthetic fact corpus: no RNG, no wall clock, no
model calls. Embeddings come from the store's own SHA-256 hashed
embedder and chunk membership from the bundle's planted fact maps, so
two processes (or two seeds of the *same* bundle content) produce
bit-identical scores. The harness never touches the event schedule —
scoring happens after a query is served — which is how default runs
with the harness off stay byte-identical to the committed goldens.

:class:`QualitySLO` is the matching objective layer ("faithfulness >=
0.8 at min cost"): a parsed ``metric>=threshold`` spec that
:class:`~repro.core.scheduler.JointScheduler` can target and
:func:`repro.evaluation.slo.evaluate_quality_slo` scores runs against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.util.ids import canonical_query_id

if TYPE_CHECKING:  # heavy types only; the module itself stays light
    from repro.data.types import DatasetBundle, Query
    from repro.retrieval.embedding import EmbeddingModel

__all__ = ["METRIC_NAMES", "QualityMetrics", "QualitySLO", "MetricHarness"]

#: Metric field names, in reporting order. ``mean_f1`` is deliberately
#: not here: F1 is the legacy single-axis score, always computed.
METRIC_NAMES = (
    "faithfulness",
    "answer_relevancy",
    "context_precision",
    "context_recall",
)


@dataclass(frozen=True)
class QualityMetrics:
    """The four decomposed quality scores for one served answer."""

    faithfulness: float
    answer_relevancy: float
    context_precision: float
    context_recall: float

    def get(self, name: str) -> float:
        """Metric value by name (validated against ``METRIC_NAMES``)."""
        if name not in METRIC_NAMES:
            known = ", ".join(METRIC_NAMES)
            raise ValueError(f"unknown metric {name!r}; known: {known}")
        return getattr(self, name)


@dataclass(frozen=True)
class QualitySLO:
    """One quality objective: ``metric >= threshold``.

    The scheduling semantics (``docs/EVALUATION.md``) are *threshold
    gating at minimum cost*: quality above the threshold earns nothing,
    so a policy targeting a quality SLO should pick the cheapest
    configuration that still clears the bar rather than the richest one
    that fits.
    """

    metric: str
    threshold: float

    def __post_init__(self) -> None:
        if self.metric not in METRIC_NAMES:
            known = ", ".join(METRIC_NAMES)
            raise ValueError(
                f"unknown quality metric {self.metric!r}; known: {known}"
            )
        if not 0.0 <= self.threshold <= 1.0:
            raise ValueError(
                f"quality threshold must be in [0, 1], got {self.threshold}"
            )

    @classmethod
    def parse(cls, spec: str) -> "QualitySLO":
        """Parse a ``metric>=value`` spec (the ``--quality-slo`` flag).

        >>> QualitySLO.parse("faithfulness>=0.8")
        QualitySLO(metric='faithfulness', threshold=0.8)
        """
        if ">=" not in spec:
            raise ValueError(
                f"quality SLO must be metric>=value "
                f"(e.g. faithfulness>=0.8), got {spec!r}"
            )
        metric, _, value = spec.partition(">=")
        try:
            threshold = float(value)
        except ValueError:
            raise ValueError(
                f"quality SLO threshold must be a number, got {value!r}"
            ) from None
        return cls(metric=metric.strip(), threshold=threshold)

    @property
    def spec(self) -> str:
        """The canonical spec string (round-trips through ``parse``)."""
        return f"{self.metric}>={self.threshold:g}"


class MetricHarness:
    """Scores served answers against one dataset bundle.

    Built once per runner and reused across queries: chunk token sets,
    relevant-chunk sets, and query embeddings are memoized (keyed by
    chunk id / canonical query id), so a replay-heavy trace pays the
    tokenize/embed cost once per distinct query. All state is
    derived-only — the harness never mutates the bundle or the store.
    """

    def __init__(self, bundle: "DatasetBundle",
                 embedding: "EmbeddingModel | None" = None) -> None:
        self.bundle = bundle
        #: The same hashed embedder retrieval uses (IDF-weighted when
        #: the store fitted one), so relevancy lives in retrieval's
        #: similarity space rather than a second, inconsistent one.
        self.embedding = embedding if embedding is not None \
            else bundle.store.embedding
        self._tokenizer = bundle.tokenizer
        self._chunk_tokens: dict[str, frozenset[str]] = {}
        self._relevant: dict[str, frozenset[str]] = {}
        self._query_vecs: dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    def score(self, query: "Query", answer_tokens,
              chunk_ids) -> QualityMetrics:
        """All four metrics for one served ``(answer, context)`` pair.

        ``answer_tokens`` is the emitted token sequence (a cached
        answer's tokens on a cache hit); ``chunk_ids`` is the retrieved
        context in rank order (the *cached* ids on a hit, so semantic
        and stale hits are scored against what was actually served).
        """
        answer_tokens = list(answer_tokens)
        chunk_ids = list(chunk_ids)
        return QualityMetrics(
            faithfulness=self.faithfulness(query, answer_tokens, chunk_ids),
            answer_relevancy=self.answer_relevancy(query, answer_tokens),
            context_precision=self.context_precision(query, chunk_ids),
            context_recall=self.context_recall(query, chunk_ids),
        )

    # ------------------------------------------------------------------
    def faithfulness(self, query: "Query", answer_tokens,
                     chunk_ids) -> float:
        """Share of claim tokens grounded in the retrieved chunk text.

        Claim tokens are the answer tokens outside the query's answer
        template (boilerplate carries no claims); a claim is grounded
        when the token appears in any retrieved chunk's text. An
        answer with no claim tokens is vacuously faithful (1.0): it
        asserted nothing, so nothing is ungrounded.
        """
        template = set(query.truth.answer_template_tokens)
        claims = [tok for tok in answer_tokens if tok not in template]
        if not claims:
            return 1.0
        grounding = self._grounding_tokens(chunk_ids)
        if not grounding:
            return 0.0
        grounded = sum(1 for tok in claims if tok in grounding)
        return grounded / len(claims)

    def answer_relevancy(self, query: "Query", answer_tokens) -> float:
        """Embedding cosine between the answer and the query's need.

        The target vector embeds the query text concatenated with the
        query's reference answer tokens (template + required fact
        values) — the information the query is asking for. Both
        vectors are unit-norm (or zero for empty text), so the dot
        product is the cosine; it is clamped to ``[0, 1]`` — opposing
        hash buckets carry no meaning beyond irrelevance. A zero-token
        answer scores 0.0.
        """
        if not answer_tokens:
            return 0.0
        answer_vec = self.embedding.embed(" ".join(answer_tokens))
        target_vec = self._query_vec(query)
        return float(max(0.0, np.dot(answer_vec, target_vec)))

    def context_precision(self, query: "Query", chunk_ids) -> float:
        """Rank-weighted precision of the retrieved list (RAGAS form).

        ``mean over relevant ranks k of precision@k``: relevant chunks
        near the top of the list score higher than the same chunks
        buried under irrelevant ones. 0.0 when nothing was retrieved
        or nothing retrieved is relevant.
        """
        if not chunk_ids:
            return 0.0
        relevant = self._relevant_ids(query)
        hits = 0
        weighted = 0.0
        for k, chunk_id in enumerate(chunk_ids, start=1):
            if chunk_id in relevant:
                hits += 1
                weighted += hits / k
        if hits == 0:
            return 0.0
        return weighted / hits

    def context_recall(self, query: "Query", chunk_ids) -> float:
        """Fraction of required facts present in the retrieved chunks.

        Membership comes from the bundle's planted ``chunk_facts`` map
        — the synthetic corpus's exact ground truth, not a text match.
        0.0 when nothing was retrieved.
        """
        required = set(query.truth.required_fact_ids)
        if not chunk_ids:
            return 0.0
        present: set[str] = set()
        chunk_facts = self.bundle.chunk_facts
        for chunk_id in chunk_ids:
            present.update(fid for fid in chunk_facts.get(chunk_id, ())
                           if fid in required)
        return len(present) / len(required)

    # ------------------------------------------------------------------
    def _grounding_tokens(self, chunk_ids) -> set[str]:
        grounding: set[str] = set()
        for chunk_id in chunk_ids:
            tokens = self._chunk_tokens.get(chunk_id)
            if tokens is None:
                text = self.bundle.store.get(chunk_id).text
                tokens = frozenset(self._tokenizer.tokenize(text))
                self._chunk_tokens[chunk_id] = tokens
            grounding.update(tokens)
        return grounding

    def _relevant_ids(self, query: "Query") -> frozenset[str]:
        cid = canonical_query_id(query.query_id)
        cached = self._relevant.get(cid)
        if cached is None:
            cached = frozenset(self.bundle.relevant_chunk_ids(query))
            self._relevant[cid] = cached
        return cached

    def _query_vec(self, query: "Query") -> np.ndarray:
        """Embedding of the query's information need, memoized."""
        cid = canonical_query_id(query.query_id)
        cached = self._query_vecs.get(cid)
        if cached is None:
            facts = self.bundle.facts
            reference = list(query.truth.answer_template_tokens)
            for fact_id in query.truth.required_fact_ids:
                reference.extend(facts[fact_id].value_tokens)
            cached = self.embedding.embed(
                query.text + " " + " ".join(reference))
            self._query_vecs[cid] = cached
        return cached
