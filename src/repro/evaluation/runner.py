"""Workload runner: drives a policy + engine over a dataset workload.

The runner owns the discrete-event loop. Per query:

``arrival`` —(profiler latency)→ ``decide`` —(retrieval latency)→
``submit stage 0`` —(engine iterations)→ ... —(last call finishes)→
quality scoring + record.

Engine iterations and external events (arrivals, profiler completions)
interleave exactly as in a real serving stack: decisions made while the
GPU is mid-iteration take effect at the next scheduling boundary.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field, replace
from typing import Callable

import numpy as np

from repro.config.knobs import RAGConfig
from repro.core.policy import (
    ClusterSchedulingView,
    Decision,
    PrepResult,
    RAGPolicy,
    SchedulingView,
)
from repro.data.types import DatasetBundle, Query
from repro.data.workload import Arrival
from repro.evaluation.costs import CostLedger
from repro.llm.generation import SimulatedGenerator
from repro.llm.quality import QualityModel, QualityParams
from repro.serving.cluster import ClusterEngine
from repro.serving.engine import EngineConfig, EngineStats, ServingEngine
from repro.serving.request import InferenceRequest
from repro.util.validation import check_positive
from repro.synthesis import make_synthesizer
from repro.synthesis.plans import SynthesisPlan

__all__ = ["QueryRecord", "RunResult", "ExperimentRunner"]


@dataclass(frozen=True)
class QueryRecord:
    """Everything measured for one served query."""

    query_id: str
    policy: str
    dataset: str
    arrival_time: float
    decision_time: float
    finish_time: float
    config: RAGConfig
    f1: float
    expected_f1: float
    coverage: float
    profiler_seconds: float
    profiler_dollars: float
    n_chunks_retrieved: int
    chunks_clipped: bool
    fell_back: bool
    used_recent_spaces: bool
    confidence: float | None
    queueing_delay: float
    prefill_tokens: int
    output_tokens: int
    #: Which cluster replica served this query (0 on a bare engine).
    replica: int = 0

    @property
    def e2e_delay(self) -> float:
        return self.finish_time - self.arrival_time

    @property
    def profiler_fraction(self) -> float:
        """Share of end-to-end delay spent in the profiler (Fig 18)."""
        if self.e2e_delay <= 0:
            return 0.0
        return self.profiler_seconds / self.e2e_delay


@dataclass
class RunResult:
    """One (policy, dataset, workload) run."""

    policy: str
    dataset: str
    records: list[QueryRecord]
    makespan: float
    engine_stats: EngineStats
    ledger: CostLedger
    #: Per-replica engine counters (one entry on a bare engine).
    replica_stats: list[EngineStats] = field(default_factory=list)

    # ------------------------------------------------------------------
    def _delays(self) -> np.ndarray:
        return np.asarray([r.e2e_delay for r in self.records])

    @property
    def mean_delay(self) -> float:
        return float(self._delays().mean()) if self.records else 0.0

    def delay_percentile(self, q: float) -> float:
        if not self.records:
            return 0.0
        return float(np.percentile(self._delays(), q))

    @property
    def mean_f1(self) -> float:
        if not self.records:
            return 0.0
        return float(np.mean([r.f1 for r in self.records]))

    @property
    def throughput_qps(self) -> float:
        if self.makespan <= 0:
            return 0.0
        return len(self.records) / self.makespan

    @property
    def mean_profiler_fraction(self) -> float:
        if not self.records:
            return 0.0
        return float(np.mean([r.profiler_fraction for r in self.records]))

    @property
    def total_dollars(self) -> float:
        return self.ledger.total_dollars

    def summary(self) -> dict[str, float]:
        """Compact scalar summary for report tables."""
        return {
            "mean_delay_s": self.mean_delay,
            "p90_delay_s": self.delay_percentile(90),
            "mean_f1": self.mean_f1,
            "throughput_qps": self.throughput_qps,
            "dollars_per_query": self.ledger.per_query(len(self.records)),
            "profiler_fraction": self.mean_profiler_fraction,
        }


@dataclass
class _Execution:
    """Mutable per-query state inside the runner."""

    query: Query
    arrival_time: float
    prep: PrepResult | None = None
    decision: Decision | None = None
    decision_time: float = 0.0
    chunk_ids: list[str] = field(default_factory=list)
    chunks_clipped: bool = False
    plan: SynthesisPlan | None = None
    stage: int = 0
    stage_remaining: int = 0
    first_admitted: float | None = None
    prefill_tokens: int = 0
    output_tokens: int = 0
    replica: int = 0


class ExperimentRunner:
    """Runs one policy over one dataset workload on a fresh engine.

    With ``n_replicas > 1`` the workload is served by a
    :class:`~repro.serving.cluster.ClusterEngine` — N engine replicas
    behind the named load-aware ``router`` — and each policy decision
    sees a :class:`ClusterSchedulingView` of the replica its query was
    routed to.
    """

    def __init__(
        self,
        bundle: DatasetBundle,
        engine_config: EngineConfig,
        seed: int = 0,
        quality_params: QualityParams | None = None,
        n_replicas: int = 1,
        router: str = "least-kv-load",
    ) -> None:
        check_positive("n_replicas", n_replicas)
        self.bundle = bundle
        self.engine_config = engine_config
        self.seed = seed
        self.n_replicas = int(n_replicas)
        self.router = router
        params = quality_params or bundle.quality_params
        self.generator = SimulatedGenerator(
            quality=QualityModel(params), root_seed=seed
        )
        self._synthesizers = {}

    # ------------------------------------------------------------------
    def run(self, policy: RAGPolicy, arrivals: list[Arrival]) -> RunResult:
        """Execute the workload; returns per-query records.

        Open-loop arrivals carry explicit times; a workload whose
        arrival times are ``None`` runs closed-loop (each query is
        submitted when the previous one completes — Fig 19).
        """
        if not arrivals:
            raise ValueError("empty workload")
        config = replace(self.engine_config, policy=policy.engine_policy)
        engine: ServingEngine | ClusterEngine
        if self.n_replicas > 1:
            engine = ClusterEngine(
                config,
                n_replicas=self.n_replicas,
                router=self.router,
                seed=self.seed,
            )
        else:
            engine = ServingEngine(config)
        ledger = CostLedger()
        records: list[QueryRecord] = []
        events: list[tuple[float, int, str, object]] = []
        tie = itertools.count()
        closed_loop = arrivals[0].time is None
        pending_closed = list(arrivals[1:]) if closed_loop else []

        def push(t: float, kind: str, payload: object) -> None:
            heapq.heappush(events, (t, next(tie), kind, payload))

        if closed_loop:
            push(0.0, "arrival", arrivals[0].query)
        else:
            for arrival in arrivals:
                if arrival.time is None:
                    raise ValueError(
                        "mixed open/closed-loop workload is not supported"
                    )
                push(arrival.time, "arrival", arrival.query)

        # ------------------------------------------------------------------
        def handle_arrival(t: float, query: Query) -> None:
            ex = _Execution(query=query, arrival_time=t)
            prep = policy.prepare(query)
            ex.prep = prep
            if prep.dollars:
                ledger.api_dollars += prep.dollars
                ledger.n_api_calls += 1
            push(t + prep.api_seconds, "decide", ex)

        def handle_decide(t: float, ex: _Execution) -> None:
            ex.decision_time = t
            view = self._make_view(engine, ex.query)
            ex.decision = policy.choose(ex.query, ex.prep, view)
            if isinstance(engine, ClusterEngine):
                # Cluster-aware policies may re-place the query on a
                # replica with more claimable memory (fallback rescue).
                preferred = ex.decision.notes.get("preferred_replica")
                if preferred is not None:
                    engine.pin_app(ex.query.query_id, preferred)
                pinned = engine.replica_of_app(ex.query.query_id)
                ex.replica = 0 if pinned is None else pinned
            hits = self.bundle.store.search(
                ex.query.text, ex.decision.config.num_chunks
            )
            ex.chunk_ids = [h.chunk.chunk_id for h in hits]
            push(t + self.bundle.store.retrieval_latency_s, "submit", ex)

        def handle_submit(t: float, ex: _Execution) -> None:
            chunk_tokens = self._clipped_chunk_tokens(ex, engine)
            synthesizer = self._synthesizer(ex.decision.config)
            ex.plan = synthesizer.build_plan(
                query_id=ex.query.query_id,
                query_tokens=ex.query.n_tokens,
                chunk_tokens=chunk_tokens,
                answer_tokens=ex.query.answer_tokens_estimate,
                config=ex.decision.config,
            )
            ex.stage = 0
            submit_stage(ex, t)

        def submit_stage(ex: _Execution, t: float) -> None:
            calls = ex.plan.stage_calls(ex.stage)
            ex.stage_remaining = len(calls)
            for call in calls:
                request = InferenceRequest(
                    prompt_tokens=call.prompt_tokens,
                    output_tokens=call.output_tokens,
                    arrival_time=max(t, engine.now),
                    app_id=ex.query.query_id,
                    stage=call.stage,
                    on_finish=lambda req, now, ex=ex: on_call_done(ex, req, now),
                )
                engine.submit(request)

        def on_call_done(ex: _Execution, request: InferenceRequest,
                         now: float) -> None:
            if ex.first_admitted is None or (
                request.admitted_time is not None
                and request.admitted_time < ex.first_admitted
            ):
                ex.first_admitted = request.admitted_time
            ex.prefill_tokens += request.prompt_tokens
            ex.output_tokens += request.output_tokens
            ex.stage_remaining -= 1
            if ex.stage_remaining > 0:
                return
            if ex.stage + 1 < ex.plan.n_stages:
                ex.stage += 1
                submit_stage(ex, now)
                return
            finalize(ex, now)

        def finalize(ex: _Execution, now: float) -> None:
            ctx = self.bundle.synthesis_context(ex.query, ex.chunk_ids)
            answer = self.generator.generate(ctx, ex.decision.config)
            record = QueryRecord(
                query_id=ex.query.query_id,
                policy=policy.name,
                dataset=self.bundle.name,
                arrival_time=ex.arrival_time,
                decision_time=ex.decision_time,
                finish_time=now,
                config=ex.decision.config,
                f1=answer.f1,
                expected_f1=answer.expected_f1,
                coverage=answer.coverage,
                profiler_seconds=ex.prep.api_seconds,
                profiler_dollars=ex.prep.dollars,
                n_chunks_retrieved=len(ex.chunk_ids),
                chunks_clipped=ex.chunks_clipped,
                fell_back=ex.decision.fell_back,
                used_recent_spaces=ex.decision.used_recent_spaces,
                confidence=(
                    ex.prep.profile.confidence if ex.prep.profile else None
                ),
                queueing_delay=(
                    (ex.first_admitted - ex.arrival_time)
                    if ex.first_admitted is not None
                    else 0.0
                ),
                prefill_tokens=ex.prefill_tokens,
                output_tokens=ex.output_tokens,
                replica=ex.replica,
            )
            records.append(record)
            if isinstance(engine, ClusterEngine):
                engine.release_app(ex.query.query_id)
            policy.on_complete(ex.query, answer.f1, record.e2e_delay)
            if pending_closed:
                nxt = pending_closed.pop(0)
                push(now, "arrival", nxt.query)

        handlers: dict[str, Callable] = {
            "arrival": handle_arrival,
            "decide": handle_decide,
            "submit": handle_submit,
        }

        # ------------------------------------------------------------------
        # Event loop: engine iterations interleaved with external events.
        # ------------------------------------------------------------------
        while events or engine.has_work():
            next_t = events[0][0] if events else float("inf")
            if engine.has_work() and engine.now < next_t:
                engine.step()
                continue
            if events:
                t, _, kind, payload = heapq.heappop(events)
                engine.advance_to(t)
                handlers[kind](max(t, engine.now), payload)
                continue
            break  # no events, engine idle

        ledger.charge_gpu(engine.cluster, engine.stats.busy_seconds)
        self._charge_feedback(policy, engine, ledger)
        makespan = engine.now
        if isinstance(engine, ClusterEngine):
            replica_stats = [r.stats for r in engine.replicas]
        else:
            replica_stats = [engine.stats]
        return RunResult(
            policy=policy.name,
            dataset=self.bundle.name,
            records=records,
            makespan=makespan,
            engine_stats=engine.stats,
            ledger=ledger,
            replica_stats=replica_stats,
        )

    # ------------------------------------------------------------------
    def _synthesizer(self, config: RAGConfig):
        method = config.synthesis_method
        if method not in self._synthesizers:
            self._synthesizers[method] = make_synthesizer(method)
        return self._synthesizers[method]

    def _make_view(self, engine: ServingEngine | ClusterEngine,
                   query: Query) -> SchedulingView:
        chunk_tokens = self.bundle.chunk_tokens

        def estimate_plan(config: RAGConfig) -> SynthesisPlan:
            synthesizer = self._synthesizer(config)
            return synthesizer.build_plan(
                query_id=f"{query.query_id}/est",
                query_tokens=query.n_tokens,
                chunk_tokens=[chunk_tokens] * config.num_chunks,
                answer_tokens=query.answer_tokens_estimate,
                config=config,
            )

        if isinstance(engine, ClusterEngine):
            # Route (and pin) the query now so the policy sees the KV
            # memory of the replica its calls will actually land on.
            rid = engine.assign_app(query.query_id)
            target = engine.replicas[rid]
            return ClusterSchedulingView(
                now=engine.now,
                free_kv_bytes=target.free_kv_bytes(),
                available_kv_bytes=target.available_kv_bytes(),
                kv_bytes_per_token=target.memory.kv_bytes_per_token,
                chunk_tokens=chunk_tokens,
                query_tokens=query.n_tokens,
                answer_tokens=query.answer_tokens_estimate,
                estimate_plan=estimate_plan,
                replica_id=rid,
                replica_free_kv_bytes=tuple(
                    r.free_kv_bytes() for r in engine.replicas
                ),
                replica_available_kv_bytes=tuple(
                    r.available_kv_bytes() for r in engine.replicas
                ),
            )

        return SchedulingView(
            now=engine.now,
            free_kv_bytes=engine.free_kv_bytes(),
            available_kv_bytes=engine.available_kv_bytes(),
            kv_bytes_per_token=engine.memory.kv_bytes_per_token,
            chunk_tokens=chunk_tokens,
            query_tokens=query.n_tokens,
            answer_tokens=query.answer_tokens_estimate,
            estimate_plan=estimate_plan,
        )

    def _clipped_chunk_tokens(self, ex: _Execution,
                              engine: ServingEngine | ClusterEngine) -> list[int]:
        """Clip the retrieved chunk list to the model's context budget.

        ``stuff`` concatenates everything into one prompt; a fixed
        config with many large chunks can exceed the context window (or
        the KV pool), in which case trailing chunks are dropped — what
        a production stack's prompt builder does.
        """
        from repro.config.knobs import SynthesisMethod

        chunks = [self.bundle.store.get(cid) for cid in ex.chunk_ids]
        tokens = [c.n_tokens for c in chunks]
        if ex.decision.config.synthesis_method is SynthesisMethod.STUFF:
            # Slack covers the prompt template wrapper (instruction +
            # per-chunk separators) plus a safety margin.
            wrapper_slack = 64 + 8 * len(tokens)
            budget = min(
                engine.model.max_context,
                engine.memory.kv_pool_tokens,
            ) - ex.query.n_tokens - ex.query.answer_tokens_estimate - wrapper_slack
            while tokens and sum(tokens) > budget:
                tokens.pop()
                ex.chunk_ids.pop()
                ex.chunks_clipped = True
        if not tokens:
            raise RuntimeError(
                f"no chunks usable for {ex.query.query_id}: context budget "
                "too small for even one chunk"
            )
        return tokens

    def _charge_feedback(self, policy: RAGPolicy,
                         engine: ServingEngine | ClusterEngine,
                         ledger: CostLedger) -> None:
        """Charge GPU time for golden-configuration feedback runs."""
        feedback = getattr(policy, "feedback", None)
        if feedback is None:
            return
        for event in feedback.events:
            seconds = engine.cost.prefill_seconds(event.golden_prefill_tokens)
            seconds += event.golden_output_tokens * engine.cost.decode_step_seconds(
                event.golden_prefill_tokens, 1
            )
            ledger.charge_gpu(engine.cluster, seconds)
