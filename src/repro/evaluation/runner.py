"""Workload runner: drives a policy + engine over a dataset workload.

The discrete-event mechanics live in :mod:`repro.sim` (kernel) and
:mod:`repro.evaluation.pipeline` (the staged query pipeline). Per
query::

    arrival -> ProfileStage -(profiler resource)-> DecideStage
            -> RetrieveStage -(retrieval resource)-> SynthesizeStage
            -> ServeStage -(engine iterations)-> quality scoring + record

Engine iterations and external events (arrivals, profiler/retrieval
completions) interleave exactly as in a real serving stack: decisions
made while the GPU is mid-iteration take effect at the next scheduling
boundary. With the default *unbounded* resources the schedule is
byte-identical to the pre-``repro.sim`` closure-based runner; finite
``profiler_concurrency`` / ``retrieval_concurrency`` add FIFO queueing
(API rate limits, search-executor pools) on top.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.caching import CacheStats, make_cache_config
from repro.core.policy import RAGPolicy
from repro.data.types import DatasetBundle
from repro.data.workload import Arrival
from repro.evaluation.costs import CostLedger
from repro.evaluation.metrics import METRIC_NAMES, MetricHarness, QualitySLO
from repro.evaluation.pipeline import QueryPipeline, QueryRecord
from repro.llm.generation import SimulatedGenerator
from repro.llm.quality import QualityModel, QualityParams
from repro.retrieval.rerank import ExactReranker, make_reranker
from repro.serving.cluster import ClusterEngine
from repro.serving.engine import EngineConfig, EngineStats, ServingEngine
from repro.serving.speculation import SpeculationPolicy, make_speculation
from repro.sim import ResourceStats
from repro.util.validation import (
    check_count,
    check_positive,
    check_shard_concurrency,
    check_shard_count,
)
from repro.workload import (
    Autoscaler,
    ForecastPolicy,
    ScalingEvent,
    Workload,
    make_scaling_policy,
)

#: ``QueryRecord`` is defined next to the pipeline that emits it and
#: re-exported here, its historical import location.
__all__ = ["QueryRecord", "RunResult", "ExperimentRunner"]


@dataclass
class RunResult:
    """One (policy, dataset, workload) run."""

    policy: str
    dataset: str
    records: list[QueryRecord]
    makespan: float
    engine_stats: EngineStats
    ledger: CostLedger
    #: Per-replica engine counters (one entry on a bare engine).
    replica_stats: list[EngineStats] = field(default_factory=list)
    #: Per-replica speed multipliers (parallel to ``replica_stats``).
    replica_speeds: list[float] = field(default_factory=list)
    #: Contended-resource counters keyed by resource name
    #: (``profiler``, ``retrieval`` or ``retrieval/shardN``, and
    #: ``reranker`` when one is configured).
    resource_stats: dict[str, ResourceStats] = field(default_factory=dict)
    #: How many index shards served retrieval (1 = unsharded).
    n_retrieval_shards: int = 1
    #: Name of the configured reranker (``None`` when disabled).
    reranker: str | None = None
    #: Per-query SLO in seconds (``None`` = no deadline stamped).
    slo_seconds: float | None = None
    #: Name of the speculation policy (``None`` when disabled).
    speculation: str | None = None
    #: Name of the autoscaler policy (``None`` when the fleet is static).
    autoscaler: str | None = None
    #: Chronological fleet changes the autoscaler made (empty when
    #: static); see :class:`repro.workload.ScalingEvent`.
    scaling_events: list[ScalingEvent] = field(default_factory=list)
    #: GPU-seconds of provisioned capacity over the run (busy + idle,
    #: summed across replicas from provisioning to retirement).
    provisioned_gpu_seconds: float = 0.0
    #: Provisioned-but-idle GPU-seconds (the gap idle-capacity pricing
    #: bills; 0.0 when idle pricing is off).
    idle_gpu_seconds: float = 0.0
    #: Result-cache mode (``None`` when caching is off entirely).
    result_cache: str | None = None
    #: Whether the retrieval (top-k memo) tier was enabled.
    retrieval_cache: bool = False
    #: Per-tier cache counters keyed ``"result"`` / ``"retrieval"``
    #: (empty when caching is off); see ``docs/CACHING.md``.
    cache_stats: dict[str, CacheStats] = field(default_factory=dict)
    #: Whether the multi-metric quality harness scored this run's
    #: records (``docs/EVALUATION.md``); off by default.
    quality_metrics: bool = False
    #: Canonical ``metric>=threshold`` spec the run targeted (``None``
    #: when no quality SLO was set).
    quality_slo: str | None = None

    # ------------------------------------------------------------------
    # Latency / quality observables. A run can legitimately complete
    # zero queries (an autoscaled trace whose trough carries no
    # arrivals), so the aggregate statistics degrade to NaN — "no
    # observation" — rather than raising or masquerading as a perfect
    # 0.0 latency.
    # ------------------------------------------------------------------
    def _delays(self) -> np.ndarray:
        return np.asarray([r.e2e_delay for r in self.records])

    @property
    def mean_delay(self) -> float:
        if not self.records:
            return float("nan")
        return float(self._delays().mean())

    def delay_percentile(self, q: float) -> float:
        if not self.records:
            return float("nan")
        return float(np.percentile(self._delays(), q))

    @property
    def mean_f1(self) -> float:
        if not self.records:
            return float("nan")
        return float(np.mean([r.f1 for r in self.records]))

    @property
    def throughput_qps(self) -> float:
        if self.makespan <= 0:
            return 0.0
        return len(self.records) / self.makespan

    @property
    def mean_profiler_fraction(self) -> float:
        if not self.records:
            return float("nan")
        return float(np.mean([r.profiler_fraction for r in self.records]))

    @property
    def mean_profiler_queue_delay(self) -> float:
        if not self.records:
            return float("nan")
        return float(np.mean([r.profiler_queue_delay for r in self.records]))

    @property
    def mean_retrieval_seconds(self) -> float:
        """Mean scatter-gather stage duration (queue + hold + gather)."""
        if not self.records:
            return float("nan")
        return float(np.mean([r.retrieval_seconds for r in self.records]))

    @property
    def mean_gather_seconds(self) -> float:
        if not self.records:
            return float("nan")
        return float(np.mean([r.gather_seconds for r in self.records]))

    def retrieval_percentile(self, q: float) -> float:
        """Percentile of the per-query scatter-gather duration."""
        if not self.records:
            return float("nan")
        return float(np.percentile(
            [r.retrieval_seconds for r in self.records], q))

    # ------------------------------------------------------------------
    # Speculation / SLO observables (fig_speculation)
    # ------------------------------------------------------------------
    @property
    def hedge_rate(self) -> float:
        """Fraction of queries for which a duplicate was armed."""
        if not self.records:
            return 0.0
        return sum(1 for r in self.records if r.hedged) / len(self.records)

    @property
    def hedge_win_rate(self) -> float:
        """Fraction of *hedged* queries won by the duplicate lane."""
        hedged = [r for r in self.records if r.hedged]
        if not hedged:
            return 0.0
        return sum(1 for r in hedged if r.hedge_won) / len(hedged)

    @property
    def wasted_work_fraction(self) -> float:
        """Loser-lane tokens over all tokens the engines processed.

        The engine totals include the wasted tokens (they were really
        prefilled/decoded before cancellation), so this is the share
        of GPU work speculation threw away to cut the tail.
        """
        total = (self.engine_stats.prefill_tokens
                 + self.engine_stats.decode_tokens)
        if total <= 0:
            return 0.0
        wasted = sum(r.wasted_prefill_tokens + r.wasted_decode_tokens
                     for r in self.records)
        return wasted / total

    @property
    def slo_attainment(self) -> float:
        """Fraction of queries finishing by their deadline.

        0.0 when queries completed but no SLO was configured (check
        :attr:`slo_seconds`); NaN when the run completed no queries at
        all — there is nothing to attain or miss.
        """
        if not self.records:
            return float("nan")
        met = [r.slo_met for r in self.records if r.slo_met is not None]
        if not met:
            return 0.0
        return sum(met) / len(met)

    # ------------------------------------------------------------------
    # Cache observables (fig_cache); see docs/CACHING.md
    # ------------------------------------------------------------------
    @property
    def cache_hit_rate(self) -> float:
        """Fraction of completed queries served from any cache tier.

        0.0 when caching is off (every record is a miss by
        construction); NaN when the run completed no queries.
        """
        if not self.records:
            return float("nan")
        return sum(1 for r in self.records if r.cache_hit) \
            / len(self.records)

    @property
    def cache_stale_hit_rate(self) -> float:
        """Fraction of completed queries served a stale cache entry
        (inserted under an older corpus version)."""
        if not self.records:
            return float("nan")
        return sum(1 for r in self.records if r.cache_stale) \
            / len(self.records)

    @property
    def cache_saved_seconds(self) -> float:
        """Pipeline seconds the cache tiers short-circuited (summed
        measured benefit of every hit; 0.0 when caching is off)."""
        return sum(s.saved_seconds for s in self.cache_stats.values())

    @property
    def cache_saved_dollars(self) -> float:
        """Priced GPU dollars the cache hits avoided spending (0.0
        when caching is off)."""
        return sum(s.saved_dollars for s in self.cache_stats.values())

    # ------------------------------------------------------------------
    # Multi-metric quality observables (fig_quality); see
    # docs/EVALUATION.md. NaN-safe like every other aggregate: NaN
    # means "no scored observation" — an empty run, or a run that
    # never enabled the metric harness.
    # ------------------------------------------------------------------
    def metric_values(self, metric: str) -> list[float]:
        """Non-``None`` per-record values of one named metric."""
        if metric not in METRIC_NAMES:
            known = ", ".join(METRIC_NAMES)
            raise ValueError(f"unknown metric {metric!r}; known: {known}")
        values = [getattr(r, metric) for r in self.records]
        return [v for v in values if v is not None]

    def mean_metric(self, metric: str) -> float:
        """Mean of one named metric over scored records (NaN if none)."""
        values = self.metric_values(metric)
        if not values:
            return float("nan")
        return float(np.mean(values))

    @property
    def n_quality_scored(self) -> int:
        """How many records carry harness scores (0 with metrics off)."""
        return len(self.metric_values("faithfulness"))

    @property
    def mean_faithfulness(self) -> float:
        return self.mean_metric("faithfulness")

    @property
    def mean_answer_relevancy(self) -> float:
        return self.mean_metric("answer_relevancy")

    @property
    def mean_context_precision(self) -> float:
        return self.mean_metric("context_precision")

    @property
    def mean_context_recall(self) -> float:
        return self.mean_metric("context_recall")

    @property
    def total_dollars(self) -> float:
        return self.ledger.total_dollars

    def summary(self) -> dict[str, float]:
        """Compact scalar summary for report tables."""
        return {
            "mean_delay_s": self.mean_delay,
            "p90_delay_s": self.delay_percentile(90),
            "mean_f1": self.mean_f1,
            "throughput_qps": self.throughput_qps,
            "dollars_per_query": self.ledger.per_query(len(self.records)),
            "profiler_fraction": self.mean_profiler_fraction,
        }


class ExperimentRunner:
    """Runs one policy over one dataset workload on a fresh engine.

    With ``n_replicas > 1`` the workload is served by a
    :class:`~repro.serving.cluster.ClusterEngine` — N engine replicas
    behind the named load-aware ``router`` — and each policy decision
    sees a :class:`ClusterSchedulingView` of the replica its query was
    routed to.

    ``profiler_concurrency`` / ``retrieval_concurrency`` bound how many
    profiler calls / vector-store searches may be in flight at once
    (``None`` = unbounded, the pre-contention behavior); excess queries
    wait in FIFO order and the waits surface in
    :attr:`RunResult.resource_stats` and the per-query
    ``profiler_queue_delay`` / ``retrieval_queue_delay`` fields.

    ``retrieval_shards`` partitions the bundle's corpus across K index
    shards (deterministic hash placement); each shard search contends
    on its own resource, bounded per shard by ``shard_concurrency`` (a
    single int broadcast to every shard, or one entry per shard — a
    length mismatch fails fast with both counts).
    ``retrieval_concurrency`` keeps its legacy meaning — the sole
    executor pool of an *unsharded* store — so combining it with
    ``retrieval_shards > 1`` (or with ``shard_concurrency``) is
    rejected rather than silently reinterpreted. ``reranker``
    (``"exact"`` or an instance) re-scores an over-fetched candidate
    pool at modelled per-candidate cost; ``index`` picks the per-shard
    index factory (``"flat"`` exact / ``"ivf"`` approximate).

    ``replica_speeds`` makes the fleet heterogeneous: one hardware-
    throughput multiplier per replica (replicas advance independently
    on the event loop, so a 0.5× replica simply takes 2× as long per
    iteration). Its length must equal ``n_replicas``; a mismatch fails
    fast with both counts — mirroring the mixed open/closed-loop
    workload validation — rather than silently recycling or truncating
    speeds.

    ``slo_seconds`` stamps every query with a deadline
    ``arrival + slo_seconds`` (reported as SLO attainment);
    ``speculation`` selects a deadline-aware hedging policy
    (``"none"`` / ``"hedge-after-delay"`` / ``"deadline-risk"``, see
    :mod:`repro.serving.speculation`) that duplicates at-risk queries
    onto a second replica and cancels the loser, with ``hedge_delay``
    setting the ``hedge-after-delay`` timer. The default (``None`` /
    ``"none"``) leaves the event schedule byte-identical.
    """

    def __init__(
        self,
        bundle: DatasetBundle,
        engine_config: EngineConfig,
        seed: int = 0,
        quality_params: QualityParams | None = None,
        n_replicas: int = 1,
        router: str = "least-kv-load",
        profiler_concurrency: int | None = None,
        retrieval_concurrency: int | None = None,
        replica_speeds: list[float] | None = None,
        retrieval_shards: int = 1,
        shard_concurrency=None,
        reranker: str | ExactReranker | None = None,
        index: str = "flat",
        slo_seconds: float | None = None,
        speculation: str | SpeculationPolicy | None = None,
        hedge_delay: float | None = None,
        workload: Workload | None = None,
        autoscaler=None,
        scale_min: int | None = None,
        scale_max: int | None = None,
        autoscale_interval: float | None = None,
        provision_delay: float | None = None,
        price_idle_capacity: bool | None = None,
        result_cache: str | None = None,
        retrieval_cache: bool = False,
        cache_capacity: int | None = None,
        cache_eviction: str | None = None,
        semantic_threshold: float | None = None,
        cache_ttl: float | None = None,
        quality_metrics: bool = False,
        quality_slo: str | QualitySLO | None = None,
    ) -> None:
        check_positive("n_replicas", n_replicas)
        # Quality SLOs are *measured* attainment, so targeting one
        # implies scoring: the harness switches on automatically.
        self.quality_slo = (QualitySLO.parse(quality_slo)
                            if isinstance(quality_slo, str) else quality_slo)
        self.quality_metrics = bool(quality_metrics) \
            or self.quality_slo is not None
        # Fail fast on misused cache knobs before any engine state is
        # built; None means every tier is off — the byte-identity path.
        self.cache_config = make_cache_config(
            result_cache=result_cache,
            retrieval_cache=retrieval_cache,
            cache_capacity=cache_capacity,
            cache_eviction=cache_eviction,
            semantic_threshold=semantic_threshold,
            cache_ttl=cache_ttl,
        )
        self.scaling_policy = make_scaling_policy(autoscaler)
        if self.scaling_policy is None:
            misused = {
                "scale_min": scale_min,
                "scale_max": scale_max,
                "autoscale_interval": autoscale_interval,
                "provision_delay": provision_delay,
            }
            bad = [k for k, v in misused.items() if v is not None]
            if bad:
                raise ValueError(
                    f"{', '.join(bad)} only applies with an autoscaler; "
                    "pass --autoscaler reactive (or forecast), or drop "
                    "the flag"
                )
            self.scale_min = self.scale_max = int(n_replicas)
        else:
            if isinstance(self.scaling_policy, ForecastPolicy) \
                    and workload is None:
                raise ValueError(
                    "the forecast autoscaler plans against the declared "
                    "workload trace; pass workload= (--workload) or use "
                    "--autoscaler reactive"
                )
            self.scale_min = (1 if scale_min is None
                              else check_count("scale_min", scale_min, 1))
            default_max = max(4, int(n_replicas), self.scale_min)
            self.scale_max = (default_max if scale_max is None
                              else check_count("scale_max", scale_max, 1))
            if not self.scale_min <= int(n_replicas) <= self.scale_max:
                raise ValueError(
                    f"the initial fleet must lie inside the scaling "
                    f"range: n_replicas={int(n_replicas)} is outside "
                    f"[scale_min={self.scale_min}, "
                    f"scale_max={self.scale_max}]"
                )
        self.workload = workload
        self.autoscale_interval = (15.0 if autoscale_interval is None
                                   else autoscale_interval)
        self.provision_delay = (30.0 if provision_delay is None
                                else provision_delay)
        #: Idle-capacity pricing defaults on exactly when autoscaling
        #: is on (the comparison it exists for), but can be forced
        #: either way — fig_autoscale prices the static arms too.
        self.price_idle_capacity = (
            self.scaling_policy is not None
            if price_idle_capacity is None else bool(price_idle_capacity)
        )
        if profiler_concurrency is not None:
            check_positive("profiler_concurrency", profiler_concurrency)
        if retrieval_concurrency is not None:
            check_positive("retrieval_concurrency", retrieval_concurrency)
        self.retrieval_shards = check_shard_count(
            "retrieval_shards", retrieval_shards)
        self.shard_concurrency = check_shard_concurrency(
            "shard_concurrency", shard_concurrency, self.retrieval_shards)
        if retrieval_concurrency is not None and self.retrieval_shards > 1:
            raise ValueError(
                "retrieval_concurrency bounds the single executor pool "
                "of an unsharded store; with retrieval_shards="
                f"{self.retrieval_shards} pass shard_concurrency "
                "(per-shard executor counts) instead — got "
                f"retrieval_concurrency={retrieval_concurrency}"
            )
        if (retrieval_concurrency is not None
                and self.shard_concurrency is not None):
            raise ValueError(
                "pass either retrieval_concurrency (unsharded) or "
                "shard_concurrency (per shard), not both — got "
                f"retrieval_concurrency={retrieval_concurrency} and "
                f"shard_concurrency={shard_concurrency!r}"
            )
        if slo_seconds is not None:
            check_positive("slo_seconds", slo_seconds)
            slo_seconds = float(slo_seconds)
        if hedge_delay is not None:
            check_positive("hedge_delay", hedge_delay)
        self.slo_seconds = slo_seconds
        self.speculation = make_speculation(
            speculation, hedge_delay=hedge_delay, slo_seconds=slo_seconds)
        if (self.speculation is not None and int(n_replicas) < 2
                and self.scale_max < 2):
            raise ValueError(
                f"speculation {self.speculation.name!r} needs a second "
                "replica to hedge onto; with n_replicas="
                f"{int(n_replicas)} every hedge would be silently "
                "skipped — pass --replicas 2 (or more), allow the "
                "autoscaler to add one (--scale-max 2+), or drop "
                "--speculation"
            )
        self.reranker = make_reranker(reranker)
        store = bundle.store
        if (self.retrieval_shards != store.n_shards
                or index != store.index_label):
            store = store.reshard(self.retrieval_shards,
                                  index_factory=index)
        self.store = store
        if replica_speeds is not None:
            speeds = [float(s) for s in replica_speeds]
            if len(speeds) != int(n_replicas):
                raise ValueError(
                    f"replica_speeds has {len(speeds)} entries but "
                    f"n_replicas is {int(n_replicas)}; pass exactly one "
                    "speed per replica (e.g. --replica-speeds 1.0,0.5 "
                    "with --replicas 2)"
                )
            for i, s in enumerate(speeds):
                check_positive(f"replica_speeds[{i}]", s)
            replica_speeds = speeds
        self.bundle = bundle
        self.engine_config = engine_config
        self.seed = seed
        self.n_replicas = int(n_replicas)
        self.router = router
        self.profiler_concurrency = profiler_concurrency
        self.retrieval_concurrency = retrieval_concurrency
        self.replica_speeds = replica_speeds
        params = quality_params or bundle.quality_params
        self.generator = SimulatedGenerator(
            quality=QualityModel(params), root_seed=seed
        )
        # One harness per runner: its chunk-token / query-embedding
        # memos are derived-only, so reuse across run() calls is safe
        # and keeps replay-heavy traces cheap. Built against the
        # (possibly resharded) store the queries actually search.
        self.metric_harness = (
            MetricHarness(bundle, embedding=self.store.embedding)
            if self.quality_metrics else None
        )

    # ------------------------------------------------------------------
    def run(self, policy: RAGPolicy, arrivals: list[Arrival],
            closed_loop_clients: int = 1) -> RunResult:
        """Execute the workload; returns per-query records.

        Open-loop arrivals carry explicit times; a workload whose
        arrival times are ``None`` runs closed-loop with
        ``closed_loop_clients`` outstanding queries (1 reproduces
        Fig 19's strictly sequential mode: each query is submitted when
        the previous one completes).
        """
        config = replace(self.engine_config, policy=policy.engine_policy)
        engine: ServingEngine | ClusterEngine
        if self.n_replicas > 1 or self.scaling_policy is not None:
            # An autoscaled fleet is always a cluster, even when it
            # starts from one replica — elasticity lives there.
            engine = ClusterEngine(
                config,
                n_replicas=self.n_replicas,
                router=self.router,
                seed=self.seed,
                replica_speeds=self.replica_speeds,
            )
        else:
            speed = (self.replica_speeds[0]
                     if self.replica_speeds else 1.0)
            engine = ServingEngine(config, speed=speed)
        autoscaler = None
        if self.scaling_policy is not None:
            # Fresh per run: the Autoscaler accumulates events and
            # holds loop references; the policy itself is pure.
            autoscaler = Autoscaler(
                self.scaling_policy,
                scale_min=self.scale_min,
                scale_max=self.scale_max,
                interval_s=self.autoscale_interval,
                provision_delay_s=self.provision_delay,
                workload=self.workload,
            )
        pipeline = QueryPipeline(
            bundle=self.bundle,
            policy=policy,
            engine=engine,
            generator=self.generator,
            profiler_concurrency=self.profiler_concurrency,
            retrieval_concurrency=self.retrieval_concurrency,
            store=self.store,
            shard_concurrency=self.shard_concurrency,
            reranker=self.reranker,
            speculation=self.speculation,
            slo_seconds=self.slo_seconds,
            autoscaler=autoscaler,
            cache_config=self.cache_config,
            metrics=self.metric_harness,
        )
        pipeline.run(arrivals, closed_loop_clients=closed_loop_clients)

        ledger = pipeline.ledger
        ledger.charge_gpu(engine.cluster, engine.stats.busy_seconds)
        if pipeline.speculation_gpu_seconds > 0:
            # Attribution, not an extra charge: the losers' busy time
            # is already inside engine.stats.busy_seconds.
            ledger.charge_speculation(engine.cluster,
                                      pipeline.speculation_gpu_seconds)
        self._charge_feedback(policy, engine, ledger)
        makespan = engine.now
        if isinstance(engine, ClusterEngine):
            replica_stats = [r.stats for r in engine.replicas]
            replica_speeds = list(engine.replica_speeds)
            provisioned = engine.provisioned_seconds(makespan)
        else:
            replica_stats = [engine.stats]
            replica_speeds = [engine.speed]
            provisioned = [makespan]
        idle_seconds = sum(
            max(0.0, provisioned[i] - replica_stats[i].busy_seconds)
            for i in range(len(provisioned))
        )
        if self.price_idle_capacity:
            ledger.charge_idle_capacity(engine.cluster, idle_seconds)
        return RunResult(
            policy=policy.name,
            dataset=self.bundle.name,
            records=pipeline.records,
            makespan=makespan,
            engine_stats=engine.stats,
            ledger=ledger,
            replica_stats=replica_stats,
            replica_speeds=replica_speeds,
            resource_stats=pipeline.resource_stats(),
            n_retrieval_shards=self.store.n_shards,
            reranker=self.reranker.name if self.reranker else None,
            slo_seconds=self.slo_seconds,
            speculation=self.speculation.name if self.speculation else None,
            autoscaler=(self.scaling_policy.name
                        if self.scaling_policy else None),
            scaling_events=list(autoscaler.events) if autoscaler else [],
            provisioned_gpu_seconds=sum(provisioned),
            idle_gpu_seconds=(idle_seconds
                              if self.price_idle_capacity else 0.0),
            result_cache=(self.cache_config.result_mode
                          if self.cache_config is not None
                          and self.cache_config.result_enabled else None),
            retrieval_cache=(self.cache_config.retrieval
                             if self.cache_config is not None else False),
            cache_stats=pipeline.cache_stats(),
            quality_metrics=self.quality_metrics,
            quality_slo=(self.quality_slo.spec
                         if self.quality_slo is not None else None),
        )

    # ------------------------------------------------------------------
    def _charge_feedback(self, policy: RAGPolicy,
                         engine: ServingEngine | ClusterEngine,
                         ledger: CostLedger) -> None:
        """Charge GPU time for golden-configuration feedback runs."""
        feedback = getattr(policy, "feedback", None)
        if feedback is None:
            return
        for event in feedback.events:
            seconds = engine.cost.request_seconds(
                event.golden_prefill_tokens, event.golden_output_tokens)
            ledger.charge_gpu(engine.cluster, seconds)
