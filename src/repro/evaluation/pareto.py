"""Pareto-frontier utilities for quality-delay tradeoff analysis (Fig 5).

A point is (delay, quality); lower delay and higher quality are better.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass
from typing import Any

__all__ = ["ParetoPoint", "pareto_frontier", "dominates"]


@dataclass(frozen=True)
class ParetoPoint:
    """A labelled point in (delay, quality) space."""

    delay: float
    quality: float
    label: Any = None


def dominates(a: ParetoPoint, b: ParetoPoint) -> bool:
    """True when ``a`` is at least as good as ``b`` on both axes and
    strictly better on at least one."""
    return (
        a.delay <= b.delay
        and a.quality >= b.quality
        and (a.delay < b.delay or a.quality > b.quality)
    )


def pareto_frontier(points: Iterable[ParetoPoint]) -> list[ParetoPoint]:
    """Non-dominated subset, sorted by increasing delay.

    >>> pts = [ParetoPoint(1, 0.5), ParetoPoint(2, 0.4), ParetoPoint(3, 0.9)]
    >>> [p.delay for p in pareto_frontier(pts)]
    [1, 3]
    """
    ordered = sorted(points, key=lambda p: (p.delay, -p.quality))
    frontier: list[ParetoPoint] = []
    best_quality = float("-inf")
    for point in ordered:
        if point.quality > best_quality:
            frontier.append(point)
            best_quality = point.quality
    return frontier
