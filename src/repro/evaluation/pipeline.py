"""The staged query pipeline: how one RAG query flows through the system.

Each query traverses five explicit stages on the shared
:class:`~repro.sim.kernel.EventLoop`::

    ProfileStage -> DecideStage -> RetrieveStage -> SynthesizeStage -> ServeStage

* :class:`ProfileStage` — the policy's arrival-time work (the METIS
  profiler LLM call, if any). The profiler is a
  :class:`~repro.sim.resource.Resource` with configurable concurrency
  modeling API rate limits: under load, queries *queue* for a profiler
  slot, which makes Fig 18's overhead load-dependent instead of a
  constant.
* :class:`DecideStage` — configuration choice against a scheduling
  view of the (cluster) engine, including cluster-aware re-placement.
  With a :class:`~repro.serving.speculation.SpeculationPolicy`
  configured it also *plans the hedge*: an at-risk query gets a
  ``hedge:arm`` event on the loop, cancelled if the query finishes
  first.
* :class:`RetrieveStage` — scatter-gather search over the store's K
  index shards, each behind its **own** ``Resource`` (finite per-shard
  search executors × a per-shard latency derived from the shard's
  corpus share), so shard searches contend independently and the
  stage's latency is the *max* over the shards a query touches, plus a
  per-excess-candidate gather cost when K > 1.
* :class:`RerankStage` *(optional)* — re-score the merged top-N on a
  ``reranker`` resource at a modelled per-candidate cost before
  synthesis (see :mod:`repro.retrieval.rerank`).
* :class:`SynthesizeStage` — prompt building: clip chunks to the
  context budget and expand the config into a synthesis plan.
* :class:`ServeStage` — submit the plan's LLM calls stage by stage to
  the serving engine and *await their completion events*: engine
  iterations are first-class events on the shared loop (a
  :class:`~repro.sim.driver.StepDriver` keeps one step event armed per
  engine/cluster; idle replicas sleep, admission wakes them), so each
  call's ``on_finish`` fires from within the step event that completes
  it — no stage ever polls the engine. Completion closes the loop
  (records, feedback, closed-loop re-arrival).

Speculative execution (``docs/SPECULATION.md``): retrieval, synthesis
and serving run inside a :class:`Lane` — one independent execution
attempt holding its own resource leases, in-flight events, and engine
requests. Unhedged queries have exactly one lane (the primary, whose
event schedule is byte-identical to the pre-lane pipeline). When a
query's ``hedge:arm`` event fires, a duplicate lane re-enters
:class:`RetrieveStage` pinned to a different replica; the first lane
to complete its final LLM call wins, and the loser is torn down
deterministically — queued/held resource leases cancelled
(:meth:`~repro.sim.resource.Resource.cancel`), pending gather events
tombstoned (:meth:`~repro.sim.kernel.EventLoop.cancel`), and engine
requests evicted with their KV reservations released
(:meth:`~repro.serving.cluster.ClusterEngine.cancel`). The loser's
processed tokens are priced into the ledger's ``speculation`` column.

Determinism contract: with all resources unbounded, one retrieval
shard, no reranker, and no speculation (the defaults) the
event schedule is *byte-identical* to the pre-``repro.sim`` runner —
the profiler/retrieval completion events land at exactly the
timestamps and tie-break ranks the old ``heapq`` closures produced.
This was verified against the pre-refactor implementation by full-run
SHA fingerprints, and a fingerprint generated from that verified
schedule is committed as a regression anchor
(``tests/golden/pipeline_golden.json``, pinned by
``tests/test_pipeline.py::TestGoldenFingerprint``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.caching import (
    CACHE_INSERT_SECONDS,
    CacheConfig,
    CachedAnswer,
    CacheStats,
    ResultCache,
    RetrievalCache,
)
from repro.config.knobs import RAGConfig, SynthesisMethod
from repro.core.policy import (
    ClusterSchedulingView,
    Decision,
    PrepResult,
    RAGPolicy,
    SchedulingView,
)
from repro.data.types import DatasetBundle, Query
from repro.data.workload import Arrival
from repro.evaluation.costs import CostLedger
from repro.evaluation.f1 import token_f1
from repro.evaluation.metrics import MetricHarness, QualityMetrics
from repro.llm.generation import SimulatedGenerator
from repro.retrieval.rerank import ExactReranker
from repro.retrieval.sharded import SearchHit, ShardedVectorStore
from repro.serving.cluster import ClusterEngine
from repro.serving.engine import ServingEngine
from repro.serving.request import InferenceRequest
from repro.serving.speculation import (
    HedgeContext,
    SpeculationPolicy,
)
from repro.sim import Event, EventLoop, Lease, Resource, ResourceStats
from repro.synthesis import make_synthesizer
from repro.synthesis.plans import SynthesisPlan
from repro.util.ids import canonical_query_id
from repro.util.validation import check_positive, check_shard_concurrency

__all__ = [
    "CACHE_RESOURCE",
    "PROFILER_RESOURCE",
    "RERANK_RESOURCE",
    "RETRIEVAL_RESOURCE",
    "Lane",
    "QueryExecution",
    "QueryPipeline",
    "QueryRecord",
    "shard_resource_name",
    "validate_arrivals",
]

#: Resource names as they appear in ``RunResult.resource_stats``.
PROFILER_RESOURCE = "profiler"
RETRIEVAL_RESOURCE = "retrieval"
RERANK_RESOURCE = "reranker"
CACHE_RESOURCE = "cache"


def shard_resource_name(sid: int, n_shards: int) -> str:
    """Resource name for shard ``sid``: the single shard of an
    unsharded store keeps the historical ``"retrieval"`` name."""
    if n_shards == 1:
        return RETRIEVAL_RESOURCE
    return f"{RETRIEVAL_RESOURCE}/shard{sid}"


@dataclass(frozen=True)
class QueryRecord:
    """Everything measured for one served query (the pipeline's output)."""

    query_id: str
    policy: str
    dataset: str
    arrival_time: float
    decision_time: float
    finish_time: float
    config: RAGConfig
    f1: float
    expected_f1: float
    coverage: float
    profiler_seconds: float
    profiler_dollars: float
    n_chunks_retrieved: int
    chunks_clipped: bool
    fell_back: bool
    used_recent_spaces: bool
    confidence: float | None
    queueing_delay: float
    prefill_tokens: int
    output_tokens: int
    #: Which cluster replica served this query (0 on a bare engine;
    #: the *winning* lane's replica when the query was hedged).
    replica: int = 0
    #: Seconds spent waiting for a profiler slot (0 when unbounded).
    profiler_queue_delay: float = 0.0
    #: Max seconds spent waiting for a shard search slot (0 unbounded).
    retrieval_queue_delay: float = 0.0
    #: Scatter-gather stage duration: queue + max shard hold + gather.
    retrieval_seconds: float = 0.0
    #: Merge cost charged for candidates beyond the final top-k.
    gather_seconds: float = 0.0
    #: Reranker scoring hold (0 when no reranker is configured).
    rerank_seconds: float = 0.0
    #: Seconds spent waiting for a reranker slot.
    rerank_queue_delay: float = 0.0
    #: SLO deadline (``arrival + slo_seconds``); ``None`` without SLO.
    deadline: float | None = None
    #: Whether a speculative duplicate was armed for this query.
    hedged: bool = False
    #: When the duplicate lane started (``None`` when not hedged).
    hedge_time: float | None = None
    #: Whether the duplicate lane won (primary was cancelled).
    hedge_won: bool = False
    #: Tokens the losing lane had already processed when cancelled —
    #: the per-query wasted-work measure speculation pays for its
    #: tail-latency win.
    wasted_prefill_tokens: int = 0
    wasted_decode_tokens: int = 0
    #: GPU-time attribution of that wasted work (roofline-priced).
    speculation_seconds: float = 0.0
    #: Whether any cache tier served this query (``docs/CACHING.md``).
    cache_hit: bool = False
    #: Which tier: ``result-exact`` / ``result-semantic`` /
    #: ``retrieval`` (``None`` on a miss or with caching off).
    cache_tier: str | None = None
    #: Hit entry was tagged with an older corpus version than the
    #: store's current one (served anyway; staleness is measured).
    cache_stale: bool = False
    #: Seconds the serving entry had been resident at hit time.
    cache_age_s: float = 0.0
    #: Cache-resource lookup hold (+ queueing) this query paid; >0 for
    #: every query — hits *and* misses — when a cache is enabled.
    cache_lookup_seconds: float = 0.0
    #: RAGAS-style decomposed quality metrics (``docs/EVALUATION.md``),
    #: scored post-serve against what was actually served (the cached
    #: answer and chunk ids on a hit). ``None`` unless the run enabled
    #: the metric harness — the default keeps records byte-identical.
    faithfulness: float | None = None
    answer_relevancy: float | None = None
    context_precision: float | None = None
    context_recall: float | None = None

    @property
    def e2e_delay(self) -> float:
        return self.finish_time - self.arrival_time

    @property
    def slo_met(self) -> bool | None:
        """Deadline attainment (``None`` when no SLO is configured)."""
        if self.deadline is None:
            return None
        return self.finish_time <= self.deadline

    @property
    def profiler_fraction(self) -> float:
        """Share of end-to-end delay spent in the profiler (Fig 18).

        Includes time queued for a profiler slot: under API rate
        limits the *wait* is part of the overhead a user observes.
        """
        if self.e2e_delay <= 0:
            return 0.0
        return (self.profiler_seconds + self.profiler_queue_delay) \
            / self.e2e_delay


def _metric_fields(quality: QualityMetrics | None) -> dict:
    """Keyword fields for ``QueryRecord`` from one harness score.

    An empty dict when the harness is off, so the record keeps its
    all-``None`` defaults and default runs stay field-for-field
    identical to pre-harness records.
    """
    if quality is None:
        return {}
    return dict(
        faithfulness=quality.faithfulness,
        answer_relevancy=quality.answer_relevancy,
        context_precision=quality.context_precision,
        context_recall=quality.context_recall,
    )


@dataclass
class Lane:
    """One independent execution attempt of a query (retrieve → serve).

    Lane 0 is the primary; lane 1 is the speculative duplicate armed
    by the hedge event. Each lane tracks every resource lease, pending
    loop event, and in-flight engine request it owns, so the losing
    lane can be unwound without touching the winner: teardown cancels
    exactly the listed handles (cancelling already-completed ones is a
    no-op by construction).
    """

    ex: "QueryExecution"
    lane_id: int
    app_id: str
    replica: int = 0
    start_time: float = 0.0
    chunk_ids: list[str] = field(default_factory=list)
    chunks_clipped: bool = False
    plan: SynthesisPlan | None = None
    stage: int = 0
    stage_remaining: int = 0
    first_admitted: float | None = None
    prefill_tokens: int = 0
    output_tokens: int = 0
    retrieval_queue_delay: float = 0.0
    retrieval_seconds: float = 0.0
    gather_seconds: float = 0.0
    rerank_seconds: float = 0.0
    rerank_queue_delay: float = 0.0
    #: Every resource lease this lane ever took (profiler excluded:
    #: profiling happens once, before lanes exist).
    leases: list[Lease] = field(default_factory=list)
    #: Loop events owned by this lane (gather completions).
    events: list[Event] = field(default_factory=list)
    #: Engine requests still in flight (removed as calls complete).
    requests: list[InferenceRequest] = field(default_factory=list)
    finished: bool = False
    cancelled: bool = False


@dataclass
class QueryExecution:
    """Mutable per-query state as it moves through the stages."""

    query: Query
    arrival_time: float
    prep: PrepResult | None = None
    decision: Decision | None = None
    decision_time: float = 0.0
    #: Replica the primary lane was routed to.
    replica: int = 0
    profiler_queue_delay: float = 0.0
    #: ``arrival + slo_seconds`` when an SLO is configured.
    deadline: float | None = None
    lanes: list[Lane] = field(default_factory=list)
    #: The armed ``hedge:arm`` event (cancelled if the query wins first).
    hedge_event: Event | None = None
    hedged: bool = False
    hedge_time: float | None = None
    done: bool = False
    wasted_prefill_tokens: int = 0
    wasted_decode_tokens: int = 0
    speculation_seconds: float = 0.0
    #: Cache observables surfaced on the record (set by CacheStage).
    cache_hit: bool = False
    cache_tier: str | None = None
    cache_stale: bool = False
    cache_age_s: float = 0.0
    cache_lookup_seconds: float = 0.0


def validate_arrivals(arrivals: list[Arrival]) -> bool:
    """Return True for closed-loop workloads; reject empty and mixed.

    A workload is closed-loop iff *every* arrival time is ``None`` and
    open-loop iff *none* is — any mixture is rejected with the
    offending index (the pre-refactor check only inspected the first
    arrival, silently mis-running e.g. ``[None, 0.5, ...]``).
    """
    if not arrivals:
        raise ValueError("empty workload")
    closed = arrivals[0].time is None
    for i, arrival in enumerate(arrivals):
        if (arrival.time is None) != closed:
            kind = "closed-loop (time=None)" if closed else \
                f"open-loop (time={arrivals[0].time})"
            raise ValueError(
                "mixed open/closed-loop workload is not supported: "
                f"arrival 0 is {kind} but arrival {i} has "
                f"time={arrival.time}"
            )
    return closed


class _Stage:
    """Base: a stage holds its pipeline. Stages are wired explicitly
    (each hands off to the next by name), not iterated polymorphically,
    so no common ``enter`` signature is imposed here."""

    def __init__(self, pipeline: QueryPipeline) -> None:
        self.p = pipeline


class ProfileStage(_Stage):
    """Arrival-time policy work, contended on the profiler resource.

    The profiler is a *coalescing* resource: queries that queue behind
    a busy slot are dispatched together as one amortized API call the
    moment the slot frees (batched profiler endpoints take one
    round-trip for many queries), charged to the ledger **once** at the
    largest member's price. Queries granted a slot on arrival keep the
    historical one-call-per-query path, so the default (unbounded)
    schedule and ledger are untouched.
    """

    def __init__(self, pipeline: "QueryPipeline") -> None:
        super().__init__(pipeline)
        #: Prep results of queued (not yet dispatched) profile
        #: requests, keyed by lease; drained by :meth:`_charge_batch`.
        self._queued_prep: dict[Lease, PrepResult] = {}
        pipeline.profiler.on_batch = self._charge_batch

    def enter(self, t: float, query: Query) -> None:
        ex = QueryExecution(query=query, arrival_time=t)
        if self.p.slo_seconds is not None:
            ex.deadline = t + self.p.slo_seconds
        prep = self.p.policy.prepare(query)
        ex.prep = prep
        lease = self.p.profiler.request(
            t, prep.api_seconds,
            lambda now, waited: self._done(now, waited, ex))
        if lease.state == Lease.HELD:
            # Uncontended: a dedicated API call, charged on arrival.
            if prep.dollars:
                self.p.ledger.api_dollars += prep.dollars
                self.p.ledger.n_api_calls += 1
        else:
            self._queued_prep[lease] = prep

    def _charge_batch(self, batch: list[Lease]) -> None:
        """One ledger charge per merged profiler call (its price is the
        largest member's — the batched call must cover it)."""
        preps = [self._queued_prep.pop(lease)
                 for lease in batch if lease in self._queued_prep]
        dollars = max((prep.dollars for prep in preps), default=0.0)
        if dollars:
            self.p.ledger.api_dollars += dollars
            self.p.ledger.n_api_calls += 1

    def _done(self, now: float, waited: float, ex: QueryExecution) -> None:
        ex.profiler_queue_delay = waited
        self.p.decide.enter(now, ex)


class DecideStage(_Stage):
    """Pick a configuration against the engine's scheduling view, then
    open the primary lane (and plan the hedge, when speculating)."""

    def enter(self, t: float, ex: QueryExecution) -> None:
        p = self.p
        ex.decision_time = t
        view = p.make_view(ex.query)
        ex.decision = p.policy.choose(ex.query, ex.prep, view)
        if isinstance(p.engine, ClusterEngine):
            # Cluster-aware policies may re-place the query on a
            # replica with more claimable memory (fallback rescue).
            preferred = ex.decision.notes.get("preferred_replica")
            if preferred is not None and p.engine.is_active(preferred):
                # A preference for a replica that started draining
                # since the view was built is dropped, not honoured:
                # draining replicas take no new placements.
                p.engine.pin_app(ex.query.query_id, preferred)
            pinned = p.engine.replica_of_app(ex.query.query_id)
            ex.replica = 0 if pinned is None else pinned
        if p.cache_resource is not None:
            # Probe the cache tiers first; only a full miss opens the
            # primary lane and proceeds to retrieval. Caching off
            # (cache_resource None) keeps this path byte-identical.
            p.cache_stage.enter(t, ex, view)
            return
        primary = Lane(ex=ex, lane_id=0, app_id=ex.query.query_id,
                       replica=ex.replica, start_time=t)
        ex.lanes.append(primary)
        if p.speculation is not None:
            self._plan_hedge(t, ex, view)
        p.retrieve.enter(t, primary)

    def _plan_hedge(self, t: float, ex: QueryExecution,
                    view: SchedulingView) -> None:
        """Ask the speculation policy when (if ever) to arm a duplicate."""
        p = self.p
        if p.speculation.needs_estimate:
            # Closed-form footprint: bit-identical to pricing the
            # materialised estimate plan (uniform chunks make every
            # call in a stage identical), without building it.
            footprint = view.footprint(ex.decision.config)
            est_seconds = footprint.service_seconds(p.engine.cost)
        else:
            est_seconds = 0.0  # pure timers never read the estimate
        if isinstance(view, ClusterSchedulingView):
            outstanding = view.replica_outstanding
            speeds = view.replica_speeds
        else:
            outstanding = (p.engine.outstanding,)
            speeds = (p.engine.speed,)
        ctx = HedgeContext(
            arrival_time=ex.arrival_time,
            decision_time=t,
            deadline=ex.deadline,
            est_service_seconds=est_seconds,
            primary=ex.replica,
            replica_outstanding=outstanding,
            replica_speeds=speeds,
        )
        arm_at = p.speculation.hedge_time(ctx)
        if arm_at is None:
            return
        ex.hedge_event = p.loop.schedule(
            max(t, arm_at), "hedge:arm",
            lambda tt, _: p.arm_hedge(tt, ex),
        )


class CacheStage(_Stage):
    """Probe the cache tiers between Decide and Retrieve.

    One lookup hold on the shared ``cache`` resource covers both
    probes (exact/semantic result key, then the retrieval key): a
    **result** hit finalizes the query right here — no lane, no
    retrieval, no LLM calls; a **retrieval** hit opens the primary
    lane with the memoized chunk ids and enters synthesis directly;
    a full miss pays the lookup as added latency (the honest cost of
    consulting a cache) and proceeds down the normal path. Hedges are
    planned only for queries that will actually occupy the engine.
    """

    def enter(self, t: float, ex: QueryExecution, view) -> None:
        p = self.p
        hold = p.cache_lookup_hold()
        p.cache_resource.request(
            t, hold,
            lambda now, waited:
                self._looked_up(now, hold + waited, ex, view))

    def _looked_up(self, now: float, lookup_s: float,
                   ex: QueryExecution, view) -> None:
        p = self.p
        ex.cache_lookup_seconds = lookup_s
        query = ex.query
        config = ex.decision.config
        if p.result_cache is not None:
            key = ResultCache.key_for(query.text, config.label())
            qvec = None
            if p.result_cache.semantic and len(p.store):
                qvec = p.store.embed_query(query.text)
            entry, tier = p.result_cache.lookup(
                key, qvec, now, corpus_version=p.store.corpus_version)
            if entry is not None:
                p.finalize_cache_hit(ex, entry, tier, now)
                if tier == "result-semantic":
                    # Promote the near-duplicate under its own exact
                    # key: future identical repeats hit exactly, and
                    # the resident set no longer depends on where the
                    # threshold fell (hit-rate monotone in threshold).
                    p.result_cache.insert(
                        key, entry.value, now,
                        saved_seconds=entry.saved_seconds,
                        saved_dollars=entry.saved_dollars,
                        corpus_version=entry.corpus_version,
                        embedding=qvec,
                        config_label=config.label(),
                    )
                    p.charge_cache_insert(now)
                return
        lane = Lane(ex=ex, lane_id=0, app_id=query.query_id,
                    replica=ex.replica, start_time=now)
        ex.lanes.append(lane)
        if p.retrieval_cache is not None:
            k = config.num_chunks
            fetch_k = p.reranker.fetch_k(k) if p.reranker else k
            key = RetrievalCache.key_for(
                canonical_query_id(query.query_id), p.store.n_shards,
                p.store.index_label, fetch_k)
            entry = p.retrieval_cache.lookup(
                key, now, corpus_version=p.store.corpus_version)
            if entry is not None:
                ex.cache_hit = True
                ex.cache_tier = "retrieval"
                ex.cache_stale = (entry.corpus_version
                                  < p.store.corpus_version)
                ex.cache_age_s = now - entry.insert_time
                # Cached context, fresh answer: skip scatter-gather
                # and rerank, synthesize from the memoized top-k.
                lane.chunk_ids = list(entry.value)
                if p.speculation is not None:
                    p.decide._plan_hedge(now, ex, view)
                p.synthesize.enter(now, lane)
                return
        if p.speculation is not None:
            p.decide._plan_hedge(now, ex, view)
        p.retrieve.enter(now, lane)


@dataclass
class _ScatterState:
    """In-flight bookkeeping for one lane's scatter-gather."""

    t0: float
    fetch_k: int
    qvec: object
    pending: int
    hits: list
    max_wait: float = 0.0


class RetrieveStage(_Stage):
    """Scatter-gather search over the store's shards, each contended on
    its own per-shard resource.

    Scatter computes every shard's local answer up front and charges
    each shard's hold on its resource; the lane proceeds when the
    *last* shard completes (latency = max over shards), plus a gather
    event when merging excess candidates costs time (never at K=1, so
    the single-shard schedule is event-for-event the pre-shard one).
    """

    def enter(self, t: float, lane: Lane) -> None:
        p = self.p
        store = p.store
        ex = lane.ex
        k = ex.decision.config.num_chunks
        fetch_k = p.reranker.fetch_k(k) if p.reranker else k
        qvec = store.embed_query(ex.query.text) if len(store) else None
        state = _ScatterState(
            t0=t, fetch_k=fetch_k, qvec=qvec,
            pending=store.n_shards, hits=[()] * store.n_shards,
        )
        for sid in range(store.n_shards):
            found = (store.search_shard(sid, qvec, fetch_k)
                     if qvec is not None else [])
            lease = p.shard_resources[sid].request(
                t, store.shard_hold_seconds(sid),
                lambda now, waited, sid=sid, found=found:
                    self._shard_done(now, waited, sid, found, state, lane),
            )
            lane.leases.append(lease)

    def _shard_done(self, now: float, waited: float, sid: int,
                    found: list, state: _ScatterState,
                    lane: Lane) -> None:
        state.hits[sid] = found
        state.max_wait = max(state.max_wait, waited)
        state.pending -= 1
        if state.pending:
            return
        lane.retrieval_queue_delay = state.max_wait
        store = self.p.store
        merged = store.gather(state.hits, state.fetch_k)
        n_candidates = sum(len(h) for h in state.hits)
        gather_s = store.gather_seconds(n_candidates, state.fetch_k)
        lane.gather_seconds = gather_s
        if gather_s > 0:
            event = self.p.loop.schedule(
                now + gather_s, "gather:done",
                lambda tt, _: self._gathered(tt, merged, state, lane),
            )
            lane.events.append(event)
        else:
            self._gathered(now, merged, state, lane)

    def _gathered(self, now: float, merged: list[SearchHit],
                  state: _ScatterState, lane: Lane) -> None:
        lane.retrieval_seconds = now - state.t0
        p = self.p
        if p.reranker is not None:
            p.rerank.enter(now, lane, merged, state.qvec)
            return
        lane.chunk_ids = [h.chunk.chunk_id for h in merged]
        p.maybe_cache_retrieval(lane, now)
        p.synthesize.enter(now, lane)


class RerankStage(_Stage):
    """Re-score the merged candidate pool on the reranker resource."""

    def enter(self, t: float, lane: Lane,
              candidates: list[SearchHit], qvec) -> None:
        p = self.p
        hold = p.reranker.hold_seconds(len(candidates))
        lane.rerank_seconds = hold
        lease = p.rerank_resource.request(
            t, hold,
            lambda now, waited:
                self._done(now, waited, lane, candidates, qvec),
        )
        lane.leases.append(lease)

    def _done(self, now: float, waited: float, lane: Lane,
              candidates: list[SearchHit], qvec) -> None:
        lane.rerank_queue_delay = waited
        p = self.p
        k = lane.ex.decision.config.num_chunks
        top = (p.reranker.rerank(p.store, qvec, candidates, k)
               if candidates else [])
        lane.chunk_ids = [h.chunk.chunk_id for h in top]
        p.maybe_cache_retrieval(lane, now)
        p.synthesize.enter(now, lane)


class SynthesizeStage(_Stage):
    """Build the prompt plan: clip chunks, expand the synthesis DAG."""

    def enter(self, t: float, lane: Lane) -> None:
        p = self.p
        ex = lane.ex
        chunk_tokens = self._clipped_chunk_tokens(lane)
        synthesizer = p.synthesizer(ex.decision.config)
        lane.plan = synthesizer.build_plan(
            query_id=lane.app_id,
            query_tokens=ex.query.n_tokens,
            chunk_tokens=chunk_tokens,
            answer_tokens=ex.query.answer_tokens_estimate,
            config=ex.decision.config,
        )
        lane.stage = 0
        p.serve.submit_stage(lane, t)

    def _clipped_chunk_tokens(self, lane: Lane) -> list[int]:
        """Clip the retrieved chunk list to the model's context budget.

        ``stuff`` concatenates everything into one prompt; a fixed
        config with many large chunks can exceed the context window (or
        the KV pool), in which case trailing chunks are dropped — what
        a production stack's prompt builder does.
        """
        ex = lane.ex
        engine = self.p.engine
        chunks = [self.p.store.get(cid) for cid in lane.chunk_ids]
        tokens = [c.n_tokens for c in chunks]
        if ex.decision.config.synthesis_method is SynthesisMethod.STUFF:
            # Slack covers the prompt template wrapper (instruction +
            # per-chunk separators) plus a safety margin.
            wrapper_slack = 64 + 8 * len(tokens)
            budget = min(
                engine.model.max_context,
                engine.memory.kv_pool_tokens,
            ) - ex.query.n_tokens - ex.query.answer_tokens_estimate - wrapper_slack
            while tokens and sum(tokens) > budget:
                tokens.pop()
                lane.chunk_ids.pop()
                lane.chunks_clipped = True
        if not tokens:
            raise RuntimeError(
                f"no chunks usable for {ex.query.query_id}: context budget "
                "too small for even one chunk"
            )
        return tokens


class ServeStage(_Stage):
    """Drive the plan's LLM calls through the serving engine."""

    def submit_stage(self, lane: Lane, t: float) -> None:
        engine = self.p.engine
        calls = lane.plan.stage_calls(lane.stage)
        lane.stage_remaining = len(calls)
        for call in calls:
            request = InferenceRequest(
                prompt_tokens=call.prompt_tokens,
                output_tokens=call.output_tokens,
                arrival_time=max(t, engine.now),
                app_id=lane.app_id,
                stage=call.stage,
                on_finish=lambda req, now, lane=lane: self._on_call_done(
                    lane, req, now),
            )
            lane.requests.append(request)
            engine.submit(request)

    def _on_call_done(self, lane: Lane, request: InferenceRequest,
                      now: float) -> None:
        lane.requests.remove(request)
        if lane.first_admitted is None or (
            request.admitted_time is not None
            and request.admitted_time < lane.first_admitted
        ):
            lane.first_admitted = request.admitted_time
        lane.prefill_tokens += request.prompt_tokens
        lane.output_tokens += request.output_tokens
        lane.stage_remaining -= 1
        if lane.stage_remaining > 0:
            return
        if lane.stage + 1 < lane.plan.n_stages:
            lane.stage += 1
            self.submit_stage(lane, now)
            return
        lane.finished = True
        self.p.complete_lane(lane, now)


class QueryPipeline:
    """One workload run: stages + contended resources on a shared loop.

    The pipeline owns the per-run mutable state (event loop, resources,
    ledger, record sink) so that a fresh pipeline is a fresh
    simulation; the :class:`~repro.evaluation.runner.ExperimentRunner`
    constructs one per ``run()``.

    ``speculation`` (a
    :class:`~repro.serving.speculation.SpeculationPolicy` or ``None``)
    enables deadline-aware hedging; ``slo_seconds`` stamps every query
    with a deadline ``arrival + slo_seconds`` (reported as SLO
    attainment even without speculation). Both default off, leaving
    the event schedule untouched.
    """

    def __init__(
        self,
        bundle: DatasetBundle,
        policy: RAGPolicy,
        engine: ServingEngine | ClusterEngine,
        generator: SimulatedGenerator,
        profiler_concurrency: int | None = None,
        retrieval_concurrency: int | None = None,
        store: ShardedVectorStore | None = None,
        shard_concurrency=None,
        reranker: ExactReranker | None = None,
        speculation: SpeculationPolicy | None = None,
        slo_seconds: float | None = None,
        autoscaler=None,
        cache_config: CacheConfig | None = None,
        metrics: MetricHarness | None = None,
    ) -> None:
        self.bundle = bundle
        self.policy = policy
        self.engine = engine
        self.generator = generator
        #: Optional multi-metric quality harness (docs/EVALUATION.md).
        #: ``None`` (the default) skips scoring entirely: records carry
        #: ``None`` metric fields and the schedule is untouched either
        #: way — scoring is post-serve and emits no events.
        self.metrics = metrics
        if slo_seconds is not None:
            check_positive("slo_seconds", slo_seconds)
            slo_seconds = float(slo_seconds)
        self.speculation = speculation
        self.slo_seconds = slo_seconds
        #: Optional :class:`~repro.workload.Autoscaler`; started by
        #: ``run`` once the arrival horizon is known. ``None`` leaves
        #: the fleet static (and the schedule byte-identical).
        self.autoscaler = autoscaler
        #: The (possibly resharded) store queries search; defaults to
        #: the bundle's own single-shard store.
        self.store = store if store is not None else bundle.store
        self.reranker = reranker
        self.loop = EventLoop()
        # coalesce: queued profile requests dispatch as one amortized
        # batched API call per freed slot (see ProfileStage). Never
        # engages at the unbounded default, keeping goldens identical.
        self.profiler = Resource(PROFILER_RESOURCE, self.loop,
                                 profiler_concurrency, coalesce=True)
        n_shards = self.store.n_shards
        if retrieval_concurrency is not None and n_shards > 1:
            raise ValueError(
                "retrieval_concurrency bounds the single executor pool "
                f"of an unsharded store; this store has {n_shards} "
                "shards — pass shard_concurrency instead"
            )
        per_shard = check_shard_concurrency(
            "shard_concurrency", shard_concurrency, n_shards)
        if per_shard is None:
            # Legacy surface: ``retrieval_concurrency`` bounds the sole
            # shard of an unsharded store.
            per_shard = ([retrieval_concurrency] if n_shards == 1
                         else [None] * n_shards)
        self.shard_resources = [
            Resource(shard_resource_name(sid, n_shards), self.loop,
                     per_shard[sid])
            for sid in range(n_shards)
        ]
        #: Legacy alias: the single retrieval resource (K=1 only).
        self.retrieval = (self.shard_resources[0]
                          if n_shards == 1 else None)
        self.rerank_resource = (
            Resource(RERANK_RESOURCE, self.loop, None)
            if reranker is not None else None
        )
        # Cache tiers (docs/CACHING.md): fresh per pipeline — caches
        # are per-run mutable state like the ledger. Disabled (None
        # config, the default) constructs nothing: no tier objects, no
        # ``cache`` resource, no extra events — the byte-identity path.
        self.cache_config = cache_config
        self.result_cache: ResultCache | None = None
        self.retrieval_cache: RetrievalCache | None = None
        self.cache_resource: Resource | None = None
        if cache_config is not None and cache_config.enabled:
            if cache_config.result_enabled:
                self.result_cache = ResultCache(
                    capacity=cache_config.capacity,
                    eviction=cache_config.eviction,
                    ttl_s=cache_config.ttl_s,
                    semantic=(cache_config.result_mode == "semantic"),
                    semantic_threshold=cache_config.semantic_threshold,
                )
            if cache_config.retrieval:
                self.retrieval_cache = RetrievalCache(
                    capacity=cache_config.capacity,
                    eviction=cache_config.eviction,
                    ttl_s=cache_config.ttl_s,
                )
            self.cache_resource = Resource(CACHE_RESOURCE, self.loop, None)
        self.ledger = CostLedger()
        #: StepDriver wiring the engine onto the loop (set by ``run``).
        self.driver = None
        self.records: list[QueryRecord] = []
        #: GPU seconds of cancelled duplicate work (roofline-priced at
        #: the losing replica's speed); the runner attributes this to
        #: the ledger's ``speculation`` column.
        self.speculation_gpu_seconds = 0.0
        self.n_hedges_armed = 0
        self._synthesizers: dict = {}
        self._pending_closed: deque[Arrival] = deque()
        # The stages, wired in traversal order.
        self.profile = ProfileStage(self)
        self.decide = DecideStage(self)
        self.cache_stage = CacheStage(self)
        self.retrieve = RetrieveStage(self)
        self.rerank = RerankStage(self)
        self.synthesize = SynthesizeStage(self)
        self.serve = ServeStage(self)

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def run(self, arrivals: list[Arrival],
            closed_loop_clients: int = 1) -> None:
        """Seed the workload and run the loop until everything drains."""
        check_positive("closed_loop_clients", closed_loop_clients)
        closed = validate_arrivals(arrivals)
        if closed and self.autoscaler is not None:
            raise ValueError(
                "the autoscaler tracks timed (open-loop) workloads; a "
                "closed-loop run has no arrival horizon to scale against"
            )
        if closed:
            seed_n = min(int(closed_loop_clients), len(arrivals))
            for arrival in arrivals[:seed_n]:
                self._schedule_arrival(0.0, arrival.query)
            self._pending_closed = deque(arrivals[seed_n:])
        else:
            if closed_loop_clients != 1:
                raise ValueError(
                    "closed_loop_clients only applies to closed-loop "
                    "(sequential) workloads"
                )
            for arrival in arrivals:
                self._schedule_arrival(arrival.time, arrival.query)
        # Event-driven serving: the engine's iterations are first-class
        # events on the shared loop (armed by a StepDriver; idle
        # engines/replicas sleep and are woken by admission), replacing
        # the legacy polling interleave `loop.run(substrate=engine)`.
        # The dispatch order is byte-identical — see repro.sim.driver.
        self.driver = self.engine.attach(self.loop)
        if self.autoscaler is not None:
            horizon = max(a.time for a in arrivals)
            self.autoscaler.start(
                self.loop, self.engine, horizon=horizon,
                records=self.records, slo_seconds=self.slo_seconds)
        self.loop.run()

    def _schedule_arrival(self, t: float, query: Query) -> None:
        self.loop.schedule(t, "arrival", self.profile.enter, query)

    # ------------------------------------------------------------------
    # Speculation: arming, first-completion-wins, loser teardown
    # ------------------------------------------------------------------
    def arm_hedge(self, t: float, ex: QueryExecution) -> None:
        """The ``hedge:arm`` event fired: open the duplicate lane.

        Chooses the fastest under-loaded replica *now* (queue depths
        have moved since decision time), pins the duplicate's app id
        there, and re-enters the retrieve stage — the duplicate
        contends for shard/rerank resources and KV memory exactly like
        a fresh query, which is the cost hedging pays.
        """
        ex.hedge_event = None
        if ex.done:  # pragma: no cover - arm events are cancelled at win
            return
        engine = self.engine
        if isinstance(engine, ClusterEngine):
            target = self.speculation.choose_replica(
                engine.replica_outstanding(), engine.replica_speeds,
                ex.lanes[0].replica,
                eligible=engine.active_replica_ids(),
            )
        else:
            target = None  # a bare engine has nowhere to hedge to
        if target is None:
            return
        app_id = f"{ex.query.query_id}#hedge"
        engine.pin_app(app_id, target)
        lane = Lane(ex=ex, lane_id=1, app_id=app_id,
                    replica=target, start_time=t)
        ex.lanes.append(lane)
        ex.hedged = True
        ex.hedge_time = t
        self.n_hedges_armed += 1
        self.retrieve.enter(t, lane)

    def complete_lane(self, lane: Lane, now: float) -> None:
        """A lane finished its last LLM call: first completion wins."""
        ex = lane.ex
        if ex.done:  # pragma: no cover - losers are cancelled, not raced
            return
        ex.done = True
        if ex.hedge_event is not None:
            # The query beat its own hedge timer; the armed event must
            # die as a tombstone, never fire.
            self.loop.cancel(ex.hedge_event)
            ex.hedge_event = None
        for other in ex.lanes:
            if other is not lane:
                self._cancel_lane(other, now)
        self.finalize(ex, lane, now)

    def _cancel_lane(self, lane: Lane, now: float) -> None:
        """Unwind a losing lane deterministically.

        Order matters for accounting, not correctness: measure the
        loser's processed tokens first (completed calls plus partial
        progress of in-flight ones), then cancel leases (queued ones
        vanish, held ones release their slot to the next waiter),
        tombstone pending gather events, evict engine requests (KV
        reservations freed), and drop the hedge app pin. Every cancel
        below is idempotent/no-op on already-completed handles.
        """
        lane.cancelled = True
        ex = lane.ex
        wasted_prefill = lane.prefill_tokens
        wasted_decode = lane.output_tokens
        for request in lane.requests:
            wasted_prefill += request.prefilled_tokens
            wasted_decode += request.decoded_tokens
        for lease in lane.leases:
            lease.cancel(now)
        for event in lane.events:
            self.loop.cancel(event)
        for request in lane.requests:
            self.engine.cancel(request)
        lane.requests.clear()
        ex.wasted_prefill_tokens += wasted_prefill
        ex.wasted_decode_tokens += wasted_decode
        seconds = self._wasted_seconds(lane, wasted_prefill, wasted_decode)
        ex.speculation_seconds += seconds
        self.speculation_gpu_seconds += seconds
        if isinstance(self.engine, ClusterEngine):
            self.engine.release_app(lane.app_id)

    def _wasted_seconds(self, lane: Lane, prefill_tokens: int,
                        decode_tokens: int) -> float:
        """Roofline-price the loser's processed tokens as GPU time
        (same rule feedback runs are charged at), scaled by the losing
        replica's speed — wasted tokens on a 0.5x replica occupied it
        twice as long."""
        if prefill_tokens <= 0 and decode_tokens <= 0:
            return 0.0
        seconds = self.engine.cost.request_seconds(prefill_tokens,
                                                   decode_tokens)
        if isinstance(self.engine, ClusterEngine):
            speed = self.engine.replicas[lane.replica].speed
        else:
            speed = self.engine.speed
        return seconds / speed

    # ------------------------------------------------------------------
    def finalize(self, ex: QueryExecution, lane: Lane, now: float) -> None:
        """Winning lane done: score, record, and refill the closed loop."""
        ctx = self.bundle.synthesis_context(ex.query, lane.chunk_ids)
        answer = self.generator.generate(ctx, ex.decision.config)
        quality = (self.metrics.score(ex.query, answer.tokens,
                                      lane.chunk_ids)
                   if self.metrics is not None else None)
        record = QueryRecord(
            query_id=ex.query.query_id,
            policy=self.policy.name,
            dataset=self.bundle.name,
            arrival_time=ex.arrival_time,
            decision_time=ex.decision_time,
            finish_time=now,
            config=ex.decision.config,
            f1=answer.f1,
            expected_f1=answer.expected_f1,
            coverage=answer.coverage,
            profiler_seconds=ex.prep.api_seconds,
            profiler_dollars=ex.prep.dollars,
            n_chunks_retrieved=len(lane.chunk_ids),
            chunks_clipped=lane.chunks_clipped,
            fell_back=ex.decision.fell_back,
            used_recent_spaces=ex.decision.used_recent_spaces,
            confidence=(
                ex.prep.profile.confidence if ex.prep.profile else None
            ),
            queueing_delay=(
                (lane.first_admitted - ex.arrival_time)
                if lane.first_admitted is not None
                else 0.0
            ),
            prefill_tokens=lane.prefill_tokens,
            output_tokens=lane.output_tokens,
            replica=lane.replica,
            profiler_queue_delay=ex.profiler_queue_delay,
            retrieval_queue_delay=lane.retrieval_queue_delay,
            retrieval_seconds=lane.retrieval_seconds,
            gather_seconds=lane.gather_seconds,
            rerank_seconds=lane.rerank_seconds,
            rerank_queue_delay=lane.rerank_queue_delay,
            deadline=ex.deadline,
            hedged=ex.hedged,
            hedge_time=ex.hedge_time,
            hedge_won=(ex.hedged and lane.lane_id == 1),
            wasted_prefill_tokens=ex.wasted_prefill_tokens,
            wasted_decode_tokens=ex.wasted_decode_tokens,
            speculation_seconds=ex.speculation_seconds,
            cache_hit=ex.cache_hit,
            cache_tier=ex.cache_tier,
            cache_stale=ex.cache_stale,
            cache_age_s=ex.cache_age_s,
            cache_lookup_seconds=ex.cache_lookup_seconds,
            **_metric_fields(quality),
        )
        self.records.append(record)
        if self.result_cache is not None and not ex.cache_hit:
            # Miss path: memoize the full answer so an exact (or
            # near-duplicate, in semantic mode) repeat can skip
            # Retrieve/Rerank/Synthesize. Benefit is the *measured*
            # post-decide latency and the priced GPU time of this
            # query's LLM calls — what a future hit actually saves.
            saved_seconds = now - lane.start_time
            saved_dollars = self.ledger.model.gpu_time(
                self.engine.cluster,
                self.engine.cost.request_seconds(lane.prefill_tokens,
                                                 lane.output_tokens))
            value = CachedAnswer(
                tokens=tuple(answer.tokens),
                f1=answer.f1,
                expected_f1=answer.expected_f1,
                coverage=answer.coverage,
                chunk_ids=tuple(lane.chunk_ids),
                chunks_clipped=lane.chunks_clipped,
            )
            key = ResultCache.key_for(ex.query.text,
                                      ex.decision.config.label())
            qvec = (self.store.embed_query(ex.query.text)
                    if self.result_cache.semantic and len(self.store)
                    else None)
            self.result_cache.insert(
                key, value, now,
                saved_seconds=saved_seconds,
                saved_dollars=saved_dollars,
                corpus_version=self.store.corpus_version,
                embedding=qvec,
                config_label=ex.decision.config.label(),
            )
            self.charge_cache_insert(now)
        if isinstance(self.engine, ClusterEngine):
            self.engine.release_app(ex.query.query_id)
            # A winning hedge lane's pin must not outlive the query.
            self.engine.release_app(lane.app_id)
        self.policy.on_complete(ex.query, answer.f1, record.e2e_delay)
        if self._pending_closed:
            nxt = self._pending_closed.popleft()
            self._schedule_arrival(now, nxt.query)

    # ------------------------------------------------------------------
    # Caching (docs/CACHING.md)
    # ------------------------------------------------------------------
    def cache_lookup_hold(self) -> float:
        """Deterministic hold for one combined probe of the enabled
        tiers on the ``cache`` resource. Semantic mode pays a linear
        scan over resident entries, so a fuller cache probes slower."""
        hold = 0.0
        if self.result_cache is not None:
            hold += self.result_cache.lookup_seconds()
        if self.retrieval_cache is not None:
            hold += self.retrieval_cache.lookup_seconds()
        return hold

    def charge_cache_insert(self, now: float) -> None:
        """Inserts contend on the same ``cache`` resource as lookups —
        a write burst delays concurrent probes, which is the honest
        cost of a shared cache."""
        self.cache_resource.request(
            now, CACHE_INSERT_SECONDS, lambda t, waited: None)

    def maybe_cache_retrieval(self, lane: Lane, now: float) -> None:
        """Memoize a freshly retrieved top-k chunk-id list.

        Only primary lanes insert (a hedge duplicate retrieves the same
        ids — inserting twice would just burn insert events), and a
        lane that was itself served from the retrieval cache never
        re-inserts its own payload.
        """
        if (self.retrieval_cache is None or lane.lane_id != 0
                or lane.ex.cache_tier == "retrieval"):
            return
        ex = lane.ex
        k = ex.decision.config.num_chunks
        fetch_k = self.reranker.fetch_k(k) if self.reranker else k
        key = RetrievalCache.key_for(
            canonical_query_id(ex.query.query_id), self.store.n_shards,
            self.store.index_label, fetch_k)
        # The payload is copied: SynthesizeStage clips lane.chunk_ids
        # in place and must not mutate the cached value.
        self.retrieval_cache.insert(
            key, tuple(lane.chunk_ids), now,
            saved_seconds=(lane.retrieval_seconds + lane.gather_seconds
                           + lane.rerank_seconds),
            corpus_version=self.store.corpus_version,
        )
        self.charge_cache_insert(now)

    def finalize_cache_hit(self, ex: QueryExecution, entry, tier: str,
                           now: float) -> None:
        """A result-cache hit: serve the memoized answer immediately.

        The cached token sequence is re-scored against *this* query's
        ground truth — free for exact repeats (identical truth), and
        the honest quality delta for semantic near-matches and stale
        entries, which is how cache staleness becomes a measurable
        quality effect rather than an invisible one.
        """
        ex.done = True
        value = entry.value
        ex.cache_hit = True
        ex.cache_tier = tier
        ex.cache_stale = entry.corpus_version < self.store.corpus_version
        ex.cache_age_s = now - entry.insert_time
        ctx = self.bundle.synthesis_context(ex.query, list(value.chunk_ids))
        f1 = token_f1(list(value.tokens), list(ctx.ground_truth_tokens()))
        # The *hitting* query scores the *cached* answer and context:
        # exact repeats reproduce the miss-path metrics bit-for-bit
        # (identical truth, tokens, and chunk ids), while semantic and
        # stale hits surface their honest faithfulness/relevancy/recall
        # deltas instead of hiding behind the donor query's scores.
        quality = (self.metrics.score(ex.query, value.tokens,
                                      value.chunk_ids)
                   if self.metrics is not None else None)
        record = QueryRecord(
            query_id=ex.query.query_id,
            policy=self.policy.name,
            dataset=self.bundle.name,
            arrival_time=ex.arrival_time,
            decision_time=ex.decision_time,
            finish_time=now,
            config=ex.decision.config,
            f1=f1,
            expected_f1=value.expected_f1,
            coverage=value.coverage,
            profiler_seconds=ex.prep.api_seconds,
            profiler_dollars=ex.prep.dollars,
            n_chunks_retrieved=len(value.chunk_ids),
            chunks_clipped=value.chunks_clipped,
            fell_back=ex.decision.fell_back,
            used_recent_spaces=ex.decision.used_recent_spaces,
            confidence=(
                ex.prep.profile.confidence if ex.prep.profile else None
            ),
            queueing_delay=0.0,
            prefill_tokens=0,
            output_tokens=0,
            replica=ex.replica,
            profiler_queue_delay=ex.profiler_queue_delay,
            deadline=ex.deadline,
            cache_hit=True,
            cache_tier=tier,
            cache_stale=ex.cache_stale,
            cache_age_s=ex.cache_age_s,
            cache_lookup_seconds=ex.cache_lookup_seconds,
            **_metric_fields(quality),
        )
        self.records.append(record)
        if isinstance(self.engine, ClusterEngine):
            # make_view pinned the query's app id at decide time; a hit
            # never admits engine requests, so release the pin here or
            # it leaks for the rest of the run.
            self.engine.release_app(ex.query.query_id)
        self.policy.on_complete(ex.query, f1, record.e2e_delay)
        if self._pending_closed:
            nxt = self._pending_closed.popleft()
            self._schedule_arrival(now, nxt.query)

    def cache_stats(self) -> dict[str, CacheStats]:
        """Per-tier counters for enabled tiers (empty when caching is
        off)."""
        stats: dict[str, CacheStats] = {}
        if self.result_cache is not None:
            stats["result"] = self.result_cache.stats
        if self.retrieval_cache is not None:
            stats["retrieval"] = self.retrieval_cache.stats
        return stats

    # ------------------------------------------------------------------
    # Helpers shared by stages
    # ------------------------------------------------------------------
    def resource_stats(self) -> dict[str, ResourceStats]:
        stats = {PROFILER_RESOURCE: self.profiler.stats}
        for resource in self.shard_resources:
            stats[resource.name] = resource.stats
        if self.rerank_resource is not None:
            stats[RERANK_RESOURCE] = self.rerank_resource.stats
        if self.cache_resource is not None:
            stats[CACHE_RESOURCE] = self.cache_resource.stats
        return stats

    def synthesizer(self, config: RAGConfig):
        method = config.synthesis_method
        if method not in self._synthesizers:
            self._synthesizers[method] = make_synthesizer(method)
        return self._synthesizers[method]

    def make_view(self, query: Query) -> SchedulingView:
        engine = self.engine
        chunk_tokens = self.bundle.chunk_tokens

        def estimate_plan(config: RAGConfig) -> SynthesisPlan:
            synthesizer = self.synthesizer(config)
            return synthesizer.build_plan(
                query_id=f"{query.query_id}/est",
                query_tokens=query.n_tokens,
                chunk_tokens=[chunk_tokens] * config.num_chunks,
                answer_tokens=query.answer_tokens_estimate,
                config=config,
            )

        if isinstance(engine, ClusterEngine):
            # Route (and pin) the query now so the policy sees the KV
            # memory of the replica its calls will actually land on.
            rid = engine.assign_app(query.query_id)
            target = engine.replicas[rid]
            return ClusterSchedulingView(
                now=engine.now,
                free_kv_bytes=target.free_kv_bytes(),
                available_kv_bytes=target.available_kv_bytes(),
                kv_bytes_per_token=target.memory.kv_bytes_per_token,
                chunk_tokens=chunk_tokens,
                query_tokens=query.n_tokens,
                answer_tokens=query.answer_tokens_estimate,
                estimate_plan=estimate_plan,
                replica_id=rid,
                replica_free_kv_bytes=tuple(
                    r.free_kv_bytes() for r in engine.replicas
                ),
                replica_available_kv_bytes=tuple(
                    r.available_kv_bytes() for r in engine.replicas
                ),
                replica_now=tuple(r.now for r in engine.replicas),
                replica_speeds=engine.replica_speeds,
                replica_outstanding=engine.replica_outstanding(),
            )

        return SchedulingView(
            now=engine.now,
            free_kv_bytes=engine.free_kv_bytes(),
            available_kv_bytes=engine.available_kv_bytes(),
            kv_bytes_per_token=engine.memory.kv_bytes_per_token,
            chunk_tokens=chunk_tokens,
            query_tokens=query.n_tokens,
            answer_tokens=query.answer_tokens_estimate,
            estimate_plan=estimate_plan,
        )
