"""Dollar-cost accounting (paper Fig 13).

Two cost sources are modelled:

* **API calls** (profiler, hosted inference models) billed at per-token
  rates from the :class:`~repro.llm.model.ModelSpec`.
* **Self-hosted serving** billed as GPU-seconds of busy time, amortised
  at an on-demand rental price — this is how the paper compares METIS
  (7B + profiler) against larger fixed-config inference models.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.llm.gpu import ClusterSpec
from repro.llm.model import ModelSpec
from repro.util.validation import check_non_negative

__all__ = ["DollarCostModel", "CostLedger"]


@dataclass(frozen=True)
class DollarCostModel:
    """Prices one query's resource usage in dollars."""

    dollar_per_gpu_hour: float = 0.79  # A40 on-demand

    def api_call(self, model: ModelSpec, input_tokens: int,
                 output_tokens: int) -> float:
        """Cost of a hosted API call."""
        check_non_negative("input_tokens", input_tokens)
        check_non_negative("output_tokens", output_tokens)
        return model.dollar_cost(input_tokens, output_tokens)

    def gpu_time(self, cluster: ClusterSpec, busy_seconds: float) -> float:
        """Cost of occupying a (possibly multi-GPU) cluster."""
        check_non_negative("busy_seconds", busy_seconds)
        return busy_seconds * cluster.dollar_per_second(self.dollar_per_gpu_hour)


@dataclass
class CostLedger:
    """Accumulates the dollar cost of one experiment run.

    ``speculation_dollars`` is an **attribution**, not an extra
    charge: hedged queries' duplicate work runs on the same GPUs whose
    busy time is already billed through :meth:`charge_gpu`, so the
    speculation column carves the wasted (losing-lane) share out of
    ``gpu_dollars`` for reporting — ``total_dollars`` stays
    ``api + gpu``. This is the tail-latency-vs-cost axis of
    ``fig_speculation``.

    ``idle_dollars`` is a real charge, not an attribution: a
    provisioned replica bills for wall-clock rental whether or not it
    is busy (``charge_idle_capacity`` adds the idle remainder on top
    of the busy time billed through :meth:`charge_gpu`), so
    ``total_dollars`` becomes ``api + gpu + idle``. Static fleets
    sized for the peak pay for their troughs — the cost axis of
    ``fig_autoscale``. Runs that don't price idle capacity (the
    default) never call it, leaving totals unchanged.
    """

    model: DollarCostModel = field(default_factory=DollarCostModel)
    api_dollars: float = 0.0
    gpu_dollars: float = 0.0
    n_api_calls: int = 0
    #: GPU dollars attributable to speculation losers (subset of
    #: ``gpu_dollars``; see class docstring).
    speculation_dollars: float = 0.0
    speculation_gpu_seconds: float = 0.0
    #: Rental dollars for provisioned-but-idle capacity (additive;
    #: see class docstring).
    idle_dollars: float = 0.0
    idle_gpu_seconds: float = 0.0

    def charge_api(self, spec: ModelSpec, input_tokens: int,
                   output_tokens: int) -> float:
        cost = self.model.api_call(spec, input_tokens, output_tokens)
        self.api_dollars += cost
        self.n_api_calls += 1
        return cost

    def charge_gpu(self, cluster: ClusterSpec, busy_seconds: float) -> float:
        cost = self.model.gpu_time(cluster, busy_seconds)
        self.gpu_dollars += cost
        return cost

    def charge_speculation(self, cluster: ClusterSpec,
                           busy_seconds: float) -> float:
        """Attribute GPU seconds of cancelled duplicate work (priced
        like :meth:`charge_gpu` but *not* added to the total — the
        engine's busy time already contains it)."""
        cost = self.model.gpu_time(cluster, busy_seconds)
        self.speculation_dollars += cost
        self.speculation_gpu_seconds += busy_seconds
        return cost

    def charge_idle_capacity(self, cluster: ClusterSpec,
                             idle_seconds: float) -> float:
        """Charge rental for provisioned capacity that sat idle
        (priced like :meth:`charge_gpu`, **added** to the total)."""
        cost = self.model.gpu_time(cluster, idle_seconds)
        self.idle_dollars += cost
        self.idle_gpu_seconds += idle_seconds
        return cost

    @property
    def total_dollars(self) -> float:
        return self.api_dollars + self.gpu_dollars + self.idle_dollars

    def per_query(self, n_queries: int) -> float:
        """Average dollars per query (0 when no queries ran)."""
        if n_queries <= 0:
            return 0.0
        return self.total_dollars / n_queries
