"""Token-level F1 — the paper's response-quality metric (§2).

F1 is the harmonic mean of precision (fraction of generated tokens that
are correct) and recall (fraction of reference tokens that were
generated), computed over token *multisets* as in SQuAD evaluation.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence

__all__ = ["token_f1", "precision_recall"]


def precision_recall(
    predicted: Sequence[str], reference: Sequence[str]
) -> tuple[float, float]:
    """Multiset token precision and recall of ``predicted`` vs ``reference``.

    >>> precision_recall(["a", "b"], ["a", "c"])
    (0.5, 0.5)
    """
    if not predicted or not reference:
        return 0.0, 0.0
    overlap = Counter(predicted) & Counter(reference)
    n_common = sum(overlap.values())
    return n_common / len(predicted), n_common / len(reference)


def token_f1(predicted: Sequence[str], reference: Sequence[str]) -> float:
    """Token-multiset F1 score in [0, 1].

    >>> token_f1(["the", "eiffel", "tower"], ["eiffel", "tower"])
    0.8
    >>> token_f1([], ["x"])
    0.0
    """
    precision, recall = precision_recall(predicted, reference)
    if precision + recall == 0.0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)
