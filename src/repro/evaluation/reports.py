"""Plain-text table formatting and cluster-run aggregation.

Every benchmark regenerates a paper table/figure as rows of
``{column: value}``; this module renders them uniformly so the bench
output is directly comparable with the paper's plots. For
multi-replica runs it also folds per-replica engine counters (KV
occupancy, queue pressure, fallback rate) into cluster summaries.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.util.ids import canonical_query_id

__all__ = ["format_table", "format_ratio", "Reporter",
           "per_replica_rows", "cluster_summary", "resource_rows",
           "retrieval_shard_rows", "speculation_rows",
           "autoscale_rows", "autoscale_summary",
           "cache_rows", "query_group_rows", "quality_rows"]


def _fmt(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        if abs(value) >= 0.01:
            return f"{value:.3f}"
        return f"{value:.5f}"
    return str(value)


def format_table(rows: Sequence[Mapping[str, object]],
                 columns: Sequence[str] | None = None,
                 title: str | None = None) -> str:
    """Render rows as an aligned monospace table.

    >>> print(format_table([{"n": 1}, {"n": 2}]))
    n
    -
    1
    2
    """
    if not rows:
        return "(no rows)"
    cols = list(columns) if columns else list(rows[0].keys())
    rendered = [[_fmt(row.get(c, "")) for c in cols] for row in rows]
    widths = [
        max(len(c), *(len(r[i]) for r in rendered))
        for i, c in enumerate(cols)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(c.ljust(w) for c, w in zip(cols, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in rendered:
        lines.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)


def format_ratio(numerator: float, denominator: float) -> str:
    """Render a speedup/ratio defensively (Inf-safe)."""
    if denominator <= 0:
        return "n/a"
    return f"{numerator / denominator:.2f}x"


# ----------------------------------------------------------------------
# Cluster-run aggregation
# ----------------------------------------------------------------------
def per_replica_rows(result) -> list[dict]:
    """One row of serving counters per cluster replica.

    ``result`` is a :class:`~repro.evaluation.runner.RunResult`
    (duck-typed: anything with ``records`` carrying ``replica`` /
    ``fell_back`` / ``queueing_delay`` and a ``replica_stats`` list;
    an optional ``replica_speeds`` list adds the per-replica speed
    multiplier column for heterogeneous fleets).

    ``busy_seconds`` and ``wakeups`` (idle-to-busy transitions, i.e.
    the wake events the event-driven stepping armed for the replica)
    together describe each replica's duty cycle: a fast replica in a
    heterogeneous fleet shows more wakeups and less busy time per
    query than its slow peers.
    """
    speeds = list(getattr(result, "replica_speeds", None) or [])
    rows: list[dict] = []
    for i, stats in enumerate(result.replica_stats):
        records = [r for r in result.records if r.replica == i]
        n = len(records)
        n_fallback = sum(1 for r in records if r.fell_back)
        delays = sorted(r.queueing_delay for r in records)
        p50 = delays[len(delays) // 2] if delays else 0.0
        rows.append(dict(
            replica=i,
            speed=speeds[i] if i < len(speeds) else 1.0,
            queries=n,
            requests_finished=stats.requests_finished,
            busy_seconds=stats.busy_seconds,
            wakeups=stats.wakeups,
            peak_kv_utilization=stats.peak_kv_utilization,
            admission_stalls=stats.admission_stalls,
            fallback_rate=(n_fallback / n) if n else 0.0,
            p50_queue_delay_s=p50,
        ))
    return rows


def cluster_summary(result) -> dict:
    """Fold per-replica stats into one cluster-level summary row.

    ``load_imbalance`` is max/mean queries per replica (1.0 = perfectly
    balanced); ``peak_kv_utilization`` is the worst replica's peak.
    """
    rows = per_replica_rows(result)
    if not rows:
        return dict(n_replicas=0, queries=0, fallback_rate=0.0,
                    peak_kv_utilization=0.0, admission_stalls=0,
                    load_imbalance=0.0, busy_seconds=0.0)
    queries = [row["queries"] for row in rows]
    total = sum(queries)
    n_fallback = sum(row["fallback_rate"] * row["queries"] for row in rows)
    mean_load = total / len(rows)
    return dict(
        n_replicas=len(rows),
        queries=total,
        fallback_rate=(n_fallback / total) if total else 0.0,
        peak_kv_utilization=max(row["peak_kv_utilization"] for row in rows),
        admission_stalls=sum(row["admission_stalls"] for row in rows),
        load_imbalance=(max(queries) / mean_load) if mean_load else 0.0,
        busy_seconds=sum(row["busy_seconds"] for row in rows),
    )


def resource_rows(result) -> list[dict]:
    """One row of contention counters per pipeline resource.

    ``result`` is a :class:`~repro.evaluation.runner.RunResult`
    (duck-typed: needs ``resource_stats`` — a mapping of name to
    :class:`~repro.sim.resource.ResourceStats` — and ``makespan``).
    Unbounded resources render ``concurrency`` as ``inf`` with zero
    utilization; queue-delay columns quantify how long queries waited
    for a slot (the load-dependent part of Fig 18's overhead).
    """
    rows: list[dict] = []
    for name, stats in result.resource_stats.items():
        finite = stats.concurrency != float("inf")
        rows.append(dict(
            resource=name,
            concurrency=int(stats.concurrency) if finite else stats.concurrency,
            requests=stats.n_requests,
            utilization=stats.utilization(result.makespan),
            busy_seconds=stats.busy_seconds,
            queued_fraction=stats.queued_fraction,
            mean_queue_delay_s=stats.mean_queue_delay,
            max_queue_delay_s=stats.max_queue_delay,
            peak_queue_len=stats.peak_queue_len,
        ))
    return rows


def retrieval_shard_rows(result) -> list[dict]:
    """One row per retrieval shard (plus the reranker when present).

    The retrieval-focused slice of :func:`resource_rows`: for a
    sharded store each ``retrieval/shardN`` resource gets a row with a
    parsed ``shard`` column, so per-shard utilization and queue delay
    are directly comparable across K in scaling sweeps. The unsharded
    ``retrieval`` resource and the ``reranker`` render with
    ``shard='-'``.
    """
    rows: list[dict] = []
    for row in resource_rows(result):
        name = row["resource"]
        if not (name == "retrieval" or name.startswith("retrieval/")
                or name == "reranker"):
            continue
        shard = (int(name.split("/shard", 1)[1])
                 if "/shard" in name else "-")
        rows.append(dict(
            resource=name,
            shard=shard,
            concurrency=row["concurrency"],
            requests=row["requests"],
            utilization=row["utilization"],
            queued_fraction=row["queued_fraction"],
            mean_queue_delay_s=row["mean_queue_delay_s"],
            max_queue_delay_s=row["max_queue_delay_s"],
            peak_queue_len=row["peak_queue_len"],
        ))
    return rows


def speculation_rows(result) -> list[dict]:
    """One summary row of hedging observables for a run.

    ``result`` is a :class:`~repro.evaluation.runner.RunResult`
    (duck-typed: ``records`` with the hedge fields, ``engine_stats``,
    ``ledger``, and the derived ``hedge_rate`` / ``hedge_win_rate`` /
    ``wasted_work_fraction`` / ``slo_attainment`` properties). The
    p99-vs-cost pairing is the fig_speculation headline: hedging buys
    tail latency with the wasted-work fraction and the ledger's
    ``speculation`` dollars.
    """
    has_slo = result.slo_seconds is not None
    return [dict(
        speculation=result.speculation or "none",
        slo_s=result.slo_seconds if has_slo else "-",
        # Without an SLO there is no deadline to attain; render "-"
        # rather than a misleading 0% attainment.
        slo_attainment=result.slo_attainment if has_slo else "-",
        hedge_rate=result.hedge_rate,
        hedge_win_rate=result.hedge_win_rate,
        wasted_work_fraction=result.wasted_work_fraction,
        p50_delay_s=result.delay_percentile(50),
        p99_delay_s=result.delay_percentile(99),
        requests_cancelled=result.engine_stats.requests_cancelled,
        speculation_dollars=result.ledger.speculation_dollars,
    )]


def autoscale_rows(result) -> list[dict]:
    """One row per fleet change the autoscaler made, in event order.

    ``result`` is a :class:`~repro.evaluation.runner.RunResult`
    (duck-typed: needs ``scaling_events`` — a list of
    :class:`~repro.workload.ScalingEvent`). ``replica`` renders ``-``
    for provision requests, which have no replica id until the
    capacity actually joins.
    """
    return [dict(
        time_s=e.time,
        action=e.action,
        replica=e.replica if e.replica >= 0 else "-",
        n_active=e.n_active,
    ) for e in result.scaling_events]


def autoscale_summary(result) -> dict:
    """One row summarising elastic capacity over a run.

    Pairs the SLO axis with the cost axis: ``idle_fraction`` is the
    share of provisioned GPU-seconds that sat idle (what a static
    peak-sized fleet wastes in the troughs), and the event counts
    show how busy the control loop was.
    """
    events = result.scaling_events
    provisioned = result.provisioned_gpu_seconds
    idle = result.idle_gpu_seconds
    return dict(
        autoscaler=result.autoscaler or "none",
        n_replicas_peak=max((e.n_active for e in events),
                            default=len(result.replica_stats)),
        scale_ups=sum(1 for e in events if e.action == "add"),
        retires=sum(1 for e in events if e.action == "retire"),
        provisioned_gpu_s=provisioned,
        idle_gpu_s=idle,
        idle_fraction=(idle / provisioned) if provisioned > 0 else 0.0,
        idle_dollars=result.ledger.idle_dollars,
    )


def cache_rows(result) -> list[dict]:
    """One row of counters per enabled cache tier.

    ``result`` is a :class:`~repro.evaluation.runner.RunResult`
    (duck-typed: needs ``cache_stats`` — a mapping of tier name to
    :class:`~repro.caching.CacheStats`). Empty when caching is off.
    ``saved_seconds`` / ``saved_dollars`` are the summed *measured*
    benefit of the hits (what each memoized answer actually cost to
    produce), the same quantities GDSF eviction ranks entries by —
    see ``docs/CACHING.md``. When the metric harness scored anything
    (``n_quality_scored > 0``), a ``hit_faithfulness`` column pairs
    each tier's saved cost with the quality its hits actually
    delivered (docs/EVALUATION.md): NaN when the tier served no
    scored hits. Harness-off runs omit the column so default cache
    tables render byte-identically to the pre-harness layout.
    """
    records = getattr(result, "records", [])
    scored = getattr(result, "n_quality_scored", 0) > 0

    def row(tier, stats):
        out = dict(
            tier=tier,
            lookups=stats.lookups,
            hits=stats.hits,
            hit_rate=stats.hit_rate,
            inserts=stats.inserts,
            evictions=stats.evictions,
            expirations=stats.expirations,
            stale_hits=stats.stale_hits,
            semantic_hits=stats.semantic_hits,
            saved_seconds=stats.saved_seconds,
            saved_dollars=stats.saved_dollars,
        )
        if scored:
            out["hit_faithfulness"] = _mean_metric(
                [r for r in records if r.cache_hit
                 and (r.cache_tier or "").startswith(tier)],
                "faithfulness")
        return out

    return [row(tier, stats)
            for tier, stats in result.cache_stats.items()]


#: QueryRecord metric field names, in reporting order (kept in sync
#: with ``repro.evaluation.metrics.METRIC_NAMES`` without importing
#: it — reports stays a leaf module).
_QUALITY_METRICS = ("faithfulness", "answer_relevancy",
                    "context_precision", "context_recall")


def _mean_metric(records, metric: str) -> float:
    """NaN-safe mean of one metric over the scored subset of
    ``records`` (NaN when nothing was scored — empty run or harness
    off), mirroring the RunResult aggregate convention."""
    values = [getattr(r, metric) for r in records]
    values = [v for v in values if v is not None]
    if not values:
        return float("nan")
    return sum(values) / len(values)


def quality_rows(result) -> list[dict]:
    """Quality-metric aggregates per serving path (docs/EVALUATION.md).

    ``result`` is a :class:`~repro.evaluation.runner.RunResult`
    (duck-typed: ``records`` carrying the metric fields plus
    ``cache_hit`` / ``cache_tier``). One row per serving path — the
    miss path and each cache tier that actually served hits — plus an
    ``all`` summary row, so semantic-hit and stale-hit quality deltas
    read directly off the table. Rows render NaN metric columns when
    the harness was off; an empty run yields just the ``all`` row.
    """
    def path_of(r) -> str:
        return f"hit:{r.cache_tier}" if r.cache_hit else "miss"

    paths: dict[str, list] = {}
    order: list[str] = []
    for r in result.records:
        path = path_of(r)
        if path not in paths:
            paths[path] = []
            order.append(path)
        paths[path].append(r)

    def row(path: str, records) -> dict:
        out = dict(path=path, queries=len(records))
        for metric in _QUALITY_METRICS:
            out[metric] = _mean_metric(records, metric)
        out["mean_f1"] = (sum(r.f1 for r in records) / len(records)
                          if records else float("nan"))
        return out

    rows = [row(path, paths[path]) for path in sorted(order)]
    rows.append(row("all", result.records))
    return rows


def query_group_rows(result) -> list[dict]:
    """One row per *canonical* query, folding ``#rN`` replay repeats.

    Replayed traces (:func:`repro.workload.zipfian_workload` and
    ``materialize`` generally) reuse the query pool with ``#rN``
    suffixes on the ids; grouping by
    :func:`~repro.util.ids.canonical_query_id` shows how repetition
    was served — for a cached run, ``hits``/``repeats`` is the
    per-query hit yield, and ``first_delay_s`` vs ``mean_delay_s``
    quantifies what the repeats gained. Rows are ordered by first
    arrival.

    The ``faithfulness`` / ``context_recall`` columns aggregate the
    metric harness's per-record scores (docs/EVALUATION.md) NaN-safely:
    NaN when the group has no scored records (harness off), so cached
    replays with a real quality delta stand out per query.
    """
    groups: dict[str, list] = {}
    order: list[str] = []
    for r in result.records:
        cid = canonical_query_id(r.query_id)
        if cid not in groups:
            groups[cid] = []
            order.append(cid)
        groups[cid].append(r)
    rows: list[dict] = []
    for cid in order:
        records = sorted(groups[cid], key=lambda r: r.arrival_time)
        delays = [r.e2e_delay for r in records]
        rows.append(dict(
            query=cid,
            repeats=len(records),
            hits=sum(1 for r in records if r.cache_hit),
            stale_hits=sum(1 for r in records if r.cache_stale),
            first_delay_s=delays[0],
            mean_delay_s=sum(delays) / len(delays),
            mean_f1=sum(r.f1 for r in records) / len(records),
            faithfulness=_mean_metric(records, "faithfulness"),
            context_recall=_mean_metric(records, "context_recall"),
        ))
    return rows


class Reporter:
    """Collects lines and prints them once (keeps bench output tidy)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._lines: list[str] = [f"===== {name} ====="]

    def add(self, text: str = "") -> None:
        self._lines.append(text)

    def add_table(self, rows, columns=None, title=None) -> None:
        self._lines.append(format_table(rows, columns, title))

    def text(self) -> str:
        return "\n".join(self._lines)

    def emit(self) -> None:
        print()
        print(self.text())
