"""Plain-text table formatting for experiment reports.

Every benchmark regenerates a paper table/figure as rows of
``{column: value}``; this module renders them uniformly so the bench
output is directly comparable with the paper's plots.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

__all__ = ["format_table", "format_ratio", "Reporter"]


def _fmt(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        if abs(value) >= 0.01:
            return f"{value:.3f}"
        return f"{value:.5f}"
    return str(value)


def format_table(rows: Sequence[Mapping[str, object]],
                 columns: Sequence[str] | None = None,
                 title: str | None = None) -> str:
    """Render rows as an aligned monospace table.

    >>> print(format_table([{"n": 1}, {"n": 2}]))
    n
    -
    1
    2
    """
    if not rows:
        return "(no rows)"
    cols = list(columns) if columns else list(rows[0].keys())
    rendered = [[_fmt(row.get(c, "")) for c in cols] for row in rows]
    widths = [
        max(len(c), *(len(r[i]) for r in rendered))
        for i, c in enumerate(cols)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(c.ljust(w) for c, w in zip(cols, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in rendered:
        lines.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)


def format_ratio(numerator: float, denominator: float) -> str:
    """Render a speedup/ratio defensively (Inf-safe)."""
    if denominator <= 0:
        return "n/a"
    return f"{numerator / denominator:.2f}x"


class Reporter:
    """Collects lines and prints them once (keeps bench output tidy)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._lines: list[str] = [f"===== {name} ====="]

    def add(self, text: str = "") -> None:
        self._lines.append(text)

    def add_table(self, rows, columns=None, title=None) -> None:
        self._lines.append(format_table(rows, columns, title))

    def text(self) -> str:
        return "\n".join(self._lines)

    def emit(self) -> None:
        print()
        print(self.text())
