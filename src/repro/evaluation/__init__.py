"""Evaluation: quality metrics, cost accounting, Pareto utilities,
workload runner, and report formatting.

``runner`` and ``reports`` are imported lazily (PEP 562) because they
pull in the serving and core packages; the light leaf modules (``f1``,
``pareto``, ``costs``) are imported eagerly so that low-level packages
(e.g. :mod:`repro.llm.generation`) can depend on them without cycles.
"""

from repro.evaluation.costs import CostLedger, DollarCostModel
from repro.evaluation.f1 import precision_recall, token_f1
from repro.evaluation.pareto import ParetoPoint, pareto_frontier

__all__ = [
    "CostLedger",
    "DollarCostModel",
    "ExperimentRunner",
    "MetricHarness",
    "ParetoPoint",
    "QualityMetrics",
    "QualitySLO",
    "QueryRecord",
    "RunResult",
    "cluster_summary",
    "evaluate_quality_slo",
    "pareto_frontier",
    "per_replica_rows",
    "precision_recall",
    "quality_rows",
    "speculation_rows",
    "token_f1",
]

_LAZY = {
    "ExperimentRunner": "repro.evaluation.runner",
    "MetricHarness": "repro.evaluation.metrics",
    "QualityMetrics": "repro.evaluation.metrics",
    "QualitySLO": "repro.evaluation.metrics",
    "QueryRecord": "repro.evaluation.runner",
    "RunResult": "repro.evaluation.runner",
    "cluster_summary": "repro.evaluation.reports",
    "evaluate_quality_slo": "repro.evaluation.slo",
    "per_replica_rows": "repro.evaluation.reports",
    "quality_rows": "repro.evaluation.reports",
    "speculation_rows": "repro.evaluation.reports",
}


def __getattr__(name: str):
    if name in _LAZY:
        import importlib

        module = importlib.import_module(_LAZY[name])
        return getattr(module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
