"""SLO (service-level objective) analysis over run results.

The paper notes (§4.3) that METIS' loose decoupling "allows SLO-based
constraints on RAG queries if certain queries have strict budgets on
their generation latency". This module provides the measurement side:
per-run SLO attainment, the delay budget needed for a target attainment,
and goodput (queries per second completed within the SLO).

Quality SLOs (``docs/EVALUATION.md``) are the same idea on the quality
axis: a :class:`~repro.evaluation.metrics.QualitySLO` threshold
("faithfulness >= 0.8") is scored per query by
:func:`evaluate_quality_slo`, mirroring the latency report — attainment
is the fraction of *scored* queries clearing the bar.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.evaluation.metrics import QualitySLO
from repro.evaluation.runner import RunResult
from repro.util.validation import check_positive, check_probability

__all__ = ["SLOReport", "evaluate_slo", "required_budget", "goodput_qps",
           "QualitySLO", "QualitySLOReport", "evaluate_quality_slo"]


@dataclass(frozen=True)
class SLOReport:
    """Attainment of one latency SLO by one run."""

    slo_seconds: float
    n_queries: int
    n_within: int
    attainment: float
    goodput_qps: float
    worst_excess_seconds: float

    def meets(self, target_attainment: float = 0.99) -> bool:
        """Whether the run meets the SLO at the target attainment."""
        check_probability("target_attainment", target_attainment)
        return self.attainment >= target_attainment


def evaluate_slo(result: RunResult, slo_seconds: float) -> SLOReport:
    """Score a run against a latency SLO."""
    check_positive("slo_seconds", slo_seconds)
    delays = np.asarray([r.e2e_delay for r in result.records])
    if delays.size == 0:
        return SLOReport(slo_seconds, 0, 0, 0.0, 0.0, 0.0)
    within = int((delays <= slo_seconds).sum())
    worst_excess = float(max(0.0, delays.max() - slo_seconds))
    goodput = within / result.makespan if result.makespan > 0 else 0.0
    return SLOReport(
        slo_seconds=slo_seconds,
        n_queries=int(delays.size),
        n_within=within,
        attainment=within / delays.size,
        goodput_qps=goodput,
        worst_excess_seconds=worst_excess,
    )


def required_budget(result: RunResult,
                    target_attainment: float = 0.99) -> float:
    """The smallest latency budget meeting the target attainment.

    This is the delay percentile the deployer must provision for; e.g.
    ``required_budget(run, 0.9)`` is the p90 delay.
    """
    check_probability("target_attainment", target_attainment)
    delays = [r.e2e_delay for r in result.records]
    if not delays:
        return 0.0
    return float(np.percentile(np.asarray(delays), 100 * target_attainment))


def goodput_qps(result: RunResult, slo_seconds: float) -> float:
    """Throughput counting only queries served within the SLO."""
    return evaluate_slo(result, slo_seconds).goodput_qps


# ----------------------------------------------------------------------
# Quality SLOs (docs/EVALUATION.md)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class QualitySLOReport:
    """Attainment of one quality SLO by one run.

    ``n_scored`` counts the records carrying harness scores; a run
    with records but the metric harness off scores nobody, so its
    attainment is 0.0 (nothing demonstrably cleared the bar) while an
    empty run reports NaN — the same "no observation" convention the
    latency aggregates use.
    """

    slo: QualitySLO
    n_queries: int
    n_scored: int
    n_meeting: int
    attainment: float
    mean_value: float
    #: How far the run mean falls below the threshold (0.0 when at or
    #: above it); the "budget gap" a deployer must close.
    shortfall: float

    def meets(self, target_attainment: float = 0.99) -> bool:
        """Whether the run meets the SLO at the target attainment."""
        check_probability("target_attainment", target_attainment)
        return self.attainment >= target_attainment

    def as_row(self) -> dict:
        """Flat dict for :func:`~repro.evaluation.reports.format_table`."""
        return dict(
            slo=self.slo.spec,
            queries=self.n_queries,
            scored=self.n_scored,
            meeting=self.n_meeting,
            attainment=self.attainment,
            mean_value=self.mean_value,
            shortfall=self.shortfall,
        )


def evaluate_quality_slo(result: RunResult,
                         slo: QualitySLO | str) -> QualitySLOReport:
    """Score a run against a quality SLO (``metric>=threshold``)."""
    if isinstance(slo, str):
        slo = QualitySLO.parse(slo)
    n_queries = len(result.records)
    values = result.metric_values(slo.metric)
    if n_queries == 0:
        return QualitySLOReport(slo, 0, 0, 0, float("nan"),
                                float("nan"), 0.0)
    if not values:
        return QualitySLOReport(slo, n_queries, 0, 0, 0.0,
                                float("nan"), 0.0)
    meeting = sum(1 for v in values if v >= slo.threshold)
    mean_value = float(np.mean(values))
    return QualitySLOReport(
        slo=slo,
        n_queries=n_queries,
        n_scored=len(values),
        n_meeting=meeting,
        attainment=meeting / len(values),
        mean_value=mean_value,
        shortfall=max(0.0, slo.threshold - mean_value),
    )
