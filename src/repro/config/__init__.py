"""RAG configuration knobs and configuration spaces (paper §2, §3)."""

from repro.config.knobs import (
    INTERMEDIATE_LENGTH_DOMAIN,
    NUM_CHUNKS_DOMAIN,
    RAGConfig,
    SynthesisMethod,
)
from repro.config.space import ConfigurationSpace, PrunedSpace, full_grid

__all__ = [
    "ConfigurationSpace",
    "INTERMEDIATE_LENGTH_DOMAIN",
    "NUM_CHUNKS_DOMAIN",
    "PrunedSpace",
    "RAGConfig",
    "SynthesisMethod",
    "full_grid",
]
