"""Configuration spaces: the full combinatorial grid and pruned ranges.

The paper's point (§3) is that the full space is combinatorially large
(e.g. 30 ``num_chunks`` × 50 ``intermediate_length`` values = 1500
``map_reduce`` configs per query), while METIS' profiler+mapping step
cuts it by 50–100× to a small :class:`PrunedSpace` of ranges that the
joint scheduler can search exhaustively.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field
from functools import lru_cache

from repro.config.knobs import (
    INTERMEDIATE_LENGTH_DOMAIN,
    NUM_CHUNKS_DOMAIN,
    RAGConfig,
    SynthesisMethod,
)

__all__ = ["ConfigurationSpace", "PrunedSpace", "full_grid"]


@dataclass(frozen=True)
class ConfigurationSpace:
    """An explicit, enumerable set of :class:`RAGConfig` points.

    Used for fixed-configuration baselines (grid search / Pareto
    frontiers) and as the materialised form of a pruned space.
    """

    configs: tuple[RAGConfig, ...]

    def __post_init__(self) -> None:
        if not self.configs:
            raise ValueError("ConfigurationSpace must contain at least one config")

    def __len__(self) -> int:
        return len(self.configs)

    def __iter__(self) -> Iterator[RAGConfig]:
        return iter(self.configs)

    def __contains__(self, config: RAGConfig) -> bool:
        return config in set(self.configs)

    def filter(self, predicate) -> "ConfigurationSpace | None":
        """Sub-space of configs passing ``predicate`` (None when empty)."""
        kept = tuple(c for c in self.configs if predicate(c))
        if not kept:
            return None
        return ConfigurationSpace(kept)


def full_grid(
    num_chunks_values: Sequence[int] = NUM_CHUNKS_DOMAIN,
    intermediate_values: Sequence[int] = INTERMEDIATE_LENGTH_DOMAIN,
    methods: Sequence[SynthesisMethod] = tuple(SynthesisMethod),
) -> ConfigurationSpace:
    """The full knob grid a baseline would have to search per query.

    >>> len(full_grid())  # 11 rerank + 11 stuff + 11*6 map_reduce
    88
    """
    configs: list[RAGConfig] = []
    for method in methods:
        for k in num_chunks_values:
            if method.uses_intermediate_length:
                configs.extend(
                    RAGConfig(method, k, ilen) for ilen in intermediate_values
                )
            else:
                configs.append(RAGConfig(method, k))
    return ConfigurationSpace(tuple(configs))


@dataclass(frozen=True)
class PrunedSpace:
    """The narrowed, promising configuration ranges for one query.

    This is the output of the paper's Algorithm 1: a set of admissible
    synthesis methods, an inclusive ``num_chunks`` range, and an
    inclusive ``intermediate_length`` range (used by ``map_reduce``).

    Attributes:
        ilen_steps: how many evenly spaced ``intermediate_length``
            values to materialise when enumerating (keeps the joint
            scheduler's search cost bounded).
    """

    methods: tuple[SynthesisMethod, ...]
    num_chunks_range: tuple[int, int]
    intermediate_length_range: tuple[int, int] = (30, 200)
    ilen_steps: int = 4

    def __post_init__(self) -> None:
        if not self.methods:
            raise ValueError("PrunedSpace needs at least one synthesis method")
        lo, hi = self.num_chunks_range
        if not 1 <= lo <= hi:
            raise ValueError(f"invalid num_chunks_range: {self.num_chunks_range}")
        ilo, ihi = self.intermediate_length_range
        if not 1 <= ilo <= ihi:
            raise ValueError(
                f"invalid intermediate_length_range: {self.intermediate_length_range}"
            )
        if self.ilen_steps < 1:
            raise ValueError(f"ilen_steps must be >= 1, got {self.ilen_steps}")

    # ------------------------------------------------------------------
    def _ilen_values(self) -> tuple[int, ...]:
        lo, hi = self.intermediate_length_range
        if self.ilen_steps == 1 or lo == hi:
            return ((lo + hi) // 2,)
        span = hi - lo
        values = {lo + round(i * span / (self.ilen_steps - 1))
                  for i in range(self.ilen_steps)}
        return tuple(sorted(values))

    def enumerate(self) -> ConfigurationSpace:
        """Materialise every config point in the pruned ranges.

        Memoized per space — the joint scheduler enumerates the same
        pruned ranges for every query that maps to them, and both
        :class:`PrunedSpace` and the result are immutable.
        """
        return _enumerate_cached(self)

    def _enumerate_impl(self) -> ConfigurationSpace:
        lo, hi = self.num_chunks_range
        configs: list[RAGConfig] = []
        for method in self.methods:
            for k in range(lo, hi + 1):
                if method.uses_intermediate_length:
                    configs.extend(
                        RAGConfig(method, k, ilen) for ilen in self._ilen_values()
                    )
                else:
                    configs.append(RAGConfig(method, k))
        return ConfigurationSpace(tuple(configs))

    def contains(self, config: RAGConfig) -> bool:
        """Range membership (independent of ``ilen_steps`` granularity)."""
        if config.synthesis_method not in self.methods:
            return False
        lo, hi = self.num_chunks_range
        if not lo <= config.num_chunks <= hi:
            return False
        if config.synthesis_method.uses_intermediate_length:
            ilo, ihi = self.intermediate_length_range
            return ilo <= config.intermediate_length <= ihi
        return True

    def median_config(self) -> RAGConfig:
        """Midpoint config — the paper's "strawman" selection (§4.3).

        Picks the median ``num_chunks``/``intermediate_length`` and the
        most capable admissible method (quality must not depend on the
        strawman's value choice), ignoring system resources.
        """
        lo, hi = self.num_chunks_range
        k = (lo + hi) // 2
        method = self.methods[-1]
        if method.uses_intermediate_length:
            ilo, ihi = self.intermediate_length_range
            return RAGConfig(method, k, (ilo + ihi) // 2)
        return RAGConfig(method, k)

    def most_expensive_config(self) -> RAGConfig:
        """Upper-corner config (quality-maximising, resource-oblivious)."""
        method = self.methods[-1]
        _, hi = self.num_chunks_range
        if method.uses_intermediate_length:
            _, ihi = self.intermediate_length_range
            return RAGConfig(method, hi, ihi)
        return RAGConfig(method, hi)

    def reduction_factor(self, full: ConfigurationSpace | None = None) -> float:
        """How much smaller this space is than the full grid (§4: 50–100×)."""
        reference = full if full is not None else full_grid()
        return len(reference) / max(1, len(self.enumerate()))

    def merge(self, other: "PrunedSpace") -> "PrunedSpace":
        """Union-of-ranges merge, used by the low-confidence fallback
        (fall back to the pruned spaces of recent queries, §5)."""
        methods = tuple(dict.fromkeys(self.methods + other.methods))
        lo = min(self.num_chunks_range[0], other.num_chunks_range[0])
        hi = max(self.num_chunks_range[1], other.num_chunks_range[1])
        ilo = min(self.intermediate_length_range[0],
                  other.intermediate_length_range[0])
        ihi = max(self.intermediate_length_range[1],
                  other.intermediate_length_range[1])
        return PrunedSpace(methods, (lo, hi), (ilo, ihi), self.ilen_steps)


@lru_cache(maxsize=1024)
def _enumerate_cached(pruned: PrunedSpace) -> ConfigurationSpace:
    return pruned._enumerate_impl()
