"""The three RAG configuration knobs the paper adapts (Fig 2).

* ``num_chunks`` — how many chunks to retrieve,
* ``synthesis_method`` — how the LLM consumes them
  (``map_rerank`` / ``stuff`` / ``map_reduce``, Fig 3),
* ``intermediate_length`` — per-chunk summary budget, meaningful only
  for ``map_reduce``.

A :class:`RAGConfig` is an immutable value object; canonicalisation
forces ``intermediate_length=0`` for non-``map_reduce`` methods so that
configs compare and hash sensibly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = [
    "SynthesisMethod",
    "RAGConfig",
    "NUM_CHUNKS_DOMAIN",
    "INTERMEDIATE_LENGTH_DOMAIN",
]


class SynthesisMethod(enum.Enum):
    """How retrieved chunks are fed to the serving LLM (paper Fig 3)."""

    MAP_RERANK = "map_rerank"
    STUFF = "stuff"
    MAP_REDUCE = "map_reduce"

    @property
    def reads_chunks_jointly(self) -> bool:
        """True when the final answer can reason across chunks."""
        return self is not SynthesisMethod.MAP_RERANK

    @property
    def uses_intermediate_length(self) -> bool:
        """True when the ``intermediate_length`` knob applies."""
        return self is SynthesisMethod.MAP_REDUCE

    def __str__(self) -> str:
        return self.value


#: Values of ``num_chunks`` explored by fixed-configuration baselines
#: (the paper sweeps 1–35; this grid covers that range).
NUM_CHUNKS_DOMAIN: tuple[int, ...] = (1, 2, 3, 5, 8, 10, 15, 20, 25, 30, 35)

#: Values of ``intermediate_length`` (tokens per mapper summary)
#: explored by fixed-configuration baselines (paper sweeps 1–100+; the
#: profiler emits 30–200).
INTERMEDIATE_LENGTH_DOMAIN: tuple[int, ...] = (30, 50, 75, 100, 150, 200)

_MAX_NUM_CHUNKS = 256
_MAX_INTERMEDIATE_LENGTH = 2_048


@dataclass(frozen=True, order=True)
class RAGConfig:
    """One concrete assignment of the three knobs.

    >>> RAGConfig(SynthesisMethod.STUFF, num_chunks=5)
    RAGConfig(stuff, chunks=5)
    >>> RAGConfig(SynthesisMethod.MAP_REDUCE, 8, intermediate_length=100)
    RAGConfig(map_reduce, chunks=8, ilen=100)
    """

    synthesis_method: SynthesisMethod
    num_chunks: int
    intermediate_length: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.synthesis_method, SynthesisMethod):
            raise TypeError(
                f"synthesis_method must be a SynthesisMethod, "
                f"got {self.synthesis_method!r}"
            )
        if not 1 <= self.num_chunks <= _MAX_NUM_CHUNKS:
            raise ValueError(
                f"num_chunks must be in [1, {_MAX_NUM_CHUNKS}], "
                f"got {self.num_chunks}"
            )
        if self.synthesis_method.uses_intermediate_length:
            if not 1 <= self.intermediate_length <= _MAX_INTERMEDIATE_LENGTH:
                raise ValueError(
                    "map_reduce requires intermediate_length in "
                    f"[1, {_MAX_INTERMEDIATE_LENGTH}], got {self.intermediate_length}"
                )
        elif self.intermediate_length != 0:
            # Canonicalise: the knob is meaningless for other methods.
            object.__setattr__(self, "intermediate_length", 0)

    def label(self) -> str:
        """Short human-readable identifier for reports."""
        if self.synthesis_method.uses_intermediate_length:
            return (
                f"{self.synthesis_method.value}/k={self.num_chunks}"
                f"/l={self.intermediate_length}"
            )
        return f"{self.synthesis_method.value}/k={self.num_chunks}"

    def __repr__(self) -> str:
        if self.synthesis_method.uses_intermediate_length:
            return (
                f"RAGConfig({self.synthesis_method.value}, "
                f"chunks={self.num_chunks}, ilen={self.intermediate_length})"
            )
        return f"RAGConfig({self.synthesis_method.value}, chunks={self.num_chunks})"
