"""Deterministic, named random-number streams.

Every stochastic component in the simulator draws from its own named
stream so that (a) results are reproducible given a root seed, and
(b) changing how one component consumes randomness does not perturb any
other component (no shared-sequence coupling).

The scheme hashes ``(root_seed, name)`` into a 64-bit child seed using
SHA-256, which is stable across Python processes and platforms (unlike
``hash()``, which is salted).
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RngStreams", "derive_seed", "stream"]


def derive_seed(root_seed: int, *names: str | int) -> int:
    """Derive a stable 64-bit child seed from a root seed and name parts.

    >>> derive_seed(7, "profiler") == derive_seed(7, "profiler")
    True
    >>> derive_seed(7, "profiler") != derive_seed(7, "engine")
    True
    """
    h = hashlib.sha256()
    h.update(str(int(root_seed)).encode("utf-8"))
    for name in names:
        h.update(b"/")
        h.update(str(name).encode("utf-8"))
    return int.from_bytes(h.digest()[:8], "little")


def stream(root_seed: int, *names: str | int) -> np.random.Generator:
    """Return a fresh ``numpy`` Generator for the named child stream."""
    return np.random.default_rng(derive_seed(root_seed, *names))


class RngStreams:
    """A factory of named random streams rooted at a single seed.

    Streams are cached: asking for the same name twice returns the same
    Generator object, so a component can keep drawing from its stream
    across calls.

    >>> rngs = RngStreams(42)
    >>> a = rngs.get("arrivals")
    >>> a is rngs.get("arrivals")
    True
    """

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = int(root_seed)
        self._cache: dict[tuple[str | int, ...], np.random.Generator] = {}

    def get(self, *names: str | int) -> np.random.Generator:
        """Return the (cached) Generator for the named stream."""
        key = tuple(names)
        if key not in self._cache:
            self._cache[key] = stream(self.root_seed, *names)
        return self._cache[key]

    def fresh(self, *names: str | int) -> np.random.Generator:
        """Return a brand-new Generator (not cached) for the named stream."""
        return stream(self.root_seed, *names)

    def child(self, *names: str | int) -> "RngStreams":
        """Return a new RngStreams rooted at a derived seed."""
        return RngStreams(derive_seed(self.root_seed, *names))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngStreams(root_seed={self.root_seed})"
