"""Query-identity helpers shared by caching and reporting.

Workload replays clone pool queries under fresh ids
(``<id>#r<cycle>``, see :meth:`repro.workload.trace.Workload.
materialize`) because app pins and record identity key on query-id
uniqueness. Anything that should treat repeats of one logical query
as the *same* query — cache keys, per-query report aggregation —
strips that suffix first with :func:`canonical_query_id`.
"""

from __future__ import annotations

import re

__all__ = ["canonical_query_id"]

#: The workload-replay suffix: ``#r`` + the cycle number, at the end.
_REPLAY_SUFFIX = re.compile(r"#r\d+$")


def canonical_query_id(query_id: str) -> str:
    """Strip the workload-replay ``#rN`` suffix from a query id.

    Only the trailing replay marker is removed; any other ``#``
    decoration (e.g. the ``#hedge`` app-id suffix, which never appears
    on records) is left alone, as is an id with no suffix at all.

    >>> canonical_query_id("finsec-q12#r3")
    'finsec-q12'
    >>> canonical_query_id("finsec-q12")
    'finsec-q12'
    >>> canonical_query_id("q1#r2#r10")
    'q1#r2'
    """
    return _REPLAY_SUFFIX.sub("", query_id)
