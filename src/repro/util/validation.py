"""Tiny argument-validation helpers used across the package.

These raise ``ValueError`` with a uniform message format so failures in
deeply nested simulator code point directly at the offending parameter.
"""

from __future__ import annotations

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_in_range",
    "check_shard_count",
    "check_shard_concurrency",
    "check_count",
    "check_non_empty",
]


def check_positive(name: str, value: float) -> float:
    """Require ``value > 0``; return it for chaining."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Require ``value >= 0``; return it for chaining."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Require ``0 <= value <= 1``; return it for chaining."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_in_range(name: str, value: float, lo: float, hi: float) -> float:
    """Require ``lo <= value <= hi``; return it for chaining."""
    if not lo <= value <= hi:
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value!r}")
    return value


def check_shard_count(name: str, value) -> int:
    """Require an integral shard count >= 1; return it as ``int``."""
    try:
        as_int = int(value)
    except (TypeError, ValueError):
        raise ValueError(
            f"{name} must be an integer >= 1, got {value!r}"
        ) from None
    if as_int != value or as_int < 1:
        raise ValueError(f"{name} must be an integer >= 1, got {value!r}")
    return as_int


def check_count(name: str, value, minimum: int = 0) -> int:
    """Require an integral count >= ``minimum``; return it as ``int``.

    The generic sibling of :func:`check_shard_count`, used by the
    workload/autoscaler layer for arrival counts, period counts, and
    fleet-size bounds.
    """
    try:
        as_int = int(value)
    except (TypeError, ValueError):
        raise ValueError(
            f"{name} must be an integer >= {minimum}, got {value!r}"
        ) from None
    if as_int != value or as_int < minimum:
        raise ValueError(
            f"{name} must be an integer >= {minimum}, got {value!r}"
        )
    return as_int


def check_non_empty(name: str, value):
    """Require a non-empty sequence; return it for chaining.

    A zero-length workload (no periods, no arrivals) would otherwise
    hang a closed loop or silently produce an empty run; failing fast
    with the parameter name keeps the error at the call site.
    """
    if len(value) == 0:
        raise ValueError(f"{name} must be non-empty, got 0 entries")
    return value


def check_shard_concurrency(name: str, value, n_shards: int):
    """Normalise a shard-concurrency spec to one entry per shard.

    Accepts ``None`` (unbounded everywhere, returned as ``None``), a
    single positive int (broadcast to every shard), or a sequence of
    per-shard entries (each a positive int, or ``None`` for an
    unbounded shard) whose length must equal ``n_shards`` — a mismatch
    fails fast with both counts, mirroring the ``replica_speeds``
    length check, rather than silently recycling or truncating.
    """
    if value is None:
        return None
    if isinstance(value, int) and not isinstance(value, bool):
        check_positive(name, value)
        return [int(value)] * int(n_shards)
    entries = list(value)
    if len(entries) != int(n_shards):
        raise ValueError(
            f"{name} has {len(entries)} entries but retrieval_shards is "
            f"{int(n_shards)}; pass exactly one concurrency per shard "
            "(e.g. --shard-concurrency 2,2 with --retrieval-shards 2)"
        )
    out = []
    for i, entry in enumerate(entries):
        if entry is None:
            out.append(None)
            continue
        check_positive(f"{name}[{i}]", entry)
        out.append(int(entry))
    return out
