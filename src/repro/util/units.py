"""Byte/time/token unit constants and human-readable formatting."""

from __future__ import annotations

__all__ = ["KB", "MB", "GB", "format_bytes", "format_duration", "format_tokens"]

KB = 1024
MB = 1024**2
GB = 1024**3


def format_bytes(n: float) -> str:
    """Render a byte count with a binary-unit suffix.

    >>> format_bytes(1536)
    '1.50 KiB'
    >>> format_bytes(48 * GB)
    '48.00 GiB'
    """
    n = float(n)
    for suffix, scale in (("GiB", GB), ("MiB", MB), ("KiB", KB)):
        if abs(n) >= scale:
            return f"{n / scale:.2f} {suffix}"
    return f"{n:.0f} B"


def format_duration(seconds: float) -> str:
    """Render a duration in the most natural unit.

    >>> format_duration(0.0042)
    '4.2 ms'
    >>> format_duration(3.5)
    '3.50 s'
    """
    if seconds < 0:
        return f"-{format_duration(-seconds)}"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f} ms"
    if seconds < 120.0:
        return f"{seconds:.2f} s"
    return f"{seconds / 60.0:.1f} min"


def format_tokens(n: int | float) -> str:
    """Render a token count compactly.

    >>> format_tokens(12800)
    '12.8K tok'
    """
    n = float(n)
    if abs(n) >= 1e6:
        return f"{n / 1e6:.1f}M tok"
    if abs(n) >= 1e3:
        return f"{n / 1e3:.1f}K tok"
    return f"{n:.0f} tok"
