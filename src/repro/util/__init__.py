"""Shared utilities: seeded RNG streams, unit helpers, validation."""

from repro.util.ids import canonical_query_id
from repro.util.rng import RngStreams, derive_seed, stream
from repro.util.units import (
    GB,
    KB,
    MB,
    format_bytes,
    format_duration,
    format_tokens,
)
from repro.util.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
)

__all__ = [
    "GB",
    "KB",
    "MB",
    "RngStreams",
    "canonical_query_id",
    "check_in_range",
    "check_non_negative",
    "check_positive",
    "check_probability",
    "derive_seed",
    "format_bytes",
    "format_duration",
    "format_tokens",
    "stream",
]
