"""Meeting-summarisation workload: why the summary-length knob matters.

QMSUM-style queries summarise verbose meeting spans, so ``map_reduce``
with an adequate ``intermediate_length`` dominates — but a static value
either starves complex queries or wastes latency on simple ones. This
example sweeps the knob for one query (the paper's Fig 4c), then lets
METIS pick per-query values on a sequential workload.

Run:  python examples/meeting_summarizer.py
"""

from repro import RAGConfig, SynthesisMethod, build_dataset, make_metis
from repro.experiments.common import default_engine_config, run_policy
from repro.experiments.service_time import isolated_plan_seconds
from repro.llm.costs import RooflineCostModel
from repro.llm.quality import QualityModel
from repro.synthesis import make_synthesizer


def main() -> None:
    bundle = build_dataset("qmsum", n_queries=30)
    quality = QualityModel(bundle.quality_params)
    engine = default_engine_config()
    cost = RooflineCostModel(engine.model, engine.cluster)

    query = max(bundle.queries,
                key=lambda q: q.truth.pieces_of_information)
    k = 2 * query.truth.pieces_of_information
    print(f"Query ({query.truth.pieces_of_information} pieces, "
          f"{'complex' if query.truth.complexity_high else 'simple'}):")
    print(f"  {query.text}\n")
    print(f"{'intermediate_length':>20}{'delay':>9}{'expected F1':>13}")
    hits = bundle.store.search(query.text, k)
    ctx = bundle.synthesis_context(query, [h.chunk.chunk_id for h in hits])
    for ilen in (20, 50, 100, 150, 200):
        config = RAGConfig(SynthesisMethod.MAP_REDUCE, k, ilen)
        plan = make_synthesizer(config.synthesis_method).build_plan(
            query_id=query.query_id, query_tokens=query.n_tokens,
            chunk_tokens=[h.chunk.n_tokens for h in hits],
            answer_tokens=query.answer_tokens_estimate, config=config,
        )
        delay = isolated_plan_seconds(plan, cost)
        f1 = quality.expected_f1(ctx, config.synthesis_method, ilen)
        print(f"{ilen:>20}{delay:>8.2f}s{f1:>13.3f}")

    print("\nServing 20 queries sequentially with METIS...")
    result = run_policy(bundle, make_metis(bundle), n_queries=20,
                        sequential=True)
    ilens = sorted(
        r.config.intermediate_length
        for r in result.records
        if r.config.synthesis_method is SynthesisMethod.MAP_REDUCE
    )
    print(f"  mean delay {result.mean_delay:.2f}s, F1 {result.mean_f1:.3f}")
    if ilens:
        print(f"  per-query intermediate_length spans {ilens[0]}-{ilens[-1]} "
              f"across {len(ilens)} map_reduce queries — no single static "
              "value serves them all.")


if __name__ == "__main__":
    main()
