"""Financial-QA assistant: watch METIS decide, query by query.

Walks through the full METIS pipeline on FinSec-style queries — the
profiler's four estimated dimensions, the Algorithm-1 pruned space, and
the joint scheduler's memory-aware pick — under two memory regimes
(idle GPU vs busy GPU), mirroring the paper's Fig 7/8 narrative.

Run:  python examples/finance_assistant.py
"""

from repro import build_dataset
from repro.core.mapping import map_profile_to_space
from repro.core.policy import SchedulingView
from repro.core.profiler import GPT4O_PROFILER, LLMProfiler
from repro.core.scheduler import JointScheduler
from repro.llm import MISTRAL_7B_AWQ, SimTokenizer
from repro.synthesis import make_synthesizer

KV_BYTES = MISTRAL_7B_AWQ.kv_bytes_per_token


def make_view(bundle, query, available_tokens: float) -> SchedulingView:
    def estimate(config):
        return make_synthesizer(config.synthesis_method).build_plan(
            query_id=query.query_id, query_tokens=query.n_tokens,
            chunk_tokens=[bundle.chunk_tokens] * config.num_chunks,
            answer_tokens=query.answer_tokens_estimate, config=config,
        )

    return SchedulingView(
        now=0.0,
        free_kv_bytes=available_tokens * KV_BYTES,
        available_kv_bytes=available_tokens * KV_BYTES,
        kv_bytes_per_token=KV_BYTES,
        chunk_tokens=bundle.chunk_tokens,
        query_tokens=query.n_tokens,
        answer_tokens=query.answer_tokens_estimate,
        estimate_plan=estimate,
    )


def main() -> None:
    bundle = build_dataset("finsec", n_queries=40)
    tokenizer = SimTokenizer()
    profiler = LLMProfiler(GPT4O_PROFILER,
                           tokenizer.count(bundle.metadata), seed=0)
    scheduler = JointScheduler()

    print(f"Database: {bundle.metadata}\n")

    for query in bundle.queries[:4]:
        print("=" * 72)
        print(f"Query: {query.text}")
        result = profiler.profile(query)
        p = result.profile
        print(f"  profile: complexity={'High' if p.complexity_high else 'Low'}"
              f", joint reasoning={'Yes' if p.joint_reasoning else 'No'}"
              f", pieces={p.pieces}, summary={p.summary_range} words"
              f"  (confidence {p.confidence:.2f}, {result.api_seconds * 1e3:.0f} ms,"
              f" ${result.dollars:.5f})")
        pruned = map_profile_to_space(p)
        print(f"  pruned space: methods={[m.value for m in pruned.methods]}"
              f", chunks={pruned.num_chunks_range}"
              f", ilen={pruned.intermediate_length_range}"
              f"  ({pruned.reduction_factor():.0f}x smaller than the grid)")
        for label, tokens in (("idle GPU (60k tokens free)", 60_000),
                              ("busy GPU (6k tokens free)", 6_000)):
            decision = scheduler.choose(pruned, make_view(bundle, query, tokens))
            note = " [fallback]" if decision.fell_back else ""
            print(f"  joint pick on {label}: {decision.config.label()}{note}")
        print()


if __name__ == "__main__":
    main()
