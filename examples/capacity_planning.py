"""Capacity planning: how much load can one GPU sustain under an SLO?

Sweeps the arrival rate for METIS and a fixed-configuration deployment
on the Musique workload and reports the highest rate each sustains
under a 5-second mean-delay SLO — the operational version of the
paper's Fig 11 throughput claim.

Run:  python examples/capacity_planning.py
"""

from repro import (
    FixedConfigPolicy,
    RAGConfig,
    SynthesisMethod,
    build_dataset,
    make_metis,
)
from repro.experiments.common import run_policy
from repro.workload import sustained_rate

SLO_SECONDS = 5.0
RATES = (0.5, 1.0, 1.5, 2.0, 3.0, 4.0)


def main() -> None:
    bundle = build_dataset("musique", n_queries=100)
    fixed_config = RAGConfig(SynthesisMethod.MAP_REDUCE, 8, 100)
    systems = {
        "METIS": lambda: make_metis(bundle),
        f"vLLM fixed [{fixed_config.label()}]":
            lambda: FixedConfigPolicy(fixed_config),
    }

    print(f"{'rate (qps)':>10}", end="")
    for name in systems:
        print(f"{name:>32}", end="")
    print()

    outcomes = {name: [] for name in systems}
    for rate in RATES:
        print(f"{rate:>10.1f}", end="")
        for name, factory in systems.items():
            result = run_policy(bundle, factory(), rate_qps=rate)
            met = result.mean_delay <= SLO_SECONDS
            marker = " *" if met else "  "
            outcomes[name].append((rate, met))
            print(f"{result.mean_delay:>26.2f}s{marker}   ", end="")
        print()

    # A pass at a higher rate after a miss does not raise the sustained
    # rate: a deployer cannot operate above a rate that already
    # violated the SLO, so only the prefix before the first miss counts.
    sustained = {name: sustained_rate(outcomes[name]) for name in systems}
    print(f"\nHighest sustained rate under a {SLO_SECONDS:.0f}s mean-delay SLO:")
    for name, rate in sustained.items():
        print(f"  {name}: {rate:.1f} qps")
    metis_rate = sustained["METIS"]
    other = max(v for k, v in sustained.items() if k != "METIS")
    if other > 0:
        print(f"\nMETIS sustains {metis_rate / other:.2f}x the fixed "
              "configuration's throughput at the same SLO "
              "(paper band: 1.8-4.5x).")


if __name__ == "__main__":
    main()
