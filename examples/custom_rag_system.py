"""Extending the library: a custom dataset and a custom serving policy.

Shows the two extension points a downstream user needs most:

1. **A new dataset** — define a :class:`DatasetSpec` for your domain
   (here: a support-ticket knowledge base) and generate a full bundle
   with planted facts, an index, and profiled queries.
2. **A new policy** — implement :class:`RAGPolicy` (here: a
   latency-guarding policy that uses METIS' profiler but clamps the
   configuration when the engine looks busy) and run it through the
   standard harness next to METIS.

Run:  python examples/custom_rag_system.py
"""

from repro import RAGConfig, SynthesisMethod, make_metis
from repro.core.mapping import map_profile_to_space
from repro.core.policy import Decision, PrepResult, RAGPolicy, SchedulingView
from repro.core.profiler import GPT4O_PROFILER, LLMProfiler
from repro.data.generator import DatasetSpec, generate_dataset
from repro.data.types import Query
from repro.experiments.common import run_policy
from repro.llm import SimTokenizer
from repro.llm.quality import QualityParams


SUPPORT_TICKETS = DatasetSpec(
    name="support-tickets",
    metadata=(
        "The dataset consists of resolved support tickets for a SaaS "
        "product, including root causes, workarounds and fix versions. "
        "The chunk size is 320 tokens."
    ),
    style="plain",
    entity_kind="corp",
    chunk_tokens=320,
    n_docs=24,
    doc_token_range=(800, 3_000),
    facts_per_doc=(5, 9),
    value_words=(3, 6),
    verbosity_range=(15, 30),
    attribute_families=(
        "root cause", "workaround steps", "fix version",
        "affected platform", "error signature", "escalation owner",
    ),
    attribute_qualifiers=("ticket", "incident", "report"),
    pieces_probs=((1, 0.5), (2, 0.3), (3, 0.2)),
    complexity_high_base=0.15,
    complexity_high_per_piece=0.2,
    joint_prob_single=0.1,
    cross_doc_queries=False,
    n_queries=60,
    filler_topic_rate=0.12,
    answer_template="the resolution is",
    quality=QualityParams(token_match_rate=0.72),
)


class LatencyGuardPolicy(RAGPolicy):
    """Profile like METIS, but clamp configs when the engine is busy.

    A deliberately simple alternative to the joint best-fit: whenever
    less than a third of KV memory is free, serve with the *cheapest*
    profile-compatible configuration instead of the best-fitting one.
    """

    engine_policy = "app-aware"

    def __init__(self, metadata_tokens: int, seed: int = 0) -> None:
        self.name = "latency-guard"
        self.profiler = LLMProfiler(GPT4O_PROFILER, metadata_tokens, seed=seed)

    def prepare(self, query: Query) -> PrepResult:
        result = self.profiler.profile(query)
        return PrepResult(profile=result.profile,
                          api_seconds=result.api_seconds,
                          dollars=result.dollars)

    def choose(self, query: Query, prep: PrepResult,
               view: SchedulingView) -> Decision:
        pruned = map_profile_to_space(prep.profile)
        busy = view.available_kv_bytes < view.free_kv_bytes / 3
        if busy:
            method = pruned.methods[0]
            lo = pruned.num_chunks_range[0]
            ilen = (pruned.intermediate_length_range[0]
                    if method.uses_intermediate_length else 0)
            return Decision(config=RAGConfig(method, lo, ilen),
                            pruned_space=pruned)
        return Decision(config=pruned.median_config(), pruned_space=pruned)


def main() -> None:
    print("Generating the custom support-ticket dataset...")
    bundle = generate_dataset(SUPPORT_TICKETS, seed=0)
    row = bundle.table1_row()
    print(f"  {len(bundle.store)} chunks, {len(bundle.queries)} queries, "
          f"inputs {row['input_p10']:.0f}-{row['input_p90']:.0f} tokens\n")

    metadata_tokens = SimTokenizer().count(bundle.metadata)
    policies = [
        make_metis(bundle),
        LatencyGuardPolicy(metadata_tokens),
    ]
    print(f"{'policy':<16}{'mean delay':>12}{'F1':>8}")
    for policy in policies:
        result = run_policy(bundle, policy, rate_qps=2.0)
        print(f"{result.policy:<16}{result.mean_delay:>10.2f}s"
              f"{result.mean_f1:>8.3f}")


if __name__ == "__main__":
    main()
