"""Quickstart: serve a RAG workload with METIS and compare a baseline.

Builds the FinSec-style dataset, serves 60 queries at 1.4 qps on a
simulated A40 + Mistral-7B deployment with (a) METIS and (b) a fixed
configuration on vLLM-style FCFS serving, and prints the quality-delay
comparison.

Run:  python examples/quickstart.py
"""

from repro import (
    FixedConfigPolicy,
    RAGConfig,
    SynthesisMethod,
    build_dataset,
    default_engine_config,
    make_metis,
    poisson_arrivals,
)
from repro.evaluation.runner import ExperimentRunner


def main() -> None:
    print("Building the finsec dataset (synthetic quarterly reports)...")
    bundle = build_dataset("finsec", n_queries=60)
    arrivals = poisson_arrivals(bundle.queries, rate_qps=1.4, seed=0)
    runner = ExperimentRunner(bundle, default_engine_config(), seed=0)

    print("Serving with METIS (profiler + joint scheduling)...")
    metis = runner.run(make_metis(bundle), arrivals)

    print("Serving with fixed configurations (the static alternatives)...")
    cheap = runner.run(
        FixedConfigPolicy(RAGConfig(SynthesisMethod.STUFF, 5)), arrivals
    )
    quality = runner.run(
        FixedConfigPolicy(RAGConfig(SynthesisMethod.MAP_REDUCE, 8, 75)),
        arrivals,
    )

    print()
    header = f"{'system':<28}{'mean delay':>12}{'p90 delay':>12}{'F1':>8}"
    print(header)
    print("-" * len(header))
    for result in (metis, cheap, quality):
        print(
            f"{result.policy:<28}"
            f"{result.mean_delay:>10.2f}s"
            f"{result.delay_percentile(90):>10.2f}s"
            f"{result.mean_f1:>8.3f}"
        )

    print()
    print(
        "The static tradeoff: the cheap config is fast but "
        f"{(metis.mean_f1 - cheap.mean_f1) / max(cheap.mean_f1, 1e-9):+.1%} "
        "F1 below METIS; the quality-matched config needs "
        f"{quality.mean_delay / max(metis.mean_delay, 1e-9):.1f}x METIS' "
        "delay. METIS gets both ends by adapting per query."
    )
    print("Per-query adaptation summary:")
    methods = {}
    for record in metis.records:
        methods.setdefault(record.config.synthesis_method.value, []).append(
            record.config.num_chunks
        )
    for method, ks in sorted(methods.items()):
        print(f"  {method:<12} {len(ks):>3} queries, "
              f"chunks {min(ks)}-{max(ks)}")


if __name__ == "__main__":
    main()
