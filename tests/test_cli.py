"""Unit tests for the command-line interface."""

import pytest

from repro.cli import (
    build_policy,
    main,
    make_parser,
    parse_config_label,
    parse_replica_speeds,
    parse_shard_concurrency,
)
from repro.config.knobs import RAGConfig, SynthesisMethod


class TestParseReplicaSpeeds:
    def test_parses_multipliers(self):
        assert parse_replica_speeds("1.0,0.5") == [1.0, 0.5]
        assert parse_replica_speeds("2") == [2.0]

    def test_rejects_non_numeric(self):
        with pytest.raises(ValueError, match="comma-separated numbers"):
            parse_replica_speeds("1.0,fast")


class TestParseShardConcurrency:
    def test_parses_lists_and_singletons(self):
        assert parse_shard_concurrency("2,2") == [2, 2]
        assert parse_shard_concurrency("4") == [4]

    def test_rejects_non_integer(self):
        with pytest.raises(ValueError, match="comma-separated integers"):
            parse_shard_concurrency("2,many")


class TestParseConfigLabel:
    def test_two_part(self):
        assert parse_config_label("stuff/8") == RAGConfig(
            SynthesisMethod.STUFF, 8
        )

    def test_three_part(self):
        assert parse_config_label("map_reduce/8/100") == RAGConfig(
            SynthesisMethod.MAP_REDUCE, 8, 100
        )

    def test_unknown_method(self):
        with pytest.raises(ValueError, match="stuff"):
            parse_config_label("refine/8")

    def test_malformed(self):
        with pytest.raises(ValueError, match="method/num_chunks"):
            parse_config_label("stuff")


class TestBuildPolicy:
    def test_named_policies(self, finsec_bundle):
        for name in ("metis", "adaptive-rag", "median"):
            policy = build_policy(name, finsec_bundle, None, seed=0)
            assert policy is not None

    def test_fixed_requires_config(self, finsec_bundle):
        with pytest.raises(ValueError, match="--config"):
            build_policy("vllm", finsec_bundle, None, seed=0)

    def test_parrot_uses_app_aware(self, finsec_bundle):
        policy = build_policy("parrot", finsec_bundle, "stuff/8", seed=0)
        assert policy.engine_policy == "app-aware"

    def test_unknown_policy(self, finsec_bundle):
        with pytest.raises(ValueError, match="unknown policy"):
            build_policy("magic", finsec_bundle, None, seed=0)


class TestCommands:
    def test_datasets_command(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("squad", "musique", "finsec", "qmsum"):
            assert name in out

    def test_run_command(self, capsys):
        code = main([
            "run", "--dataset", "squad", "--policy", "vllm",
            "--config", "stuff/5", "--queries", "10", "--rate", "1.0",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "mean_delay_s" in out

    def test_run_command_with_replicas(self, capsys):
        code = main([
            "run", "--dataset", "squad", "--policy", "vllm",
            "--config", "stuff/5", "--queries", "12", "--rate", "8.0",
            "--replicas", "2", "--router", "round-robin",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 replicas, round-robin router" in out
        assert "Per-replica serving stats" in out

    def test_run_command_with_replica_speeds(self, capsys):
        code = main([
            "run", "--dataset", "squad", "--policy", "vllm",
            "--config", "stuff/5", "--queries", "12", "--rate", "8.0",
            "--replicas", "2", "--router", "least-outstanding",
            "--replica-speeds", "1.0,0.5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "[speeds 1,0.5]" in out
        assert "Per-replica serving stats" in out
        assert "wakeups" in out

    def test_replica_speeds_length_mismatch_fails_fast(self, capsys):
        code = main([
            "run", "--dataset", "squad", "--policy", "vllm",
            "--config", "stuff/5", "--queries", "4",
            "--replicas", "2", "--replica-speeds", "1.0,0.5,0.25",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "3 entries" in err and "n_replicas is 2" in err

    def test_replica_speeds_parse_error_reported(self, capsys):
        code = main([
            "run", "--dataset", "squad", "--policy", "vllm",
            "--config", "stuff/5", "--queries", "4",
            "--replicas", "2", "--replica-speeds", "1.0;0.5",
        ])
        assert code == 2
        assert "comma-separated numbers" in capsys.readouterr().err

    def test_run_command_with_retrieval_shards(self, capsys):
        code = main([
            "run", "--dataset", "squad", "--policy", "vllm",
            "--config", "stuff/5", "--queries", "10", "--rate", "2.0",
            "--retrieval-shards", "4", "--shard-concurrency", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "[4-shard retrieval]" in out
        assert "retrieval/shard0" in out and "retrieval/shard3" in out

    def test_run_command_with_reranker_and_ivf(self, capsys):
        code = main([
            "run", "--dataset", "squad", "--policy", "vllm",
            "--config", "stuff/5", "--queries", "8", "--rate", "2.0",
            "--retrieval-shards", "2", "--reranker", "exact",
            "--index", "ivf",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "[+exact reranker]" in out
        # The reranker resource renders its own contention-table row.
        assert any(line.startswith("reranker")
                   for line in out.splitlines())

    def test_shard_concurrency_length_mismatch_fails_fast(self, capsys):
        code = main([
            "run", "--dataset", "squad", "--policy", "vllm",
            "--config", "stuff/5", "--queries", "4",
            "--retrieval-shards", "2", "--shard-concurrency", "1,2,3",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "3 entries" in err and "retrieval_shards is 2" in err

    def test_retrieval_concurrency_conflict_fails_fast(self, capsys):
        code = main([
            "run", "--dataset", "squad", "--policy", "vllm",
            "--config", "stuff/5", "--queries", "4",
            "--retrieval-shards", "2", "--retrieval-concurrency", "4",
        ])
        assert code == 2
        assert "shard_concurrency" in capsys.readouterr().err

    def test_run_command_with_speculation(self, capsys):
        code = main([
            "run", "--dataset", "squad", "--policy", "vllm",
            "--config", "stuff/5", "--queries", "12", "--rate", "8.0",
            "--replicas", "2", "--replica-speeds", "1.0,0.5",
            "--router", "round-robin",
            "--speculation", "hedge-after-delay", "--slo-seconds", "4.0",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "[hedge-after-delay speculation]" in out
        assert "Speculative scheduling" in out
        assert "hedge_rate" in out and "wasted_work_fraction" in out

    def test_slo_without_speculation_reports_attainment(self, capsys):
        code = main([
            "run", "--dataset", "squad", "--policy", "vllm",
            "--config", "stuff/5", "--queries", "8", "--rate", "2.0",
            "--slo-seconds", "5.0",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Speculative scheduling" in out
        assert "slo_attainment" in out

    def test_speculation_misuse_fails_fast(self, capsys):
        # deadline-risk without an SLO has no signal to act on.
        code = main([
            "run", "--dataset", "squad", "--policy", "vllm",
            "--config", "stuff/5", "--queries", "4",
            "--speculation", "deadline-risk",
        ])
        assert code == 2
        assert "slo-seconds" in capsys.readouterr().err
        # hedge-after-delay needs a timer (explicit or derived).
        code = main([
            "run", "--dataset", "squad", "--policy", "vllm",
            "--config", "stuff/5", "--queries", "4",
            "--speculation", "hedge-after-delay",
        ])
        assert code == 2
        assert "hedge-delay" in capsys.readouterr().err
        # A single replica has nowhere to hedge to.
        code = main([
            "run", "--dataset", "squad", "--policy", "vllm",
            "--config", "stuff/5", "--queries", "4",
            "--speculation", "hedge-after-delay", "--hedge-delay", "1.0",
        ])
        assert code == 2
        assert "second replica" in capsys.readouterr().err
        # A timer the selected policy would ignore is rejected too.
        code = main([
            "run", "--dataset", "squad", "--policy", "vllm",
            "--config", "stuff/5", "--queries", "4", "--replicas", "2",
            "--speculation", "deadline-risk", "--slo-seconds", "5.0",
            "--hedge-delay", "1.0",
        ])
        assert code == 2
        assert "only applies" in capsys.readouterr().err

    def test_parser_rejects_unknown_speculation(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args([
                "run", "--dataset", "squad", "--policy", "metis",
                "--speculation", "telepathy",
            ])

    def test_parser_rejects_unknown_index_and_reranker(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args([
                "run", "--dataset", "squad", "--policy", "metis",
                "--index", "hnsw",
            ])
        with pytest.raises(SystemExit):
            make_parser().parse_args([
                "run", "--dataset", "squad", "--policy", "metis",
                "--reranker", "cross-encoder",
            ])

    def test_parser_rejects_unknown_router(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args([
                "run", "--dataset", "squad", "--policy", "metis",
                "--replicas", "2", "--router", "coin-flip",
            ])

    def test_run_command_metis_sequential(self, capsys):
        code = main([
            "run", "--dataset", "squad", "--policy", "metis",
            "--queries", "5", "--sequential",
        ])
        assert code == 0
        assert "mean_f1" in capsys.readouterr().out

    def test_run_command_with_quality_metrics(self, capsys):
        code = main([
            "run", "--dataset", "finsec", "--policy", "vllm",
            "--config", "stuff/5", "--queries", "8", "--rate", "2.0",
            "--quality-metrics",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "[quality metrics]" in out
        assert "Quality metrics" in out
        assert "faithfulness" in out and "context_recall" in out

    def test_run_command_with_quality_slo(self, capsys):
        code = main([
            "run", "--dataset", "finsec", "--policy", "metis",
            "--queries", "6", "--sequential",
            "--quality-slo", "context_recall>=0.5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "[SLO context_recall>=0.5]" in out
        assert "Quality SLO" in out
        assert "attainment" in out and "shortfall" in out

    def test_bad_quality_slo_fails_fast(self, capsys):
        code = main([
            "run", "--dataset", "finsec", "--policy", "vllm",
            "--config", "stuff/5", "--queries", "4",
            "--quality-slo", "f1>=0.5",
        ])
        assert code == 2
        assert "unknown quality metric" in capsys.readouterr().err

    def test_experiment_command(self, capsys):
        code = main(["experiment", "fig9_confidence", "--fast"])
        assert code == 0
        assert "confidence" in capsys.readouterr().out

    def test_bad_config_returns_error_code(self, capsys):
        code = main([
            "run", "--dataset", "squad", "--policy", "vllm",
            "--config", "bogus/3",
        ])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_parser_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args(
                ["run", "--dataset", "hotpot", "--policy", "metis"]
            )
