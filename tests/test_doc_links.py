"""The docs link-checker (tools/check_doc_links.py): the repo's docs
must have no broken cross-links, and the checker itself must actually
catch breakage (a checker that can't fail checks nothing)."""

import importlib.util
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
CHECKER = REPO_ROOT / "tools" / "check_doc_links.py"


def load_checker():
    spec = importlib.util.spec_from_file_location("check_doc_links",
                                                  CHECKER)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_repo_docs_have_no_broken_links():
    proc = subprocess.run([sys.executable, str(CHECKER)],
                          capture_output=True, text=True)
    assert proc.returncode == 0, proc.stderr


class TestCheckerCatchesBreakage:
    @pytest.fixture()
    def checker(self):
        return load_checker()

    def test_missing_file_is_reported(self, checker, tmp_path):
        doc = tmp_path / "A.md"
        doc.write_text("# A\n\nsee [B](NOPE.md)\n")
        errors = checker.check_file(doc)
        assert len(errors) == 1
        assert "NOPE.md" in errors[0]

    def test_missing_anchor_is_reported(self, checker, tmp_path):
        (tmp_path / "B.md").write_text("# Real heading\n")
        doc = tmp_path / "A.md"
        doc.write_text("see [B](B.md#no-such-heading)\n")
        errors = checker.check_file(doc)
        assert len(errors) == 1
        assert "no-such-heading" in errors[0]

    def test_valid_anchor_and_wiki_link_pass(self, checker, tmp_path):
        (tmp_path / "B.md").write_text("# Real heading\n")
        doc = tmp_path / "A.md"
        doc.write_text("see [B](B.md#real-heading) and [[B]]\n"
                       "and [self](#local)\n\n# Local\n")
        assert checker.check_file(doc) == []

    def test_broken_wiki_link_is_reported(self, checker, tmp_path):
        doc = tmp_path / "A.md"
        doc.write_text("see [[Missing]]\n")
        errors = checker.check_file(doc)
        assert len(errors) == 1
        assert "Missing.md" in errors[0]

    def test_code_blocks_are_ignored(self, checker, tmp_path):
        doc = tmp_path / "A.md"
        doc.write_text("```\n[not a link](GONE.md)\n```\n"
                       "and `[inline](ALSO_GONE.md)` too\n")
        assert checker.check_file(doc) == []

    def test_external_links_are_ignored(self, checker, tmp_path):
        doc = tmp_path / "A.md"
        doc.write_text("[x](https://example.com/a.md)\n")
        assert checker.check_file(doc) == []

    def test_slugify_matches_github_style(self, checker):
        assert checker.slugify("The `EventLoop` hot path") \
            == "the-eventloop-hot-path"
        assert checker.slugify("K=1 equivalence guarantee") \
            == "k1-equivalence-guarantee"
