"""Hand-rolled property tests: KV-memory invariants under the cluster.

~200 random schedules (50 per router) generated from named
``repro.util.rng`` streams — no hypothesis, so the schedules are stable
across runs and platforms. After *every* cluster iteration we assert
the block-manager/memory-model invariants the whole simulator rests on:

* a request's blocks live on exactly one replica (never double-allocated),
* per-replica KV occupancy never exceeds the pool cap,
* free + used blocks are conserved across admit/finish cycles,
* allocations mirror the running set, and everything drains to empty.
"""

from __future__ import annotations

import pytest

from repro.llm import A40, ClusterSpec, MISTRAL_7B_AWQ
from repro.serving import ClusterEngine, EngineConfig, InferenceRequest, RequestPhase
from repro.serving.cluster import ROUTER_NAMES
from repro.util.rng import RngStreams
from repro.util.units import GB

SCHEDULES_PER_ROUTER = 50
ROOT_SEED = 99

CONFIG = EngineConfig(
    model=MISTRAL_7B_AWQ,
    cluster=ClusterSpec(A40),
    kv_pool_cap_bytes=int(0.5 * GB),  # ~4k tokens: constant contention
)


def random_schedule(rngs: RngStreams, index: int):
    """One random workload: replica count + request specs with arrivals."""
    rng = rngs.fresh("schedule", index)
    n_replicas = int(rng.integers(1, 5))
    n_requests = int(rng.integers(1, 17))
    specs = []
    t = 0.0
    for _ in range(n_requests):
        t += float(rng.exponential(0.03))
        app = ("" if rng.random() < 0.3
               else f"app-{int(rng.integers(0, 5))}")
        specs.append(dict(
            prompt_tokens=int(rng.integers(1, 1_200)),
            output_tokens=int(rng.integers(1, 25)),
            arrival_time=t,
            app_id=app,
        ))
    return n_replicas, specs


def check_invariants(engine: ClusterEngine) -> None:
    seen_on: dict[int, int] = {}
    for i, replica in enumerate(engine.replicas):
        blocks = replica.blocks
        # Conservation: free + used always equals the pool, and the
        # per-sequence ledger explains every used block.
        assert blocks.free_blocks + blocks.used_blocks == blocks.n_blocks
        assert blocks.allocated_blocks == blocks.used_blocks
        assert 0 <= blocks.free_blocks <= blocks.n_blocks
        # Occupancy cap: resident tokens never exceed the KV pool.
        assert (blocks.used_blocks * blocks.block_tokens
                <= replica.memory.kv_pool_tokens)
        assert blocks.utilization() <= 1.0
        # Allocations mirror the running set exactly.
        assert blocks.seq_ids == {r.request_id for r in replica.running}
        # No sequence holds blocks on two replicas.
        for seq_id in blocks.seq_ids:
            owner = seen_on.setdefault(seq_id, i)
            assert owner == i, (
                f"request {seq_id} allocated on replicas {owner} and {i}"
            )


def run_schedule(n_replicas: int, specs: list[dict], router: str,
                 seed: int) -> ClusterEngine:
    engine = ClusterEngine(CONFIG, n_replicas=n_replicas, router=router,
                           seed=seed)
    requests: list[InferenceRequest] = []
    i = 0
    while i < len(specs) or engine.has_work():
        next_t = specs[i]["arrival_time"] if i < len(specs) else float("inf")
        if engine.has_work() and engine.now < next_t:
            engine.step()
            check_invariants(engine)
            continue
        if i >= len(specs):
            break
        engine.advance_to(next_t)
        requests.append(engine.submit(InferenceRequest(**specs[i])))
        check_invariants(engine)
        i += 1

    # Drained: every block free again, every request finished exactly once.
    for replica in engine.replicas:
        assert replica.blocks.free_blocks == replica.blocks.n_blocks
        assert replica.blocks.seq_ids == frozenset()
    assert all(r.phase is RequestPhase.FINISHED for r in requests)
    finished = sum(r.stats.requests_finished for r in engine.replicas)
    assert finished == len(requests)
    # Placement tracking is pruned as requests finish (bounded state).
    assert all(engine.replica_of_request(r.request_id) is None
               for r in requests)
    return engine


@pytest.mark.tier2
@pytest.mark.parametrize("router", ROUTER_NAMES)
def test_kv_invariants_hold_under_random_schedules(router):
    rngs = RngStreams(ROOT_SEED)
    for index in range(SCHEDULES_PER_ROUTER):
        n_replicas, specs = random_schedule(rngs, index)
        run_schedule(n_replicas, specs, router, seed=index)


@pytest.mark.tier2
def test_app_calls_never_split_across_replicas():
    """Sticky routing: every call of one app lands on one replica."""
    rngs = RngStreams(ROOT_SEED + 1)
    for index in range(20):
        n_replicas, specs = random_schedule(rngs, index)
        engine = ClusterEngine(CONFIG, n_replicas=n_replicas,
                               router="least-outstanding", seed=index)
        placements: dict[str, set[int]] = {}
        for spec in specs:
            request = engine.submit(InferenceRequest(**{
                **spec, "arrival_time": 0.0,
            }))
            rid = engine.replica_of_request(request.request_id)
            assert rid is not None and 0 <= rid < n_replicas
            if spec["app_id"]:
                placements.setdefault(spec["app_id"], set()).add(rid)
        engine.run_until_idle()
        for app, replicas in placements.items():
            assert len(replicas) == 1, f"{app} split across {replicas}"
