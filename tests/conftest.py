"""Shared fixtures: small cached datasets and engine configs."""

from __future__ import annotations

import pytest

from repro.data import build_dataset
from repro.llm import A40, ClusterSpec, MISTRAL_7B_AWQ
from repro.serving.engine import EngineConfig
from repro.util.units import GB


@pytest.fixture(scope="session")
def finsec_bundle():
    return build_dataset("finsec", n_queries=30)


@pytest.fixture(scope="session")
def squad_bundle():
    return build_dataset("squad", n_queries=30)


@pytest.fixture(scope="session")
def musique_bundle():
    return build_dataset("musique", n_queries=30)


@pytest.fixture(scope="session")
def qmsum_bundle():
    return build_dataset("qmsum", n_queries=30)


@pytest.fixture(scope="session")
def all_bundles(squad_bundle, musique_bundle, finsec_bundle, qmsum_bundle):
    return {
        "squad": squad_bundle,
        "musique": musique_bundle,
        "finsec": finsec_bundle,
        "qmsum": qmsum_bundle,
    }


@pytest.fixture()
def engine_config():
    return EngineConfig(
        model=MISTRAL_7B_AWQ,
        cluster=ClusterSpec(A40),
        kv_pool_cap_bytes=8 * GB,
    )


@pytest.fixture()
def tiny_engine_config():
    """An engine with a deliberately tiny KV pool (memory-pressure tests)."""
    return EngineConfig(
        model=MISTRAL_7B_AWQ,
        cluster=ClusterSpec(A40),
        kv_pool_cap_bytes=int(0.8 * GB),
    )
