"""Shared fixtures (small cached datasets, engine configs) and the
tier-1/tier-2 marker split.

``python -m pytest -x -q`` runs everything (tier-1 contract); passing
``--fast`` deselects tests marked ``tier2`` (heavy property/sweep
tests) and ``slow`` (end-to-end experiment smoke), leaving a quick
inner-loop suite. New expensive tests should carry one of those marks
so the default suite's wall time stays bounded.
"""

from __future__ import annotations

import pytest

from repro.data import build_dataset
from repro.llm import A40, ClusterSpec, MISTRAL_7B_AWQ
from repro.serving.engine import EngineConfig
from repro.util.units import GB


def pytest_addoption(parser):
    parser.addoption(
        "--fast", action="store_true", default=False,
        help="skip tier-2 tests (marked 'tier2' or 'slow')",
    )


def pytest_collection_modifyitems(config, items):
    if not config.getoption("--fast"):
        return
    skip = pytest.mark.skip(reason="tier-2 test (deselected by --fast)")
    for item in items:
        if "tier2" in item.keywords or "slow" in item.keywords:
            item.add_marker(skip)


@pytest.fixture(scope="session")
def finsec_bundle():
    return build_dataset("finsec", n_queries=30)


@pytest.fixture(scope="session")
def squad_bundle():
    return build_dataset("squad", n_queries=30)


@pytest.fixture(scope="session")
def musique_bundle():
    return build_dataset("musique", n_queries=30)


@pytest.fixture(scope="session")
def qmsum_bundle():
    return build_dataset("qmsum", n_queries=30)


@pytest.fixture(scope="session")
def all_bundles(squad_bundle, musique_bundle, finsec_bundle, qmsum_bundle):
    return {
        "squad": squad_bundle,
        "musique": musique_bundle,
        "finsec": finsec_bundle,
        "qmsum": qmsum_bundle,
    }


@pytest.fixture()
def engine_config():
    return EngineConfig(
        model=MISTRAL_7B_AWQ,
        cluster=ClusterSpec(A40),
        kv_pool_cap_bytes=8 * GB,
    )


@pytest.fixture()
def tiny_engine_config():
    """An engine with a deliberately tiny KV pool (memory-pressure tests)."""
    return EngineConfig(
        model=MISTRAL_7B_AWQ,
        cluster=ClusterSpec(A40),
        kv_pool_cap_bytes=int(0.8 * GB),
    )
