"""Unit tests for workload generators."""

import numpy as np
import pytest

from repro.data.workload import (
    poisson_arrivals,
    sequential_arrivals,
    uniform_arrivals,
)


class TestPoisson:
    def test_times_strictly_increasing(self, finsec_bundle):
        arrivals = poisson_arrivals(finsec_bundle.queries, 2.0, seed=0)
        times = [a.time for a in arrivals]
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_rate_roughly_matches(self, finsec_bundle):
        queries = finsec_bundle.queries * 10  # 300 arrivals
        arrivals = poisson_arrivals(queries, 2.0, seed=0)
        span = arrivals[-1].time
        assert len(arrivals) / span == pytest.approx(2.0, rel=0.25)

    def test_deterministic_per_seed(self, finsec_bundle):
        a = poisson_arrivals(finsec_bundle.queries, 2.0, seed=5)
        b = poisson_arrivals(finsec_bundle.queries, 2.0, seed=5)
        assert [x.time for x in a] == [x.time for x in b]

    def test_seed_changes_times(self, finsec_bundle):
        a = poisson_arrivals(finsec_bundle.queries, 2.0, seed=5)
        b = poisson_arrivals(finsec_bundle.queries, 2.0, seed=6)
        assert [x.time for x in a] != [x.time for x in b]

    def test_preserves_query_order(self, finsec_bundle):
        arrivals = poisson_arrivals(finsec_bundle.queries, 2.0, seed=0)
        assert [a.query.query_id for a in arrivals] == [
            q.query_id for q in finsec_bundle.queries
        ]

    def test_rejects_bad_rate(self, finsec_bundle):
        with pytest.raises(ValueError):
            poisson_arrivals(finsec_bundle.queries, 0.0)


class TestUniform:
    def test_fixed_interval(self, finsec_bundle):
        arrivals = uniform_arrivals(finsec_bundle.queries[:5], 2.0)
        times = [a.time for a in arrivals]
        diffs = np.diff(times)
        assert np.allclose(diffs, 0.5)


class TestSequential:
    def test_all_times_none(self, finsec_bundle):
        arrivals = sequential_arrivals(finsec_bundle.queries)
        assert all(a.time is None for a in arrivals)
        assert len(arrivals) == len(finsec_bundle.queries)
