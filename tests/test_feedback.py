"""Unit tests for the golden-configuration feedback loop (§5)."""

import pytest

from repro.core.feedback import (
    FeedbackConfig,
    FeedbackLoop,
    GOLDEN_CONFIG,
)
from repro.core.profiler import GPT4O_PROFILER, LLMProfiler


@pytest.fixture()
def loop(finsec_bundle):
    profiler = LLMProfiler(GPT4O_PROFILER, 40)
    return FeedbackLoop(
        profiler=profiler,
        config=FeedbackConfig(every=5, keep=2, accuracy_boost_per_prompt=0.01),
        chunk_tokens=finsec_bundle.chunk_tokens,
    ), profiler


class TestGoldenConfig:
    def test_matches_paper(self):
        assert GOLDEN_CONFIG.num_chunks == 30
        assert GOLDEN_CONFIG.intermediate_length == 300
        assert GOLDEN_CONFIG.synthesis_method.value == "map_reduce"


class TestFeedbackLoop:
    def test_fires_every_nth_query(self, loop, finsec_bundle):
        fb, _ = loop
        events = [
            fb.on_query_complete(finsec_bundle.queries[i % 20])
            for i in range(10)
        ]
        fired = [e for e in events if e is not None]
        assert len(fired) == 2  # queries 5 and 10

    def test_keeps_last_k_prompts(self, loop, finsec_bundle):
        fb, _ = loop
        for i in range(25):
            fb.on_query_complete(finsec_bundle.queries[i % 20])
        assert fb.n_active_prompts == 2  # keep=2

    def test_boost_applied_to_profiler(self, loop, finsec_bundle):
        fb, profiler = loop
        base = profiler.accuracy
        for i in range(5):
            fb.on_query_complete(finsec_bundle.queries[i])
        assert profiler.accuracy == pytest.approx(base + 0.01)
        for i in range(5):
            fb.on_query_complete(finsec_bundle.queries[i + 5])
        assert profiler.accuracy == pytest.approx(base + 0.02)

    def test_boost_saturates_at_keep(self, loop, finsec_bundle):
        fb, profiler = loop
        base_accuracy = GPT4O_PROFILER.base_accuracy
        for i in range(30):
            fb.on_query_complete(finsec_bundle.queries[i % 20])
        assert profiler.accuracy <= base_accuracy + 2 * 0.01 + 1e-9

    def test_event_costs_recorded(self, loop, finsec_bundle):
        fb, _ = loop
        for i in range(5):
            event = fb.on_query_complete(finsec_bundle.queries[i])
        assert event is not None
        assert event.golden_prefill_tokens > GOLDEN_CONFIG.num_chunks * 1000
        assert event.golden_output_tokens > 0
        assert fb.events == [event]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FeedbackConfig(every=0)
        with pytest.raises(ValueError):
            FeedbackConfig(keep=0)
        with pytest.raises(ValueError):
            FeedbackConfig(accuracy_boost_per_prompt=0.5)
