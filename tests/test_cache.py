"""Unit and property tests for the caching subsystem
(``repro.caching``): key normalization, config validation, the
capacity/TTL/staleness invariants of the cost-aware core, the three
eviction policies, and semantic matching at the cache level."""

from __future__ import annotations

import numpy as np
import pytest

from repro.caching import (
    CacheConfig,
    CostAwareCache,
    EVICTION_NAMES,
    GDSFPolicy,
    LFUPolicy,
    LRUPolicy,
    RESULT_CACHE_MODES,
    ResultCache,
    RetrievalCache,
    make_cache_config,
    make_eviction,
    normalize_query_text,
)
from repro.util import canonical_query_id
from repro.util.rng import stream


class TestCanonicalQueryId:
    def test_strips_replay_suffix(self):
        assert canonical_query_id("finsec-q12#r3") == "finsec-q12"
        assert canonical_query_id("q0#r127") == "q0"

    def test_plain_id_unchanged(self):
        assert canonical_query_id("finsec-q12") == "finsec-q12"

    def test_only_trailing_suffix_removed(self):
        assert canonical_query_id("q1#r2#r10") == "q1#r2"
        assert canonical_query_id("q1#hedge") == "q1#hedge"


class TestNormalizeQueryText:
    def test_case_and_whitespace_folded(self):
        assert (normalize_query_text("  What is\tthe  Fee?\n")
                == "what is the fee?")

    def test_equivalent_texts_share_a_key(self):
        a = ResultCache.key_for("What is the fee?", "stuff/8")
        b = ResultCache.key_for("  what IS the fee?  ", "stuff/8")
        assert a == b

    def test_config_label_distinguishes_keys(self):
        a = ResultCache.key_for("what is the fee?", "stuff/8")
        b = ResultCache.key_for("what is the fee?", "map_reduce/24")
        assert a != b


class TestMakeCacheConfig:
    def test_disabled_is_none(self):
        assert make_cache_config() is None
        assert make_cache_config(result_cache="off") is None

    def test_enabled_modes(self):
        assert set(RESULT_CACHE_MODES) == {"off", "exact", "semantic"}
        cfg = make_cache_config(result_cache="exact")
        assert cfg is not None and cfg.result_enabled and not cfg.retrieval
        cfg = make_cache_config(retrieval_cache=True)
        assert cfg is not None and cfg.retrieval and not cfg.result_enabled

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown result-cache mode"):
            make_cache_config(result_cache="fuzzy")

    def test_dependent_knobs_without_a_tier_fail_fast(self):
        with pytest.raises(ValueError, match="cache_capacity"):
            make_cache_config(cache_capacity=64)
        with pytest.raises(ValueError, match="cache_eviction"):
            make_cache_config(cache_eviction="gdsf")
        with pytest.raises(ValueError, match="cache_ttl"):
            make_cache_config(cache_ttl=60.0)

    def test_semantic_threshold_requires_semantic_mode(self):
        with pytest.raises(ValueError, match="semantic_threshold"):
            make_cache_config(result_cache="exact", semantic_threshold=0.8)
        cfg = make_cache_config(result_cache="semantic",
                                semantic_threshold=0.8)
        assert cfg.semantic_threshold == 0.8

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            make_cache_config(result_cache="exact", cache_capacity=0)
        with pytest.raises(ValueError):
            make_cache_config(result_cache="semantic",
                              semantic_threshold=1.5)
        with pytest.raises(ValueError):
            make_cache_config(result_cache="exact", cache_ttl=-1.0)
        with pytest.raises(ValueError):
            CacheConfig(eviction="random")


class TestEvictionPolicies:
    def test_registry(self):
        assert EVICTION_NAMES == ("lru", "lfu", "gdsf")
        assert isinstance(make_eviction("lru"), LRUPolicy)
        assert isinstance(make_eviction("lfu"), LFUPolicy)
        assert isinstance(make_eviction("gdsf"), GDSFPolicy)
        with pytest.raises(ValueError, match="unknown cache eviction"):
            make_eviction("mru")

    def test_lru_evicts_stalest(self):
        cache = CostAwareCache(capacity=2, eviction="lru")
        cache.insert("a", 1, now=0.0)
        cache.insert("b", 2, now=1.0)
        cache._hit(cache._find("a", 2.0))  # refresh a
        cache.insert("c", 3, now=3.0)
        assert "b" not in cache and "a" in cache and "c" in cache

    def test_lfu_evicts_least_hit(self):
        cache = CostAwareCache(capacity=2, eviction="lfu")
        cache.insert("a", 1, now=0.0)
        cache.insert("b", 2, now=1.0)
        for _ in range(3):
            cache._hit(cache._find("b", 2.0))
        cache.insert("c", 3, now=3.0)  # a has 0 hits -> victim
        assert "a" not in cache and "b" in cache

    def test_gdsf_keeps_high_benefit_entries(self):
        cache = CostAwareCache(capacity=2, eviction="gdsf")
        cache.insert("cheap", 1, now=0.0, saved_dollars=1e-6)
        cache.insert("costly", 2, now=1.0, saved_dollars=1.0)
        cache.insert("new", 3, now=2.0, saved_dollars=1e-6)
        assert "cheap" not in cache and "costly" in cache

    def test_gdsf_clock_inflates_on_eviction(self):
        cache = CostAwareCache(capacity=1, eviction="gdsf")
        cache.insert("a", 1, now=0.0, saved_dollars=0.5)
        cache.insert("b", 2, now=1.0, saved_dollars=0.5)
        assert cache.policy.clock > 0.0  # inflated to a's priority

    @pytest.mark.parametrize("eviction", EVICTION_NAMES)
    def test_capacity_never_exceeded(self, eviction):
        """Property: under a randomized (but seeded) insert/hit mix
        the resident count never exceeds capacity."""
        rng = stream(7, "test", "cache", eviction)
        cache = CostAwareCache(capacity=16, eviction=eviction)
        for step in range(400):
            key = f"k{int(rng.integers(0, 64))}"
            if rng.random() < 0.3:
                entry = cache._find(key, float(step))
                if entry is not None:
                    cache._hit(entry)
            else:
                cache.insert(key, step, now=float(step),
                             saved_dollars=float(rng.random()),
                             saved_seconds=float(rng.random()))
            assert len(cache) <= 16

    @pytest.mark.parametrize("eviction", EVICTION_NAMES)
    def test_eviction_is_deterministic(self, eviction):
        """Two identical runs leave identical residents and counters."""
        def run():
            rng = stream(3, "test", "cache-det", eviction)
            cache = CostAwareCache(capacity=8, eviction=eviction)
            for step in range(200):
                key = f"k{int(rng.integers(0, 32))}"
                entry = cache._find(key, float(step))
                if entry is not None and rng.random() < 0.5:
                    cache._hit(entry)
                else:
                    cache.insert(key, step, now=float(step),
                                 saved_dollars=float(rng.random()))
            return (sorted(cache._entries), cache.stats.evictions,
                    cache.stats.hits, cache.stats.inserts)

        assert run() == run()


class TestTTLAndStaleness:
    def test_ttl_expires_lazily_at_lookup(self):
        cache = CostAwareCache(capacity=4, ttl_s=10.0)
        cache.insert("a", 1, now=0.0)
        assert cache._find("a", 5.0) is not None
        assert cache._find("a", 10.5) is None  # expired and dropped
        assert cache.stats.expirations == 1
        assert "a" not in cache

    def test_result_tier_expiry_counts_as_miss(self):
        cache = ResultCache(capacity=4, ttl_s=10.0)
        key = ResultCache.key_for("q", "stuff/8")
        cache.insert(key, "answer", now=0.0)
        entry, tier = cache.lookup(key, None, now=20.0)
        assert entry is None and tier is None
        assert cache.stats.hit_rate == 0.0

    def test_stale_hit_is_served_but_counted(self):
        cache = ResultCache(capacity=4)
        key = ResultCache.key_for("q", "stuff/8")
        cache.insert(key, "answer", now=0.0, corpus_version=0)
        entry, tier = cache.lookup(key, None, now=1.0, corpus_version=2)
        assert entry is not None and tier == "result-exact"
        assert cache.stats.stale_hits == 1

    def test_evict_stale_drops_old_versions(self):
        cache = CostAwareCache(capacity=8)
        cache.insert("old", 1, now=0.0, corpus_version=0)
        cache.insert("new", 2, now=1.0, corpus_version=1)
        assert cache.evict_stale(current_version=1) == 1
        assert "old" not in cache and "new" in cache
        assert cache.stats.evictions == 1


def _unit(rng) -> np.ndarray:
    v = rng.normal(size=8)
    return v / np.linalg.norm(v)


class TestSemanticMatching:
    def test_exact_key_wins_before_semantic(self):
        cache = ResultCache(capacity=8, semantic=True,
                            semantic_threshold=0.5)
        key = ResultCache.key_for("q", "stuff/8")
        vec = np.ones(4)
        cache.insert(key, "answer", now=0.0, embedding=vec)
        entry, tier = cache.lookup(key, vec, now=1.0)
        assert tier == "result-exact"
        assert cache.stats.semantic_hits == 0

    def test_semantic_hit_above_threshold_only(self):
        cache = ResultCache(capacity=8, semantic=True,
                            semantic_threshold=0.99)
        cached = ResultCache.key_for("original", "stuff/8")
        cache.insert(cached, "answer", now=0.0,
                     embedding=np.array([1.0, 0.0]),
                     config_label="stuff/8")
        probe = ResultCache.key_for("near duplicate", "stuff/8")
        near = np.array([1.0, 0.05])
        far = np.array([1.0, 1.0])
        entry, tier = cache.lookup(probe, far, now=1.0)
        assert entry is None
        entry, tier = cache.lookup(probe, near, now=2.0)
        assert entry is not None and tier == "result-semantic"
        assert cache.stats.semantic_hits == 1

    def test_semantic_respects_config_label(self):
        cache = ResultCache(capacity=8, semantic=True,
                            semantic_threshold=0.5)
        cache.insert(ResultCache.key_for("original", "stuff/8"),
                     "answer", now=0.0, embedding=np.array([1.0, 0.0]),
                     config_label="stuff/8")
        probe = ResultCache.key_for("near duplicate", "map_reduce/24")
        entry, tier = cache.lookup(probe, np.array([1.0, 0.0]), now=1.0)
        assert entry is None  # same vector, different config

    def test_hits_monotone_in_threshold(self):
        """Property: loosening the threshold never loses hits (the
        satellite's monotonicity contract at the cache level)."""
        rng = stream(11, "test", "semantic-mono")
        cached_vecs = [_unit(rng) for _ in range(12)]
        probe_vecs = [_unit(rng) for _ in range(40)]

        def hits_at(threshold: float) -> int:
            cache = ResultCache(capacity=64, semantic=True,
                                semantic_threshold=threshold)
            for i, vec in enumerate(cached_vecs):
                cache.insert(ResultCache.key_for(f"seed {i}", "stuff/8"),
                             f"answer {i}", now=0.0, embedding=vec,
                             config_label="stuff/8")
            hits = 0
            for j, vec in enumerate(probe_vecs):
                key = ResultCache.key_for(f"probe {j}", "stuff/8")
                entry, _ = cache.lookup(key, vec, now=1.0 + j)
                if entry is not None:
                    hits += 1
            return hits

        thresholds = (0.95, 0.8, 0.6, 0.4, 0.2, 0.05)
        counts = [hits_at(t) for t in thresholds]
        assert counts == sorted(counts)  # monotone as threshold loosens
        assert counts[-1] > counts[0]  # and the sweep actually moves

    def test_semantic_scan_cost_grows_with_residency(self):
        cache = ResultCache(capacity=64, semantic=True)
        empty = cache.lookup_seconds()
        for i in range(10):
            cache.insert(ResultCache.key_for(f"q{i}", "stuff/8"), i,
                         now=float(i), embedding=np.ones(2))
        assert cache.lookup_seconds() > empty
        exact_only = ResultCache(capacity=64)
        assert exact_only.lookup_seconds() == pytest.approx(
            ResultCache(capacity=64).lookup_seconds())


class TestRetrievalCacheTier:
    def test_key_includes_shard_config(self):
        a = RetrievalCache.key_for("q1", 4, "ivf", 20)
        b = RetrievalCache.key_for("q1", 8, "ivf", 20)
        c = RetrievalCache.key_for("q1", 4, "flat", 20)
        assert len({a, b, c}) == 3

    def test_hit_accounts_savings(self):
        cache = RetrievalCache(capacity=4)
        key = RetrievalCache.key_for("q1", 1, "flat", 20)
        cache.insert(key, ("c1", "c2"), now=0.0,
                     saved_seconds=0.4, saved_dollars=0.0)
        assert cache.lookup(key, now=1.0) is not None
        assert cache.stats.saved_seconds == pytest.approx(0.4)
        assert cache.stats.hit_rate == pytest.approx(1.0)
