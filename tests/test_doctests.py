"""Run the library's doctests (executable documentation)."""

import doctest

import pytest

import repro.cli
import repro.config.space
import repro.evaluation.f1
import repro.evaluation.pareto
import repro.evaluation.reports
import repro.llm.tokenizer
import repro.util.rng
import repro.util.units


@pytest.mark.parametrize("module", [
    repro.cli,
    repro.config.space,
    repro.evaluation.f1,
    repro.evaluation.pareto,
    repro.evaluation.reports,
    repro.llm.tokenizer,
    repro.util.rng,
    repro.util.units,
])
def test_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.attempted > 0, f"{module.__name__} has no doctests"
    assert result.failed == 0, f"{module.__name__}: {result.failed} failures"
