"""Unit and integration tests for the multi-replica serving cluster."""

from __future__ import annotations

import pytest

from repro.config.knobs import RAGConfig, SynthesisMethod
from repro.core import MetisConfig, MetisPolicy
from repro.core.policy import ClusterSchedulingView, PrepResult
from repro.core.profiles import QueryProfile
from repro.evaluation.reports import cluster_summary, per_replica_rows
from repro.experiments.common import make_metis, run_policy
from repro.llm import A40, ClusterSpec, MISTRAL_7B_AWQ
from repro.serving import (
    ClusterEngine,
    EngineConfig,
    InferenceRequest,
    ServingEngine,
)
from repro.serving.cluster import (
    LeastKVLoadRouter,
    LeastOutstandingRouter,
    PowerOfTwoRouter,
    RoundRobinRouter,
    ROUTER_NAMES,
    make_router,
)
from repro.synthesis import make_synthesizer
from repro.util.units import GB

KV_BYTES = 131_072  # Mistral-7B per token


def build_config(pool_gb: float = 1.0, policy: str = "fcfs") -> EngineConfig:
    return EngineConfig(
        model=MISTRAL_7B_AWQ,
        cluster=ClusterSpec(A40),
        kv_pool_cap_bytes=int(pool_gb * GB),
        policy=policy,
    )


def request(prompt=500, out=8, t=0.0, app=""):
    return InferenceRequest(prompt_tokens=prompt, output_tokens=out,
                            arrival_time=t, app_id=app)


def drive_arrivals(engine, specs):
    """Runner-style interleave of arrivals and iterations."""
    requests = []
    i = 0
    while i < len(specs) or engine.has_work():
        next_t = specs[i][2] if i < len(specs) else float("inf")
        if engine.has_work() and engine.now < next_t:
            engine.step()
            continue
        if i >= len(specs):
            break
        engine.advance_to(next_t)
        prompt, out, t = specs[i]
        requests.append(engine.submit(request(prompt, out, t)))
        i += 1
    return requests


# ----------------------------------------------------------------------
# Routers
# ----------------------------------------------------------------------
class TestRouters:
    def test_round_robin_cycles(self):
        engine = ClusterEngine(build_config(), 3, router="round-robin")
        picks = [engine.submit(request()).request_id for _ in range(6)]
        replicas = [engine.replica_of_request(rid) for rid in picks]
        assert replicas == [0, 1, 2, 0, 1, 2]

    def test_least_outstanding_picks_emptier_replica(self):
        engine = ClusterEngine(build_config(), 2, router="least-outstanding")
        engine.replicas[0].submit(request())
        engine.replicas[0].submit(request())
        engine.replicas[1].submit(request())
        router = LeastOutstandingRouter()
        assert router.select(engine.replicas) == 1

    def test_least_kv_load_picks_freest_replica(self):
        engine = ClusterEngine(build_config(), 2, router="least-kv-load")
        # Queue a large request on replica 0: its claimable KV drops
        # even before admission (waiting demand counts).
        engine.replicas[0].submit(request(prompt=4_000, out=32))
        router = LeastKVLoadRouter()
        assert router.select(engine.replicas) == 1

    def test_least_kv_load_ties_break_by_outstanding_then_index(self):
        engine = ClusterEngine(build_config(), 3, router="least-kv-load")
        router = LeastKVLoadRouter()
        assert router.select(engine.replicas) == 0

    def test_power_of_two_is_deterministic_given_seed(self):
        def selections(seed):
            engine = ClusterEngine(build_config(), 4, router="round-robin")
            router = PowerOfTwoRouter(seed=seed)
            return [router.select(engine.replicas) for _ in range(32)]

        assert selections(7) == selections(7)
        assert selections(7) != selections(8)  # streams actually differ

    def test_power_of_two_prefers_less_loaded_of_pair(self):
        engine = ClusterEngine(build_config(), 2, router="round-robin")
        engine.replicas[0].submit(request())
        router = PowerOfTwoRouter(seed=0)
        # With n=2 every draw probes both replicas; 1 is always emptier.
        assert all(router.select(engine.replicas) == 1 for _ in range(8))

    def test_single_replica_degenerates_everywhere(self):
        for name in ROUTER_NAMES:
            engine = ClusterEngine(build_config(), 1, router=name)
            assert engine.submit(request()) is not None
            assert engine.replica_of_request(
                engine.replicas[0].waiting[0].request_id) == 0

    def test_make_router_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown router"):
            make_router("least-recently-sacrificed")

    def test_round_robin_counter_does_not_grow_unbounded(self):
        router = RoundRobinRouter()
        engine = ClusterEngine(build_config(), 2, router=router)
        for _ in range(5):
            router.select(engine.replicas)
        assert router._next in (0, 1)


# ----------------------------------------------------------------------
# Cluster semantics
# ----------------------------------------------------------------------
class TestClusterEngine:
    def test_rejects_nonpositive_replicas(self):
        with pytest.raises(ValueError):
            ClusterEngine(build_config(), 0)

    def test_step_on_idle_cluster_raises(self):
        with pytest.raises(RuntimeError):
            ClusterEngine(build_config(), 2).step()

    def test_lockstep_steps_the_lagging_replica(self):
        engine = ClusterEngine(build_config(), 2, router="round-robin")
        engine.submit(request(prompt=2_000, out=16))   # -> replica 0
        engine.submit(request(prompt=200, out=2))      # -> replica 1
        seen = set()
        last_now = 0.0
        while engine.has_work():
            info = engine.step()
            seen.add(info.replica_id)
            assert engine.now >= last_now or not engine.has_work()
            last_now = engine.now
        assert seen == {0, 1}

    def test_now_is_min_busy_clock_then_max_idle_clock(self):
        engine = ClusterEngine(build_config(), 2, router="round-robin")
        engine.submit(request(prompt=3_000, out=24))   # replica 0: long
        engine.submit(request(prompt=100, out=1))      # replica 1: short
        engine.run_until_idle()
        assert engine.now == max(r.now for r in engine.replicas)

    def test_advance_to_moves_every_replica_forward_only(self):
        engine = ClusterEngine(build_config(), 2, router="round-robin")
        engine.advance_to(5.0)
        assert all(r.now == 5.0 for r in engine.replicas)
        engine.advance_to(1.0)
        assert all(r.now == 5.0 for r in engine.replicas)

    def test_stats_aggregate_across_replicas(self):
        engine = ClusterEngine(build_config(), 2, router="round-robin")
        for i in range(6):
            engine.submit(request(app=f"q{i}"))
        engine.run_until_idle()
        agg = engine.stats
        assert agg.requests_finished == 6
        assert agg.iterations == sum(r.stats.iterations
                                     for r in engine.replicas)
        assert agg.peak_kv_utilization == max(r.stats.peak_kv_utilization
                                              for r in engine.replicas)

    def test_pin_app_overrides_router(self):
        engine = ClusterEngine(build_config(), 3, router="round-robin")
        engine.pin_app("q", 2)
        engine.submit(request(app="q"))
        assert engine.replica_of_app("q") == 2
        assert len(engine.replicas[2].waiting) == 1

    def test_pin_app_validates_replica_id(self):
        engine = ClusterEngine(build_config(), 2)
        with pytest.raises(ValueError):
            engine.pin_app("q", 5)

    def test_release_app_allows_rerouting(self):
        engine = ClusterEngine(build_config(), 2, router="round-robin")
        engine.submit(request(app="q"))  # pins q -> 0
        engine.release_app("q")
        assert engine.replica_of_app("q") is None

    def test_snapshots_reflect_load(self):
        engine = ClusterEngine(build_config(), 2, router="round-robin")
        engine.submit(request())
        snaps = engine.snapshots()
        assert [s.replica_id for s in snaps] == [0, 1]
        assert snaps[0].queue_depth == 1
        assert snaps[1].queue_depth == 0
        assert snaps[1].free_kv_bytes > 0


# ----------------------------------------------------------------------
# Scaling and monotonicity (the cluster's reason to exist)
# ----------------------------------------------------------------------
class TestScaling:
    def _makespan(self, n_replicas: int, router: str = "least-outstanding"):
        engine = ClusterEngine(build_config(), n_replicas, router=router)
        for _ in range(60):
            engine.submit(request(prompt=1_000, out=8))
        engine.run_until_idle()
        return engine.now

    def test_two_replicas_scale_throughput_at_least_1_8x(self):
        """The ISSUE's acceptance bar: >= 1.8x aggregate throughput
        from 1 -> 2 replicas under saturating load."""
        ratio = self._makespan(1) / self._makespan(2)
        assert ratio >= 1.8, f"1->2 replica scaling only {ratio:.2f}x"

    def test_four_replicas_keep_scaling(self):
        assert self._makespan(1) / self._makespan(4) >= 3.0

    @pytest.mark.tier2
    @pytest.mark.parametrize("router", ROUTER_NAMES)
    def test_p50_queue_delay_monotone_in_replicas(self, router):
        """Adding a replica never increases p50 queue delay on the
        canonical saturating workload."""
        specs = [(800, 8, 0.02 * (i + 1)) for i in range(80)]

        def p50(n_replicas):
            engine = ClusterEngine(build_config(), n_replicas,
                                   router=router, seed=3)
            requests = drive_arrivals(engine, specs)
            delays = sorted(r.queueing_delay for r in requests)
            return delays[len(delays) // 2]

        delays = [p50(n) for n in (1, 2, 3, 4)]
        for smaller, larger in zip(delays[1:], delays):
            assert smaller <= larger + 1e-9, f"{router}: {delays}"


# ----------------------------------------------------------------------
# Cluster-level scheduling view / controller cluster mode
# ----------------------------------------------------------------------
def make_cluster_view(per_replica_tokens, routed: int) -> ClusterSchedulingView:
    def estimate(config: RAGConfig):
        return make_synthesizer(config.synthesis_method).build_plan(
            query_id="est", query_tokens=30,
            chunk_tokens=[500] * config.num_chunks,
            answer_tokens=20, config=config,
        )

    avail = tuple(t * KV_BYTES for t in per_replica_tokens)
    return ClusterSchedulingView(
        now=0.0,
        free_kv_bytes=avail[routed],
        available_kv_bytes=avail[routed],
        kv_bytes_per_token=KV_BYTES,
        chunk_tokens=500, query_tokens=30, answer_tokens=20,
        estimate_plan=estimate,
        replica_id=routed,
        replica_free_kv_bytes=avail,
        replica_available_kv_bytes=avail,
    )


def metis(**config_kwargs) -> MetisPolicy:
    return MetisPolicy(metadata_tokens=40, chunk_tokens=500,
                       config=MetisConfig(**config_kwargs), seed=0)


def prep() -> PrepResult:
    return PrepResult(
        profile=QueryProfile(complexity_high=True, joint_reasoning=True,
                             pieces=3, summary_range=(60, 120),
                             confidence=0.95),
        api_seconds=0.1, dollars=1e-4,
    )


class TestClusterView:
    def test_for_replica_swaps_scalars(self):
        view = make_cluster_view((100, 50_000), routed=0)
        other = view.for_replica(1)
        assert other.replica_id == 1
        assert other.available_kv_bytes == 50_000 * KV_BYTES
        assert other.replica_available_kv_bytes == view.replica_available_kv_bytes

    def test_for_replica_bounds_checked(self):
        with pytest.raises(ValueError):
            make_cluster_view((100, 200), routed=0).for_replica(2)

    def test_best_replica_ties_break_low(self):
        assert make_cluster_view((5, 5, 5), routed=1).best_replica() == 0
        assert make_cluster_view((5, 9, 9), routed=0).best_replica() == 1


class TestControllerClusterMode:
    def test_rescue_moves_query_to_freest_replica(self, finsec_bundle):
        """Routed replica starved, sibling ample: the controller
        re-places instead of degrading the configuration."""
        policy = metis()
        view = make_cluster_view((0, 1_000_000), routed=0)
        decision = policy.choose(finsec_bundle.queries[0], prep(), view)
        assert not decision.fell_back
        assert decision.notes["preferred_replica"] == 1
        assert decision.pruned_space.contains(decision.config)

    def test_no_rescue_when_disabled(self, finsec_bundle):
        policy = metis(cluster_aware=False)
        view = make_cluster_view((0, 1_000_000), routed=0)
        decision = policy.choose(finsec_bundle.queries[0], prep(), view)
        assert decision.fell_back
        assert "preferred_replica" not in decision.notes

    def test_no_rescue_when_every_replica_starved(self, finsec_bundle):
        policy = metis()
        view = make_cluster_view((0, 0, 0), routed=1)
        decision = policy.choose(finsec_bundle.queries[0], prep(), view)
        assert decision.fell_back
        assert "preferred_replica" not in decision.notes

    def test_no_rescue_on_single_replica_view(self, finsec_bundle):
        policy = metis()
        view = make_cluster_view((0,), routed=0)
        decision = policy.choose(finsec_bundle.queries[0], prep(), view)
        assert decision.fell_back
        assert "preferred_replica" not in decision.notes

    def test_plain_view_unaffected(self, finsec_bundle):
        """Bare-engine views take the exact pre-cluster path."""
        policy = metis()
        from test_controller import make_view  # same fixtures/idiom
        decision = policy.choose(finsec_bundle.queries[0], prep(),
                                 make_view(1e6))
        assert not decision.fell_back
        assert "preferred_replica" not in decision.notes


# ----------------------------------------------------------------------
# Runner integration + report aggregation
# ----------------------------------------------------------------------
class TestRunnerIntegration:
    @pytest.fixture(scope="class")
    def cluster_run(self, finsec_bundle):
        policy = make_metis(finsec_bundle, seed=0)
        return run_policy(finsec_bundle, policy, rate_qps=8.0, seed=0,
                          n_replicas=2, router="least-kv-load")

    def test_all_queries_complete(self, cluster_run, finsec_bundle):
        assert len(cluster_run.records) == len(finsec_bundle.queries)

    def test_records_carry_replica_ids(self, cluster_run):
        replicas = {r.replica for r in cluster_run.records}
        assert replicas == {0, 1}  # both replicas actually served

    def test_replica_stats_cover_all_requests(self, cluster_run):
        assert len(cluster_run.replica_stats) == 2
        per_replica = sum(s.requests_finished
                          for s in cluster_run.replica_stats)
        assert per_replica == cluster_run.engine_stats.requests_finished
        assert per_replica >= len(cluster_run.records)  # >=1 call/query

    def test_per_replica_rows_shape(self, cluster_run):
        rows = per_replica_rows(cluster_run)
        assert [row["replica"] for row in rows] == [0, 1]
        assert sum(row["queries"] for row in rows) == len(cluster_run.records)
        for row in rows:
            assert 0.0 <= row["fallback_rate"] <= 1.0
            assert 0.0 <= row["peak_kv_utilization"] <= 1.0

    def test_cluster_summary_aggregates(self, cluster_run):
        summary = cluster_summary(cluster_run)
        assert summary["n_replicas"] == 2
        assert summary["queries"] == len(cluster_run.records)
        assert summary["load_imbalance"] >= 1.0
        assert summary["busy_seconds"] == pytest.approx(
            cluster_run.engine_stats.busy_seconds)

    def test_single_replica_run_unchanged_shape(self, finsec_bundle):
        result = run_policy(finsec_bundle, make_metis(finsec_bundle),
                            rate_qps=4.0, n_replicas=1)
        assert len(result.replica_stats) == 1
        assert all(r.replica == 0 for r in result.records)
        assert cluster_summary(result)["n_replicas"] == 1

    def test_invalid_replicas_rejected(self, finsec_bundle):
        from repro.evaluation.runner import ExperimentRunner
        with pytest.raises(ValueError):
            ExperimentRunner(finsec_bundle, build_config(), n_replicas=0)
