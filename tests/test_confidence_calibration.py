"""Statistical calibration of the profiler confidence model (Fig 9).

Uses the full 200-query datasets (cached) so the fractions are stable
enough to compare against the paper's reported numbers.
"""

import pytest

from repro.data import build_dataset
from repro.experiments.fig9_confidence import confidence_stats


@pytest.fixture(scope="module", params=["finsec", "qmsum"])
def stats(request):
    bundle = build_dataset(request.param, n_queries=200)
    return confidence_stats(bundle)


class TestFig9Calibration:
    def test_most_profiles_above_threshold(self, stats):
        # Paper: >93% of profiles have confidence >= 0.9.
        assert stats["frac_above"] >= 0.88

    def test_high_confidence_profiles_are_good(self, stats):
        # Paper: >=96% of above-threshold profiles are good.
        assert stats["good_given_above"] >= 0.93

    def test_low_confidence_profiles_are_mostly_bad(self, stats):
        # Paper: 85-90% of below-threshold profiles are bad.
        assert stats["bad_given_below"] >= 0.6

    def test_threshold_is_informative(self, stats):
        """Being above the threshold must raise the good-profile odds
        relative to being below it."""
        assert stats["good_given_above"] > 1.0 - stats["bad_given_below"]
