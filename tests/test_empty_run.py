"""A run that completes zero queries must report, not raise.

An autoscaled trace whose trough carries no arrivals (or a filtered
record list) legitimately produces an empty ``records``; every
aggregate accessor degrades to NaN — "no observation" — and every
report renderer returns empty structure instead of crashing (satellite
3 of the workload-engine PR).
"""

import math

import pytest

from repro.evaluation.costs import CostLedger
from repro.evaluation.reports import (
    autoscale_rows,
    autoscale_summary,
    cache_rows,
    cluster_summary,
    format_table,
    per_replica_rows,
    quality_rows,
    query_group_rows,
    resource_rows,
    speculation_rows,
)
from repro.evaluation.runner import RunResult
from repro.serving.engine import EngineStats


@pytest.fixture()
def empty_result() -> RunResult:
    return RunResult(
        policy="metis",
        dataset="finsec",
        records=[],
        makespan=0.0,
        engine_stats=EngineStats(),
        ledger=CostLedger(),
        replica_stats=[EngineStats(), EngineStats()],
        replica_speeds=[1.0, 1.0],
        slo_seconds=6.0,
    )


class TestNaNSafeStats:
    def test_latency_stats_are_nan(self, empty_result):
        assert math.isnan(empty_result.mean_delay)
        assert math.isnan(empty_result.delay_percentile(50))
        assert math.isnan(empty_result.delay_percentile(99))

    def test_quality_and_stage_stats_are_nan(self, empty_result):
        assert math.isnan(empty_result.mean_f1)
        assert math.isnan(empty_result.mean_profiler_fraction)
        assert math.isnan(empty_result.mean_profiler_queue_delay)
        assert math.isnan(empty_result.mean_retrieval_seconds)
        assert math.isnan(empty_result.mean_gather_seconds)
        assert math.isnan(empty_result.retrieval_percentile(99))

    def test_slo_attainment_is_nan(self, empty_result):
        # No queries -> no observation. (With records but no stamped
        # SLOs the value stays 0.0 — pinned in test_speculation.py.)
        assert math.isnan(empty_result.slo_attainment)

    def test_quality_metric_aggregates_are_nan(self, empty_result):
        # Zero scored records -> "no observation", never ZeroDivision.
        assert empty_result.n_quality_scored == 0
        assert math.isnan(empty_result.mean_faithfulness)
        assert math.isnan(empty_result.mean_answer_relevancy)
        assert math.isnan(empty_result.mean_context_precision)
        assert math.isnan(empty_result.mean_context_recall)

    def test_quality_slo_report_is_nan_safe(self, empty_result):
        from repro.evaluation.slo import evaluate_quality_slo

        report = evaluate_quality_slo(empty_result, "faithfulness>=0.8")
        assert report.n_queries == 0
        assert math.isnan(report.attainment)
        assert math.isnan(report.mean_value)
        assert report.shortfall == 0.0
        assert format_table([report.as_row()])

    def test_rates_stay_zero(self, empty_result):
        # Rates over an empty set are "nothing happened", not unknown.
        assert empty_result.throughput_qps == 0.0
        assert empty_result.hedge_rate == 0.0
        assert empty_result.hedge_win_rate == 0.0
        assert empty_result.wasted_work_fraction == 0.0
        assert empty_result.total_dollars == 0.0


class TestReportsRender:
    def test_summary_is_nan_safe(self, empty_result):
        summary = empty_result.summary()
        assert math.isnan(summary["mean_delay_s"])
        assert summary["dollars_per_query"] == 0.0
        assert format_table([summary])

    def test_per_replica_rows_render(self, empty_result):
        rows = per_replica_rows(empty_result)
        assert len(rows) == 2
        assert all(row["queries"] == 0 for row in rows)
        assert format_table(rows)

    def test_cluster_summary_renders(self, empty_result):
        summary = cluster_summary(empty_result)
        assert summary["n_replicas"] == 2
        assert format_table([summary])

    def test_speculation_and_resource_rows_render(self, empty_result):
        rows = speculation_rows(empty_result)
        assert len(rows) == 1
        assert math.isnan(rows[0]["p99_delay_s"])
        assert format_table(rows)
        assert resource_rows(empty_result) == []

    def test_quality_rows_render(self, empty_result):
        rows = quality_rows(empty_result)
        assert len(rows) == 1  # just the "all" summary row
        assert rows[0]["path"] == "all"
        assert rows[0]["queries"] == 0
        assert math.isnan(rows[0]["faithfulness"])
        assert math.isnan(rows[0]["mean_f1"])
        assert format_table(rows)

    def test_query_group_and_cache_rows_render(self, empty_result):
        assert query_group_rows(empty_result) == []
        rows = cache_rows(empty_result)
        # Harness off (nothing scored): no hit_faithfulness column, so
        # default cache tables keep their pre-harness layout.
        assert all("hit_faithfulness" not in row for row in rows)
        assert format_table(rows) is not None

    def test_autoscale_tables_render(self, empty_result):
        assert autoscale_rows(empty_result) == []
        summary = autoscale_summary(empty_result)
        assert summary["scale_ups"] == 0
        assert format_table([summary])
