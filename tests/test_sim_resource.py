"""Property tests for the contended Resource (repro.sim.resource)."""

import pytest

from repro.sim import EventLoop, Resource
from repro.util.rng import RngStreams


def offered(loop: EventLoop, resource: Resource,
            arrivals: list[tuple[float, float]]) -> list[tuple[float, float]]:
    """Feed (time, hold) requests via arrival events; return
    (finish_time, queue_delay) per request in completion order."""
    done: list[tuple[float, float]] = []

    def make_arrival(hold: float):
        def on_arrival(t, _):
            resource.request(t, hold, lambda now, waited: done.append(
                (now, waited)))
        return on_arrival

    for t, hold in arrivals:
        loop.schedule(t, "arrival", make_arrival(hold))
    loop.run()
    return done


class TestConcurrencyCap:
    @pytest.mark.parametrize("cap", [1, 2, 5])
    def test_cap_never_exceeded(self, cap):
        """Under random offered load the in-service count stays <= cap."""
        rng = RngStreams(42).get("sim", f"resource-cap-{cap}")
        loop = EventLoop()
        resource = Resource("r", loop, concurrency=cap)
        t, arrivals = 0.0, []
        for _ in range(200):
            t += float(rng.exponential(0.05))
            arrivals.append((t, float(rng.exponential(0.2))))
        done = offered(loop, resource, arrivals)
        assert len(done) == 200
        assert 1 <= resource.stats.peak_in_service <= cap
        assert resource.stats.n_requests == 200

    @pytest.mark.parametrize("cap", [1, 3])
    def test_overlap_counted_externally(self, cap):
        """Reconstruct service intervals and assert max overlap <= cap."""
        rng = RngStreams(7).get("sim", f"overlap-{cap}")
        loop = EventLoop()
        resource = Resource("r", loop, concurrency=cap)
        spans: list[tuple[float, float]] = []
        t, arrivals = 0.0, []
        for _ in range(150):
            t += float(rng.exponential(0.04))
            arrivals.append((t, float(rng.exponential(0.3))))

        def feed(t_req, hold):
            def on_arrival(t, _):
                resource.request(
                    t, hold,
                    lambda now, waited, hold=hold: spans.append(
                        (now - hold, now)))
            loop.schedule(t_req, "arrival", on_arrival)

        for t_req, hold in arrivals:
            feed(t_req, hold)
        loop.run()
        assert len(spans) == 150
        # Round away float jitter from reconstructing start = now - hold
        # (one ulp is enough to fake an overlap at a back-to-back grant).
        events = sorted(
            [(round(s, 7), 1) for s, _ in spans]
            + [(round(f, 7), -1) for _, f in spans],
            key=lambda p: (p[0], p[1]),  # finish before start at ties
        )
        live = peak = 0
        for _, delta in events:
            live += delta
            peak = max(peak, live)
        assert peak <= cap
        assert resource.stats.peak_in_service == peak


class TestQueueDelay:
    def test_unbounded_never_queues(self):
        rng = RngStreams(3).get("sim", "unbounded")
        loop = EventLoop()
        resource = Resource("r", loop, concurrency=None)
        t, arrivals = 0.0, []
        for _ in range(100):
            t += float(rng.exponential(0.01))
            arrivals.append((t, float(rng.exponential(0.5))))
        done = offered(loop, resource, arrivals)
        assert all(waited == 0.0 for _, waited in done)
        assert resource.stats.n_queued == 0
        assert resource.stats.total_queue_delay == 0.0
        assert resource.stats.utilization(10.0) == 0.0

    @pytest.mark.tier2
    def test_queue_delay_monotone_in_offered_load(self):
        """Same service demand, shrinking inter-arrival gap: total
        queue delay must be non-decreasing as the load rises."""
        totals = []
        for gap in (2.0, 1.0, 0.5, 0.25, 0.125, 0.0625):
            loop = EventLoop()
            resource = Resource("r", loop, concurrency=2)
            arrivals = [(i * gap, 1.0) for i in range(60)]
            offered(loop, resource, arrivals)
            totals.append(resource.stats.total_queue_delay)
        assert all(b >= a for a, b in zip(totals, totals[1:])), totals
        assert totals[0] == 0.0  # uncontended at the lightest load
        assert totals[-1] > 0.0  # saturated at the heaviest

    def test_fifo_grant_order(self):
        """cap=1, simultaneous arrivals: completions in request order,
        spaced exactly one hold apart."""
        loop = EventLoop()
        resource = Resource("r", loop, concurrency=1)
        order: list[int] = []

        def on_arrival(t, i):
            resource.request(t, 0.5,
                             lambda now, waited, i=i: order.append(i))

        for i in range(10):
            loop.schedule(0.0, "arrival", on_arrival, i)
        loop.run()
        assert order == list(range(10))
        assert loop.clock.now == pytest.approx(5.0)
        assert resource.stats.max_queue_delay == pytest.approx(4.5)

    def test_full_utilization_back_to_back(self):
        loop = EventLoop()
        resource = Resource("r", loop, concurrency=1)
        offered(loop, resource, [(0.0, 1.0), (0.0, 1.0), (0.0, 1.0)])
        assert resource.stats.busy_seconds == pytest.approx(3.0)
        assert resource.stats.utilization(3.0) == pytest.approx(1.0)


class TestCoalesce:
    def test_queue_dispatches_as_one_merged_call(self):
        """cap=1: requests queued behind a busy slot all complete
        together when it frees, after one max-member hold."""
        loop = EventLoop()
        resource = Resource("r", loop, concurrency=1, coalesce=True)
        done = offered(loop, resource,
                       [(0.0, 1.0), (0.1, 0.5), (0.2, 0.8), (0.3, 0.2)])
        # Opener finishes at 1.0; the other three merge into one grant
        # at t=1.0 holding max(0.5, 0.8, 0.2) = 0.8 -> all done at 1.8.
        finishes = [now for now, _ in done]
        assert finishes == pytest.approx([1.0, 1.8, 1.8, 1.8])
        waits = [w for _, w in done]
        assert waits == pytest.approx([0.0, 0.9, 0.8, 0.7])
        # One slot, one amortized busy charge for the merged call.
        assert resource.stats.peak_in_service == 1
        assert resource.stats.busy_seconds == pytest.approx(1.0 + 0.8)
        assert resource.stats.n_queued == 3

    def test_uncontended_coalescing_matches_plain(self):
        """Coalescing must not engage without a queue: spaced arrivals
        behave identically on plain and coalescing resources."""
        arrivals = [(i * 2.0, 1.0) for i in range(5)]
        results = []
        for coalesce in (False, True):
            loop = EventLoop()
            resource = Resource("r", loop, concurrency=1,
                                coalesce=coalesce)
            results.append((offered(loop, resource, arrivals),
                            resource.stats.busy_seconds))
        assert results[0] == results[1]

    def test_on_batch_hook_sees_members_in_fifo_order(self):
        loop = EventLoop()
        resource = Resource("r", loop, concurrency=1, coalesce=True)
        batches: list[list[float]] = []
        resource.on_batch = lambda leases: batches.append(
            [lease.request_time for lease in leases])
        offered(loop, resource, [(0.0, 1.0), (0.2, 0.3), (0.4, 0.3)])
        assert batches == [[0.2, 0.4]]

    def test_cancel_batched_member_keeps_call_running(self):
        loop = EventLoop()
        resource = Resource("r", loop, concurrency=1, coalesce=True)
        done: list[int] = []
        leases = {}

        def arrive(t, i):
            leases[i] = resource.request(
                t, 0.5, lambda now, waited, i=i: done.append(i))

        for i in range(3):
            loop.schedule(0.1 * i, "arrival", arrive, i)
        # Cancel one merged member mid-call: its callback is dropped
        # but the shared call (and the survivor's) completes.
        loop.schedule(0.6, "cancel", lambda t, _: leases[1].cancel(t))
        loop.run()
        assert done == [0, 2]
        assert resource.stats.n_cancelled == 1
        # The amortized call's cost is unchanged by the member cancel.
        assert resource.stats.busy_seconds == pytest.approx(1.0)


class TestValidation:
    def test_zero_concurrency_rejected(self):
        with pytest.raises(ValueError):
            Resource("r", EventLoop(), concurrency=0)

    def test_negative_hold_rejected(self):
        resource = Resource("r", EventLoop(), concurrency=1)
        with pytest.raises(ValueError):
            resource.request(0.0, -1.0, lambda now, waited: None)

    def test_zero_hold_is_fine(self):
        loop = EventLoop()
        resource = Resource("r", loop, concurrency=1)
        done = offered(loop, resource, [(0.0, 0.0), (0.0, 0.0)])
        assert [w for _, w in done] == [0.0, 0.0]
