"""Unit tests for the GPU memory partition model."""

import pytest

from repro.llm import A40, ClusterSpec, LLAMA3_70B_AWQ, MISTRAL_7B_AWQ
from repro.serving.memory import GPUMemoryModel
from repro.util.units import GB


class TestGPUMemoryModel:
    def test_partition_adds_up(self):
        mem = GPUMemoryModel(MISTRAL_7B_AWQ, ClusterSpec(A40))
        assert mem.kv_pool_bytes == pytest.approx(
            mem.usable_bytes - MISTRAL_7B_AWQ.weight_bytes - mem.activation_bytes
        )

    def test_pool_cap_applies(self):
        capped = GPUMemoryModel(MISTRAL_7B_AWQ, ClusterSpec(A40),
                                kv_pool_cap_bytes=2 * GB)
        assert capped.kv_pool_bytes == 2 * GB

    def test_cap_larger_than_pool_is_noop(self):
        uncapped = GPUMemoryModel(MISTRAL_7B_AWQ, ClusterSpec(A40))
        capped = GPUMemoryModel(MISTRAL_7B_AWQ, ClusterSpec(A40),
                                kv_pool_cap_bytes=500 * GB)
        assert capped.kv_pool_bytes == uncapped.kv_pool_bytes

    def test_pool_tokens_consistent(self):
        mem = GPUMemoryModel(MISTRAL_7B_AWQ, ClusterSpec(A40))
        assert mem.kv_pool_tokens == int(
            mem.kv_pool_bytes // MISTRAL_7B_AWQ.kv_bytes_per_token
        )

    def test_n_blocks(self):
        mem = GPUMemoryModel(MISTRAL_7B_AWQ, ClusterSpec(A40))
        assert mem.n_blocks(16) == mem.kv_pool_tokens // 16

    def test_tokens_to_bytes(self):
        mem = GPUMemoryModel(MISTRAL_7B_AWQ, ClusterSpec(A40))
        assert mem.tokens_to_bytes(10) == 10 * MISTRAL_7B_AWQ.kv_bytes_per_token

    def test_model_too_big_rejected(self):
        # 70B AWQ does not fit a single A40 at 30% utilisation.
        with pytest.raises(ValueError, match="does not fit"):
            GPUMemoryModel(LLAMA3_70B_AWQ, ClusterSpec(A40),
                           gpu_memory_utilization=0.5)

    def test_70b_fits_two_gpus(self):
        mem = GPUMemoryModel(LLAMA3_70B_AWQ, ClusterSpec(A40, n_gpus=2))
        assert mem.kv_pool_bytes > 0

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            GPUMemoryModel(MISTRAL_7B_AWQ, ClusterSpec(A40),
                           kv_pool_cap_bytes=0)

    def test_bad_blocks_arg(self):
        mem = GPUMemoryModel(MISTRAL_7B_AWQ, ClusterSpec(A40))
        with pytest.raises(ValueError):
            mem.n_blocks(0)
