"""Unit tests for the sampled answer generator."""

import pytest

from repro.config.knobs import RAGConfig, SynthesisMethod
from repro.llm.generation import SimulatedGenerator
from repro.llm.quality import (
    ChunkView,
    FactView,
    QualityModel,
    QualityParams,
    SynthesisContext,
)


def make_ctx(n_facts=3, retrieved=None, qid="q1") -> SynthesisContext:
    facts = [
        FactView(fact_id=f"f{i}",
                 value_tokens=(f"val{i}a", f"val{i}b"),
                 verbosity=15.0)
        for i in range(n_facts)
    ]
    retrieved = facts if retrieved is None else retrieved
    chunks = tuple(
        ChunkView(chunk_id=f"c{i}", n_tokens=400, facts=(f,))
        for i, f in enumerate(retrieved)
    )
    return SynthesisContext(
        query_id=qid, complexity_high=False, joint_reasoning=True,
        required_facts=tuple(facts), chunks=chunks,
        answer_template_tokens=("the", "answer", "is"),
    )


@pytest.fixture()
def generator():
    return SimulatedGenerator(quality=QualityModel(QualityParams()),
                              root_seed=7)


config = RAGConfig(SynthesisMethod.STUFF, 3)


class TestDeterminism:
    def test_same_seed_same_answer(self, generator):
        ctx = make_ctx()
        a = generator.generate(ctx, config)
        b = generator.generate(ctx, config)
        assert a.tokens == b.tokens
        assert a.f1 == b.f1

    def test_different_query_different_stream(self, generator):
        a = generator.generate(make_ctx(qid="q1"), config)
        b = generator.generate(make_ctx(qid="q2"), config)
        assert a.tokens != b.tokens or a.f1 != b.f1

    def test_different_config_different_stream(self, generator):
        ctx = make_ctx()
        a = generator.generate(ctx, RAGConfig(SynthesisMethod.STUFF, 3))
        b = generator.generate(ctx, RAGConfig(SynthesisMethod.MAP_RERANK, 3))
        assert a.tokens != b.tokens or a.f1 != b.f1


class TestAnswers:
    def test_f1_in_bounds(self, generator):
        answer = generator.generate(make_ctx(), config)
        assert 0.0 <= answer.f1 <= 1.0

    def test_coverage_bookkeeping(self, generator):
        answer = generator.generate(make_ctx(n_facts=4), config)
        assert answer.n_required == 4
        assert 0 <= answer.n_recovered <= 4
        assert answer.coverage == pytest.approx(answer.n_recovered / 4)

    def test_no_retrieval_no_recovery(self, generator):
        ctx = make_ctx(n_facts=2, retrieved=[])
        # Without any retrieved chunk, nothing can be recovered.
        answer = generator.generate(ctx, RAGConfig(SynthesisMethod.STUFF, 1))
        assert answer.n_recovered == 0

    def test_full_retrieval_beats_partial_on_average(self, generator):
        full_scores, partial_scores = [], []
        for i in range(30):
            full = make_ctx(n_facts=3, qid=f"q{i}")
            partial = make_ctx(
                n_facts=3,
                retrieved=[full.required_facts[0]],
                qid=f"q{i}",
            )
            full_scores.append(generator.generate(full, config).f1)
            partial_scores.append(generator.generate(partial, config).f1)
        assert (sum(full_scores) / len(full_scores)
                > sum(partial_scores) / len(partial_scores))

    def test_expected_f1_attached(self, generator):
        answer = generator.generate(make_ctx(), config)
        assert 0.0 <= answer.expected_f1 <= 1.0

    def test_sampled_f1_tracks_expected(self, generator):
        """Mean sampled F1 over many queries approaches the analytic
        expectation (loose tolerance; it's a first-order estimate)."""
        diffs = []
        for i in range(60):
            ctx = make_ctx(qid=f"stat{i}")
            answer = generator.generate(ctx, config)
            diffs.append(answer.f1 - answer.expected_f1)
        mean_diff = sum(diffs) / len(diffs)
        assert abs(mean_diff) < 0.08

    def test_wrong_tokens_never_collide_with_truth(self, generator):
        ctx = make_ctx()
        answer = generator.generate(ctx, config)
        truth = set(ctx.ground_truth_tokens())
        wrong = [t for t in answer.tokens if t.startswith("≠wrong")]
        assert not truth.intersection(wrong)
