"""Regression tests: the paper's Fig 4 response-surface shapes.

These pin the qualitative behaviour the whole evaluation depends on.
If a quality-model change breaks one of these, the experiment suite's
conclusions are no longer comparable to the paper.
"""

import pytest

from repro.config.knobs import RAGConfig, SynthesisMethod
from repro.experiments.common import default_engine_config
from repro.experiments.fig4_knobs import (
    evaluate_config,
    pick_representative_queries,
)
from repro.llm.costs import RooflineCostModel
from repro.llm.quality import QualityModel


@pytest.fixture(scope="module")
def setup():
    from repro.data import build_dataset

    bundle = build_dataset("musique", n_queries=60)
    engine = default_engine_config()
    cost = RooflineCostModel(engine.model, engine.cluster)
    quality = QualityModel(bundle.quality_params)
    queries = pick_representative_queries(bundle)
    return bundle, cost, quality, queries


def method_f1(setup, label, method, ilen=100):
    bundle, cost, quality, queries = setup
    q = queries[label]
    k = max(2, 2 * q.truth.pieces_of_information)
    config = RAGConfig(method, k,
                       ilen if method.uses_intermediate_length else 0)
    return evaluate_config(bundle, q, config, cost, quality)


class TestPanelA_SynthesisMethod:
    def test_q1_rerank_is_cheapest_at_full_quality(self, setup):
        """Simple queries: map_rerank suffices; joint methods only add
        delay (paper: 2x delay without quality gain)."""
        d_rerank, f_rerank = method_f1(setup, "Q1",
                                       SynthesisMethod.MAP_RERANK)
        d_stuff, f_stuff = method_f1(setup, "Q1", SynthesisMethod.STUFF)
        d_mr, f_mr = method_f1(setup, "Q1", SynthesisMethod.MAP_REDUCE)
        assert f_rerank >= f_stuff - 0.05
        assert d_rerank < d_mr

    def test_q2_joint_methods_beat_rerank(self, setup):
        """Cross-chunk queries: stuff/map_reduce give a big quality
        jump over map_rerank (paper: ~35%)."""
        _, f_rerank = method_f1(setup, "Q2", SynthesisMethod.MAP_RERANK)
        _, f_stuff = method_f1(setup, "Q2", SynthesisMethod.STUFF)
        assert f_stuff > f_rerank * 1.15

    def test_q3_map_reduce_best_for_complex(self, setup):
        """Complex queries: map_reduce's denoising wins (paper: ~30%)."""
        _, f_stuff = method_f1(setup, "Q3", SynthesisMethod.STUFF)
        _, f_mr = method_f1(setup, "Q3", SynthesisMethod.MAP_REDUCE,
                            ilen=150)
        assert f_mr > f_stuff

    def test_delay_ordering_rerank_stuff_mapreduce(self, setup):
        d_rerank, _ = method_f1(setup, "Q2", SynthesisMethod.MAP_RERANK)
        d_stuff, _ = method_f1(setup, "Q2", SynthesisMethod.STUFF)
        d_mr, _ = method_f1(setup, "Q2", SynthesisMethod.MAP_REDUCE)
        assert d_stuff < d_mr
        assert d_rerank < d_mr


class TestPanelB_NumChunks:
    def sweep(self, setup, label):
        bundle, cost, quality, queries = setup
        q = queries[label]
        return {
            k: evaluate_config(bundle, q,
                               RAGConfig(SynthesisMethod.STUFF, k),
                               cost, quality)
            for k in (1, 2, 3, 5, 8, 12, 18, 25, 35)
        }

    def test_q1_needs_one_chunk(self, setup):
        points = self.sweep(setup, "Q1")
        assert points[1][1] >= 0.9 * max(f for _, f in points.values())

    def test_quality_drops_beyond_peak(self, setup):
        """Over-retrieval harms quality (paper: up to 20% drop)."""
        for label in ("Q1", "Q2"):
            points = self.sweep(setup, label)
            peak = max(f for _, f in points.values())
            assert points[35][1] < peak * 0.97

    def test_delay_grows_with_chunks(self, setup):
        points = self.sweep(setup, "Q2")
        delays = [points[k][0] for k in (1, 5, 12, 35)]
        assert delays == sorted(delays)
        assert delays[-1] > 3 * delays[0]  # paper: up to 3x inflation

    def test_q2_needs_multiple_chunks(self, setup):
        points = self.sweep(setup, "Q2")
        assert points[8][1] > points[1][1] * 1.3


class TestPanelC_IntermediateLength:
    def sweep(self, setup, label):
        bundle, cost, quality, queries = setup
        q = queries[label]
        k = max(2, 2 * q.truth.pieces_of_information)
        return {
            ilen: evaluate_config(
                bundle, q, RAGConfig(SynthesisMethod.MAP_REDUCE, k, ilen),
                cost, quality)
            for ilen in (10, 25, 50, 100, 150, 200)
        }

    def test_q1_saturates_early(self, setup):
        """Simple queries need only short summaries (paper: 10-20)."""
        points = self.sweep(setup, "Q1")
        best = max(f for _, f in points.values())
        assert points[50][1] >= 0.95 * best

    def test_tiny_summaries_starve_everyone(self, setup):
        for label in ("Q1", "Q2", "Q3"):
            points = self.sweep(setup, label)
            best = max(f for _, f in points.values())
            assert points[10][1] < best * 0.9

    def test_quality_monotone_in_budget(self, setup):
        points = self.sweep(setup, "Q3")
        f1s = [points[i][1] for i in (10, 50, 150)]
        assert f1s == sorted(f1s)

    def test_delay_monotone_in_budget(self, setup):
        points = self.sweep(setup, "Q3")
        delays = [points[i][0] for i in (10, 50, 150, 200)]
        assert delays == sorted(delays)
