"""Speculative deadline-aware scheduling: policies, kernel-level
cancellation (leases, engine requests, hedge-arm events), cost
attribution, and the byte-identity of the disabled path."""

from __future__ import annotations

import pytest

from repro.baselines import FixedConfigPolicy
from repro.config.knobs import RAGConfig, SynthesisMethod
from repro.data.workload import poisson_arrivals
from repro.evaluation.runner import ExperimentRunner
from repro.llm import A40, ClusterSpec, MISTRAL_7B_AWQ
from repro.serving import (
    ClusterEngine,
    EngineConfig,
    InferenceRequest,
    RequestPhase,
    ServingEngine,
)
from repro.serving.speculation import (
    DeadlineRisk,
    HedgeAfterDelay,
    HedgeContext,
    NoSpeculation,
    SPECULATION_NAMES,
    estimate_plan_seconds,
    make_speculation,
)
from repro.sim import EventLoop, Lease, Resource
from repro.util.units import GB

STUFF6 = RAGConfig(SynthesisMethod.STUFF, 6)
STUFF8 = RAGConfig(SynthesisMethod.STUFF, 8)


def fingerprint(result) -> list[tuple]:
    return [
        (r.query_id, r.arrival_time, r.decision_time, r.finish_time,
         r.f1, r.queueing_delay, r.prefill_tokens, r.output_tokens,
         r.replica, r.config)
        for r in result.records
    ]


def ctx(arrival=0.0, decision=0.1, deadline=None, est=1.0, primary=0,
        outstanding=(0, 0), speeds=(1.0, 1.0)) -> HedgeContext:
    return HedgeContext(
        arrival_time=arrival, decision_time=decision, deadline=deadline,
        est_service_seconds=est, primary=primary,
        replica_outstanding=outstanding, replica_speeds=speeds,
    )


# ----------------------------------------------------------------------
# Policies
# ----------------------------------------------------------------------
class TestPolicies:
    def test_none_never_hedges(self):
        assert NoSpeculation().hedge_time(
            ctx(deadline=0.2, est=100.0)) is None

    def test_hedge_after_delay_timer(self):
        policy = HedgeAfterDelay(2.0)
        assert policy.hedge_time(ctx(arrival=1.0, decision=1.1)) == 3.0

    def test_hedge_after_delay_never_before_decision(self):
        policy = HedgeAfterDelay(0.5)
        # arrival+delay = 1.5 trails the decision at 2.0: clamp forward.
        assert policy.hedge_time(ctx(arrival=1.0, decision=2.0)) == 2.0

    def test_hedge_after_delay_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            HedgeAfterDelay(0.0)

    def test_deadline_risk_safe_query_not_hedged(self):
        policy = DeadlineRisk()
        assert policy.hedge_time(
            ctx(deadline=100.0, est=1.0, outstanding=(0, 0))) is None

    def test_deadline_risk_hedges_overloaded_primary(self):
        policy = DeadlineRisk()
        t = policy.hedge_time(
            ctx(deadline=3.0, est=1.0, outstanding=(10, 0)))
        assert t is not None
        # Armed no earlier than the decision, no later than the
        # deadline (a hedge after the deadline is pointless).
        assert 0.1 <= t <= 3.0

    def test_deadline_risk_arm_time_clamped_to_decision(self):
        # Deadline already hopeless: arm immediately, not in the past.
        policy = DeadlineRisk()
        t = policy.hedge_time(
            ctx(decision=5.0, deadline=5.1, est=10.0, outstanding=(4, 0)))
        assert t == 5.0

    def test_deadline_risk_without_deadline_is_inert(self):
        assert DeadlineRisk().hedge_time(ctx(deadline=None)) is None

    def test_choose_replica_prefers_fast_underloaded(self):
        policy = HedgeAfterDelay(1.0)
        # Replica 2 is fast and empty; replica 1 slow; 0 is primary.
        assert policy.choose_replica((5, 0, 0), (1.0, 0.5, 1.0), 0) == 2
        # Normalised load: 4 queries at 2.0x beat 3 queries at 1.0x.
        assert policy.choose_replica((0, 4, 3), (1.0, 2.0, 1.0), 0) == 1

    def test_choose_replica_excludes_primary_and_singletons(self):
        policy = HedgeAfterDelay(1.0)
        assert policy.choose_replica((0,), (1.0,), 0) is None
        assert policy.choose_replica((0, 9), (1.0, 1.0), 0) == 1


class TestMakeSpeculation:
    def test_names_cover_factory(self):
        assert SPECULATION_NAMES == ("none", "hedge-after-delay",
                                     "deadline-risk")
        assert make_speculation("none") is None
        assert make_speculation(None) is None
        assert isinstance(
            make_speculation("hedge-after-delay", hedge_delay=1.0),
            HedgeAfterDelay)
        assert isinstance(
            make_speculation("deadline-risk", slo_seconds=5.0),
            DeadlineRisk)

    def test_delay_defaults_to_half_slo(self):
        policy = make_speculation("hedge-after-delay", slo_seconds=8.0)
        assert policy.delay == 4.0

    def test_misuse_fails_fast(self):
        with pytest.raises(ValueError, match="hedge-delay"):
            make_speculation("hedge-after-delay")
        with pytest.raises(ValueError, match="slo-seconds"):
            make_speculation("deadline-risk")
        with pytest.raises(ValueError, match="unknown speculation"):
            make_speculation("telepathy")

    def test_stray_hedge_delay_rejected(self):
        """A timer the selected policy would silently ignore is an
        error, not a no-op — for strings, None, and instances alike."""
        with pytest.raises(ValueError, match="only applies"):
            make_speculation("deadline-risk", slo_seconds=5.0,
                             hedge_delay=2.0)
        with pytest.raises(ValueError, match="only applies"):
            make_speculation("none", hedge_delay=2.0)
        with pytest.raises(ValueError, match="only applies"):
            make_speculation(None, hedge_delay=2.0)
        with pytest.raises(ValueError, match="only applies"):
            make_speculation(DeadlineRisk(), hedge_delay=2.0)

    def test_needs_estimate_flags(self):
        """The pipeline skips the per-query plan estimate for pure
        timers; the model-based policy requires it."""
        assert HedgeAfterDelay(1.0).needs_estimate is False
        assert DeadlineRisk().needs_estimate is True

    def test_passthrough_instances(self):
        policy = DeadlineRisk()
        assert make_speculation(policy) is policy
        assert make_speculation(NoSpeculation()) is None


class TestEstimatePlanSeconds:
    def test_stages_sum_calls_max(self, engine_config):
        from repro.synthesis.plans import LLMCall, SynthesisPlan

        engine = ServingEngine(engine_config)
        one = SynthesisPlan("q", (LLMCall("a", 500, 20),))
        two = SynthesisPlan("q", (LLMCall("a", 500, 20),
                                  LLMCall("b", 500, 20, stage=1)))
        wide = SynthesisPlan("q", (LLMCall("a", 500, 20),
                                   LLMCall("b", 500, 20)))
        s1 = estimate_plan_seconds(one, engine.cost)
        assert s1 > 0
        # Sequential stages add; parallel calls within a stage don't.
        assert estimate_plan_seconds(two, engine.cost) == pytest.approx(2 * s1)
        assert estimate_plan_seconds(wide, engine.cost) == pytest.approx(s1)


# ----------------------------------------------------------------------
# Resource lease cancellation
# ----------------------------------------------------------------------
class TestLeaseCancellation:
    def test_cancel_queued_lease_never_fires(self):
        loop = EventLoop()
        fired = []
        res = Resource("pool", loop, concurrency=1)
        res.request(0.0, 1.0, lambda t, w: fired.append(("a", t)))
        queued = res.request(0.0, 1.0, lambda t, w: fired.append(("b", t)))
        assert queued.state == Lease.QUEUED
        assert queued.cancel(0.5) is True
        loop.run()
        assert fired == [("a", 1.0)]
        assert res.in_service == 0 and res.queue_len == 0
        assert res.stats.n_cancelled == 1

    def test_cancel_held_lease_releases_slot_to_waiter(self):
        loop = EventLoop()
        fired = []
        res = Resource("pool", loop, concurrency=1)
        held = res.request(0.0, 10.0, lambda t, w: fired.append(("a", t)))
        res.request(0.0, 1.0, lambda t, w: fired.append(("b", t, w)))
        # Cancel mid-hold at t=2: the waiter is granted at 2, not 10.
        loop.schedule(2.0, "cancel", lambda t, _: held.cancel(t))
        loop.run()
        assert fired == [("b", 3.0, 2.0)]
        # The completion event became a tombstone, never dispatched.
        assert loop.n_cancelled == 1
        assert res.in_service == 0 and res.queue_len == 0
        # busy_seconds reclaimed the unused 8s tail: 2 used + 1 waiter.
        assert res.stats.busy_seconds == pytest.approx(3.0)

    def test_cancel_done_lease_is_noop(self):
        loop = EventLoop()
        res = Resource("pool", loop)
        lease = res.request(0.0, 1.0, lambda t, w: None)
        loop.run()
        assert lease.state == Lease.DONE
        assert lease.cancel(2.0) is False
        assert res.stats.n_cancelled == 0

    def test_cancel_twice_is_noop(self):
        loop = EventLoop()
        res = Resource("pool", loop, concurrency=1)
        lease = res.request(0.0, 5.0, lambda t, w: None)
        assert lease.cancel(1.0) is True
        assert lease.cancel(1.5) is False
        assert res.stats.n_cancelled == 1

    def test_cancel_before_grant_time_rejected(self):
        loop = EventLoop()
        res = Resource("pool", loop)
        lease = res.request(3.0, 5.0, lambda t, w: None)
        with pytest.raises(ValueError, match="precedes"):
            lease.cancel(1.0)

    def test_foreign_lease_rejected(self):
        loop = EventLoop()
        a, b = Resource("a", loop), Resource("b", loop)
        lease = a.request(0.0, 1.0, lambda t, w: None)
        with pytest.raises(ValueError, match="belongs to"):
            b.cancel(lease, 0.5)


# ----------------------------------------------------------------------
# Engine / cluster request cancellation
# ----------------------------------------------------------------------
def tight_config(policy: str = "fcfs") -> EngineConfig:
    return EngineConfig(
        model=MISTRAL_7B_AWQ,
        cluster=ClusterSpec(A40),
        kv_pool_cap_bytes=1 * GB,
        policy=policy,
    )


class TestEngineCancel:
    def test_cancel_waiting_request(self):
        engine = ServingEngine(tight_config())
        req = engine.submit(InferenceRequest(
            prompt_tokens=100, output_tokens=5, arrival_time=0.0))
        assert engine.cancel(req) is True
        assert req.phase is RequestPhase.CANCELLED
        assert not engine.has_work()
        assert engine.stats.requests_cancelled == 1
        assert engine.stats.cancelled_prefill_tokens == 0

    def test_cancel_running_request_frees_kv(self):
        engine = ServingEngine(tight_config())
        req = engine.submit(InferenceRequest(
            prompt_tokens=3_000, output_tokens=50, arrival_time=0.0))
        engine.step()  # admit + first prefill chunk
        assert req.phase is RequestPhase.PREFILL
        assert engine.blocks.used_blocks > 0
        done = []
        req.on_finish = lambda r, t: done.append(r)
        assert engine.cancel(req) is True
        assert engine.blocks.used_blocks == 0
        assert not engine.has_work()
        assert req.phase is RequestPhase.CANCELLED
        assert req.cancel_time == engine.now
        # Partial progress is recorded as wasted work; on_finish never
        # fires for a cancelled request.
        assert engine.stats.cancelled_prefill_tokens == req.prefilled_tokens > 0
        assert done == []

    def test_cancel_finished_or_foreign_is_noop(self):
        engine = ServingEngine(tight_config())
        req = engine.submit(InferenceRequest(
            prompt_tokens=100, output_tokens=2, arrival_time=0.0))
        engine.run_until_idle()
        assert req.phase is RequestPhase.FINISHED
        assert engine.cancel(req) is False
        other = InferenceRequest(
            prompt_tokens=100, output_tokens=2, arrival_time=0.0)
        assert engine.cancel(other) is False
        assert engine.stats.requests_cancelled == 0

    def test_cluster_cancel_resolves_placement(self):
        cluster = ClusterEngine(tight_config(), n_replicas=2,
                                router="round-robin")
        r0 = cluster.submit(InferenceRequest(
            prompt_tokens=100, output_tokens=5, arrival_time=0.0,
            app_id="a"))
        r1 = cluster.submit(InferenceRequest(
            prompt_tokens=100, output_tokens=5, arrival_time=0.0,
            app_id="b"))
        assert cluster.replica_of_request(r1.request_id) == 1
        assert cluster.cancel(r1) is True
        assert cluster.replica_of_request(r1.request_id) is None
        assert cluster.cancel(r1) is False  # already gone
        assert cluster.replicas[1].stats.requests_cancelled == 1
        assert cluster.stats.requests_cancelled == 1  # aggregated
        assert cluster.cancel(InferenceRequest(
            prompt_tokens=10, output_tokens=1, arrival_time=0.0)) is False
        cluster.cancel(r0)

    def test_replica_outstanding_counts(self):
        cluster = ClusterEngine(tight_config(), n_replicas=2,
                                router="round-robin")
        assert cluster.replica_outstanding() == (0, 0)
        cluster.submit(InferenceRequest(
            prompt_tokens=100, output_tokens=5, arrival_time=0.0))
        assert cluster.replica_outstanding() == (1, 0)


# ----------------------------------------------------------------------
# End-to-end hedged runs
# ----------------------------------------------------------------------
def hetero_runner(bundle, engine_config, **kwargs) -> ExperimentRunner:
    return ExperimentRunner(
        bundle, engine_config, seed=0, n_replicas=2,
        router="round-robin", replica_speeds=[1.0, 0.5], **kwargs,
    )


class TestHedgedRuns:
    RATE = 2.5

    def run_spec(self, bundle, engine_config, **kwargs):
        arrivals = poisson_arrivals(bundle.queries, self.RATE, seed=0)
        runner = hetero_runner(bundle, engine_config, **kwargs)
        return runner.run(FixedConfigPolicy(STUFF8), arrivals)

    def test_hedges_fire_and_records_are_consistent(
            self, finsec_bundle, engine_config):
        result = self.run_spec(
            finsec_bundle, engine_config,
            slo_seconds=6.0, speculation="hedge-after-delay",
            hedge_delay=2.0,
        )
        assert len(result.records) == len(finsec_bundle.queries)
        assert result.speculation == "hedge-after-delay"
        assert result.slo_seconds == 6.0
        assert 0.0 < result.hedge_rate <= 1.0
        assert result.engine_stats.requests_cancelled > 0
        hedged = [r for r in result.records if r.hedged]
        assert hedged and any(r.hedge_won for r in hedged)
        for r in result.records:
            assert r.deadline == pytest.approx(r.arrival_time + 6.0)
            assert r.slo_met == (r.finish_time <= r.deadline)
            if r.hedge_won:
                assert r.hedged
            if not r.hedged:
                assert r.hedge_time is None
                assert r.wasted_prefill_tokens == 0
                assert r.speculation_seconds == 0.0
            else:
                assert r.hedge_time >= r.decision_time - 1e-9
        # The duplicate's cost landed in the speculation column, as an
        # attribution inside (not on top of) the GPU bill.
        assert result.ledger.speculation_dollars > 0
        assert result.ledger.speculation_dollars < result.ledger.gpu_dollars
        assert result.total_dollars == pytest.approx(
            result.ledger.api_dollars + result.ledger.gpu_dollars)
        assert 0.0 < result.wasted_work_fraction < 1.0

    def test_hedge_win_means_hedge_replica_served(
            self, finsec_bundle, engine_config):
        result = self.run_spec(
            finsec_bundle, engine_config,
            slo_seconds=6.0, speculation="hedge-after-delay",
            hedge_delay=2.0,
        )
        wins = [r for r in result.records if r.hedge_won]
        assert wins
        # Hedges target the *other* (here: fast, replica 0) machine;
        # a win is served there even though round-robin may have
        # routed the primary to the slow replica.
        for r in wins:
            assert r.replica in (0, 1)
        assert any(r.replica == 0 for r in wins)

    def test_deadline_risk_hedges_fewer_than_aggressive_timer(
            self, finsec_bundle, engine_config):
        risk = self.run_spec(finsec_bundle, engine_config,
                             slo_seconds=6.0, speculation="deadline-risk")
        timer = self.run_spec(finsec_bundle, engine_config,
                              slo_seconds=6.0,
                              speculation="hedge-after-delay",
                              hedge_delay=1.0)
        assert 0.0 < risk.hedge_rate < timer.hedge_rate

    def test_speculation_is_deterministic(self, finsec_bundle,
                                          engine_config):
        a = self.run_spec(finsec_bundle, engine_config,
                          slo_seconds=6.0, speculation="deadline-risk")
        b = self.run_spec(finsec_bundle, engine_config,
                          slo_seconds=6.0, speculation="deadline-risk")
        assert fingerprint(a) == fingerprint(b)
        assert a.hedge_rate == b.hedge_rate
        assert a.ledger.speculation_dollars == b.ledger.speculation_dollars


class TestDisabledPathIdentity:
    """``--speculation none`` (and omitted) must not perturb anything."""

    def test_none_matches_omitted(self, finsec_bundle, engine_config):
        arrivals = poisson_arrivals(finsec_bundle.queries, 2.0, seed=0)
        base = hetero_runner(finsec_bundle, engine_config).run(
            FixedConfigPolicy(STUFF6), arrivals)
        explicit = hetero_runner(
            finsec_bundle, engine_config, speculation="none",
        ).run(FixedConfigPolicy(STUFF6), arrivals)
        assert fingerprint(base) == fingerprint(explicit)
        assert base.makespan == explicit.makespan
        assert explicit.speculation is None

    def test_slo_stamping_alone_does_not_perturb_schedule(
            self, finsec_bundle, engine_config):
        """An SLO without speculation only annotates records."""
        arrivals = poisson_arrivals(finsec_bundle.queries, 2.0, seed=0)
        base = hetero_runner(finsec_bundle, engine_config).run(
            FixedConfigPolicy(STUFF6), arrivals)
        slo = hetero_runner(
            finsec_bundle, engine_config, slo_seconds=5.0,
        ).run(FixedConfigPolicy(STUFF6), arrivals)
        assert fingerprint(base) == fingerprint(slo)
        assert all(r.deadline is not None for r in slo.records)
        assert all(r.deadline is None for r in base.records)
        assert 0.0 <= slo.slo_attainment <= 1.0
        assert base.slo_attainment == 0.0  # no SLO configured

    def test_unhedged_records_carry_defaults(self, finsec_bundle,
                                             engine_config):
        arrivals = poisson_arrivals(finsec_bundle.queries, 2.0, seed=0)
        result = hetero_runner(finsec_bundle, engine_config).run(
            FixedConfigPolicy(STUFF6), arrivals)
        for r in result.records:
            assert not r.hedged and not r.hedge_won
            assert r.wasted_prefill_tokens == 0
            assert r.slo_met is None
        assert result.hedge_rate == 0.0
        assert result.hedge_win_rate == 0.0
        assert result.wasted_work_fraction == 0.0
        assert result.ledger.speculation_dollars == 0.0


class TestCancelLaneGlue:
    """White-box: ``_cancel_lane`` unwinds a lane that is still queued
    on a retrieval shard (the organic runs rarely catch a lane
    mid-retrieval — holds are milliseconds — so pin the glue
    directly)."""

    def test_queued_retrieval_lease_is_released(self, finsec_bundle,
                                                engine_config):
        from repro.core.policy import Decision
        from repro.evaluation.pipeline import QueryExecution, QueryPipeline
        from repro.llm.generation import SimulatedGenerator
        from repro.llm.quality import QualityModel

        cluster = ClusterEngine(engine_config, n_replicas=2,
                                router="round-robin")
        pipeline = QueryPipeline(
            bundle=finsec_bundle,
            policy=FixedConfigPolicy(STUFF6),
            engine=cluster,
            generator=SimulatedGenerator(
                quality=QualityModel(finsec_bundle.quality_params),
                root_seed=0),
            retrieval_concurrency=1,
            speculation=make_speculation("hedge-after-delay",
                                         hedge_delay=1.0),
            slo_seconds=5.0,
        )
        # A foreign long hold pins the single retrieval slot...
        blocker_done = []
        pipeline.shard_resources[0].request(
            0.0, 50.0, lambda t, w: blocker_done.append(t))
        # ...so this lane's scatter lease queues behind it.
        ex = QueryExecution(query=finsec_bundle.queries[0],
                            arrival_time=0.0)
        ex.decision = Decision(config=STUFF6)
        from repro.evaluation.pipeline import Lane
        lane = Lane(ex=ex, lane_id=1, app_id="q#hedge", replica=1)
        ex.lanes.append(lane)
        pipeline.retrieve.enter(0.0, lane)
        assert lane.leases and lane.leases[0].state == Lease.QUEUED
        assert pipeline.shard_resources[0].queue_len == 1

        pipeline._cancel_lane(lane, 0.5)
        assert lane.cancelled
        assert lane.leases[0].state == Lease.CANCELLED
        assert pipeline.shard_resources[0].queue_len == 0
        # No wasted GPU tokens: the lane never reached the engine.
        assert ex.wasted_prefill_tokens == 0
        assert ex.speculation_seconds == 0.0
        # Draining the loop completes only the blocker; no stranded
        # holder, no resurrection of the cancelled lane.
        pipeline.loop.run()
        assert blocker_done == [50.0]
        assert pipeline.shard_resources[0].in_service == 0


class TestRunnerValidation:
    def test_bad_speculation_name_fails_fast(self, finsec_bundle,
                                             engine_config):
        with pytest.raises(ValueError, match="unknown speculation"):
            ExperimentRunner(finsec_bundle, engine_config,
                             speculation="telepathy")

    def test_nonpositive_slo_rejected(self, finsec_bundle, engine_config):
        with pytest.raises(ValueError):
            ExperimentRunner(finsec_bundle, engine_config, slo_seconds=0.0)

    def test_deadline_risk_requires_slo(self, finsec_bundle,
                                        engine_config):
        with pytest.raises(ValueError, match="slo-seconds"):
            ExperimentRunner(finsec_bundle, engine_config,
                             speculation="deadline-risk")

    def test_single_replica_speculation_rejected(self, finsec_bundle,
                                                 engine_config):
        """One replica has nowhere to hedge to — reject rather than
        silently serving the exact baseline under a speculation flag."""
        with pytest.raises(ValueError, match="second replica"):
            ExperimentRunner(
                finsec_bundle, engine_config,
                slo_seconds=1.0, speculation="hedge-after-delay",
                hedge_delay=0.5,
            )

    def test_bare_engine_pipeline_runs_unhedged(self, finsec_bundle,
                                                engine_config):
        """Defense in depth below the runner's fail-fast: a bare-engine
        QueryPipeline with speculation arms timers that safely no-op
        (no alternative replica), leaving the run unhedged."""
        from repro.evaluation.pipeline import QueryPipeline
        from repro.llm.generation import SimulatedGenerator
        from repro.llm.quality import QualityModel

        pipeline = QueryPipeline(
            bundle=finsec_bundle,
            policy=FixedConfigPolicy(STUFF6),
            engine=ServingEngine(engine_config),
            generator=SimulatedGenerator(
                quality=QualityModel(finsec_bundle.quality_params),
                root_seed=0),
            speculation=make_speculation("hedge-after-delay",
                                         hedge_delay=0.5),
            slo_seconds=1.0,
        )
        arrivals = poisson_arrivals(finsec_bundle.queries[:10], 2.0, seed=0)
        pipeline.run(arrivals)
        assert len(pipeline.records) == 10
        assert all(not r.hedged for r in pipeline.records)
        assert pipeline.engine.stats.requests_cancelled == 0
