"""Unit tests for hashed embeddings and IDF weighting."""

import numpy as np
import pytest

from repro.retrieval.embedding import HashedEmbedding, IdfWeights


class TestHashedEmbedding:
    def test_unit_norm(self):
        emb = HashedEmbedding()
        v = emb.embed("the quick brown fox")
        assert np.linalg.norm(v) == pytest.approx(1.0, abs=1e-5)

    def test_empty_text_is_zero_vector(self):
        emb = HashedEmbedding()
        assert np.linalg.norm(emb.embed("")) == 0.0

    def test_deterministic(self):
        a = HashedEmbedding().embed("hello world")
        b = HashedEmbedding().embed("hello world")
        assert np.allclose(a, b)

    def test_families_differ(self):
        a = HashedEmbedding(family="fam-a").embed("hello world")
        b = HashedEmbedding(family="fam-b").embed("hello world")
        assert not np.allclose(a, b)

    def test_similar_texts_closer_than_dissimilar(self):
        emb = HashedEmbedding()
        q = emb.embed("nvidia operating cost q1 2024")
        close = emb.embed("the operating cost of nvidia in q1 2024 was high")
        far = emb.embed("rainy weather in paris tomorrow morning")
        assert float(q @ close) > float(q @ far)

    def test_batch_matches_single(self):
        emb = HashedEmbedding()
        texts = ["alpha beta", "gamma delta"]
        batch = emb.embed_batch(texts)
        assert np.allclose(batch[0], emb.embed(texts[0]))
        assert np.allclose(batch[1], emb.embed(texts[1]))

    def test_empty_batch_shape(self):
        emb = HashedEmbedding(dim=64)
        assert emb.embed_batch([]).shape == (0, 64)

    def test_rejects_tiny_dim(self):
        with pytest.raises(ValueError):
            HashedEmbedding(dim=4)


class TestIdfWeights:
    def test_rare_tokens_weigh_more(self):
        idf = IdfWeights().fit(["the cat", "the dog", "the bird", "rare word"])
        assert idf.weight("rare") > idf.weight("the")

    def test_unseen_token_gets_max_weight(self):
        idf = IdfWeights().fit(["a b", "a c"])
        assert idf.weight("zzz") >= idf.weight("b")

    def test_fit_resets_state(self):
        idf = IdfWeights().fit(["x x x"])
        first = idf.weight("x")
        idf.fit(["y", "y", "y"])
        assert idf.weight("x") > first  # x now unseen → max weight

    def test_idf_changes_embedding(self):
        corpus = ["common filler words here"] * 10 + ["special entity fact"]
        idf = IdfWeights().fit(corpus)
        plain = HashedEmbedding()
        weighted = HashedEmbedding(idf=idf)
        text = "common special"
        assert not np.allclose(plain.embed(text), weighted.embed(text))

    def test_idf_improves_discrimination(self):
        corpus = [
            "report overview the quarterly entity alpha numbers",
            "report overview the quarterly entity beta numbers",
        ]
        idf = IdfWeights().fit(corpus)
        emb = HashedEmbedding(idf=idf)
        q = emb.embed("alpha")
        sim_match = float(q @ emb.embed(corpus[0]))
        sim_other = float(q @ emb.embed(corpus[1]))
        assert sim_match > sim_other
