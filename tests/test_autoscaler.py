"""Elastic autoscaling: cluster lifecycle, scaling policies, the event
loop integration, and the lockstep-equivalence guarantee."""

from __future__ import annotations

import math

import pytest

from repro.config.knobs import RAGConfig, SynthesisMethod
from repro.baselines import FixedConfigPolicy
from repro.llm import A40, ClusterSpec, MISTRAL_7B_AWQ
from repro.serving import ClusterEngine, EngineConfig, InferenceRequest
from repro.util.units import GB
from repro.workload import (
    AUTOSCALER_NAMES,
    Autoscaler,
    EwmaForecastPolicy,
    ForecastPolicy,
    ReactivePolicy,
    ScalingPolicy,
    ScalingSignals,
    bursty_workload,
    diurnal_workload,
    make_scaling_policy,
)


def build_config(pool_gb: float = 1.0) -> EngineConfig:
    return EngineConfig(
        model=MISTRAL_7B_AWQ,
        cluster=ClusterSpec(A40),
        kv_pool_cap_bytes=int(pool_gb * GB),
    )


def request(prompt=500, out=8, t=0.0, app=""):
    return InferenceRequest(prompt_tokens=prompt, output_tokens=out,
                            arrival_time=t, app_id=app)


def signals(**overrides) -> ScalingSignals:
    base = dict(
        time=0.0, n_active=2, n_provisioning=0, n_draining=0,
        outstanding_per_active=2.0, window_slo_attainment=None,
        forecast_rate_qps=None, est_service_seconds=None,
        scale_min=1, scale_max=4,
    )
    base.update(overrides)
    return ScalingSignals(**base)


# ----------------------------------------------------------------------
# Cluster lifecycle (active -> draining -> retired)
# ----------------------------------------------------------------------
class TestClusterLifecycle:
    def test_initial_fleet_all_active(self):
        engine = ClusterEngine(build_config(), 3)
        assert engine.active_replica_ids() == (0, 1, 2)
        assert engine.n_active == 3
        assert engine.provisioned_at == [0.0, 0.0, 0.0]
        assert all(s.state == "active" for s in engine.snapshots())

    def test_add_replica_joins_active_at_time(self):
        engine = ClusterEngine(build_config(), 1)
        rid = engine.add_replica(at=12.5)
        assert rid == 1
        assert engine.is_active(1)
        assert engine.replicas[1].now == 12.5
        assert engine.provisioned_at[1] == 12.5
        assert engine.replica_speeds == (1.0, 1.0)

    def test_draining_replica_gets_no_new_work(self):
        engine = ClusterEngine(build_config(), 2,
                               router="least-outstanding")
        engine.begin_drain(0)
        for _ in range(4):
            rid = engine.replica_of_request(
                engine.submit(request()).request_id)
            assert rid == 1
        assert engine.draining_replica_ids() == (0,)

    def test_cannot_drain_last_active(self):
        engine = ClusterEngine(build_config(), 2)
        engine.begin_drain(0)
        with pytest.raises(ValueError, match="last active"):
            engine.begin_drain(1)

    def test_drain_then_cancel_restores_routing(self):
        engine = ClusterEngine(build_config(), 2)
        engine.begin_drain(1)
        engine.cancel_drain(1)
        assert engine.active_replica_ids() == (0, 1)
        with pytest.raises(ValueError, match="not draining"):
            engine.cancel_drain(1)

    def test_retire_waits_for_outstanding_work(self):
        engine = ClusterEngine(build_config(), 2)
        engine.replicas[1].submit(request())
        engine.begin_drain(1)
        assert not engine.can_retire(1)  # still holds a request
        engine.replicas[1].run_until_idle()
        assert engine.can_retire(1)
        engine.retire(1, at=9.0)
        assert engine.retired_at[1] == 9.0
        assert engine.active_replica_ids() == (0,)

    def test_retire_waits_for_app_pins(self):
        engine = ClusterEngine(build_config(), 2)
        engine.pin_app("app-1", 1)
        engine.begin_drain(1)
        assert not engine.can_retire(1)  # a pinned app could come back
        engine.release_app("app-1")
        assert engine.can_retire(1)

    def test_retire_requires_drain_first(self):
        engine = ClusterEngine(build_config(), 2)
        assert not engine.can_retire(0)  # active, not draining
        with pytest.raises(ValueError, match="cannot retire"):
            engine.retire(0, at=1.0)

    def test_cannot_pin_to_non_active_replica(self):
        engine = ClusterEngine(build_config(), 2)
        engine.begin_drain(1)
        with pytest.raises(ValueError, match="not active"):
            engine.pin_app("app-1", 1)

    def test_provisioned_seconds_stops_at_retirement(self):
        engine = ClusterEngine(build_config(), 2)
        rid = engine.add_replica(at=10.0)
        engine.begin_drain(rid)
        engine.retire(rid, at=25.0)
        assert engine.provisioned_seconds(end=100.0) == [100.0, 100.0, 15.0]

    def test_routing_unchanged_while_all_active(self):
        # The byte-identical fast path: a fully active fleet must
        # route exactly as the pre-elastic cluster did.
        a = ClusterEngine(build_config(), 3, router="round-robin")
        b = ClusterEngine(build_config(), 3, router="round-robin")
        b.add_replica(at=5.0)
        b.begin_drain(3)
        b.retire(3, at=6.0)  # back to 3 active, but list has 4 entries
        picks_a = [a.submit(request()).request_id for _ in range(6)]
        picks_b = [b.submit(request()).request_id for _ in range(6)]
        assert ([a.replica_of_request(r) for r in picks_a]
                == [b.replica_of_request(r) for r in picks_b])


# ----------------------------------------------------------------------
# Scaling policies (pure functions of the signals snapshot)
# ----------------------------------------------------------------------
class TestPolicies:
    def test_reactive_scales_up_on_queue_depth(self):
        pol = ReactivePolicy(up_threshold=4.0, down_threshold=1.0)
        assert pol.desired_fleet(signals(outstanding_per_active=6.0)) == 3

    def test_reactive_scales_up_on_slo_pain(self):
        pol = ReactivePolicy(slo_floor=0.9)
        s = signals(outstanding_per_active=2.0, window_slo_attainment=0.5)
        assert pol.desired_fleet(s) == 3

    def test_reactive_scales_down_when_quiet(self):
        pol = ReactivePolicy()
        assert pol.desired_fleet(signals(outstanding_per_active=0.2)) == 1

    def test_reactive_holds_in_band(self):
        pol = ReactivePolicy(up_threshold=4.0, down_threshold=1.0)
        s = signals(outstanding_per_active=2.0, n_provisioning=1)
        assert pol.desired_fleet(s) == 3  # active + provisioning

    def test_reactive_validates_thresholds(self):
        with pytest.raises(ValueError, match="down_threshold"):
            ReactivePolicy(up_threshold=1.0, down_threshold=2.0)

    def test_forecast_sizes_fleet_to_rate(self):
        pol = ForecastPolicy(latency_weight=2.0)
        quiet = signals(forecast_rate_qps=0.2, est_service_seconds=0.5)
        busy = signals(forecast_rate_qps=4.0, est_service_seconds=0.5)
        assert pol.desired_fleet(quiet) == 1
        assert pol.desired_fleet(busy) > pol.desired_fleet(quiet)

    def test_forecast_infeasible_rate_takes_max(self):
        pol = ForecastPolicy()
        s = signals(forecast_rate_qps=100.0, est_service_seconds=1.0,
                    scale_max=4)
        assert pol.desired_fleet(s) == 4

    def test_forecast_holds_without_trace(self):
        pol = ForecastPolicy()
        s = signals(forecast_rate_qps=None, n_active=2, n_provisioning=1)
        assert pol.desired_fleet(s) == 3

    def test_make_scaling_policy(self):
        assert make_scaling_policy(None) is None
        assert make_scaling_policy("none") is None
        assert isinstance(make_scaling_policy("reactive"), ReactivePolicy)
        assert isinstance(make_scaling_policy("forecast"), ForecastPolicy)
        pol = ReactivePolicy()
        assert make_scaling_policy(pol) is pol
        with pytest.raises(ValueError, match="reactive"):
            make_scaling_policy("bogus")
        assert AUTOSCALER_NAMES == ("none", "reactive", "forecast",
                                    "forecast-ewma")
        ewma = make_scaling_policy("forecast-ewma")
        assert isinstance(ewma, ForecastPolicy)
        assert 0.0 < ewma.smoothing_alpha <= 1.0


# ----------------------------------------------------------------------
# EWMA forecast smoothing (satellite: fewer moves under noise)
# ----------------------------------------------------------------------
class TestEwmaForecast:
    def test_ewma_rate_math(self):
        from repro.workload import Workload, WorkloadPeriod
        wl = Workload(periods=(
            WorkloadPeriod(duration_s=10.0, n_arrivals=10, label="a"),
            WorkloadPeriod(duration_s=10.0, n_arrivals=40, label="b"),
        ), name="t")
        # alpha=1 degrades to the raw period rate.
        assert wl.ewma_rate(15.0, alpha=1.0) == wl.rate_at(15.0)
        # alpha=0.5: 0.5*4.0 + 0.5*1.0
        assert wl.ewma_rate(15.0, alpha=0.5) == pytest.approx(2.5)
        # Before the second period, only the first contributes.
        assert wl.ewma_rate(5.0, alpha=0.5) == pytest.approx(1.0)
        with pytest.raises(ValueError, match="alpha"):
            wl.ewma_rate(5.0, alpha=0.0)

    def test_ewma_validates_alpha(self):
        with pytest.raises(ValueError, match="smoothing_alpha"):
            EwmaForecastPolicy(smoothing_alpha=1.5)

    def test_ewma_makes_fewer_moves_on_a_noisy_trace(self):
        """Pinned contract: on an MMPP-bursty trace, the EWMA-fed
        planner changes its desired fleet strictly fewer times than the
        raw-forecast planner (the raw next-period rate whipsaws between
        the calm and burst levels; the EWMA damps single-period
        spikes). This mirrors exactly how ``Autoscaler.signals`` feeds
        the two policies: raw ``forecast_rate(t, lookahead)`` vs
        ``ewma_rate(t + lookahead, alpha)``."""
        lookahead = 45.0

        def desired_moves(policy, forecast_of) -> int:
            n, count, t = 1, 0, 0.0
            while t < wl.duration_s:
                s = signals(
                    time=t, n_active=n, outstanding_per_active=0.0,
                    forecast_rate_qps=forecast_of(t),
                    est_service_seconds=2.0,
                    scale_min=1, scale_max=4)
                d = policy.desired_fleet(s)
                if d != n:
                    count += 1
                    n = d
                t += 15.0
            return count

        for seed in (0, 3, 5):
            wl = bursty_workload(n_periods=40, period_s=30.0, seed=seed)
            raw = desired_moves(
                ForecastPolicy(),
                lambda t: wl.forecast_rate(t, lookahead))
            ewma_policy = EwmaForecastPolicy(smoothing_alpha=0.3)
            ewma = desired_moves(
                ewma_policy,
                lambda t: wl.ewma_rate(
                    t + lookahead, ewma_policy.smoothing_alpha))
            assert ewma < raw, (seed, ewma, raw)

    def test_ewma_run_end_to_end(self, finsec_bundle):
        wl = bursty_workload(n_periods=8, period_s=12.0, base_qps=0.3,
                             burst_qps=2.0, seed=0)
        result = serve(finsec_bundle, workload=wl,
                       autoscaler="forecast-ewma",
                       scale_min=1, scale_max=3,
                       autoscale_interval=4.0, provision_delay=6.0)
        assert result.autoscaler == "forecast-ewma"
        assert len(result.records) == wl.total_arrivals
        assert not math.isnan(result.slo_attainment)


# ----------------------------------------------------------------------
# Autoscaler construction validation
# ----------------------------------------------------------------------
class TestAutoscalerValidation:
    def test_scale_range_checked(self):
        with pytest.raises(ValueError, match="scale_max"):
            Autoscaler(ReactivePolicy(), scale_min=3, scale_max=2)
        with pytest.raises(ValueError, match="scale_min"):
            Autoscaler(ReactivePolicy(), scale_min=0)

    def test_intervals_checked(self):
        with pytest.raises(ValueError, match="autoscale_interval"):
            Autoscaler(ReactivePolicy(), interval_s=0.0)
        with pytest.raises(ValueError, match="provision_delay"):
            Autoscaler(ReactivePolicy(), provision_delay_s=-1.0)

    def test_requires_policy(self):
        with pytest.raises(ValueError, match="ScalingPolicy"):
            Autoscaler(None)


# ----------------------------------------------------------------------
# Anti-flapping hysteresis (cooldown + scale-down debounce)
# ----------------------------------------------------------------------
class Flapper(ScalingPolicy):
    """Pathological policy: wants 2 replicas when the fleet is 1 and
    1 when it is 2 — un-damped, it flip-flops on every single tick."""

    name = "flapper"

    def desired_fleet(self, signals: ScalingSignals) -> int:
        return 2 if signals.n_active + signals.n_provisioning <= 1 else 1


def run_flapper(**kwargs) -> Autoscaler:
    from repro.sim import EventLoop

    loop = EventLoop()
    engine = ClusterEngine(build_config(), 1)
    scaler = Autoscaler(Flapper(), scale_min=1, scale_max=2,
                        interval_s=5.0, provision_delay_s=3.0, **kwargs)
    scaler.start(loop, engine, horizon=100.0, records=[])
    loop.run()
    return scaler


class TestHysteresis:
    def test_config_validated(self):
        with pytest.raises(ValueError, match="cooldown_s"):
            Autoscaler(ReactivePolicy(), cooldown_s=-1.0)
        with pytest.raises(ValueError, match="down_debounce"):
            Autoscaler(ReactivePolicy(), down_debounce=0)

    def test_defaults_scale_with_interval(self):
        scaler = Autoscaler(ReactivePolicy(), interval_s=7.0)
        assert scaler.cooldown_s == 14.0  # two ticks
        assert scaler.down_debounce == 2
        pinned = Autoscaler(ReactivePolicy(), cooldown_s=3.0,
                            down_debounce=4)
        assert pinned.cooldown_s == 3.0
        assert pinned.down_debounce == 4

    def test_cooldown_and_debounce_damp_flapping(self):
        undamped = run_flapper(cooldown_s=0.0, down_debounce=1)
        damped = run_flapper()  # defaults: two-tick cooldown, debounce 2
        # The un-damped scaler acts on every tick the policy flips;
        # hysteresis roughly halves the churn on the same policy.
        assert len(damped.events) < len(undamped.events)
        # Both still unwind completely (drains always retire).
        for scaler in (undamped, damped):
            actions = [e.action for e in scaler.events]
            assert actions.count("add") == actions.count("retire")
            assert not scaler._pending_provisions

    def test_scale_down_waits_for_consecutive_desire(self):
        # With a long horizon of idle ticks the flapper's scale-downs
        # only ever land after the debounce: no drain can occur on the
        # tick immediately following an add.
        damped = run_flapper(cooldown_s=0.0, down_debounce=2)
        times = {a: [e.time for e in damped.events if e.action == a]
                 for a in ("add", "drain")}
        # The final tick's cool-down drain (workload over, fleet wound
        # to the floor) is exempt from hysteresis by design — skip it.
        policy_drains = [t for t in times["drain"] if t < 100.0]
        assert policy_drains  # the flapper did scale down mid-run
        for drain_t in policy_drains:
            adds_before = [t for t in times["add"] if t < drain_t]
            if adds_before:
                # Un-debounced, the drain would land on the first tick
                # after the add (2s later); the debounce forces it to
                # wait out a second full tick wanting it.
                assert drain_t - max(adds_before) > 5.0


# ----------------------------------------------------------------------
# Runner integration
# ----------------------------------------------------------------------
def serve(bundle, **kwargs):
    from repro.experiments.common import run_policy

    return run_policy(
        bundle, FixedConfigPolicy(RAGConfig(SynthesisMethod.STUFF, 8)),
        seed=0, slo_seconds=6.0, **kwargs,
    )


TRACE = dict(n_periods=8, period_s=12.0, base_qps=0.3, peak_qps=2.0)


class TestRunnerIntegration:
    def test_scale_flags_require_autoscaler(self, finsec_bundle):
        with pytest.raises(ValueError, match="scale_min"):
            serve(finsec_bundle, n_queries=2, scale_min=1)

    def test_forecast_requires_workload(self, finsec_bundle):
        with pytest.raises(ValueError, match="forecast"):
            serve(finsec_bundle, n_queries=2, autoscaler="forecast")

    def test_initial_fleet_inside_range(self, finsec_bundle):
        with pytest.raises(ValueError, match="scaling"):
            serve(finsec_bundle, n_queries=2, autoscaler="reactive",
                  workload=diurnal_workload(seed=0, **TRACE),
                  n_replicas=4, scale_max=2)

    def test_workload_excludes_sequential_and_rate(self, finsec_bundle):
        wl = diurnal_workload(seed=0, **TRACE)
        with pytest.raises(ValueError, match="sequential"):
            serve(finsec_bundle, n_queries=2, workload=wl, sequential=True)
        with pytest.raises(ValueError, match="rate_qps"):
            serve(finsec_bundle, n_queries=2, workload=wl, rate_qps=1.0)

    def test_autoscaler_rejects_closed_loop(self, finsec_bundle):
        with pytest.raises(ValueError, match="closed-loop"):
            serve(finsec_bundle, n_queries=2, sequential=True,
                  autoscaler="reactive")

    def test_elastic_run_scales_and_unwinds(self, finsec_bundle):
        wl = diurnal_workload(seed=0, **TRACE)
        result = serve(finsec_bundle, workload=wl, autoscaler="reactive",
                       scale_min=1, scale_max=3,
                       autoscale_interval=4.0, provision_delay=6.0)
        assert result.autoscaler == "reactive"
        assert len(result.records) == wl.total_arrivals
        actions = [e.action for e in result.scaling_events]
        assert "add" in actions and "retire" in actions
        # Everything the run provisioned was wound back down.
        adds = actions.count("add")
        retires = actions.count("retire")
        assert retires == adds
        # Idle capacity is priced by default under autoscaling.
        assert result.provisioned_gpu_seconds > 0
        assert result.idle_gpu_seconds > 0
        assert result.ledger.idle_dollars > 0
        assert result.ledger.total_dollars == pytest.approx(
            result.ledger.api_dollars + result.ledger.gpu_dollars
            + result.ledger.idle_dollars)

    def test_forecast_run_with_trace(self, finsec_bundle):
        wl = diurnal_workload(seed=0, **TRACE)
        result = serve(finsec_bundle, workload=wl, autoscaler="forecast",
                       scale_min=1, scale_max=3,
                       autoscale_interval=4.0, provision_delay=6.0)
        assert result.autoscaler == "forecast"
        assert any(e.action == "add" for e in result.scaling_events)
        assert not math.isnan(result.slo_attainment)

    def test_pinned_range_is_observationally_neutral(self, finsec_bundle):
        """Lockstep equivalence: an autoscaler whose range pins the
        fleet (scale_min == scale_max == n_replicas) must not perturb
        the schedule — its ticks are source-marked events that advance
        no engine clock, so record timings match the static run
        exactly."""
        wl = diurnal_workload(seed=0, **TRACE)
        static = serve(finsec_bundle, workload=wl, n_replicas=2,
                       price_idle_capacity=False)
        pinned = serve(finsec_bundle, workload=wl, n_replicas=2,
                       autoscaler="reactive", scale_min=2, scale_max=2,
                       price_idle_capacity=False)
        assert pinned.scaling_events == []
        assert pinned.makespan == static.makespan
        assert ([(r.query_id, r.arrival_time, r.finish_time, r.replica)
                 for r in pinned.records]
                == [(r.query_id, r.arrival_time, r.finish_time, r.replica)
                    for r in static.records])
        assert pinned.ledger.total_dollars == pytest.approx(
            static.ledger.total_dollars)

    def test_sparse_trace_scaling_is_bounded(self, finsec_bundle):
        """Hysteresis pin: a sparse trace whose queue hovers around the
        reactive thresholds must not flap. Every tick could flip the
        desired fleet, so without the cooldown/debounce the action
        count tracks the tick count; damped, it stays a small fraction
        of it."""
        wl = diurnal_workload(seed=0, n_periods=10, period_s=8.0,
                              base_qps=0.15, peak_qps=1.2)
        result = serve(finsec_bundle, workload=wl, autoscaler="reactive",
                       scale_min=1, scale_max=3,
                       autoscale_interval=2.0, provision_delay=3.0)
        actions = [e.action for e in result.scaling_events]
        assert actions.count("add") == actions.count("retire")
        n_ticks = wl.duration_s / 2.0  # ticks over the trace alone
        assert len(result.scaling_events) <= n_ticks / 2
        assert len(result.scaling_events) <= 16

    def test_reports_render(self, finsec_bundle):
        from repro.evaluation.reports import (
            autoscale_rows,
            autoscale_summary,
            format_table,
        )

        wl = diurnal_workload(seed=0, **TRACE)
        result = serve(finsec_bundle, workload=wl, autoscaler="reactive",
                       scale_min=1, scale_max=3,
                       autoscale_interval=4.0, provision_delay=6.0)
        summary = autoscale_summary(result)
        assert summary["autoscaler"] == "reactive"
        assert summary["scale_ups"] >= 1
        assert 0.0 <= summary["idle_fraction"] < 1.0
        rows = autoscale_rows(result)
        assert len(rows) == len(result.scaling_events)
        assert format_table(rows)
        assert format_table([summary])
