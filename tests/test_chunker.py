"""Unit tests for document chunking."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.llm.tokenizer import SimTokenizer
from repro.retrieval.chunker import split_into_chunks

tok = SimTokenizer()


def make_doc(n_sentences: int, words_per_sentence: int = 8) -> str:
    return " ".join(
        " ".join(f"word{i}x{j}"[:6] for j in range(words_per_sentence)) + "."
        for i in range(n_sentences)
    )


class TestSplit:
    def test_respects_token_budget(self):
        doc = make_doc(40)
        for chunk in split_into_chunks("d", doc, chunk_tokens=64):
            assert chunk.n_tokens <= 64 + 16  # +16: one sentence of slack

    def test_all_text_retained(self):
        doc = make_doc(10)
        chunks = split_into_chunks("d", doc, chunk_tokens=128)
        joined = " ".join(c.text for c in chunks)
        for i in range(10):
            assert f"word{i}" in joined

    def test_chunk_ids_unique_and_positional(self):
        chunks = split_into_chunks("docA", make_doc(40), chunk_tokens=64)
        assert [c.position for c in chunks] == list(range(len(chunks)))
        assert len({c.chunk_id for c in chunks}) == len(chunks)
        assert all(c.doc_id == "docA" for c in chunks)

    def test_sentences_not_split_when_they_fit(self):
        sentence = "alpha beta gamma delta."
        doc = sentence + " " + sentence
        chunks = split_into_chunks("d", doc, chunk_tokens=6)
        for chunk in chunks:
            assert "alpha beta gamma delta" in chunk.text

    def test_oversized_sentence_hard_split(self):
        sentence = " ".join(f"w{i}" for i in range(100)) + "."
        chunks = split_into_chunks("d", sentence, chunk_tokens=20)
        assert len(chunks) >= 5
        assert all(c.n_tokens <= 21 for c in chunks)

    def test_empty_document(self):
        assert split_into_chunks("d", "", chunk_tokens=64) == []

    def test_overlap_repeats_tail(self):
        doc = make_doc(30)
        chunks = split_into_chunks("d", doc, chunk_tokens=64,
                                   overlap_tokens=8)
        assert len(chunks) >= 2
        # Some token of chunk i's tail should appear in chunk i+1.
        for a, b in zip(chunks, chunks[1:]):
            tail_words = a.text.split()[-2:]
            assert any(w in b.text for w in tail_words)

    def test_validation(self):
        with pytest.raises(ValueError):
            split_into_chunks("d", "x", chunk_tokens=0)
        with pytest.raises(ValueError):
            split_into_chunks("d", "x", chunk_tokens=10, overlap_tokens=10)

    @settings(deadline=None, max_examples=25)
    @given(st.integers(min_value=1, max_value=60),
           st.integers(min_value=16, max_value=256))
    def test_token_conservation(self, n_sentences, budget):
        doc = make_doc(n_sentences)
        chunks = split_into_chunks("d", doc, chunk_tokens=budget)
        total = sum(c.n_tokens for c in chunks)
        assert total == pytest.approx(tok.count(doc), abs=n_sentences)
