"""Unit tests for the baseline policies."""

from repro.baselines import (
    AdaptiveRAGPolicy,
    FixedConfigPolicy,
    MedianConfigPolicy,
    ParrotPolicy,
)
from repro.config.knobs import RAGConfig, SynthesisMethod
from repro.core.policy import PrepResult, SchedulingView
from repro.core.profiles import QueryProfile
from repro.synthesis import make_synthesizer

KV = 131_072


def view() -> SchedulingView:
    def estimate(config):
        return make_synthesizer(config.synthesis_method).build_plan(
            query_id="est", query_tokens=30,
            chunk_tokens=[500] * config.num_chunks,
            answer_tokens=20, config=config,
        )

    return SchedulingView(now=0.0, free_kv_bytes=1e9, available_kv_bytes=1e9,
                          kv_bytes_per_token=KV, chunk_tokens=500,
                          query_tokens=30, answer_tokens=20,
                          estimate_plan=estimate)


def profile(joint=True, high=True, pieces=3):
    return QueryProfile(complexity_high=high, joint_reasoning=joint,
                        pieces=pieces, summary_range=(60, 120),
                        confidence=0.95)


class TestFixedConfig:
    def test_always_returns_its_config(self, finsec_bundle):
        config = RAGConfig(SynthesisMethod.STUFF, 8)
        policy = FixedConfigPolicy(config)
        for q in finsec_bundle.queries[:5]:
            assert policy.choose(q, PrepResult(), view()).config == config

    def test_no_profiler(self, finsec_bundle):
        prep = FixedConfigPolicy(
            RAGConfig(SynthesisMethod.STUFF, 8)
        ).prepare(finsec_bundle.queries[0])
        assert prep.profile is None
        assert prep.api_seconds == 0.0

    def test_engine_policies(self):
        config = RAGConfig(SynthesisMethod.STUFF, 8)
        assert FixedConfigPolicy(config).engine_policy == "fcfs"
        assert ParrotPolicy(config).engine_policy == "app-aware"

    def test_names(self):
        config = RAGConfig(SynthesisMethod.STUFF, 8)
        assert "stuff" in FixedConfigPolicy(config).name
        assert ParrotPolicy(config).name.startswith("parrot")


class TestAdaptiveRAG:
    def make(self):
        return AdaptiveRAGPolicy(metadata_tokens=40, seed=0)

    def test_profiler_used(self, finsec_bundle):
        prep = self.make().prepare(finsec_bundle.queries[0])
        assert prep.profile is not None
        assert prep.api_seconds > 0

    def test_complexity_class_configs(self, finsec_bundle):
        policy = self.make()
        q = finsec_bundle.queries[0]
        rerank = policy.choose(q, PrepResult(profile=profile(joint=False)),
                               view()).config
        stuff = policy.choose(q, PrepResult(profile=profile(high=False)),
                              view()).config
        mr = policy.choose(q, PrepResult(profile=profile()), view()).config
        assert rerank.synthesis_method is SynthesisMethod.MAP_RERANK
        assert stuff.synthesis_method is SynthesisMethod.STUFF
        assert mr.synthesis_method is SynthesisMethod.MAP_REDUCE
        assert mr.intermediate_length == AdaptiveRAGPolicy.ILEN

    def test_resource_oblivious(self, finsec_bundle):
        """Same decision regardless of available memory."""
        policy = self.make()
        q = finsec_bundle.queries[0]
        rich = policy.choose(q, PrepResult(profile=profile()), view()).config
        poor_view = SchedulingView(
            now=0.0, free_kv_bytes=0.0, available_kv_bytes=0.0,
            kv_bytes_per_token=KV, chunk_tokens=500, query_tokens=30,
            answer_tokens=20, estimate_plan=view().estimate_plan,
        )
        poor = policy.choose(q, PrepResult(profile=profile()),
                             poor_view).config
        assert rich == poor

    def test_more_chunks_than_metis(self, finsec_bundle):
        """AdaptiveRAG* retrieves with extra slack (quality-max)."""
        config = self.make().choose(
            finsec_bundle.queries[0], PrepResult(profile=profile(pieces=3)),
            view(),
        ).config
        assert config.num_chunks > 3 * 3  # beyond METIS' 3x upper bound


class TestMedianConfig:
    def test_engine_policy_variants(self):
        plain = MedianConfigPolicy(metadata_tokens=40, chunk_tokens=500)
        batched = MedianConfigPolicy(metadata_tokens=40, chunk_tokens=500,
                                     app_aware_batching=True)
        assert plain.engine_policy == "fcfs"
        assert batched.engine_policy == "app-aware"
        assert plain.name == "median"
        assert batched.name == "median+batching"

    def test_picks_median_of_range(self, finsec_bundle):
        policy = MedianConfigPolicy(metadata_tokens=40, chunk_tokens=500)
        q = finsec_bundle.queries[0]
        decision = policy.choose(q, PrepResult(profile=profile(pieces=4)),
                                 view())
        assert decision.config.num_chunks == 8
