"""Trace-driven workloads: validation, determinism, replay, and the
capacity-planning sustained-rate fix."""

import pytest

from repro.data import build_dataset, poisson_arrivals
from repro.workload import (
    WORKLOAD_NAMES,
    Workload,
    WorkloadPeriod,
    bursty_workload,
    diurnal_workload,
    make_workload,
    multi_tenant_workload,
    sustained_rate,
    zipfian_workload,
)


def two_periods():
    return Workload(periods=(
        WorkloadPeriod(duration_s=10.0, n_arrivals=5, label="a"),
        WorkloadPeriod(duration_s=20.0, n_arrivals=2, label="b"),
    ), name="t")


# ----------------------------------------------------------------------
# Fail-fast validation (named ValueErrors, satellite 2)
# ----------------------------------------------------------------------
class TestValidation:
    def test_zero_period_workload_rejected(self):
        with pytest.raises(ValueError, match="workload.periods"):
            Workload(periods=())

    def test_non_positive_duration_rejected(self):
        with pytest.raises(ValueError, match="period.duration_s"):
            WorkloadPeriod(duration_s=0.0, n_arrivals=1)

    def test_negative_arrivals_rejected(self):
        with pytest.raises(ValueError, match="period.n_arrivals"):
            WorkloadPeriod(duration_s=1.0, n_arrivals=-1)

    def test_non_integral_arrivals_rejected(self):
        with pytest.raises(ValueError, match="period.n_arrivals"):
            WorkloadPeriod(duration_s=1.0, n_arrivals=1.5)

    def test_rate_qps_must_be_positive(self, finsec_bundle):
        # The historical one-shot load path fails fast too.
        with pytest.raises(ValueError, match="rate_qps"):
            poisson_arrivals(finsec_bundle.queries, rate_qps=0.0)
        with pytest.raises(ValueError, match="rate_qps"):
            poisson_arrivals(finsec_bundle.queries, rate_qps=-1.4)

    def test_closed_loop_clients_must_be_positive(self, finsec_bundle):
        from repro.experiments.common import run_policy, make_metis

        with pytest.raises(ValueError, match="closed_loop_clients"):
            run_policy(finsec_bundle, make_metis(finsec_bundle),
                       n_queries=2, sequential=True,
                       closed_loop_clients=0)

    def test_materialize_rejects_empty_pool(self):
        with pytest.raises(ValueError, match="queries"):
            two_periods().materialize([], seed=0)

    def test_unknown_generator_listed(self):
        with pytest.raises(ValueError, match="diurnal"):
            make_workload("no-such-shape")

    def test_diurnal_peak_below_base_rejected(self):
        with pytest.raises(ValueError, match="peak_qps"):
            diurnal_workload(peak_qps=0.1, base_qps=0.5)


# ----------------------------------------------------------------------
# Forecastable properties
# ----------------------------------------------------------------------
class TestProperties:
    def test_aggregates(self):
        wl = two_periods()
        assert wl.n_periods == 2
        assert wl.duration_s == 30.0
        assert wl.total_arrivals == 7
        assert wl.peak_rate_qps == pytest.approx(0.5)
        assert wl.mean_rate_qps == pytest.approx(7 / 30)

    def test_period_lookup_and_rates(self):
        wl = two_periods()
        assert wl.period_start(1) == 10.0
        assert wl.period_index_at(-5.0) == 0
        assert wl.period_index_at(9.99) == 0
        assert wl.period_index_at(10.0) == 1
        # Past the end: clamped to the last period.
        assert wl.period_index_at(1e9) == 1
        assert wl.rate_at(5.0) == pytest.approx(0.5)
        assert wl.rate_at(15.0) == pytest.approx(0.1)
        # The forecast is just the trace read ahead.
        assert wl.forecast_rate(5.0, 10.0) == wl.rate_at(15.0)

    def test_scaled_keeps_shape(self):
        wl = two_periods().scaled(2.0)
        assert [p.n_arrivals for p in wl.periods] == [10, 4]
        assert wl.duration_s == 30.0


# ----------------------------------------------------------------------
# Determinism + replay (satellite 4)
# ----------------------------------------------------------------------
class TestDeterminism:
    @pytest.mark.parametrize("generator", [
        diurnal_workload, bursty_workload, multi_tenant_workload,
        zipfian_workload])
    def test_same_seed_same_trace_bytes(self, generator):
        assert generator(seed=7).to_json() == generator(seed=7).to_json()

    @pytest.mark.parametrize("generator", [
        diurnal_workload, bursty_workload, multi_tenant_workload,
        zipfian_workload])
    def test_different_seed_different_trace(self, generator):
        assert generator(seed=1).to_json() != generator(seed=2).to_json()

    def test_materialize_deterministic_per_seed(self, finsec_bundle):
        wl = diurnal_workload(n_periods=6, period_s=10.0, seed=3)
        queries = finsec_bundle.queries
        a = wl.materialize(queries, seed=5)
        b = wl.materialize(queries, seed=5)
        assert [x.time for x in a] == [x.time for x in b]
        assert [x.query.query_id for x in a] == [x.query.query_id for x in b]
        c = wl.materialize(queries, seed=6)
        assert [x.time for x in a] != [x.time for x in c]

    def test_roundtrip_byte_identical(self, tmp_path):
        wl = bursty_workload(n_periods=12, seed=9)
        path = tmp_path / "trace.json"
        wl.save(path)
        loaded = Workload.load(path)
        assert loaded == wl
        assert loaded.to_json() == wl.to_json()
        # Replay through materialize is byte-identical too.
        assert ([a.time for a in loaded.materialize([_q()], seed=1)]
                == [a.time for a in wl.materialize([_q()], seed=1)])

    def test_make_workload_resolves_paths_and_names(self, tmp_path):
        wl = diurnal_workload(n_periods=4, seed=2)
        path = tmp_path / "day.json"
        wl.save(path)
        assert make_workload(str(path)) == wl
        assert make_workload(wl) is wl
        for name in WORKLOAD_NAMES:
            assert make_workload(name, seed=0).n_periods > 0


# ----------------------------------------------------------------------
# Materialization semantics
# ----------------------------------------------------------------------
def _q(qid="q0"):
    bundle = build_dataset("finsec", n_queries=1)
    from dataclasses import replace
    return replace(bundle.queries[0], query_id=qid)


class TestMaterialize:
    def test_times_sorted_within_trace_bounds(self):
        wl = two_periods()
        arrivals = wl.materialize([_q()], seed=0)
        times = [a.time for a in arrivals]
        assert len(times) == wl.total_arrivals
        assert times == sorted(times)
        assert all(0.0 <= t <= wl.duration_s for t in times)

    def test_period_counts_respected(self):
        wl = two_periods()
        times = [a.time for a in wl.materialize([_q()], seed=0)]
        assert sum(1 for t in times if t < 10.0) == 5
        assert sum(1 for t in times if t >= 10.0) == 2

    def test_cycled_queries_get_unique_ids(self):
        wl = two_periods()  # 7 arrivals from a pool of 2
        pool = [_q("qa"), _q("qb")]
        arrivals = wl.materialize(pool, seed=0)
        ids = [a.query.query_id for a in arrivals]
        assert len(set(ids)) == len(ids)
        assert ids[0] == "qa" and ids[1] == "qb"
        assert ids[2] == "qa#r1"


# ----------------------------------------------------------------------
# Zipfian workload + the per-arrival query mix
# ----------------------------------------------------------------------
class TestZipfianWorkload:
    def test_registered_generator(self):
        assert "zipf" in WORKLOAD_NAMES
        wl = make_workload("zipf", seed=0)
        assert wl.name == "zipf"

    def test_mix_covers_every_arrival(self):
        wl = zipfian_workload(seed=0, pool_size=10)
        assert len(wl.query_mix) == wl.total_arrivals
        assert all(0 <= i < 10 for i in wl.query_mix)

    def test_head_is_skewed(self):
        """Zipf s>1: the most popular pool index dominates a uniform
        share by a wide margin."""
        wl = zipfian_workload(seed=0, pool_size=20, zipf_s=1.1)
        counts = [wl.query_mix.count(i) for i in range(20)]
        assert max(counts) > 3 * (wl.total_arrivals / 20)
        assert counts.index(max(counts)) == 0  # rank 0 is the head

    def test_json_roundtrip_preserves_mix(self, tmp_path):
        wl = zipfian_workload(seed=4, pool_size=8)
        path = tmp_path / "zipf.json"
        wl.save(path)
        back = Workload.load(path)
        assert back.query_mix == wl.query_mix
        assert back.to_json() == wl.to_json()

    def test_mixless_traces_omit_the_key(self):
        """Byte-stability: traces without a mix serialize exactly as
        before the field existed."""
        assert '"query_mix"' not in diurnal_workload(seed=0).to_json()
        assert '"query_mix"' in zipfian_workload(seed=0).to_json()

    def test_scaled_preserves_mix(self):
        wl = zipfian_workload(seed=0, pool_size=10)
        assert wl.scaled(2.0).query_mix == wl.query_mix

    def test_materialize_follows_mix_with_unique_ids(self):
        wl = Workload(periods=(
            WorkloadPeriod(duration_s=10.0, n_arrivals=4, label="p"),
        ), name="mixed", query_mix=(1, 0, 1, 1))
        pool = [_q("qa"), _q("qb")]
        ids = [a.query.query_id
               for a in wl.materialize(pool, seed=0)]
        assert ids == ["qb", "qa", "qb#r1", "qb#r2"]

    def test_mix_validated(self):
        with pytest.raises(ValueError):
            Workload(periods=(
                WorkloadPeriod(duration_s=10.0, n_arrivals=1, label="p"),
            ), name="bad", query_mix=(-1,))


# ----------------------------------------------------------------------
# sustained_rate (satellite 1: the capacity-planning fix)
# ----------------------------------------------------------------------
class TestSustainedRate:
    def test_pass_after_miss_does_not_count(self):
        # The exact bug: a pass at 3.0 qps after the miss at 1.5 must
        # not inflate the result (max(...) reported 3.0 here).
        outcomes = [(0.5, True), (1.0, True), (1.5, False), (3.0, True)]
        assert sustained_rate(outcomes) == 1.0

    def test_all_pass(self):
        assert sustained_rate([(1.0, True), (2.0, True)]) == 2.0

    def test_first_miss(self):
        assert sustained_rate([(0.5, False), (1.0, True)]) == 0.0

    def test_empty(self):
        assert sustained_rate([]) == 0.0

    def test_unsorted_sweep_rejected(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            sustained_rate([(2.0, True), (1.0, True)])
        with pytest.raises(ValueError, match="strictly increasing"):
            sustained_rate([(1.0, True), (1.0, False)])
