"""Unit tests for inference requests and scheduling policies."""

import pytest

from repro.serving.policies import AppAwarePolicy, FCFSPolicy, make_policy
from repro.serving.request import InferenceRequest, RequestPhase


def req(prompt=100, out=10, t=0.0, app="a", stage=0, prio=0):
    return InferenceRequest(prompt_tokens=prompt, output_tokens=out,
                            arrival_time=t, app_id=app, stage=stage,
                            priority=prio)


class TestInferenceRequest:
    def test_initial_phase(self):
        r = req()
        assert r.phase is RequestPhase.WAITING
        assert r.total_tokens == 110
        assert r.remaining_prefill == 100
        assert r.remaining_decode == 10
        assert r.remaining_work_tokens == 110

    def test_kv_tokens_track_progress(self):
        r = req()
        r.prefilled_tokens = 60
        r.decoded_tokens = 3
        assert r.kv_tokens_in_use == 63
        assert r.remaining_prefill == 40

    def test_delays(self):
        r = req(t=5.0)
        assert r.queueing_delay == 0.0
        r.admitted_time = 7.0
        r.finish_time = 12.0
        assert r.queueing_delay == pytest.approx(2.0)
        assert r.e2e_delay == pytest.approx(7.0)

    def test_unique_ids(self):
        assert req().request_id != req().request_id

    def test_validation(self):
        with pytest.raises(ValueError):
            req(prompt=0)
        with pytest.raises(ValueError):
            req(out=0)
        with pytest.raises(ValueError):
            req(t=-1.0)


class TestFCFSPolicy:
    def test_orders_by_arrival(self):
        a, b, c = req(t=3), req(t=1), req(t=2)
        assert FCFSPolicy().order([a, b, c], []) == [b, c, a]

    def test_priority_first(self):
        low = req(t=0, prio=1)
        high = req(t=5, prio=0)
        assert FCFSPolicy().order([low, high], []) == [high, low]

    def test_does_not_mutate(self):
        waiting = [req(t=2), req(t=1)]
        FCFSPolicy().order(waiting, [])
        assert waiting[0].arrival_time == 2


class TestAppAwarePolicy:
    def test_least_remaining_work_first(self):
        small = req(prompt=100, app="small", t=1.0)
        big = req(prompt=10_000, app="big", t=0.0)
        ordered = AppAwarePolicy().order([big, small], [])
        assert ordered[0] is small

    def test_running_work_counts_toward_app(self):
        # app "x" has a huge call running, so its waiting call ranks
        # behind app "y" despite arriving earlier.
        running = req(prompt=50_000, app="x", t=0.0)
        waiting_x = req(prompt=100, app="x", t=0.0)
        waiting_y = req(prompt=100, app="y", t=1.0)
        ordered = AppAwarePolicy().order([waiting_x, waiting_y], [running])
        assert ordered[0] is waiting_y

    def test_same_app_calls_stay_contiguous(self):
        a1 = req(prompt=100, app="a", t=0.0, stage=0)
        a2 = req(prompt=100, app="a", t=0.0, stage=1)
        b = req(prompt=150, app="b", t=0.5)
        ordered = AppAwarePolicy().order([a1, b, a2], [])
        positions = {id(r): i for i, r in enumerate(ordered)}
        assert abs(positions[id(a1)] - positions[id(a2)]) == 1


class TestMakePolicy:
    def test_known_names(self):
        assert isinstance(make_policy("fcfs"), FCFSPolicy)
        assert isinstance(make_policy("app-aware"), AppAwarePolicy)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="app-aware"):
            make_policy("lifo")
