"""Unit + property tests for the roofline and API latency models."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.llm import A40, ApiLatencyModel, ClusterSpec, MISTRAL_7B_AWQ
from repro.llm.costs import RooflineCostModel

cost = RooflineCostModel(MISTRAL_7B_AWQ, ClusterSpec(A40))


class TestPrefill:
    def test_zero_tokens_is_free(self):
        assert cost.prefill_seconds(0) == 0.0

    def test_linear_in_tokens(self):
        t1 = cost.prefill_seconds(1_000)
        t2 = cost.prefill_seconds(2_000)
        assert t2 == pytest.approx(2 * t1)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            cost.prefill_seconds(-1)

    @given(st.integers(min_value=0, max_value=100_000),
           st.integers(min_value=0, max_value=100_000))
    def test_monotone_in_tokens(self, a, b):
        lo, hi = sorted((a, b))
        assert cost.prefill_seconds(lo) <= cost.prefill_seconds(hi)

    def test_throughput_inverse(self):
        tput = cost.prefill_throughput_tokens_per_s()
        assert cost.prefill_seconds(int(tput)) == pytest.approx(1.0, rel=0.01)


class TestDecode:
    def test_no_sequences_is_free(self):
        assert cost.decode_step_seconds(0, 0) == 0.0

    def test_weights_floor(self):
        # Even with an empty KV cache, decoding reads the full weights.
        floor = MISTRAL_7B_AWQ.weight_bytes / ClusterSpec(A40).mem_bandwidth
        assert cost.decode_step_seconds(0, 1) >= floor

    def test_monotone_in_kv(self):
        assert (cost.decode_step_seconds(1_000, 4)
                < cost.decode_step_seconds(100_000, 4))

    def test_monotone_in_seqs(self):
        assert (cost.decode_step_seconds(10_000, 1)
                < cost.decode_step_seconds(10_000, 32))


class TestIteration:
    def test_empty_iteration_is_free(self):
        assert cost.iteration_seconds(0, 0, 0) == 0.0

    def test_mixed_iteration_adds_overhead(self):
        parts = cost.prefill_seconds(512) + cost.decode_step_seconds(5_000, 4)
        assert cost.iteration_seconds(512, 5_000, 4) == pytest.approx(
            parts + cost.step_overhead_s
        )

    @given(st.integers(min_value=0, max_value=8_192),
           st.integers(min_value=0, max_value=200_000),
           st.integers(min_value=0, max_value=64))
    def test_iteration_non_negative(self, prefill, kv, seqs):
        assert cost.iteration_seconds(prefill, kv, seqs) >= 0.0


class TestApiLatency:
    def test_base_latency_floor(self):
        api = ApiLatencyModel()
        assert api.call_seconds(0, 0) == pytest.approx(api.base_latency_s)

    def test_monotone_in_both_token_counts(self):
        api = ApiLatencyModel()
        assert api.call_seconds(100, 10) < api.call_seconds(1_000, 10)
        assert api.call_seconds(100, 10) < api.call_seconds(100, 100)

    def test_output_dominates_input_per_token(self):
        api = ApiLatencyModel()
        d_in = api.call_seconds(101, 10) - api.call_seconds(100, 10)
        d_out = api.call_seconds(100, 11) - api.call_seconds(100, 10)
        assert d_out > d_in

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ApiLatencyModel().call_seconds(-1, 0)
