"""Integration tests for the workload runner."""

import pytest

from repro.baselines import FixedConfigPolicy
from repro.config.knobs import RAGConfig, SynthesisMethod
from repro.data.workload import poisson_arrivals, sequential_arrivals
from repro.evaluation.runner import ExperimentRunner
from repro.experiments.common import make_metis


STUFF8 = RAGConfig(SynthesisMethod.STUFF, 8)
MR6 = RAGConfig(SynthesisMethod.MAP_REDUCE, 6, 100)


@pytest.fixture()
def runner(finsec_bundle, engine_config):
    return ExperimentRunner(finsec_bundle, engine_config, seed=0)


class TestOpenLoop:
    def test_every_query_gets_a_record(self, runner, finsec_bundle):
        arrivals = poisson_arrivals(finsec_bundle.queries, 1.5, seed=0)
        result = runner.run(FixedConfigPolicy(STUFF8), arrivals)
        assert len(result.records) == len(finsec_bundle.queries)
        assert {r.query_id for r in result.records} == {
            q.query_id for q in finsec_bundle.queries
        }

    def test_timestamps_ordered(self, runner, finsec_bundle):
        arrivals = poisson_arrivals(finsec_bundle.queries, 1.5, seed=0)
        result = runner.run(FixedConfigPolicy(STUFF8), arrivals)
        for r in result.records:
            assert r.arrival_time <= r.decision_time <= r.finish_time
            assert r.e2e_delay > 0

    def test_summary_fields(self, runner, finsec_bundle):
        arrivals = poisson_arrivals(finsec_bundle.queries, 1.5, seed=0)
        result = runner.run(FixedConfigPolicy(STUFF8), arrivals)
        s = result.summary()
        assert s["mean_delay_s"] > 0
        assert 0 < s["mean_f1"] < 1
        assert s["throughput_qps"] > 0
        assert result.delay_percentile(90) >= result.delay_percentile(50)

    def test_multi_stage_plans_execute(self, runner, finsec_bundle):
        arrivals = poisson_arrivals(finsec_bundle.queries[:10], 1.0, seed=0)
        result = runner.run(FixedConfigPolicy(MR6), arrivals)
        assert len(result.records) == 10
        # map_reduce prefills mappers + reduce: more prefill tokens than
        # a single stuff call would need.
        assert all(r.prefill_tokens > 6 * 900 for r in result.records)

    def test_deterministic(self, finsec_bundle, engine_config):
        arrivals = poisson_arrivals(finsec_bundle.queries, 1.5, seed=0)
        r1 = ExperimentRunner(finsec_bundle, engine_config, seed=0).run(
            FixedConfigPolicy(STUFF8), arrivals)
        r2 = ExperimentRunner(finsec_bundle, engine_config, seed=0).run(
            FixedConfigPolicy(STUFF8), arrivals)
        assert r1.mean_delay == r2.mean_delay
        assert r1.mean_f1 == r2.mean_f1

    def test_gpu_cost_charged(self, runner, finsec_bundle):
        arrivals = poisson_arrivals(finsec_bundle.queries[:10], 1.0, seed=0)
        result = runner.run(FixedConfigPolicy(STUFF8), arrivals)
        assert result.ledger.gpu_dollars > 0
        assert result.ledger.api_dollars == 0  # no profiler

    def test_empty_workload_rejected(self, runner):
        with pytest.raises(ValueError):
            runner.run(FixedConfigPolicy(STUFF8), [])


class TestClosedLoop:
    def test_sequential_serialises(self, runner, finsec_bundle):
        arrivals = sequential_arrivals(finsec_bundle.queries[:8])
        result = runner.run(FixedConfigPolicy(STUFF8), arrivals)
        assert len(result.records) == 8
        ordered = sorted(result.records, key=lambda r: r.arrival_time)
        for prev, nxt in zip(ordered, ordered[1:]):
            assert nxt.arrival_time >= prev.finish_time - 1e-9

    def test_sequential_has_no_queueing(self, runner, finsec_bundle):
        arrivals = sequential_arrivals(finsec_bundle.queries[:8])
        result = runner.run(FixedConfigPolicy(STUFF8), arrivals)
        assert all(r.queueing_delay < 0.5 for r in result.records)


class TestMetisThroughRunner:
    def test_metis_records_profiler_costs(self, runner, finsec_bundle):
        arrivals = poisson_arrivals(finsec_bundle.queries, 1.5, seed=0)
        result = runner.run(make_metis(finsec_bundle), arrivals)
        assert all(r.profiler_seconds > 0 for r in result.records)
        assert all(r.confidence is not None for r in result.records)
        assert result.ledger.api_dollars > 0
        assert result.mean_profiler_fraction > 0

    def test_chunk_clipping_flagged_for_oversized_stuff(
            self, finsec_bundle, engine_config):
        runner = ExperimentRunner(finsec_bundle, engine_config, seed=0)
        # 35 chunks * 1024 tokens > the 32k context: must clip.
        big = RAGConfig(SynthesisMethod.STUFF, 35)
        arrivals = poisson_arrivals(finsec_bundle.queries[:5], 0.5, seed=0)
        result = runner.run(FixedConfigPolicy(big), arrivals)
        assert any(r.chunks_clipped for r in result.records)
