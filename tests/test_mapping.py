"""Unit tests for Algorithm 1 (profile → pruned space)."""

import pytest

from repro.config.knobs import SynthesisMethod
from repro.core.mapping import MAX_NUM_CHUNKS, map_profile_to_space
from repro.core.profiles import QueryProfile


def profile(joint=True, high=True, pieces=3, summary=(60, 120)):
    return QueryProfile(complexity_high=high, joint_reasoning=joint,
                        pieces=pieces, summary_range=summary,
                        confidence=0.95)


class TestAlgorithm1:
    def test_no_joint_maps_to_map_rerank(self):
        space = map_profile_to_space(profile(joint=False))
        assert space.methods == (SynthesisMethod.MAP_RERANK,)

    def test_joint_low_complexity_maps_to_stuff(self):
        space = map_profile_to_space(profile(joint=True, high=False))
        assert space.methods == (SynthesisMethod.STUFF,)

    def test_joint_high_complexity_maps_to_both(self):
        space = map_profile_to_space(profile(joint=True, high=True))
        assert space.methods == (SynthesisMethod.STUFF,
                                 SynthesisMethod.MAP_REDUCE)

    def test_chunks_range_is_pieces_to_3x(self):
        space = map_profile_to_space(profile(pieces=4))
        assert space.num_chunks_range == (4, 12)

    def test_chunk_slack_parameter(self):
        space = map_profile_to_space(profile(pieces=4), chunk_slack=2.0)
        assert space.num_chunks_range == (4, 8)

    def test_chunks_capped(self):
        space = map_profile_to_space(profile(pieces=10))
        assert space.num_chunks_range[1] <= MAX_NUM_CHUNKS

    def test_summary_range_passthrough(self):
        space = map_profile_to_space(profile(summary=(70, 140)))
        assert space.intermediate_length_range == (70, 140)

    def test_summary_range_clamped(self):
        space = map_profile_to_space(profile(summary=(5, 900)))
        lo, hi = space.intermediate_length_range
        assert lo >= 20
        assert hi <= 200

    def test_invalid_slack_rejected(self):
        with pytest.raises(ValueError):
            map_profile_to_space(profile(), chunk_slack=0.5)

    def test_pruning_reduces_space(self):
        space = map_profile_to_space(profile(pieces=2))
        # Paper: 50-100x reduction; at pieces=2 the pruned space is
        # tiny relative to the full grid.
        assert space.reduction_factor() > 3.0

    def test_ilen_steps_forwarded(self):
        space = map_profile_to_space(profile(), ilen_steps=2)
        assert space.ilen_steps == 2
