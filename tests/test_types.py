"""Unit tests for dataset-facing types (QueryTruth, Query, DatasetBundle)."""

import pytest

from repro.data.types import Query, QueryTruth


def make_truth(**overrides):
    fields = dict(
        complexity_high=False,
        joint_reasoning=True,
        required_fact_ids=("f1", "f2"),
        summary_range=(40, 80),
        answer_template_tokens=("the", "answer", "is"),
    )
    fields.update(overrides)
    return QueryTruth(**fields)


class TestQueryTruth:
    def test_pieces_counts_facts(self):
        assert make_truth().pieces_of_information == 2

    def test_requires_facts(self):
        with pytest.raises(ValueError, match="at least one fact"):
            make_truth(required_fact_ids=())

    def test_rejects_bad_summary_range(self):
        with pytest.raises(ValueError):
            make_truth(summary_range=(80, 40))
        with pytest.raises(ValueError):
            make_truth(summary_range=(0, 40))


class TestQuery:
    def test_validation(self):
        with pytest.raises(ValueError):
            Query(query_id="q", text="x", n_tokens=0, truth=make_truth(),
                  answer_tokens_estimate=5)
        with pytest.raises(ValueError):
            Query(query_id="q", text="x", n_tokens=3, truth=make_truth(),
                  answer_tokens_estimate=0)


class TestDatasetBundle:
    def test_query_by_id(self, finsec_bundle):
        q = finsec_bundle.queries[3]
        assert finsec_bundle.query_by_id(q.query_id) is q

    def test_query_by_id_unknown(self, finsec_bundle):
        with pytest.raises(KeyError):
            finsec_bundle.query_by_id("missing-q")

    def test_relevant_chunk_ids_hold_required_facts(self, finsec_bundle):
        q = finsec_bundle.queries[0]
        relevant = finsec_bundle.relevant_chunk_ids(q)
        assert relevant
        needed = set(q.truth.required_fact_ids)
        for chunk_id in relevant:
            assert needed & set(finsec_bundle.chunk_facts[chunk_id])

    def test_synthesis_context_preserves_rank_order(self, finsec_bundle):
        q = finsec_bundle.queries[0]
        hits = finsec_bundle.store.search(q.text, 5)
        chunk_ids = [h.chunk.chunk_id for h in hits]
        ctx = finsec_bundle.synthesis_context(q, chunk_ids)
        assert [c.chunk_id for c in ctx.chunks] == chunk_ids

    def test_synthesis_context_only_required_facts(self, finsec_bundle):
        q = finsec_bundle.queries[0]
        hits = finsec_bundle.store.search(q.text, 8)
        ctx = finsec_bundle.synthesis_context(
            q, [h.chunk.chunk_id for h in hits]
        )
        needed = set(q.truth.required_fact_ids)
        for chunk in ctx.chunks:
            for fact in chunk.facts:
                assert fact.fact_id in needed

    def test_ground_truth_includes_template_and_values(self, finsec_bundle):
        q = finsec_bundle.queries[0]
        ctx = finsec_bundle.synthesis_context(q, [])
        gt = ctx.ground_truth_tokens()
        assert gt[: len(q.truth.answer_template_tokens)] == \
            q.truth.answer_template_tokens
        assert len(gt) > len(q.truth.answer_template_tokens)

    def test_table1_row_keys(self, finsec_bundle):
        row = finsec_bundle.table1_row()
        assert set(row) == {"input_p10", "input_p90",
                            "output_p10", "output_p90"}
        assert row["input_p10"] <= row["input_p90"]
        assert row["output_p10"] <= row["output_p90"]
