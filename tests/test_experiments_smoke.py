"""Smoke tests: every experiment driver runs in fast mode and produces
rows with the expected schema. These are the integration tests for the
benchmark harness itself.
"""

import pytest

from repro.experiments import (
    fig4_knobs,
    fig5_per_query,
    fig9_confidence,
    fig12_breakdown,
    fig16_incremental,
    fig18_overhead,
    fig19_lowload,
    table1,
)

# fig10/11/13/14/15/17 are exercised (more cheaply) via their building
# blocks in test_integration_metis.py and the benchmarks; running all
# of them here would double CI time for no new coverage.


@pytest.mark.parametrize("driver,required_columns", [
    (table1, {"dataset", "input_range", "output_range"}),
    (fig4_knobs, {"panel", "query", "knob", "delay_s", "f1"}),
    (fig9_confidence, {"dataset", "frac_above_threshold"}),
    (fig18_overhead, {"dataset", "mean_fraction", "max_fraction"}),
])
def test_light_drivers(driver, required_columns):
    report = driver.run(fast=True)
    assert report.rows
    assert required_columns.issubset(report.rows[0].keys())
    assert report.format()  # renders without error


@pytest.mark.slow
def test_fig5_fast():
    report = fig5_per_query.run(fast=True)
    kinds = {r["kind"] for r in report.rows}
    assert {"fixed-pareto", "per-query-oracle"} <= kinds


@pytest.mark.slow
def test_fig12_fast():
    report = fig12_breakdown.run(fast=True)
    systems = {r["system"] for r in report.rows}
    assert any("METIS" in s for s in systems)
    assert len(report.rows) == 8  # 4 bars x 2 datasets


@pytest.mark.slow
def test_fig16_fast():
    report = fig16_incremental.run(fast=True)
    assert len(report.rows) == 5  # fixed + 4 incremental steps


@pytest.mark.tier2
def test_fig11_replica_sweep_fast():
    """Acceptance bar: the sweep's fixed-work system scales aggregate
    throughput >= 1.8x from 1 -> 2 replicas under saturating load."""
    from repro.experiments import fig11_throughput

    report = fig11_throughput.run_replica_sweep(fast=True, replicas=(1, 2))
    tp = {(r["system"], r["replicas"]): r["throughput_qps"]
          for r in report.rows}
    ratio = tp[("vLLM(fixed)", 2)] / tp[("vLLM(fixed)", 1)]
    assert ratio >= 1.8, f"1->2 replica throughput scaling only {ratio:.2f}x"
    # METIS trades some of the scaling for quality; it must still gain.
    assert tp[("METIS", 2)] > tp[("METIS", 1)]
    assert any("1→2 replicas" in note for note in report.notes)


@pytest.mark.tier2
def test_fig11_hetero_fast():
    """Acceptance bar: on a 1.0x/0.5x two-replica fleet, the load-aware
    least-outstanding router sends measurably more queries to the fast
    replica than round-robin's even split (ISSUE 3 criterion)."""
    from repro.experiments import fig11_hetero

    report = fig11_hetero.run(fast=True)
    share = {(r["system"], r["router"]): r["fast_replica_share"]
             for r in report.rows}
    rr = share[("vLLM(fixed)", "round-robin")]
    lo = share[("vLLM(fixed)", "least-outstanding")]
    assert rr == pytest.approx(0.5, abs=0.05)  # load-blind: even split
    assert lo > rr + 0.05, (
        f"least-outstanding fast share {lo:.2f} not measurably above "
        f"round-robin's {rr:.2f}"
    )
    # Load-awareness must buy throughput, not just skew placement.
    tp = {(r["system"], r["router"]): r["throughput_qps"]
          for r in report.rows}
    assert tp[("vLLM(fixed)", "least-outstanding")] > \
        tp[("vLLM(fixed)", "round-robin")]
    assert report.notes


def test_fig_retrieval_scaling_fast():
    """Acceptance bar (ISSUE 4): sweeping K shards shows per-shard
    queue delay falling and gather overhead rising, with the pinned
    headline — scaling turns over at K=8, so K=4 is the optimum (the
    shard count past which gather/rerank overhead exceeds the
    per-shard search savings)."""
    from repro.experiments import fig_retrieval_scaling

    report = fig_retrieval_scaling.run(fast=True)
    swept = [r for r in report.rows if r["reranker"] == "off"]
    assert [r["shards"] for r in swept] == [1, 2, 4, 8]

    queue = [r["mean_shard_queue_delay_s"] for r in swept]
    gather = [r["mean_gather_s"] for r in swept]
    assert all(a > b for a, b in zip(queue, queue[1:])), queue
    assert all(a < b for a, b in zip(gather, gather[1:])), gather

    # Pinned headline: the curve bottoms at K=4 and turns over at K=8.
    retrieval = {r["shards"]: r["mean_retrieval_s"] for r in swept}
    assert min(retrieval, key=retrieval.get) == 4
    assert retrieval[8] > retrieval[4]
    assert any("turnover at K=8" in note for note in report.notes)
    assert any("best shard count K=4" in note for note in report.notes)

    # Sharding must not move quality (exact index, gather-correct).
    assert len({round(r["mean_f1"], 9) for r in report.rows}) == 1
    # The reranker comparison row prices its overhead at the optimum.
    reranked = [r for r in report.rows if r["reranker"] == "exact"]
    assert len(reranked) == 1 and reranked[0]["shards"] == 4
    assert reranked[0]["mean_rerank_s"] > 0


def test_fig_speculation_fast():
    """Acceptance bar (ISSUE 5): on the 1.0x/0.5x fleet, speculative
    hedging cuts p99 below the no-speculation baseline at a bounded
    wasted-work fraction, and the deadline-risk policy is far more
    selective than the aggressive hedge timer."""
    from repro.experiments import fig_speculation

    report = fig_speculation.run(fast=True)
    rows = {r["speculation"]: r for r in report.rows}
    assert set(rows) == {"none", "hedge@2s", "hedge@3s", "hedge@5s",
                         "deadline-risk"}

    base = rows["none"]
    assert base["hedge_rate"] == 0.0
    assert base["wasted_work_fraction"] == 0.0
    assert base["speculation_dollars"] == 0.0

    hedged = [rows[k] for k in rows if k != "none"]
    # Pinned headline: every hedging row beats the baseline tail...
    for row in hedged:
        assert row["p99_delay_s"] < base["p99_delay_s"], row["speculation"]
        # ...with bounded duplicate cost (the vs-cost axis).
        assert 0.0 < row["wasted_work_fraction"] < 0.35
        assert row["requests_cancelled"] > 0
        assert 0.0 < row["speculation_dollars"] < row["total_dollars"]

    # Earlier timers hedge (and waste) more than later ones.
    assert rows["hedge@2s"]["hedge_rate"] > rows["hedge@5s"]["hedge_rate"]
    assert (rows["hedge@2s"]["wasted_work_fraction"]
            > rows["hedge@5s"]["wasted_work_fraction"])
    # Risk-gating: far fewer hedges than the aggressive timer, and no
    # worse SLO attainment than the baseline.
    assert (rows["deadline-risk"]["hedge_rate"]
            < 0.6 * rows["hedge@2s"]["hedge_rate"])
    assert (rows["deadline-risk"]["slo_attainment"]
            >= base["slo_attainment"])
    assert len(report.notes) == 2


def test_fig_cache_fast():
    """Acceptance bar (ISSUE 7): on the Zipf repeat-heavy trace the
    exact result cache reaches >=30% hit rate while cutting mean delay
    (and $/query) by >=25% vs no-cache, the quality delta is reported
    per arm, semantic matching's hit rate is at least exact's, and the
    squeezed-capacity arm actually evicts."""
    from repro.experiments import fig_cache

    report = fig_cache.run(fast=True)
    rows = {r["cache"]: r for r in report.rows}
    base = rows["no-cache"]
    exact = rows["exact/lru"]
    assert base["hit_rate"] == 0 and base["queries"] > 0
    # Every arm served the whole trace.
    assert len({r["queries"] for r in report.rows}) == 1

    # Headline: >=30% hits, >=25% mean-delay and $/query reduction.
    assert exact["hit_rate"] >= 0.3
    assert exact["mean_delay_s"] <= 0.75 * base["mean_delay_s"]
    assert (exact["dollars_per_query"]
            <= 0.75 * base["dollars_per_query"])
    assert exact["saved_dollars"] > 0

    # The quality delta is reported on every arm, and exact repeats
    # re-score against their own ground truth (tiny |delta|).
    assert all("delta_f1" in r for r in report.rows)
    assert abs(exact["delta_f1"]) < 0.05

    # Semantic matching can only add hits on top of exact keys; its
    # quality delta is the price and must be visible (reported).
    semantic = rows["semantic"]
    assert semantic["hit_rate"] >= exact["hit_rate"]

    # The squeezed cache evicts (policy choice is exercised), the
    # roomy ones never need to.
    assert rows["exact/gdsf cap=8"]["evictions"] > 0
    assert exact["evictions"] == 0

    # The retrieval tier alone hits but leaves quality untouched.
    retrieval = rows["retrieval-only"]
    assert retrieval["hit_rate"] >= 0.3
    assert retrieval["delta_f1"] == pytest.approx(0.0)
    assert len(report.notes) == 3


def test_fig_autoscale_fast():
    """Acceptance bar (ISSUE 6): across a compressed diurnal day, the
    forecast autoscaler matches the static-peak fleet's SLO attainment
    within 2 points at measurably lower $/query, static-1 is cheapest
    but drops queries at the peak, and only the elastic arms actually
    scale."""
    from repro.experiments import fig_autoscale

    report = fig_autoscale.run(fast=True)
    rows = {r["fleet"]: r for r in report.rows}
    assert set(rows) == {"static-1", "static-3", "reactive", "forecast"}

    static_1, static_3 = rows["static-1"], rows["static-3"]
    reactive, forecast = rows["reactive"], rows["forecast"]
    # Every arm served the whole trace.
    assert len({r["queries"] for r in report.rows}) == 1
    assert static_1["queries"] > 0

    # Headline: forecast attainment within 2 points of the peak-sized
    # static fleet, at measurably lower cost per query.
    assert forecast["slo_attainment"] >= static_3["slo_attainment"] - 0.02
    assert forecast["dollars_per_query"] < 0.85 * static_3["dollars_per_query"]

    # static-1 is the cheap-but-broken corner: lowest $/query, worst
    # attainment (the midday peak exceeds one replica's capacity).
    assert static_1["dollars_per_query"] == min(
        r["dollars_per_query"] for r in report.rows)
    assert static_1["slo_attainment"] < static_3["slo_attainment"]
    assert static_1["n_replicas_peak"] == 1

    # Static fleets never scale; elastic arms both grow and unwind.
    for row in (static_1, static_3):
        assert row["scale_ups"] == 0 and row["retires"] == 0
    for row in (reactive, forecast):
        assert row["scale_ups"] > 0
        assert row["retires"] > 0
        assert row["n_replicas_peak"] > 1
    # Tracking the diurnal shape wastes less capacity than paying for
    # the peak all day.
    assert forecast["idle_fraction"] < static_3["idle_fraction"]
    assert len(report.notes) == 3


@pytest.mark.slow
def test_fig19_fast():
    report = fig19_lowload.run(fast=True)
    assert len(report.rows) == 4  # 2 systems x 2 datasets
    assert report.notes


class TestTable1Content:
    def test_matches_paper_shape(self):
        report = table1.run(fast=True)
        by_dataset = {r["dataset"]: r for r in report.rows}
        assert set(by_dataset) == {"squad", "musique", "finsec", "qmsum"}
        # Doc-level datasets have longer inputs than single-hop.
        def lo(name):
            return float(by_dataset[name]["input_range"].split(" - ")[0])
        assert lo("finsec") > lo("squad")
        assert lo("qmsum") > lo("musique")


class TestFig9Calibration:
    def test_threshold_separates(self):
        report = fig9_confidence.run(fast=True)
        for row in report.rows:
            assert row["frac_above_threshold"] > 0.8
            assert row["good_given_above"] > 0.9


def test_fig_quality_fast():
    """Acceptance bar (ISSUE 10): the decomposed metrics make each
    subsystem's quality trade visible — ivf moves faithfulness and
    context recall vs flat (nonzero deltas), exact cache hits replay
    the served context (recall delta exactly zero) while semantic hits
    pay a large recall delta for hit rate, and the quality-SLO arm
    clears its context-recall threshold at strictly lower $/query than
    unconstrained METIS."""
    from repro.experiments import fig_quality

    report = fig_quality.run(fast=True)
    rows = {(r["axis"], r["arm"]): r for r in report.rows}
    assert len(rows) == 8

    # Every arm was scored: the four metrics are real numbers.
    for r in report.rows:
        for metric in ("faithfulness", "relevancy", "precision",
                       "recall"):
            assert 0.0 <= r[metric] <= 1.0, (r["axis"], r["arm"], metric)

    # Retrieval axis: approximate search is visible on the decomposed
    # axes (direction is measured, not assumed — only nonzero is
    # pinned), and exact reranking never lowers recall below ivf's.
    ivf = rows[("retrieval", "ivf")]
    assert ivf["d_faithfulness"] != 0.0
    assert ivf["d_recall"] != 0.0
    rerank = rows[("retrieval", "ivf+rerank")]
    assert rerank["recall"] >= ivf["recall"]

    # Cache axis: exact hits re-serve the original context, so the
    # context-recall delta vanishes (per-record bit-equality is pinned
    # in test_metrics.py; the aggregate sees only summation-order
    # float dust because hit timing reorders completions); semantic
    # hits serve a neighbour's answer and pay a large recall delta.
    exact = rows[("cache", "exact")]
    assert exact["hit_rate"] >= 0.3
    assert abs(exact["d_recall"]) < 1e-12
    semantic = rows[("cache", "semantic")]
    assert semantic["hit_rate"] >= exact["hit_rate"]
    assert semantic["d_recall"] < -0.05
    assert semantic["d_faithfulness"] != 0.0

    # SLO axis: threshold-gated min cost clears the bar for less.
    metis = rows[("slo", "metis")]
    slo = next(r for (axis, arm), r in rows.items()
               if axis == "slo" and arm != "metis")
    assert slo["recall"] >= 0.7          # zero shortfall at the mean
    assert slo["dollars_per_query"] < metis["dollars_per_query"]
    assert len(report.notes) == 3
