"""Unit + property tests for Pareto-frontier utilities."""

from hypothesis import given
from hypothesis import strategies as st

from repro.evaluation.pareto import ParetoPoint, dominates, pareto_frontier

points = st.lists(
    st.builds(
        ParetoPoint,
        delay=st.floats(min_value=0, max_value=100, allow_nan=False),
        quality=st.floats(min_value=0, max_value=1, allow_nan=False),
    ),
    min_size=1,
    max_size=40,
)


class TestDominates:
    def test_strictly_better_dominates(self):
        assert dominates(ParetoPoint(1, 0.9), ParetoPoint(2, 0.5))

    def test_equal_does_not_dominate(self):
        p = ParetoPoint(1, 0.5)
        assert not dominates(p, ParetoPoint(1, 0.5))

    def test_tradeoff_does_not_dominate(self):
        assert not dominates(ParetoPoint(1, 0.4), ParetoPoint(2, 0.6))
        assert not dominates(ParetoPoint(2, 0.6), ParetoPoint(1, 0.4))


class TestFrontier:
    def test_single_point(self):
        pts = [ParetoPoint(1, 0.5)]
        assert pareto_frontier(pts) == pts

    def test_dominated_point_removed(self):
        good = ParetoPoint(1, 0.9)
        bad = ParetoPoint(2, 0.5)
        assert pareto_frontier([bad, good]) == [good]

    def test_sorted_by_delay(self):
        frontier = pareto_frontier(
            [ParetoPoint(3, 0.9), ParetoPoint(1, 0.3), ParetoPoint(2, 0.6)]
        )
        delays = [p.delay for p in frontier]
        assert delays == sorted(delays)

    @given(points)
    def test_no_frontier_point_dominated(self, pts):
        frontier = pareto_frontier(pts)
        for a in frontier:
            assert not any(dominates(b, a) for b in pts)

    @given(points)
    def test_every_point_dominated_or_on_frontier(self, pts):
        frontier = pareto_frontier(pts)
        frontier_set = {(p.delay, p.quality) for p in frontier}
        for p in pts:
            on_frontier = (p.delay, p.quality) in frontier_set
            dominated = any(dominates(f, p) for f in frontier)
            assert on_frontier or dominated

    @given(points)
    def test_quality_increases_along_frontier(self, pts):
        frontier = pareto_frontier(pts)
        qualities = [p.quality for p in frontier]
        assert qualities == sorted(qualities)
