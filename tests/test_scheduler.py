"""Unit tests for the joint configuration/scheduling best-fit (§4.3)."""

import dataclasses

import pytest

from repro.config.knobs import RAGConfig, SynthesisMethod
from repro.config.space import PrunedSpace
from repro.core.policy import ClusterSchedulingView, SchedulingView
from repro.core.scheduler import JointScheduler
from repro.synthesis import make_synthesizer

KV_BYTES = 131_072  # Mistral-7B per token
CHUNK_TOKENS = 500
QUERY_TOKENS = 30
ANSWER_TOKENS = 20


def make_view(available_tokens: float) -> SchedulingView:
    def estimate(config: RAGConfig):
        synthesizer = make_synthesizer(config.synthesis_method)
        return synthesizer.build_plan(
            query_id="est", query_tokens=QUERY_TOKENS,
            chunk_tokens=[CHUNK_TOKENS] * config.num_chunks,
            answer_tokens=ANSWER_TOKENS, config=config,
        )

    return SchedulingView(
        now=0.0,
        free_kv_bytes=available_tokens * KV_BYTES,
        available_kv_bytes=available_tokens * KV_BYTES,
        kv_bytes_per_token=KV_BYTES,
        chunk_tokens=CHUNK_TOKENS,
        query_tokens=QUERY_TOKENS,
        answer_tokens=ANSWER_TOKENS,
        estimate_plan=estimate,
    )


def space(methods=(SynthesisMethod.STUFF,), chunks=(2, 6), ilen=(50, 150)):
    return PrunedSpace(methods=methods, num_chunks_range=chunks,
                       intermediate_length_range=ilen)


scheduler = JointScheduler()


class TestBestFit:
    def test_ample_memory_picks_most_expensive(self):
        decision = scheduler.choose(space(), make_view(1_000_000))
        assert decision.config.num_chunks == 6
        assert not decision.fell_back

    def test_scarce_memory_throttles_num_chunks(self):
        # ~2.1k tokens available: fits stuff k<=3 (3*500 + overhead).
        decision = scheduler.choose(space(), make_view(2_100))
        assert decision.config.num_chunks < 6
        assert not decision.fell_back

    def test_picks_highest_cost_fitting(self):
        ample = scheduler.choose(space(), make_view(1_000_000))
        tight = scheduler.choose(space(), make_view(2_100))
        assert tight.footprint.cost_tokens < ample.footprint.cost_tokens

    def test_fig8_unit_fit_prefers_map_reduce(self):
        """When no whole plan fits, map_reduce's small mappers still do."""
        both = space(methods=(SynthesisMethod.STUFF,
                              SynthesisMethod.MAP_REDUCE),
                     chunks=(4, 6))
        # ~900 tokens: no whole plan fits (stuff k=4 needs ~2.1k, and
        # map_reduce's total is larger); a single mapper (~700) does.
        decision = scheduler.choose(both, make_view(900))
        assert not decision.fell_back
        assert decision.config.synthesis_method is SynthesisMethod.MAP_REDUCE

    def test_diagnostics_counts(self):
        decision = scheduler.choose(space(), make_view(1_000_000))
        assert decision.n_candidates == 5  # k in 2..6
        assert decision.n_fitting == 5


class TestFallback:
    def test_no_memory_falls_back(self):
        decision = scheduler.choose(space(), make_view(0))
        assert decision.fell_back

    def test_fallback_without_rerank_uses_stuff(self):
        decision = scheduler.choose(
            space(methods=(SynthesisMethod.STUFF, SynthesisMethod.MAP_REDUCE)),
            make_view(0),
        )
        assert decision.config.synthesis_method is SynthesisMethod.STUFF

    def test_fallback_with_rerank_uses_rerank(self):
        decision = scheduler.choose(
            space(methods=(SynthesisMethod.MAP_RERANK,)), make_view(0)
        )
        assert decision.config.synthesis_method is SynthesisMethod.MAP_RERANK

    def test_fallback_meets_pieces_requirement(self):
        # Even with zero memory, the fallback keeps >= the range's
        # lower bound (the profile's pieces estimate).
        decision = scheduler.choose(space(chunks=(3, 9)), make_view(0))
        assert decision.config.num_chunks >= 3

    def test_fallback_respects_upper_bound(self):
        decision = scheduler.choose(space(chunks=(2, 4)),
                                    make_view(1_000_000))
        assert decision.config.num_chunks <= 4


class TestFallbackDiagnostics:
    def test_zero_fitting_candidates_reports_zero(self):
        decision = scheduler.choose(space(), make_view(0))
        assert decision.fell_back
        assert decision.n_fitting == 0
        assert decision.n_candidates == 5

    def test_fallback_plan_matches_fallback_config(self):
        view = make_view(0)
        decision = scheduler.choose(space(), view)
        estimated = view.estimate_plan(decision.config)
        assert decision.footprint.cost_tokens == estimated.cost_tokens

    def test_unit_fit_counts_toward_fitting(self):
        """The Fig 8 pass is not a fallback and reports its fits."""
        both = space(methods=(SynthesisMethod.STUFF,
                              SynthesisMethod.MAP_REDUCE),
                     chunks=(4, 6))
        decision = scheduler.choose(both, make_view(900))
        assert not decision.fell_back
        assert decision.n_fitting >= 1

    def test_fallback_keeps_both_bounds(self):
        decision = scheduler.choose(space(chunks=(3, 9)), make_view(0))
        assert 3 <= decision.config.num_chunks <= 9


def cluster_view(per_replica_tokens, routed: int) -> ClusterSchedulingView:
    base = make_view(per_replica_tokens[routed])
    avail = tuple(t * KV_BYTES for t in per_replica_tokens)
    return ClusterSchedulingView(
        **{f.name: getattr(base, f.name)
           for f in dataclasses.fields(SchedulingView)},
        replica_id=routed,
        replica_free_kv_bytes=avail,
        replica_available_kv_bytes=avail,
    )


class TestPerReplicaPruning:
    def test_prunes_against_routed_replica_not_cluster_total(self):
        """A starved routed replica throttles num_chunks even when a
        sibling replica (and thus the cluster aggregate) has plenty."""
        view = cluster_view((2_100, 1_000_000), routed=0)
        clustered = scheduler.choose(space(), view)
        plain = scheduler.choose(space(), make_view(2_100))
        assert clustered.config == plain.config
        assert clustered.config.num_chunks < 6

    def test_routed_replica_with_memory_is_unthrottled(self):
        view = cluster_view((1_000_000, 2_100), routed=0)
        decision = scheduler.choose(space(), view)
        assert decision.config.num_chunks == 6
        assert not decision.fell_back


class TestBuffer:
    def test_buffer_tightens_fit(self):
        loose = JointScheduler(memory_buffer_frac=0.0)
        tight = JointScheduler(memory_buffer_frac=0.4)
        view = make_view(2_700)
        k_loose = loose.choose(space(), view).config.num_chunks
        k_tight = tight.choose(space(), view).config.num_chunks
        assert k_tight <= k_loose

    def test_invalid_buffer_rejected(self):
        with pytest.raises(ValueError):
            JointScheduler(memory_buffer_frac=0.9)


class TestQualitySLOGate:
    """Threshold-gated min-cost selection (docs/EVALUATION.md): the SLO
    threshold maps linearly onto the pruned num_chunks range as a
    floor, and the scheduler spends the minimum at or above it."""

    def test_constructor_parses_spec_string(self):
        from repro.evaluation.metrics import QualitySLO

        sched = JointScheduler(quality_slo="context_recall>=0.7")
        assert sched.quality_slo == QualitySLO("context_recall", 0.7)

    def test_zero_threshold_picks_cheapest(self):
        sched = JointScheduler(quality_slo="faithfulness>=0.0")
        decision = sched.choose(space(), make_view(1_000_000))
        assert decision.config.num_chunks == 2  # range floor
        assert not decision.fell_back

    def test_full_threshold_recovers_quality_ceiling(self):
        sched = JointScheduler(quality_slo="faithfulness>=1.0")
        gated = sched.choose(space(), make_view(1_000_000))
        default = scheduler.choose(space(), make_view(1_000_000))
        assert gated.config == default.config  # floor == range top

    def test_mid_threshold_gates_the_floor(self):
        # chunks range (2, 6), threshold 0.5 -> floor 2 + ceil(2) = 4:
        # cheapest candidate at or above four chunks.
        sched = JointScheduler(quality_slo="context_recall>=0.5")
        decision = sched.choose(space(), make_view(1_000_000))
        assert decision.config.num_chunks == 4

    def test_memory_pressure_degrades_to_min_cost(self):
        # Only k<=3 fits in ~2.1k tokens; the k>=6 gate is empty, so
        # the pick degrades to the cheapest fitting candidate rather
        # than queueing or falling back.
        sched = JointScheduler(quality_slo="faithfulness>=1.0")
        decision = sched.choose(space(), make_view(2_100))
        assert not decision.fell_back
        assert decision.config.num_chunks == 2

    @pytest.mark.parametrize("tokens", [1_000_000, 2_700, 2_100, 900])
    @pytest.mark.parametrize("threshold", [0.0, 0.5, 0.7, 1.0])
    def test_fast_path_matches_reference(self, tokens, threshold):
        sched = JointScheduler(quality_slo=f"faithfulness>={threshold}")
        view = make_view(tokens)
        fast = sched.choose(space(), view)
        ref = sched.choose_reference(space(), view)
        assert fast.config == ref.config
        assert fast.fell_back == ref.fell_back
        assert fast.n_fitting == ref.n_fitting
